/** @file Unit tests for ml::Dataset and the error metrics. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace {

using namespace mapp;
using namespace mapp::ml;

Dataset
smallDataset()
{
    Dataset d({"x", "y"});
    d.addRow({1.0, 10.0}, 100.0, "A");
    d.addRow({2.0, 20.0}, 200.0, "A");
    d.addRow({3.0, 30.0}, 300.0, "B");
    d.addRow({4.0, 40.0}, 400.0, "C");
    return d;
}

TEST(Dataset, BasicAccessors)
{
    const auto d = smallDataset();
    EXPECT_EQ(d.size(), 4u);
    EXPECT_EQ(d.numFeatures(), 2u);
    EXPECT_DOUBLE_EQ(d.row(1)[1], 20.0);
    EXPECT_DOUBLE_EQ(d.target(2), 300.0);
    EXPECT_EQ(d.group(3), "C");
}

TEST(Dataset, AddRowValidatesWidth)
{
    Dataset d({"x"});
    EXPECT_THROW(d.addRow({1.0, 2.0}, 0.0), FatalError);
}

TEST(Dataset, FeatureIndexAndColumn)
{
    const auto d = smallDataset();
    EXPECT_EQ(d.featureIndex("y"), 1);
    EXPECT_EQ(d.featureIndex("nope"), -1);
    EXPECT_EQ(d.column(0), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Dataset, DistinctGroupsInOrder)
{
    const auto d = smallDataset();
    EXPECT_EQ(d.distinctGroups(),
              (std::vector<std::string>{"A", "B", "C"}));
}

TEST(Dataset, SelectFeaturesReordersColumns)
{
    const auto d = smallDataset();
    const auto sel = d.selectFeatures({"y", "x"});
    EXPECT_EQ(sel.numFeatures(), 2u);
    EXPECT_DOUBLE_EQ(sel.row(0)[0], 10.0);
    EXPECT_DOUBLE_EQ(sel.row(0)[1], 1.0);
    EXPECT_DOUBLE_EQ(sel.target(0), 100.0);
}

TEST(Dataset, SelectUnknownFeatureIsFatal)
{
    const auto d = smallDataset();
    EXPECT_THROW(d.selectFeatures({"zz"}), FatalError);
}

TEST(Dataset, SubsetPicksRows)
{
    const auto d = smallDataset();
    const auto s = d.subset({3, 0});
    EXPECT_EQ(s.size(), 2u);
    EXPECT_DOUBLE_EQ(s.target(0), 400.0);
    EXPECT_DOUBLE_EQ(s.target(1), 100.0);
}

TEST(Dataset, SubsetOutOfRangeIsFatal)
{
    const auto d = smallDataset();
    EXPECT_THROW(d.subset({99}), FatalError);
}

TEST(Dataset, TrainTestSplitPartitions)
{
    const auto d = smallDataset();
    Rng rng(1);
    auto [train, test] = d.trainTestSplit(0.25, rng);
    EXPECT_EQ(test.size(), 1u);
    EXPECT_EQ(train.size(), 3u);
    // Targets are disjoint and cover the original set.
    double total = 0.0;
    for (std::size_t i = 0; i < train.size(); ++i)
        total += train.target(i);
    for (std::size_t i = 0; i < test.size(); ++i)
        total += test.target(i);
    EXPECT_DOUBLE_EQ(total, 1000.0);
}

TEST(Dataset, SplitOutGroup)
{
    const auto d = smallDataset();
    auto [train, test] = d.splitOutGroup("A");
    EXPECT_EQ(test.size(), 2u);
    EXPECT_EQ(train.size(), 2u);
    for (std::size_t i = 0; i < test.size(); ++i)
        EXPECT_EQ(test.group(i), "A");
}

TEST(Metrics, MseKnownValue)
{
    const std::vector<double> truth{1.0, 2.0};
    const std::vector<double> pred{2.0, 4.0};
    EXPECT_DOUBLE_EQ(meanSquaredError(truth, pred), 2.5);
}

TEST(Metrics, RelativeErrorPaperFormula)
{
    EXPECT_DOUBLE_EQ(relativeErrorPercent(10.0, 9.0), 10.0);
    EXPECT_DOUBLE_EQ(relativeErrorPercent(10.0, 12.0), 20.0);
    // Symmetric under sign of the deviation, scaled by the truth.
    EXPECT_DOUBLE_EQ(relativeErrorPercent(2.0, 1.0), 50.0);
}

TEST(Metrics, MeanRelativeError)
{
    const std::vector<double> truth{10.0, 20.0};
    const std::vector<double> pred{9.0, 24.0};
    EXPECT_DOUBLE_EQ(meanRelativeErrorPercent(truth, pred), 15.0);
}

TEST(Metrics, R2PerfectAndBaseline)
{
    const std::vector<double> truth{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(r2Score(truth, truth), 1.0);
    const std::vector<double> meanPred{2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(r2Score(truth, meanPred), 0.0);
}

TEST(Metrics, EmptyInputsSafe)
{
    EXPECT_DOUBLE_EQ(meanSquaredError({}, {}), 0.0);
    EXPECT_DOUBLE_EQ(meanRelativeErrorPercent({}, {}), 0.0);
}

}  // namespace
