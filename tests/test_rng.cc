/** @file Unit tests for the deterministic xoshiro256++ generator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.h"

namespace {

using mapp::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 32; ++i)
        vals.insert(r.next());
    EXPECT_GT(vals.size(), 30u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += r.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-5.0, 3.0);
        EXPECT_GE(v, -5.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniformInt(2, 6);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng r(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniformInt(4, 4), 4);
}

TEST(Rng, NormalMomentsApproximatelyStandard)
{
    Rng r(13);
    const int n = 50000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal();
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale)
{
    Rng r(17);
    const int n = 30000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatchesP)
{
    Rng r(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (r.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanIsInverseRate)
{
    Rng r(23);
    const int n = 30000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = r.exponential(4.0);
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, LogNormalIsPositive)
{
    Rng r(29);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(r.logNormal(0.0, 1.0), 0.0);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng r(31);
    std::vector<int> v(50);
    std::iota(v.begin(), v.end(), 0);
    auto sortedCopy = v;
    r.shuffle(v);
    EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // 50! odds say so
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sortedCopy);
}

TEST(Rng, ShuffleDeterministicPerSeed)
{
    std::vector<int> a(20);
    std::vector<int> b(20);
    std::iota(a.begin(), a.end(), 0);
    std::iota(b.begin(), b.end(), 0);
    Rng r1(77);
    Rng r2(77);
    r1.shuffle(a);
    r2.shuffle(b);
    EXPECT_EQ(a, b);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(99);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

}  // namespace
