/** @file Compiled-inference equivalence suite: the SoA engines must be
 * bit-identical to the node-walk oracle — fuzzed over random
 * trees/forests and probe vectors (including degenerate single-leaf
 * trees and probes placed exactly on split thresholds), across batch
 * sizes, at several thread counts, and on the real campaign dataset. */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "predictor/scheduler.h"

namespace {

using namespace mapp;

/** Random regression dataset; constant targets when @p flat. */
ml::Dataset
randomDataset(Rng& rng, std::size_t rows, std::size_t features,
              bool flat = false)
{
    std::vector<std::string> names;
    for (std::size_t f = 0; f < features; ++f)
        names.push_back("f" + std::to_string(f));
    ml::Dataset d(names);
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> row;
        for (std::size_t f = 0; f < features; ++f)
            row.push_back(rng.uniform(-10.0, 10.0));
        const double target = flat ? 3.25 : rng.uniform(-5.0, 5.0);
        d.addRow(std::move(row), target, "g");
    }
    return d;
}

/**
 * Probe vectors for a fitted tree: random points plus, for every
 * internal node, a point sitting exactly ON the node's threshold in
 * the node's feature (the <= boundary both engines must route the
 * same way).
 */
std::vector<std::vector<double>>
probesFor(const ml::DecisionTreeRegressor& tree, Rng& rng,
          std::size_t features, int random_probes)
{
    std::vector<std::vector<double>> probes;
    for (int p = 0; p < random_probes; ++p) {
        std::vector<double> x;
        for (std::size_t f = 0; f < features; ++f)
            x.push_back(rng.uniform(-12.0, 12.0));
        probes.push_back(std::move(x));
    }
    for (std::size_t i = 0; i < tree.nodeCount(); ++i) {
        const auto v = tree.nodeView(i);
        if (v.leaf)
            continue;
        std::vector<double> x;
        for (std::size_t f = 0; f < features; ++f)
            x.push_back(rng.uniform(-12.0, 12.0));
        x[static_cast<std::size_t>(v.feature)] = v.threshold;
        probes.push_back(std::move(x));
    }
    return probes;
}

std::vector<double>
flatten(const std::vector<std::vector<double>>& rows)
{
    std::vector<double> flat;
    for (const auto& row : rows)
        flat.insert(flat.end(), row.begin(), row.end());
    return flat;
}

TEST(CompiledTree, FuzzEquivalenceWithOracle)
{
    Rng rng(2026);
    for (int trial = 0; trial < 40; ++trial) {
        const auto rows =
            static_cast<std::size_t>(rng.uniformInt(2, 80));
        const auto features =
            static_cast<std::size_t>(rng.uniformInt(1, 8));
        const bool flat = trial % 7 == 0;  // single-leaf trees too
        const auto d = randomDataset(rng, rows, features, flat);

        ml::DecisionTreeParams params;
        params.maxDepth = static_cast<int>(rng.uniformInt(1, 9));
        params.minSamplesLeaf = static_cast<int>(rng.uniformInt(1, 3));
        ml::DecisionTreeRegressor tree(params);
        tree.fit(d);
        const ml::CompiledTree compiled(tree);
        ASSERT_TRUE(compiled.compiled());
        EXPECT_EQ(compiled.nodeCount(), tree.nodeCount());

        const auto probes = probesFor(tree, rng, features, 16);
        std::vector<double> batch(probes.size());
        compiled.predictBatch(flatten(probes), features, batch);
        for (std::size_t p = 0; p < probes.size(); ++p) {
            const double oracle = tree.predict(probes[p]);
            EXPECT_EQ(oracle, compiled.predict(probes[p]));
            EXPECT_EQ(oracle, batch[p]);
        }
    }
}

TEST(CompiledTree, SingleLeafTree)
{
    Rng rng(7);
    const auto d = randomDataset(rng, 5, 3, /*flat=*/true);
    ml::DecisionTreeRegressor tree;
    tree.fit(d);
    ASSERT_EQ(tree.nodeCount(), 1u);

    const ml::CompiledTree compiled(tree);
    EXPECT_EQ(compiled.steps(), 0);
    const std::vector<double> x{0.0, 1.0, 2.0};
    EXPECT_EQ(tree.predict(x), compiled.predict(x));
    std::vector<double> out(2);
    const std::vector<double> flat{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
    compiled.predictBatch(flat, 3, out);
    EXPECT_EQ(out[0], tree.predict(x));
    EXPECT_EQ(out[1], out[0]);
}

TEST(CompiledTree, RejectsUntrainedAndBadShapes)
{
    EXPECT_THROW(ml::CompiledTree{ml::DecisionTreeRegressor{}},
                 FatalError);

    const ml::CompiledTree empty;
    EXPECT_FALSE(empty.compiled());
    EXPECT_THROW(empty.predict(std::vector<double>{1.0}), FatalError);

    Rng rng(11);
    const auto d = randomDataset(rng, 20, 2);
    ml::DecisionTreeRegressor tree;
    tree.fit(d);
    const ml::CompiledTree compiled(tree);
    std::vector<double> out(3);
    const std::vector<double> flat{1.0, 2.0, 3.0, 4.0};  // not 3 rows x 2
    EXPECT_THROW(compiled.predictBatch(flat, 2, out), FatalError);
}

TEST(CompiledForest, FuzzEquivalenceWithOracle)
{
    Rng rng(424242);
    for (int trial = 0; trial < 12; ++trial) {
        const auto rows =
            static_cast<std::size_t>(rng.uniformInt(6, 60));
        const auto features =
            static_cast<std::size_t>(rng.uniformInt(1, 6));
        const auto d = randomDataset(rng, rows, features);

        ml::RandomForestParams params;
        params.numTrees = static_cast<int>(rng.uniformInt(1, 12));
        params.tree.maxDepth = static_cast<int>(rng.uniformInt(1, 7));
        params.seed = 1000 + static_cast<std::uint64_t>(trial);
        ml::RandomForestRegressor forest(params);
        forest.fit(d);
        const ml::CompiledForest compiled(forest);
        EXPECT_EQ(compiled.treeCount(), forest.treeCount());

        std::vector<std::vector<double>> probes;
        for (int p = 0; p < 24; ++p) {
            std::vector<double> x;
            for (std::size_t f = 0; f < features; ++f)
                x.push_back(rng.uniform(-12.0, 12.0));
            probes.push_back(std::move(x));
        }
        std::vector<double> batch(probes.size());
        compiled.predictBatch(flatten(probes), features, batch);
        for (std::size_t p = 0; p < probes.size(); ++p) {
            const double oracle = forest.predict(probes[p]);
            EXPECT_EQ(oracle, compiled.predict(probes[p]));
            EXPECT_EQ(oracle, batch[p]);
        }
        // The dataset overloads agree with the oracle too.
        EXPECT_EQ(forest.predict(d), compiled.predict(d));
    }
}

TEST(CompiledForest, BatchMatchesSingleAcrossThreadCounts)
{
    Rng rng(55);
    // Enough rows to span several parallel chunks (chunk = 256 rows).
    const auto d = randomDataset(rng, 1200, 5);
    ml::RandomForestParams params;
    params.numTrees = 10;
    ml::RandomForestRegressor forest(params);
    forest.fit(d);
    const ml::CompiledForest compiled(forest);
    const ml::CompiledTree compiledTree(forest.trees().front());

    std::vector<double> single(d.size());
    std::vector<double> singleTree(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        single[i] = compiled.predict(d.row(i));
        singleTree[i] = compiledTree.predict(d.row(i));
    }

    const auto flat = d.toRowMajor();
    for (int threads : {1, 2, parallel::maxThreads()}) {
        parallel::setMaxThreads(threads);
        std::vector<double> batch(d.size());
        compiled.predictBatch(flat, d.numFeatures(), batch);
        EXPECT_EQ(batch, single) << "forest @ threads=" << threads;

        std::vector<double> treeBatch(d.size());
        compiledTree.predictBatch(flat, d.numFeatures(), treeBatch);
        EXPECT_EQ(treeBatch, singleTree)
            << "tree @ threads=" << threads;
    }
    parallel::setMaxThreads(0);  // restore the environment default
}

/** The real campaign: compiled engines must reproduce the node walk
 * bit for bit on every measured data point. */
TEST(CompiledInference, CampaignDatasetPinned)
{
    predictor::DataCollector collector;
    const auto points = collector.collectAll(
        predictor::DataCollector::campaign91());
    const auto raw = predictor::toDataset(points);

    ml::DecisionTreeRegressor tree;
    tree.fit(raw);
    const ml::CompiledTree compiledTree(tree);
    EXPECT_EQ(tree.predict(raw), compiledTree.predict(raw));

    ml::RandomForestParams fp;
    fp.numTrees = 50;
    ml::RandomForestRegressor forest(fp);
    forest.fit(raw);
    const ml::CompiledForest compiledForest(forest);
    EXPECT_EQ(forest.predict(raw), compiledForest.predict(raw));

    // The predictor's batched entry points agree with its
    // per-point predictions (and with each other).
    predictor::MultiAppPredictor model;
    model.train(raw);
    const auto batched = model.predictDataset(raw);
    std::vector<predictor::BagQuery> queries;
    for (const auto& p : points)
        queries.push_back({p.a, p.b, p.fairness});
    const auto queryBatch = model.predictBatch(queries);
    ASSERT_EQ(batched.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double one = model.predict(points[i]);
        EXPECT_EQ(one, batched[i]);
        EXPECT_EQ(one, queryBatch[i]);
        EXPECT_EQ(one, model.explain(points[i]).predictedSeconds);
    }
}

/** Batched scheduler scoring must pick the same pairings as per-bag
 * prediction. */
TEST(CompiledInference, SchedulerBatchedScoringMatchesPredictBag)
{
    predictor::DataCollector collector;
    const auto points = collector.collectAll(
        predictor::DataCollector::campaign91());
    predictor::MultiAppPredictor model;
    model.train(points);
    const predictor::CoScheduler scheduler(model, collector);

    const std::vector<predictor::BagMember> jobs{
        {vision::BenchmarkId::Fast, 20}, {vision::BenchmarkId::Sift, 40},
        {vision::BenchmarkId::Hog, 20},  {vision::BenchmarkId::Surf, 20},
        {vision::BenchmarkId::Orb, 80},
    };
    for (const auto policy : {predictor::PairingPolicy::Fifo,
                              predictor::PairingPolicy::Greedy,
                              predictor::PairingPolicy::Exhaustive}) {
        const auto schedule = scheduler.schedule(jobs, policy);
        double total = 0.0;
        for (const auto& bag : schedule.bags) {
            EXPECT_EQ(bag.predictedSeconds,
                      scheduler.predictBag(bag.spec));
            total += bag.predictedSeconds;
        }
        if (schedule.leftover)
            total += collector.appFeatures(*schedule.leftover).gpuTime;
        EXPECT_EQ(schedule.predictedTotalSeconds, total);
    }
}

}  // namespace
