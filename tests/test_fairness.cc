/** @file Unit tests for the Equation-2 fairness metric. */

#include <gtest/gtest.h>

#include <vector>

#include "common/log.h"
#include "predictor/fairness.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;

TEST(Fairness, EqualSlowdownsAreFair)
{
    // Both tasks slowed to 50%: perfectly fair.
    const std::vector<double> shared{0.5, 1.0};
    const std::vector<double> alone{1.0, 2.0};
    EXPECT_DOUBLE_EQ(fairness(shared, alone), 1.0);
}

TEST(Fairness, AsymmetricSlowdownLowersFairness)
{
    // Task 0 keeps 90% of its IPC, task 1 only 30%.
    const std::vector<double> shared{0.9, 0.3};
    const std::vector<double> alone{1.0, 1.0};
    EXPECT_NEAR(fairness(shared, alone), 0.3 / 0.9, 1e-12);
}

TEST(Fairness, OrderInvariant)
{
    const std::vector<double> sharedA{0.9, 0.3};
    const std::vector<double> sharedB{0.3, 0.9};
    const std::vector<double> alone{1.0, 1.0};
    EXPECT_DOUBLE_EQ(fairness(sharedA, alone), fairness(sharedB, alone));
}

TEST(Fairness, BoundedByOne)
{
    const std::vector<double> shared{0.7, 0.5, 0.9};
    const std::vector<double> alone{1.0, 1.0, 1.0};
    const double f = fairness(shared, alone);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
}

TEST(Fairness, ThreeTasksUsesExtremes)
{
    // Slowdowns: 0.8, 0.5, 0.4 -> min/max = 0.5.
    const std::vector<double> shared{0.8, 0.5, 0.4};
    const std::vector<double> alone{1.0, 1.0, 1.0};
    EXPECT_DOUBLE_EQ(fairness(shared, alone), 0.5);
}

TEST(Fairness, SlowdownsComputedPerTask)
{
    const std::vector<double> shared{1.0, 1.0};
    const std::vector<double> alone{2.0, 4.0};
    const auto s = slowdowns(shared, alone);
    EXPECT_DOUBLE_EQ(s[0], 0.5);
    EXPECT_DOUBLE_EQ(s[1], 0.25);
}

TEST(Fairness, MismatchedInputsFatal)
{
    EXPECT_THROW(slowdowns(std::vector<double>{1.0},
                           std::vector<double>{1.0, 2.0}),
                 FatalError);
    EXPECT_THROW(slowdowns({}, {}), FatalError);
}

TEST(Fairness, NonPositiveAloneIpcFatal)
{
    EXPECT_THROW(slowdowns(std::vector<double>{1.0},
                           std::vector<double>{0.0}),
                 FatalError);
}

TEST(Fairness, MeanVariantAveragesSlowdowns)
{
    const std::vector<double> shared{0.8, 0.4};
    const std::vector<double> alone{1.0, 1.0};
    EXPECT_NEAR(
        fairness(shared, alone, FairnessVariant::MeanSlowdown), 0.6,
        1e-12);
}

TEST(Fairness, HarmonicVariantBelowMean)
{
    const std::vector<double> shared{0.8, 0.4};
    const std::vector<double> alone{1.0, 1.0};
    const double mean =
        fairness(shared, alone, FairnessVariant::MeanSlowdown);
    const double harmonic =
        fairness(shared, alone, FairnessVariant::HarmonicMean);
    EXPECT_LT(harmonic, mean);
}

}  // namespace
