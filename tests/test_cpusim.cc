/** @file Unit tests for the CPU cache/memory/core models and the
 * multicore co-run simulator. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "cpusim/cache_model.h"
#include "cpusim/core_model.h"
#include "cpusim/memory_model.h"
#include "cpusim/multicore_sim.h"

namespace {

using namespace mapp;
using namespace mapp::cpusim;

isa::KernelPhase
computePhase(InstCount insts = 1'000'000, double parallel = 0.95)
{
    isa::KernelPhase p;
    p.name = "compute";
    p.mix.add(isa::InstClass::IntAlu, insts / 2);
    p.mix.add(isa::InstClass::FpAlu, insts / 4);
    p.mix.add(isa::InstClass::Control, insts / 4);
    p.footprint = 64 * 1024;
    p.locality = 0.9;
    p.parallelFraction = parallel;
    p.workItems = 10000;
    return p;
}

isa::KernelPhase
memoryPhase(InstCount insts = 1'000'000)
{
    isa::KernelPhase p;
    p.name = "memory";
    p.mix.add(isa::InstClass::MemRead, insts / 2);
    p.mix.add(isa::InstClass::MemWrite, insts / 4);
    p.mix.add(isa::InstClass::IntAlu, insts / 4);
    p.bytesRead = insts * 4;
    p.bytesWritten = insts;
    p.footprint = 64ull << 20;  // larger than any LLC share
    p.locality = 0.05;
    p.parallelFraction = 0.95;
    p.workItems = 10000;
    return p;
}

TEST(CacheModel, FitsInCacheMeansFewMisses)
{
    const double miss = llcMissRate(32_KiB, 16ull << 20, 0.5);
    EXPECT_LT(miss, 0.05);
}

TEST(CacheModel, OverCapacityStreamsMiss)
{
    const double miss = llcMissRate(1_GiB, 1ull << 20, 0.0);
    EXPECT_GT(miss, 0.6);
}

TEST(CacheModel, LocalityShieldsFromPressure)
{
    const Bytes foot = 8ull << 20;
    const Bytes share = 4ull << 20;
    EXPECT_LT(llcMissRate(foot, share, 0.9),
              llcMissRate(foot, share, 0.1));
}

TEST(CacheModel, MonotoneInShare)
{
    const Bytes foot = 8ull << 20;
    EXPECT_GE(llcMissRate(foot, 1ull << 20, 0.5),
              llcMissRate(foot, 16ull << 20, 0.5));
}

TEST(CacheModel, ZeroShareIsWorstCase)
{
    CacheModelParams params;
    EXPECT_DOUBLE_EQ(llcMissRate(1024, 0, 0.5), params.maxMissRate);
}

TEST(MemoryModel, WrapsCommonSharing)
{
    const auto g = shareBandwidth({50.0, 50.0}, 60.0);
    EXPECT_DOUBLE_EQ(g[0], 30.0);
    EXPECT_GT(queueingFactor(0.9), queueingFactor(0.1));
}

TEST(CoreModel, EffectiveParallelismBasics)
{
    CpuConfig cfg;
    // One thread -> 1.
    EXPECT_DOUBLE_EQ(effectiveParallelism(1, 48, cfg), 1.0);
    // Threads up to the physical core count scale linearly.
    EXPECT_DOUBLE_EQ(effectiveParallelism(24, 48, cfg), 24.0);
    // SMT siblings add smtYield each.
    EXPECT_NEAR(effectiveParallelism(48, 48, cfg),
                24.0 + 24.0 * cfg.smtYield, 1e-9);
}

TEST(CoreModel, OversubscriptionDoesNotHelp)
{
    CpuConfig cfg;
    const double at = effectiveParallelism(48, 48, cfg);
    const double over = effectiveParallelism(96, 48, cfg);
    EXPECT_LT(over, at);
}

TEST(CoreModel, MoreThreadsFasterForParallelPhase)
{
    CpuConfig cfg;
    CpuAllocation a1{.threads = 1, .logicalCores = 48,
                     .llcShare = cfg.llcSize,
                     .bandwidthShare = cfg.memBandwidth};
    CpuAllocation a8 = a1;
    a8.threads = 8;
    const auto p = computePhase();
    EXPECT_GT(timePhase(p, a1, cfg).time, timePhase(p, a8, cfg).time);
}

TEST(CoreModel, SerialPhaseGainsNothingFromThreads)
{
    CpuConfig cfg;
    auto p = computePhase();
    p.parallelFraction = 0.0;
    CpuAllocation a1{.threads = 1, .logicalCores = 48,
                     .llcShare = cfg.llcSize,
                     .bandwidthShare = cfg.memBandwidth};
    CpuAllocation a8 = a1;
    a8.threads = 8;
    // Extra threads only add fork/join overhead on a serial phase.
    const auto t1 = timePhase(p, a1, cfg).time;
    const auto t8 = timePhase(p, a8, cfg).time;
    EXPECT_GE(t8, t1);
    EXPECT_NEAR(t8, t1, t1 * 0.1);
}

TEST(CoreModel, DivergenceAddsBranchStalls)
{
    CpuConfig cfg;
    CpuAllocation a{.threads = 1, .logicalCores = 48,
                    .llcShare = cfg.llcSize,
                    .bandwidthShare = cfg.memBandwidth};
    auto p = computePhase();
    p.branchDivergence = 0.0;
    const auto low = timePhase(p, a, cfg);
    p.branchDivergence = 0.9;
    const auto high = timePhase(p, a, cfg);
    EXPECT_GT(high.branchCycles, low.branchCycles);
    EXPECT_GT(high.time, low.time);
}

TEST(CoreModel, MemoryPhaseBandwidthBound)
{
    CpuConfig cfg;
    CpuAllocation a{.threads = 24, .logicalCores = 48,
                    .llcShare = cfg.llcSize,
                    .bandwidthShare = 1e9};  // starved bandwidth
    const auto t = timePhase(memoryPhase(), a, cfg);
    EXPECT_GT(t.bandwidthTime, 0.0);
    EXPECT_GE(t.time, t.bandwidthTime);
}

TEST(CoreModel, BandwidthDemandPositiveForMemoryPhase)
{
    CpuConfig cfg;
    CpuAllocation a{.threads = 8, .logicalCores = 48,
                    .llcShare = 1ull << 20,
                    .bandwidthShare = cfg.memBandwidth};
    EXPECT_GT(phaseBandwidthDemand(memoryPhase(), a, cfg), 0.0);
}

TEST(MulticoreSim, AloneRunProducesTimeAndIpc)
{
    MulticoreSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(computePhase());
    const auto r = sim.runAlone(t, 8);
    EXPECT_GT(r.time, 0.0);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(r.instructions, t.totalInstructions());
}

TEST(MulticoreSim, SharedSlowerThanAlone)
{
    MulticoreSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(memoryPhase());
    t.append(computePhase());
    const auto alone = sim.runAlone(t, 48);
    const auto shared = sim.runShared({&t, &t}, {48, 48});
    EXPECT_GT(shared.apps[0].time, alone.time);
    // Homogeneous co-runners finish together.
    EXPECT_NEAR(shared.apps[0].time, shared.apps[1].time,
                shared.apps[0].time * 1e-9);
}

TEST(MulticoreSim, HomogeneousSlowdownBounded)
{
    // Two instances on a big machine should be less than 4x slower.
    MulticoreSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(computePhase());
    const auto alone = sim.runAlone(t, 24);
    const auto shared = sim.runShared({&t, &t}, {24, 24});
    EXPECT_LT(shared.makespan, alone.time * 4.0);
}

TEST(MulticoreSim, MakespanIsMaxOfApps)
{
    MulticoreSim sim;
    isa::WorkloadTrace small("S", 1);
    small.append(computePhase(100'000));
    isa::WorkloadTrace big("B", 1);
    big.append(computePhase(10'000'000));
    const auto bag = sim.runShared({&small, &big}, {8, 8});
    EXPECT_NEAR(bag.makespan,
                std::max(bag.apps[0].time, bag.apps[1].time), 1e-15);
    EXPECT_LT(bag.apps[0].time, bag.apps[1].time);
}

TEST(MulticoreSim, EmptyBagIsFatal)
{
    MulticoreSim sim;
    EXPECT_THROW(sim.runShared({}, {}), FatalError);
}

TEST(MulticoreSim, MismatchedThreadsIsFatal)
{
    MulticoreSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(computePhase());
    EXPECT_THROW(sim.runShared({&t}, {1, 2}), FatalError);
}

TEST(MulticoreSim, BestThreadCountPrefersParallelism)
{
    MulticoreSim sim;
    isa::WorkloadTrace parallel("P", 1);
    parallel.append(computePhase(10'000'000, 0.99));
    EXPECT_GE(sim.bestThreadCount(parallel), 16);

    isa::WorkloadTrace serial("S", 1);
    serial.append(computePhase(10'000'000, 0.05));
    // A 5%-parallel workload saturates quickly; the team must stay far
    // below the fully-parallel one's.
    EXPECT_LE(sim.bestThreadCount(serial), 16);
    EXPECT_LT(sim.bestThreadCount(serial),
              sim.bestThreadCount(parallel));
}

TEST(MulticoreSim, IpcRatioEqualsInverseTimeRatio)
{
    MulticoreSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(memoryPhase());
    const auto alone = sim.runAlone(t, 24);
    const auto shared = sim.runShared({&t, &t}, {24, 24});
    const double slow = shared.apps[0].ipc / alone.ipc;
    EXPECT_NEAR(slow, alone.time / shared.apps[0].time, 1e-9);
    EXPECT_LE(slow, 1.0 + 1e-9);
}

}  // namespace
