/**
 * @file
 * The resident prediction service end to end: micro-batched answers
 * bit-identical to direct predict() calls, bounded-queue admission
 * control, per-request deadlines, atomic hot reload under load, the
 * JSONL protocol codec, and concurrent clients hammering a real
 * Unix-domain socket. Runs under `ctest -L parallel` (TSan) — every
 * path here is exercised from multiple threads by design.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

using namespace mapp;
using serve::JobResult;
using serve::PredictionService;
using serve::ServiceOptions;

// ---------------------------------------------------------------------------
// Synthetic model: deterministic features and targets, so two models
// trained from the same seed are identical and predictions can be
// compared bit for bit.

predictor::AppFeatures
randomApp(Rng& rng, int index)
{
    predictor::AppFeatures app;
    app.app = "app" + std::to_string(index % 7);
    app.batchSize = static_cast<int>(rng.uniformInt(1, 100));
    app.cpuTime = rng.uniform(0.01, 2.0);
    app.gpuTime = rng.uniform(0.01, 1.0);
    double total = 0.0;
    for (auto& m : app.mixPercent) {
        m = rng.uniform(0.0, 1.0);
        total += m;
    }
    for (auto& m : app.mixPercent)
        m = 100.0 * m / total;
    return app;
}

std::vector<predictor::DataPoint>
syntheticCampaign(unsigned seed, int rows)
{
    Rng rng(seed);
    std::vector<predictor::DataPoint> points;
    points.reserve(static_cast<std::size_t>(rows));
    for (int i = 0; i < rows; ++i) {
        predictor::DataPoint p;
        p.a = randomApp(rng, i);
        p.b = randomApp(rng, i + 3);
        p.fairness = rng.uniform(0.2, 1.0);
        p.gpuBagTime = p.a.gpuTime + p.b.gpuTime +
                       0.25 * p.fairness * p.a.gpuTime;
        points.push_back(std::move(p));
    }
    return points;
}

std::shared_ptr<const predictor::MultiAppPredictor>
trainModel(unsigned seed)
{
    auto model = std::make_shared<predictor::MultiAppPredictor>();
    model->train(syntheticCampaign(seed, 64));
    return model;
}

std::vector<predictor::BagQuery>
randomQueries(unsigned seed, int n)
{
    Rng rng(seed);
    std::vector<predictor::BagQuery> queries;
    queries.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        predictor::BagQuery q;
        q.a = randomApp(rng, i);
        q.b = randomApp(rng, i + 5);
        q.fairness = rng.uniform(0.2, 1.0);
        queries.push_back(std::move(q));
    }
    return queries;
}

/** Collects one JobResult per submitted job and counts arrivals. */
struct ResultSink
{
    explicit ResultSink(std::size_t n) : results(n) {}

    serve::JobCallback slot(std::size_t i)
    {
        return [this, i](JobResult r) {
            results[i] = std::move(r);
            arrived.fetch_add(1, std::memory_order_acq_rel);
        };
    }

    std::vector<JobResult> results;
    std::atomic<std::size_t> arrived{0};
};

// ---------------------------------------------------------------------------
// PredictionService

TEST(PredictionService, MicroBatchedAnswersBitIdenticalToDirectPredict)
{
    const auto model = trainModel(11);
    ServiceOptions options;
    options.batchRows = 8;
    options.lingerMs = 5.0;
    PredictionService service(model, nullptr, options);

    const auto queries = randomQueries(12, 48);
    ResultSink sink(queries.size());
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t)
        clients.emplace_back([&, t] {
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < queries.size(); i += 4)
                EXPECT_TRUE(
                    service.submit({queries[i]}, 0.0, sink.slot(i)));
        });
    for (auto& t : clients)
        t.join();
    service.drain();
    ASSERT_EQ(sink.arrived.load(), queries.size());

    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto& r = sink.results[i];
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_EQ(r.predictedSeconds.size(), 1u);
        EXPECT_EQ(r.predictedSeconds[0],
                  model->predict(queries[i].a, queries[i].b,
                                 queries[i].fairness))
            << "row " << i;
        EXPECT_EQ(r.epoch, 1u);
    }
}

TEST(PredictionService, MultiRowJobsKeepSubmitOrderWithinTheJob)
{
    const auto model = trainModel(21);
    ServiceOptions options;
    options.batchRows = 4;
    options.lingerMs = 2.0;
    PredictionService service(model, nullptr, options);

    const auto queries = randomQueries(22, 10);
    ResultSink sink(1);
    ASSERT_TRUE(service.submit(queries, 0.0, sink.slot(0)));
    service.drain();
    ASSERT_EQ(sink.arrived.load(), 1u);
    const auto& r = sink.results[0];
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.predictedSeconds.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_EQ(r.predictedSeconds[i],
                  model->predict(queries[i].a, queries[i].b,
                                 queries[i].fairness));
}

TEST(PredictionService, FullQueueRejectsSynchronously)
{
    const auto model = trainModel(31);
    ServiceOptions options;
    options.queueCapacityRows = 4;
    options.batchRows = 64;    // hold jobs in the queue...
    options.lingerMs = 500.0;  // ...for the whole test window
    PredictionService service(model, nullptr, options);

    const auto queries = randomQueries(32, 5);
    ResultSink sink(queries.size());
    for (std::size_t i = 0; i < 4; ++i)
        ASSERT_TRUE(service.submit({queries[i]}, 0.0, sink.slot(i)));

    // Admission control: the fifth row exceeds the bound and must be
    // refused on this thread, before any batch flushes.
    EXPECT_FALSE(service.submit({queries[4]}, 0.0, sink.slot(4)));
    EXPECT_EQ(sink.arrived.load(), 1u);
    EXPECT_EQ(sink.results[4].error, "queue_full");

    service.drain();
    ASSERT_EQ(sink.arrived.load(), queries.size());
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(sink.results[i].ok) << i;
}

TEST(PredictionService, ExpiredDeadlineCutsTheLingerShort)
{
    const auto model = trainModel(41);
    ServiceOptions options;
    options.batchRows = 64;
    options.lingerMs = 2000.0;  // would stall far past the deadline
    PredictionService service(model, nullptr, options);

    const auto start = std::chrono::steady_clock::now();
    ResultSink sink(1);
    ASSERT_TRUE(
        service.submit(randomQueries(42, 1), 5.0, sink.slot(0)));
    while (sink.arrived.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const auto waited = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

    EXPECT_FALSE(sink.results[0].ok);
    EXPECT_EQ(sink.results[0].error, "deadline_expired");
    // The worker must wake at the deadline, not at the linger bound.
    EXPECT_LT(waited, 1.0);
    service.drain();
}

TEST(PredictionService, DrainAnswersEverythingThenRefuses)
{
    const auto model = trainModel(51);
    ServiceOptions options;
    options.batchRows = 64;
    options.lingerMs = 300.0;
    PredictionService service(model, nullptr, options);

    const auto queries = randomQueries(52, 6);
    ResultSink sink(queries.size() + 1);
    for (std::size_t i = 0; i < queries.size(); ++i)
        ASSERT_TRUE(service.submit({queries[i]}, 0.0, sink.slot(i)));
    service.drain();
    EXPECT_EQ(sink.arrived.load(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i)
        EXPECT_TRUE(sink.results[i].ok) << sink.results[i].error;

    EXPECT_FALSE(service.submit(randomQueries(53, 1), 0.0,
                                sink.slot(queries.size())));
    EXPECT_EQ(sink.results[queries.size()].error, "shutting_down");
}

TEST(PredictionService, HotReloadUnderLoadStaysBitIdentical)
{
    // The factory rebuilds from the same seed: epochs advance but the
    // served function is unchanged, so every answer — before, during,
    // and after the swaps — must equal the cold model's.
    const auto cold = trainModel(61);
    PredictionService service(
        trainModel(61), [] { return trainModel(61); }, [] {
            ServiceOptions o;
            o.batchRows = 8;
            o.lingerMs = 1.0;
            return o;
        }());

    const auto queries = randomQueries(62, 96);
    ResultSink sink(queries.size());
    std::atomic<bool> reloading{true};
    std::thread reloader([&] {
        for (int r = 0; r < 5; ++r) {
            service.reload();
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        reloading.store(false);
    });
    std::vector<std::thread> clients;
    for (int t = 0; t < 3; ++t)
        clients.emplace_back([&, t] {
            for (std::size_t i = static_cast<std::size_t>(t);
                 i < queries.size(); i += 3)
                EXPECT_TRUE(
                    service.submit({queries[i]}, 0.0, sink.slot(i)));
        });
    for (auto& t : clients)
        t.join();
    reloader.join();
    service.drain();
    EXPECT_EQ(service.epoch(), 6u);

    ASSERT_EQ(sink.arrived.load(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto& r = sink.results[i];
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.predictedSeconds[0],
                  cold->predict(queries[i].a, queries[i].b,
                                queries[i].fairness))
            << "row " << i << " epoch " << r.epoch;
    }
}

// ---------------------------------------------------------------------------
// Protocol codec

TEST(ServeProtocol, ParsesPredictRequestsAndRejectsMalformedOnes)
{
    const auto good = serve::parseRequest(
        R"({"op":"predict","id":"q1","deadline_ms":5,)"
        R"("a":"SIFT@40","b":"FAST@20"})");
    ASSERT_TRUE(good.ok()) << good.error().toString();
    EXPECT_EQ(good.value().id, "q1");
    EXPECT_EQ(good.value().op, serve::RequestOp::Predict);
    EXPECT_EQ(good.value().deadlineMs, 5.0);
    ASSERT_EQ(good.value().queries.size(), 1u);
    EXPECT_TRUE(good.value().queries[0].byMembers);

    for (const char* bad : {
             "not json at all",
             R"({"id":"x"})",                         // missing op
             R"({"op":"launch_missiles"})",           // unknown op
             R"({"op":"predict","a":"SIFT@40"})",     // missing b
             R"({"op":"predict","a":"SIFT","b":"FAST@20"})",  // no @
             R"({"op":"predict","a":"NOPE@4","b":"FAST@20"})",
             R"({"op":"predict","a":"SIFT@0","b":"FAST@20"})",
             R"({"op":"predict","deadline_ms":-1,)"
             R"("a":"SIFT@40","b":"FAST@20"})",
             R"({"op":"predict_batch","queries":[]})",
         }) {
        EXPECT_FALSE(serve::parseRequest(bad).ok()) << bad;
    }

    // Raw-feature queries need full features and a fairness value.
    const std::string rawApp =
        R"({"cpu_time":0.5,"gpu_time":0.25,)"
        R"("mix":[10,10,10,10,10,10,10,10,20]})";
    const auto raw = serve::parseRequest(
        R"({"op":"predict","a":)" + rawApp + R"(,"b":)" + rawApp +
        R"(,"fairness":0.75})");
    ASSERT_TRUE(raw.ok()) << raw.error().toString();
    EXPECT_FALSE(raw.value().queries[0].byMembers);
    EXPECT_EQ(raw.value().queries[0].raw.fairness, 0.75);
    EXPECT_FALSE(serve::parseRequest(  // fairness missing
                     R"({"op":"predict","a":)" + rawApp + R"(,"b":)" +
                     rawApp + "}")
                     .ok());
}

TEST(ServeProtocol, ResponsesAreWellFormedJsonl)
{
    EXPECT_EQ(serve::ackResponse("7", serve::RequestOp::Ping),
              R"({"id":"7","ok":true,"op":"ping"})");
    EXPECT_EQ(
        serve::errorResponse("x", "queue_full", "try later"),
        R"({"id":"x","ok":false,"error":"queue_full","message":"try later"})");
    const std::vector<double> one = {0.5};
    EXPECT_EQ(serve::predictResponse("p", serve::RequestOp::Predict,
                                     one, 3, 250.0),
              R"({"id":"p","ok":true,"op":"predict",)"
              R"("predicted_seconds":0.5,"epoch":3,"queue_us":250})");
    const std::vector<double> two = {0.5, 1.5};
    EXPECT_EQ(serve::predictResponse(
                  "pb", serve::RequestOp::PredictBatch, two, 1, 0.0),
              R"({"id":"pb","ok":true,"op":"predict_batch",)"
              R"("predicted_seconds":[0.5,1.5],"epoch":1,"queue_us":0})");
}

// ---------------------------------------------------------------------------
// Server dispatch (in-process, no transport)

TEST(Server, DispatchAnswersSyncOpsAndFlagsBadRequests)
{
    const auto model = trainModel(71);
    PredictionService service(model, nullptr, {});
    predictor::DataCollector collector;
    serve::Server server(service, collector);

    std::vector<std::string> out;
    const auto collect = [&out](std::string line) {
        out.push_back(std::move(line));
    };

    server.handleLine(R"({"op":"ping","id":"1"})", collect);
    server.handleLine("garbage", collect);
    server.handleLine(R"({"op":"stats","id":"2"})", collect);
    server.handleLine(R"({"op":"quality","id":"3"})", collect);
    server.handleLine(R"({"op":"metrics","id":"4"})", collect);

    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out[0], R"({"id":"1","ok":true,"op":"ping"})");
    EXPECT_NE(out[1].find("\"ok\":false"), std::string::npos);
    EXPECT_NE(out[1].find("\"error\":\"parse\""), std::string::npos);
    EXPECT_NE(out[2].find("\"epoch\":1"), std::string::npos);
    EXPECT_NE(out[2].find("\"requests\":"), std::string::npos);
    EXPECT_NE(out[3].find("\"mape_pct\":"), std::string::npos);
    EXPECT_NE(out[3].find("\"drift\":["), std::string::npos);
    EXPECT_NE(out[4].find("# TYPE mapp_serve_requests counter"),
              std::string::npos);

    // Reload without a factory is an internal error response, not a
    // crash or a dropped line.
    server.handleLine(R"({"op":"reload","id":"5"})", collect);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_NE(out[5].find("\"error\":\"internal\""),
              std::string::npos);
    service.drain();
}

TEST(Server, RawPredictThroughDispatchMatchesDirectPredict)
{
    const auto model = trainModel(81);
    ServiceOptions options;
    options.lingerMs = 1.0;
    PredictionService service(model, nullptr, options);
    predictor::DataCollector collector;
    serve::Server server(service, collector);

    const auto query = randomQueries(82, 1)[0];
    const auto appJson = [](const predictor::AppFeatures& app) {
        std::string mix;
        for (double m : app.mixPercent) {
            if (!mix.empty())
                mix += ',';
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", m);
            mix += buf;
        }
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      R"({"cpu_time":%.17g,"gpu_time":%.17g,"mix":[)",
                      static_cast<double>(app.cpuTime),
                      static_cast<double>(app.gpuTime));
        return std::string(buf) + mix + "]}";
    };
    char fairness[64];
    std::snprintf(fairness, sizeof(fairness), "%.17g", query.fairness);
    const std::string line = R"({"op":"predict","id":"r1","a":)" +
                             appJson(query.a) + R"(,"b":)" +
                             appJson(query.b) +
                             R"(,"fairness":)" + fairness + "}";

    std::mutex mutex;
    std::vector<std::string> out;
    server.handleLine(line, [&](std::string response) {
        std::lock_guard<std::mutex> lock(mutex);
        out.push_back(std::move(response));
    });
    service.drain();

    ASSERT_EQ(out.size(), 1u);
    const std::string& response = out[0];
    EXPECT_NE(response.find(R"("id":"r1","ok":true)"),
              std::string::npos);
    const auto at = response.find("\"predicted_seconds\":");
    ASSERT_NE(at, std::string::npos);
    const double got = std::strtod(
        response.c_str() + at +
            std::strlen("\"predicted_seconds\":"),
        nullptr);
    EXPECT_EQ(got,
              model->predict(query.a, query.b, query.fairness));
}

// ---------------------------------------------------------------------------
// Socket transport: real concurrent clients

/** Blocking JSONL client over a Unix-domain socket. */
struct SocketClient
{
    int fd = -1;

    explicit SocketClient(const std::string& path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)) != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~SocketClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool send(std::string line)
    {
        line += '\n';
        std::size_t sent = 0;
        while (sent < line.size()) {
            const auto n = ::send(fd, line.data() + sent,
                                  line.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                return false;
            sent += static_cast<std::size_t>(n);
        }
        return true;
    }

    /** Read until @p lines full responses arrived (or the peer closed). */
    std::vector<std::string> readLines(std::size_t lines)
    {
        std::vector<std::string> out;
        std::string buffer;
        char chunk[4096];
        while (out.size() < lines) {
            const auto n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t pos = 0;
            while ((pos = buffer.find('\n')) != std::string::npos) {
                out.push_back(buffer.substr(0, pos));
                buffer.erase(0, pos + 1);
            }
        }
        return out;
    }
};

TEST(ServeSocket, ConcurrentClientsThenGracefulShutdown)
{
    const auto model = trainModel(91);
    ServiceOptions options;
    options.batchRows = 4;
    options.lingerMs = 2.0;
    PredictionService service(model, nullptr, options);
    predictor::DataCollector collector;
    serve::Server server(service, collector);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("mapp_serve_test_" + std::to_string(::getpid()) + ".sock"))
            .string();
    serve::StopCause cause = serve::StopCause::Eof;
    std::thread serverThread(
        [&] { cause = server.serveSocket(path); });
    for (int i = 0;
         i < 500 && !std::filesystem::exists(path); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(std::filesystem::exists(path));

    const auto queries = randomQueries(92, 12);
    const std::string rawApp =
        R"({"cpu_time":0.5,"gpu_time":0.25,)"
        R"("mix":[10,10,10,10,10,10,10,10,20]})";
    constexpr int kClients = 4;
    constexpr int kRequests = 8;
    std::atomic<int> okResponses{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            SocketClient client(path);
            ASSERT_GE(client.fd, 0);
            for (int r = 0; r < kRequests; ++r) {
                const std::string id =
                    "c" + std::to_string(c) + "-" + std::to_string(r);
                const std::string line =
                    r % 2 == 0
                        ? R"({"op":"ping","id":")" + id + R"("})"
                        : R"({"op":"predict","id":")" + id +
                              R"(","a":)" + rawApp + R"(,"b":)" +
                              rawApp + R"(,"fairness":0.5})";
                ASSERT_TRUE(client.send(line));
            }
            const auto responses = client.readLines(kRequests);
            ASSERT_EQ(responses.size(),
                      static_cast<std::size_t>(kRequests));
            // Every id answered exactly once, every answer ok.
            for (int r = 0; r < kRequests; ++r) {
                const std::string id =
                    "c" + std::to_string(c) + "-" + std::to_string(r);
                int seen = 0;
                for (const auto& response : responses)
                    if (response.find("\"id\":\"" + id + "\"") !=
                        std::string::npos) {
                        ++seen;
                        EXPECT_NE(response.find("\"ok\":true"),
                                  std::string::npos)
                            << response;
                    }
                EXPECT_EQ(seen, 1) << id;
            }
            okResponses.fetch_add(kRequests);
        });
    for (auto& t : clients)
        t.join();
    EXPECT_EQ(okResponses.load(), kClients * kRequests);

    {
        SocketClient last(path);
        ASSERT_GE(last.fd, 0);
        ASSERT_TRUE(last.send(R"({"op":"shutdown","id":"bye"})"));
        const auto farewell = last.readLines(1);
        ASSERT_EQ(farewell.size(), 1u);
        EXPECT_NE(farewell[0].find("\"ok\":true"), std::string::npos);
    }
    serverThread.join();
    EXPECT_EQ(cause, serve::StopCause::Shutdown);
    EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
