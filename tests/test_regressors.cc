/** @file Tests for linear regression, kernels, SVR and random forest. */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/log.h"
#include "common/rng.h"
#include "ml/kernels.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svr.h"

namespace {

using namespace mapp;
using namespace mapp::ml;

Dataset
linearData(std::uint64_t seed, double noise = 0.0, int n = 40)
{
    // y = 2 x0 - 3 x1 + 1
    Rng rng(seed);
    Dataset d({"x0", "x1"});
    for (int i = 0; i < n; ++i) {
        const double a = rng.uniform(-1.0, 1.0);
        const double b = rng.uniform(-1.0, 1.0);
        d.addRow({a, b},
                 2.0 * a - 3.0 * b + 1.0 + rng.normal(0.0, noise), "g");
    }
    return d;
}

TEST(LinearRegression, RecoversExactCoefficients)
{
    LinearRegression lr;
    lr.fit(linearData(1));
    ASSERT_EQ(lr.weights().size(), 2u);
    EXPECT_NEAR(lr.weights()[0], 2.0, 1e-6);
    EXPECT_NEAR(lr.weights()[1], -3.0, 1e-6);
    EXPECT_NEAR(lr.intercept(), 1.0, 1e-6);
}

TEST(LinearRegression, PredictMatchesModel)
{
    LinearRegression lr;
    lr.fit(linearData(2));
    EXPECT_NEAR(lr.predict(std::vector<double>{0.5, -0.5}),
                2.0 * 0.5 + 3.0 * 0.5 + 1.0, 1e-6);
}

TEST(LinearRegression, RobustToNoise)
{
    LinearRegression lr;
    lr.fit(linearData(3, 0.05, 200));
    EXPECT_NEAR(lr.weights()[0], 2.0, 0.05);
}

TEST(LinearRegression, EmptyFitIsFatal)
{
    LinearRegression lr;
    EXPECT_THROW(lr.fit(Dataset({"x"})), FatalError);
}

TEST(LinearRegression, PredictBeforeFitIsFatal)
{
    LinearRegression lr;
    EXPECT_THROW(lr.predict(std::vector<double>{1.0}), FatalError);
}

TEST(Kernels, LinearIsDotProduct)
{
    KernelParams k;
    k.type = KernelType::Linear;
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{3.0, 4.0};
    EXPECT_DOUBLE_EQ(kernel(a, b, k), 11.0);
}

TEST(Kernels, RbfSelfSimilarityIsOne)
{
    KernelParams k;
    k.type = KernelType::Rbf;
    const std::vector<double> a{1.0, -2.0, 0.5};
    EXPECT_DOUBLE_EQ(kernel(a, a, k), 1.0);
}

TEST(Kernels, RbfDecaysWithDistance)
{
    KernelParams k;
    k.type = KernelType::Rbf;
    k.gamma = 1.0;
    const std::vector<double> a{0.0};
    EXPECT_GT(kernel(a, std::vector<double>{0.5}, k),
              kernel(a, std::vector<double>{2.0}, k));
}

TEST(Kernels, PolynomialKnownValue)
{
    KernelParams k;
    k.type = KernelType::Polynomial;
    k.gamma = 1.0;
    k.coef0 = 1.0;
    k.degree = 2;
    const std::vector<double> a{1.0};
    const std::vector<double> b{2.0};
    EXPECT_DOUBLE_EQ(kernel(a, b, k), 9.0);  // (2 + 1)^2
}

TEST(Svr, FitsSmoothFunctionInRange)
{
    Rng rng(5);
    Dataset d({"x"});
    for (int i = 0; i < 60; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        d.addRow({x}, std::sin(2.0 * x), "g");
    }
    SvrParams params;
    params.kernel.gamma = 2.0;
    SvrRegressor svr(params);
    svr.fit(d);
    EXPECT_TRUE(svr.trained());
    EXPECT_GT(svr.supportVectorCount(), 0u);
    double err = 0.0;
    for (double x : {-0.8, -0.3, 0.0, 0.4, 0.9})
        err += std::abs(svr.predict(std::vector<double>{x}) -
                        std::sin(2.0 * x));
    EXPECT_LT(err / 5.0, 0.08);
}

TEST(Svr, EpsilonTubeToleratesSmallResiduals)
{
    // With a wide tube, a constant-ish fit suffices and few SVs appear.
    Dataset d({"x"});
    for (int i = 0; i < 20; ++i)
        d.addRow({static_cast<double>(i)}, 5.0 + 0.001 * i, "g");
    SvrParams params;
    params.epsilon = 1.0;
    SvrRegressor svr(params);
    svr.fit(d);
    EXPECT_NEAR(svr.predict(std::vector<double>{10.0}), 5.0, 1.2);
}

TEST(Svr, EmptyFitIsFatal)
{
    SvrRegressor svr;
    EXPECT_THROW(svr.fit(Dataset({"x"})), FatalError);
}

TEST(Svr, PredictBeforeFitIsFatal)
{
    SvrRegressor svr;
    EXPECT_THROW(svr.predict(std::vector<double>{0.0}), FatalError);
}

TEST(RandomForest, AveragesTreesAndFitsSignal)
{
    Rng rng(9);
    Dataset d({"x"});
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        d.addRow({x}, x > 0.5 ? 2.0 : -2.0, "g");
    }
    RandomForestRegressor forest;
    forest.fit(d);
    EXPECT_EQ(forest.treeCount(), 30u);
    EXPECT_GT(forest.predict(std::vector<double>{0.9}), 1.0);
    EXPECT_LT(forest.predict(std::vector<double>{0.1}), -1.0);
}

TEST(RandomForest, DeterministicGivenSeed)
{
    const auto d = linearData(11);
    RandomForestParams params;
    params.seed = 123;
    RandomForestRegressor f1(params);
    RandomForestRegressor f2(params);
    f1.fit(d);
    f2.fit(d);
    const std::vector<double> x{0.3, -0.2};
    EXPECT_DOUBLE_EQ(f1.predict(x), f2.predict(x));
}

TEST(RandomForest, EmptyFitIsFatal)
{
    RandomForestRegressor forest;
    EXPECT_THROW(forest.fit(Dataset({"x"})), FatalError);
}

/** Parameterized: SVR beats a mean-only baseline across kernels. */
class SvrKernelProperty : public ::testing::TestWithParam<KernelType>
{
};

TEST_P(SvrKernelProperty, BeatsMeanBaseline)
{
    Rng rng(13);
    Dataset d({"x"});
    std::vector<double> targets;
    for (int i = 0; i < 50; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        const double y = 2.0 * x + 0.5;
        d.addRow({x}, y, "g");
        targets.push_back(y);
    }
    SvrParams params;
    params.kernel.type = GetParam();
    params.kernel.gamma = 1.0;
    SvrRegressor svr(params);
    svr.fit(d);

    const double meanTarget =
        std::accumulate(targets.begin(), targets.end(), 0.0) /
        static_cast<double>(targets.size());
    double svrErr = 0.0;
    double baseErr = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        svrErr += std::abs(svr.predict(d.row(i)) - d.target(i));
        baseErr += std::abs(meanTarget - d.target(i));
    }
    EXPECT_LT(svrErr, baseErr);
}

INSTANTIATE_TEST_SUITE_P(Kernels, SvrKernelProperty,
                         ::testing::Values(KernelType::Linear,
                                           KernelType::Rbf,
                                           KernelType::Polynomial));

}  // namespace
