/**
 * @file
 * Golden bit-identity suite for the shared co-run engine.
 *
 * The engine (sim/corun_engine.h) promises bit-identical completion
 * times to the original per-simulator event loops, which live on as
 * literal transcriptions in sim/seed_reference.h. The fuzz tests here
 * compare the two with EXPECT_EQ on raw doubles — not NEAR — across
 * randomized 1..8-member bags that include the degenerate corners
 * (single-instruction phases, host-staged copies, zero thread counts).
 *
 * Also covered: the sim.* metrics family, the located event-limit
 * error, tracing parity, and the collector's simulateBags() /
 * measureFairnessBatch() batch API (equal to the serial path at every
 * pool size).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "cpusim/multicore_sim.h"
#include "gpusim/mps_sim.h"
#include "isa/trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "predictor/data_collection.h"
#include "sim/corun_engine.h"
#include "sim/seed_reference.h"

namespace {

using namespace mapp;

/**
 * One random phase spanning the model's behavior space, including the
 * degenerate corners the engine must not mishandle.
 */
isa::KernelPhase
randomPhase(std::mt19937& rng)
{
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::uniform_int_distribution<InstCount> instDist(1, 40'000'000);
    isa::KernelPhase p;
    const double pick = unit(rng);

    if (pick < 0.15) {
        // Degenerate: a single instruction on a single work item.
        p.name = "tiny";
        p.mix.add(isa::InstClass::IntAlu, 1);
        p.workItems = 1;
        p.footprint = 64;
        p.locality = unit(rng);
        p.parallelFraction = unit(rng);
        return p;
    }
    if (pick < 0.30) {
        // Host-staged input copy (PCIe on the GPU path).
        p.name = "stage";
        p.hostStaged = true;
        p.mix.add(isa::InstClass::MemRead, instDist(rng) / 1000 + 1);
        p.bytesRead =
            1 + static_cast<Bytes>(unit(rng) * double(64ull << 20));
        p.workItems = 1 + p.bytesRead / 4096;
        p.launches = 1 + static_cast<std::uint64_t>(unit(rng) * 4.0);
        return p;
    }

    const InstCount insts = instDist(rng);
    p.name = unit(rng) < 0.5 ? "compute" : "memory";
    p.mix.add(isa::InstClass::IntAlu, insts / 4 + 1);
    p.mix.add(isa::InstClass::FpAlu, insts / 4);
    p.mix.add(isa::InstClass::Simd, insts / 8);
    p.mix.add(isa::InstClass::MemRead, insts / 4);
    p.mix.add(isa::InstClass::MemWrite, insts / 8);
    p.mix.add(isa::InstClass::Control, insts / 16);
    p.bytesRead = (insts / 4) * 8;
    p.bytesWritten = (insts / 8) * 4;
    p.footprint = static_cast<Bytes>(
        1024.0 * std::pow(2.0, unit(rng) * 16.0));  // 1 KiB..64 MiB
    p.locality = unit(rng);
    p.parallelFraction = unit(rng);
    p.branchDivergence = unit(rng) * 0.5;
    p.workItems = 1 + static_cast<std::uint64_t>(unit(rng) * 1e6);
    p.launches = 1 + static_cast<std::uint64_t>(unit(rng) * 8.0);
    return p;
}

isa::WorkloadTrace
randomTrace(std::mt19937& rng, const std::string& app)
{
    std::uniform_int_distribution<int> phases(1, 12);
    isa::WorkloadTrace trace(app, 20);
    const int n = phases(rng);
    for (int i = 0; i < n; ++i)
        trace.append(randomPhase(rng));
    return trace;
}

std::vector<isa::WorkloadTrace>
randomBag(std::mt19937& rng, int members)
{
    std::vector<isa::WorkloadTrace> bag;
    bag.reserve(static_cast<std::size_t>(members));
    for (int i = 0; i < members; ++i)
        bag.push_back(randomTrace(rng, "FUZZ" + std::to_string(i)));
    return bag;
}

std::vector<const isa::WorkloadTrace*>
pointers(const std::vector<isa::WorkloadTrace>& bag)
{
    std::vector<const isa::WorkloadTrace*> out;
    out.reserve(bag.size());
    for (const auto& t : bag)
        out.push_back(&t);
    return out;
}

// -------------------------------------------------------------------
// Golden fuzz: engine vs the seed-loop transcription, exact equality.
// -------------------------------------------------------------------

TEST(SimEngineGolden, GpuFuzzBitIdentity)
{
    std::mt19937 rng(0x5eed0001u);
    const gpusim::MpsSim sim;
    std::uniform_int_distribution<int> members(1, 8);
    for (int iter = 0; iter < 40; ++iter) {
        const auto bag = randomBag(rng, members(rng));
        const auto ptrs = pointers(bag);
        const auto expect =
            sim::reference::runGpuSeedLoop(ptrs, sim.config());
        const auto got = sim.runShared(ptrs);
        ASSERT_EQ(got.apps.size(), expect.size());
        Seconds makespan = 0.0;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got.apps[i].time, expect[i])
                << "iter " << iter << " client " << i;
            makespan = std::max(makespan, expect[i]);
        }
        EXPECT_EQ(got.makespan, makespan) << "iter " << iter;
    }
}

TEST(SimEngineGolden, CpuFuzzBitIdentity)
{
    std::mt19937 rng(0x5eed0002u);
    const cpusim::MulticoreSim sim;
    std::uniform_int_distribution<int> members(1, 8);
    // Includes 0 (the clamp-to-1 corner) and counts beyond the core
    // budget (oversubscription).
    const int threadChoices[] = {0, 1, 2, 5, 8, 16, 48};
    std::uniform_int_distribution<int> threadPick(0, 6);
    for (int iter = 0; iter < 40; ++iter) {
        const auto bag = randomBag(rng, members(rng));
        const auto ptrs = pointers(bag);
        std::vector<int> threads;
        threads.reserve(bag.size());
        for (std::size_t i = 0; i < bag.size(); ++i)
            threads.push_back(threadChoices[threadPick(rng)]);
        const auto expect = sim::reference::runCpuSeedLoop(
            ptrs, threads, sim.config());
        const auto got = sim.runShared(ptrs, threads);
        ASSERT_EQ(got.apps.size(), expect.size());
        Seconds makespan = 0.0;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got.apps[i].time, expect[i])
                << "iter " << iter << " app " << i;
            makespan = std::max(makespan, expect[i]);
        }
        EXPECT_EQ(got.makespan, makespan) << "iter " << iter;
    }
}

TEST(SimEngineGolden, TracingDoesNotChangeResults)
{
    std::mt19937 rng(0x5eed0003u);
    const gpusim::MpsSim sim;
    const auto bag = randomBag(rng, 3);
    const auto ptrs = pointers(bag);
    const auto quiet = sim.runShared(ptrs);

    obs::Tracer& tracer = obs::tracer();
    tracer.clear();
    tracer.setEnabled(true);
    const auto traced = sim.runShared(ptrs);
    const std::size_t events = tracer.size();
    tracer.setEnabled(false);
    tracer.clear();

    ASSERT_EQ(traced.apps.size(), quiet.apps.size());
    for (std::size_t i = 0; i < quiet.apps.size(); ++i)
        EXPECT_EQ(traced.apps[i].time, quiet.apps[i].time);
    EXPECT_EQ(traced.makespan, quiet.makespan);
    // Phase spans plus at least one repartition marker were recorded.
    EXPECT_GT(events, 0u);
}

// -------------------------------------------------------------------
// Metrics and the event limit.
// -------------------------------------------------------------------

TEST(SimEngineMetrics, CountersAdvancePerBag)
{
    std::mt19937 rng(0x5eed0004u);
    const auto bag = randomBag(rng, 2);
    const auto ptrs = pointers(bag);
    const std::size_t totalPhases =
        bag[0].size() + bag[1].size();

    auto& reg = obs::defaultRegistry();
    const auto bags0 = reg.counter("sim.bags").value();
    const auto events0 = reg.counter("sim.events").value();
    const auto reparts0 = reg.counter("sim.repartitions").value();
    const auto obs0 = reg.histogram("sim.bag_seconds").count();

    const gpusim::MpsSim sim;
    (void)sim.runShared(ptrs);

    EXPECT_EQ(reg.counter("sim.bags").value(), bags0 + 1);
    const auto events = reg.counter("sim.events").value() - events0;
    // Every event completes at least one phase, and the last client
    // standing needs one event per remaining phase.
    EXPECT_GE(events, std::max(bag[0].size(), bag[1].size()));
    EXPECT_LE(events, totalPhases);
    // The first event always establishes a partition; a 2-client bag
    // repartitions again when the first client finishes.
    EXPECT_GE(reg.counter("sim.repartitions").value() - reparts0, 2u);
    EXPECT_EQ(reg.histogram("sim.bag_seconds").count(), obs0 + 1);
}

TEST(SimEngineLimit, ExceedingEventLimitRaisesLocatedError)
{
    isa::WorkloadTrace alpha("ALPHA", 20);
    isa::WorkloadTrace beta("BETA", 20);
    std::mt19937 rng(0x5eed0005u);
    for (int i = 0; i < 6; ++i) {
        alpha.append(randomPhase(rng));
        beta.append(randomPhase(rng));
    }

    sim::setEventLimit(3);
    auto& reg = obs::defaultRegistry();
    const auto hits0 = reg.counter("sim.event_limit_hits").value();
    const gpusim::MpsSim gpu;
    try {
        (void)gpu.runShared({&alpha, &beta});
        FAIL() << "expected the event-limit error";
    } catch (const InputError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("event limit"), std::string::npos) << msg;
        EXPECT_NE(msg.find("ALPHA"), std::string::npos) << msg;
        EXPECT_NE(msg.find("BETA"), std::string::npos) << msg;
    }
    EXPECT_EQ(reg.counter("sim.event_limit_hits").value(), hits0 + 1);

    // The CPU engine shares the limit and the error path.
    const cpusim::MulticoreSim cpu;
    EXPECT_THROW((void)cpu.runShared({&alpha, &beta}, {4, 4}),
                 InputError);

    // 0 restores the default, and the same bag then completes.
    sim::setEventLimit(0);
    EXPECT_EQ(sim::eventLimit(), std::size_t{16} * 1024 * 1024);
    EXPECT_NO_THROW((void)gpu.runShared({&alpha, &beta}));
}

// -------------------------------------------------------------------
// The collector's batch simulation API.
// -------------------------------------------------------------------

std::vector<predictor::BagSpec>
batchSpecs()
{
    using vision::BenchmarkId;
    return {
        {{BenchmarkId::Fast, 20}, {BenchmarkId::Sift, 20}},
        {{BenchmarkId::Orb, 20}, {BenchmarkId::Fast, 20}},
        {{BenchmarkId::Fast, 40}, {BenchmarkId::Fast, 20}},
        // Duplicate (non-canonical order) of the first bag: the batch
        // must dedupe it, and the results must still line up.
        {{BenchmarkId::Sift, 20}, {BenchmarkId::Fast, 20}},
    };
}

void
expectPointsEqual(const predictor::DataPoint& x,
                  const predictor::DataPoint& y)
{
    EXPECT_EQ(x.spec, y.spec);
    EXPECT_EQ(x.fairness, y.fairness);
    EXPECT_EQ(x.cpuSharedMakespan, y.cpuSharedMakespan);
    EXPECT_EQ(x.gpuBagTime, y.gpuBagTime);
}

TEST(SimBatch, SimulateBagsMatchesSerialPath)
{
    const auto specs = batchSpecs();

    predictor::DataCollector serial;
    std::vector<predictor::DataPoint> want;
    for (const auto& spec : specs)
        want.push_back(serial.collect(spec));

    predictor::DataCollector batched;
    batched.simulateBags(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto point = batched.collect(specs[i]);
        expectPointsEqual(point, want[i]);
    }

    // measureFairnessBatch == measureFairness, in order.
    predictor::DataCollector fresh;
    const auto fair = fresh.measureFairnessBatch(specs);
    ASSERT_EQ(fair.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(fair[i], serial.measureFairness(specs[i]));
}

TEST(SimBatch, DeterministicAcrossPoolSizes)
{
    const auto specs = batchSpecs();

    parallel::setMaxThreads(1);
    predictor::DataCollector base;
    base.simulateBags(specs);
    std::vector<predictor::DataPoint> want;
    for (const auto& spec : specs)
        want.push_back(base.collect(spec));

    for (int threads : {2, 8}) {
        parallel::setMaxThreads(threads);
        predictor::DataCollector collector;
        collector.simulateBags(specs);
        for (std::size_t i = 0; i < specs.size(); ++i)
            expectPointsEqual(collector.collect(specs[i]), want[i]);
    }
    parallel::setMaxThreads(0);
}

}  // namespace
