/** @file Unit tests for the dense matrix kit and linear solvers. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/matrix.h"

namespace {

using mapp::Matrix;
namespace linalg = mapp::linalg;

TEST(Matrix, ConstructionAndAccess)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = 7.0;
    EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, InitializerListLayout)
{
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows)
{
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplicationIsNoop)
{
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix i = Matrix::identity(2);
    const Matrix prod = a * i;
    EXPECT_DOUBLE_EQ(prod(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(prod(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnownResult)
{
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    const Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip)
{
    const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    const Matrix tt = t.transpose();
    EXPECT_DOUBLE_EQ(tt(1, 2), 6.0);
}

TEST(Matrix, AddSubtractScale)
{
    const Matrix a{{1.0, 2.0}};
    const Matrix b{{3.0, 5.0}};
    EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
    EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
    EXPECT_DOUBLE_EQ((a * 3.0)(0, 1), 6.0);
}

TEST(Matrix, MatrixVectorProduct)
{
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const std::vector<double> x{1.0, 1.0};
    const auto y = a * x;
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, RowAndColExtraction)
{
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(a.row(1), (std::vector<double>{3.0, 4.0}));
    EXPECT_EQ(a.col(0), (std::vector<double>{1.0, 3.0}));
}

TEST(Matrix, FrobeniusNorm)
{
    const Matrix a{{3.0, 4.0}};
    EXPECT_DOUBLE_EQ(a.frobeniusNorm(), 5.0);
}

TEST(Linalg, SolveWellConditioned)
{
    const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    const std::vector<double> b{3.0, 5.0};
    const auto x = linalg::solve(a, b);
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Linalg, SolveNeedsPivoting)
{
    // Leading zero forces a row swap.
    const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const std::vector<double> b{2.0, 3.0};
    const auto x = linalg::solve(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, SolveSingularThrows)
{
    const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    const std::vector<double> b{1.0, 2.0};
    EXPECT_THROW(linalg::solve(a, b), std::runtime_error);
}

TEST(Linalg, CholeskyFactorReconstructs)
{
    const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    const Matrix l = linalg::cholesky(a);
    const Matrix recon = l * l.transpose();
    EXPECT_NEAR(recon(0, 0), 4.0, 1e-12);
    EXPECT_NEAR(recon(0, 1), 2.0, 1e-12);
    EXPECT_NEAR(recon(1, 1), 3.0, 1e-12);
}

TEST(Linalg, CholeskyRejectsIndefinite)
{
    const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
    EXPECT_THROW(linalg::cholesky(a), std::runtime_error);
}

TEST(Linalg, SolveSpdMatchesGaussian)
{
    const Matrix a{{5.0, 2.0, 1.0}, {2.0, 6.0, 2.0}, {1.0, 2.0, 7.0}};
    const std::vector<double> b{1.0, 2.0, 3.0};
    const auto x1 = linalg::solveSpd(a, b);
    const auto x2 = linalg::solve(a, b);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(Linalg, DotAndNorm)
{
    const std::vector<double> a{1.0, 2.0, 2.0};
    const std::vector<double> b{2.0, 0.0, 1.0};
    EXPECT_DOUBLE_EQ(linalg::dot(a, b), 4.0);
    EXPECT_DOUBLE_EQ(linalg::norm(a), 3.0);
}

}  // namespace
