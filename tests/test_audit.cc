/** @file Tests for the prediction-provenance log, the compiled-tree
 * audit hooks (leaf ids, per-tree votes) and the model-quality
 * monitor: ring semantics, sampling arithmetic, concurrent writers,
 * ground-truth annotation and the predictor integration end to end. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "ml/compiled_tree.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "obs/audit.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"
#include "predictor/quality.h"

namespace {

using namespace mapp;

obs::PredictionRecord
makeRecord(std::uint64_t seq, double predicted)
{
    obs::PredictionRecord r;
    r.seq = seq;
    r.model = "test";
    r.features = {1.0, 2.0};
    r.predictedSeconds = predicted;
    r.pathSummary = "x<=1";
    return r;
}

// ---------------------------------------------------------------------------
// PredictionLog core semantics

TEST(PredictionLog, DisabledByDefaultAndTogglable)
{
    obs::PredictionLog log(8);
    EXPECT_FALSE(log.enabled());
    log.setEnabled(true);
    EXPECT_TRUE(log.enabled());
    log.setEnabled(false);
    EXPECT_FALSE(log.enabled());
}

TEST(PredictionLog, SamplePeriodValidation)
{
    obs::PredictionLog log(8);
    EXPECT_EQ(log.samplePeriod(), 1u);
    log.setSamplePeriod(100);
    EXPECT_EQ(log.samplePeriod(), 100u);
    EXPECT_THROW(log.setSamplePeriod(0), FatalError);
    EXPECT_EQ(log.samplePeriod(), 100u);  // unchanged after the throw
}

TEST(PredictionLog, ReserveHandsOutConsecutiveRanges)
{
    obs::PredictionLog log(8);
    EXPECT_EQ(log.reserve(5), 0u);
    EXPECT_EQ(log.reserve(3), 5u);
    EXPECT_EQ(log.reserve(1), 8u);
    EXPECT_EQ(log.totalSeen(), 9u);
}

TEST(PredictionLog, SampledMatchesPeriodArithmetic)
{
    obs::PredictionLog log(8);
    log.setSamplePeriod(4);
    int hits = 0;
    for (std::uint64_t seq = 0; seq < 100; ++seq)
        hits += log.sampled(seq) ? 1 : 0;
    EXPECT_EQ(hits, 25);
    EXPECT_TRUE(log.sampled(0));
    EXPECT_FALSE(log.sampled(1));
}

TEST(PredictionLog, RingKeepsNewestOldestFirst)
{
    obs::PredictionLog log(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        log.record(makeRecord(i, static_cast<double>(i)));

    EXPECT_EQ(log.totalRecorded(), 10u);
    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 4u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].seq, 6u + i);  // oldest retained first
}

TEST(PredictionLog, RecordInPlaceFillsResetSlot)
{
    obs::PredictionLog log(2);
    // Fill past capacity so in-place records hit recycled slots.
    for (std::uint64_t i = 0; i < 5; ++i) {
        log.recordInPlace([&](obs::PredictionRecord& r) {
            r.seq = i;
            r.model.assign("inplace");
            r.features.assign({static_cast<double>(i)});
            r.predictedSeconds = 2.0 * static_cast<double>(i);
        });
    }
    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 2u);
    for (const auto& r : records) {
        EXPECT_EQ(r.model, "inplace");
        ASSERT_EQ(r.features.size(), 1u);  // recycled buffer was reset
        EXPECT_DOUBLE_EQ(r.features[0], static_cast<double>(r.seq));
        EXPECT_FALSE(r.hasActual());  // NaN until annotated
    }
}

TEST(PredictionLog, RecordChunkInPlaceWritesEveryId)
{
    obs::PredictionLog log(16);
    const std::vector<std::uint64_t> ids{0, 100, 200};
    log.recordChunkInPlace(ids, [](std::uint64_t id,
                                   obs::PredictionRecord& r) {
        r.seq = id;
        r.predictedSeconds = static_cast<double>(id) * 0.5;
    });
    log.recordChunkInPlace({}, [](std::uint64_t, obs::PredictionRecord&) {
        FAIL() << "fill must not run for an empty chunk";
    });

    EXPECT_EQ(log.totalRecorded(), 3u);
    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 3u);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(records[i].seq, ids[i]);
        EXPECT_DOUBLE_EQ(records[i].predictedSeconds,
                         static_cast<double>(ids[i]) * 0.5);
    }
}

TEST(PredictionLog, AnnotateAttachesGroundTruthBySeq)
{
    obs::PredictionLog log(8);
    for (std::uint64_t i = 0; i < 8; ++i)
        log.record(makeRecord(i, 0.0));

    const std::vector<double> actuals{10.0, 11.0, 12.0};
    log.annotate(3, actuals);

    for (const auto& r : log.snapshot()) {
        if (r.seq >= 3 && r.seq < 6) {
            ASSERT_TRUE(r.hasActual()) << "seq " << r.seq;
            EXPECT_DOUBLE_EQ(r.actualSeconds,
                             actuals[static_cast<std::size_t>(r.seq - 3)]);
        } else {
            EXPECT_FALSE(r.hasActual()) << "seq " << r.seq;
        }
    }
}

TEST(PredictionLog, ClearResetsSequenceAndRecords)
{
    obs::PredictionLog log(4);
    log.reserve(7);
    log.record(makeRecord(0, 1.0));
    log.clear();
    EXPECT_EQ(log.totalSeen(), 0u);
    EXPECT_EQ(log.totalRecorded(), 0u);
    EXPECT_TRUE(log.snapshot().empty());
    EXPECT_EQ(log.reserve(1), 0u);
}

TEST(PredictionLog, JsonlLinesParseAndRoundTripFields)
{
    obs::PredictionLog log(4);
    auto r = makeRecord(42, 1.25);
    r.uncertaintySeconds = 0.5;
    r.actualSeconds = 1.5;
    log.record(r);
    log.record(makeRecord(43, 2.0));  // actual stays NaN -> null

    std::istringstream lines(log.toJsonl());
    std::string line;
    int n = 0;
    while (std::getline(lines, line)) {
        const auto doc = obs::parseJson(line, "jsonl");
        ASSERT_TRUE(doc.ok()) << doc.error().message();
        ASSERT_TRUE(doc.value().isObject());
        if (n == 0) {
            EXPECT_DOUBLE_EQ(doc.value().find("seq")->number(), 42.0);
            EXPECT_DOUBLE_EQ(doc.value().find("actual_s")->number(), 1.5);
            EXPECT_EQ(doc.value().find("path")->text(), "x<=1");
            EXPECT_EQ(doc.value().find("features")->items().size(), 2u);
        } else {
            EXPECT_TRUE(doc.value().find("actual_s")->isNull());
        }
        ++n;
    }
    EXPECT_EQ(n, 2);
}

// ---------------------------------------------------------------------------
// Concurrency: the log is fed from parallel fold evaluation.

TEST(PredictionLog, ConcurrentWritersLoseNothing)
{
    obs::PredictionLog log(obs::kDefaultPredictionLogCapacity);
    constexpr int kThreads = 8;
    constexpr int kPerThread = 1000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&log, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const std::uint64_t seq = log.reserve(1);
                if (i % 2 == 0) {
                    log.record(makeRecord(seq, static_cast<double>(t)));
                } else {
                    log.recordInPlace([&](obs::PredictionRecord& r) {
                        r.seq = seq;
                        r.model.assign("thread");
                        r.predictedSeconds = static_cast<double>(t);
                    });
                }
            }
        });
    }
    for (auto& t : threads)
        t.join();

    EXPECT_EQ(log.totalSeen(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(log.totalRecorded(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    const auto records = log.snapshot();
    EXPECT_EQ(records.size(), log.capacity());
    for (const auto& r : records)
        EXPECT_LT(r.seq, static_cast<std::uint64_t>(kThreads) *
                             kPerThread);
}

// ---------------------------------------------------------------------------
// Compiled-model audit hooks

TEST(CompiledTree, PredictLeafAgreesWithPrediction)
{
    ml::Dataset data({"x"});
    for (int i = 0; i < 32; ++i)
        data.addRow({static_cast<double>(i)}, i < 16 ? 1.0 : 3.0);

    ml::DecisionTreeRegressor tree;
    tree.fit(data);
    const ml::CompiledTree compiled(tree);

    for (double x : {0.0, 7.5, 15.0, 16.0, 31.0}) {
        const std::vector<double> row{x};
        const auto leaf = compiled.predictLeaf(row);
        ASSERT_GE(leaf, 0);
        ASSERT_LT(static_cast<std::size_t>(leaf), tree.nodeCount());
        // The leaf id keys the source tree's node table.
        const auto view =
            tree.nodeView(static_cast<std::size_t>(leaf));
        EXPECT_TRUE(view.leaf);
        EXPECT_DOUBLE_EQ(view.value, compiled.predict(row));
    }
}

TEST(CompiledForest, PredictVotesMeanMatchesPredict)
{
    ml::Dataset data({"x", "y"});
    for (int i = 0; i < 48; ++i) {
        const double x = static_cast<double>(i % 8);
        const double y = static_cast<double>(i / 8);
        data.addRow({x, y}, x * 2.0 + y);
    }

    ml::RandomForestParams params;
    params.numTrees = 5;
    ml::RandomForestRegressor forest(params);
    forest.fit(data);
    const ml::CompiledForest compiled(forest);

    std::vector<double> votes;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto& row = data.row(i);
        const double mean = compiled.predictVotes(row, votes);
        ASSERT_EQ(votes.size(), compiled.treeCount());
        double sum = 0.0;
        for (const double v : votes)
            sum += v;
        EXPECT_DOUBLE_EQ(mean,
                         sum / static_cast<double>(votes.size()));
        EXPECT_DOUBLE_EQ(mean, compiled.predict(row));
    }
}

// ---------------------------------------------------------------------------
// Model-quality monitor

TEST(ModelQualityMonitor, ObservePairsSkipsUnusableActuals)
{
    predictor::ModelQualityMonitor monitor;
    const std::vector<double> actual{2.0, 0.0, -1.0,
                                     std::nan(""), 4.0};
    const std::vector<double> predicted{2.2, 1.0, 1.0, 1.0, 3.0};
    monitor.observePairs(actual, predicted);
    // Only the strictly positive, finite actuals count.
    EXPECT_EQ(monitor.pairsSeen(), 2u);
}

TEST(ModelQualityMonitor, DriftFlagsRankWorstFirst)
{
    predictor::ModelQualityMonitor monitor;
    const std::vector<std::string> names{"a", "b"};
    const std::vector<double> lo{0.0, 0.0};
    const std::vector<double> hi{1.0, 1.0};
    // "a" drifts on every row, "b" on half of them.
    const std::vector<double> row1{2.0, 2.0};
    const std::vector<double> row2{2.0, 0.5};
    monitor.observeFeatureRow(row1, lo, hi, names);
    monitor.observeFeatureRow(row2, lo, hi, names);

    const auto flags = monitor.driftFlags(0.01);
    ASSERT_EQ(flags.size(), 2u);
    EXPECT_EQ(flags[0].feature, "a");
    EXPECT_DOUBLE_EQ(flags[0].outOfRangeFraction, 1.0);
    EXPECT_EQ(flags[1].feature, "b");
    EXPECT_DOUBLE_EQ(flags[1].outOfRangeFraction, 0.5);
    EXPECT_EQ(flags[0].rowsSeen, 2u);

    // In-range rows never flag.
    EXPECT_TRUE(monitor.driftFlags(1.5).empty());

    monitor.reset();
    EXPECT_TRUE(monitor.driftFlags(0.0).empty());
    EXPECT_EQ(monitor.pairsSeen(), 0u);
}

// ---------------------------------------------------------------------------
// Predictor integration: audit records and quality telemetry flow out
// of the real predict paths.

const std::vector<predictor::DataPoint>&
tinyCampaign()
{
    static const std::vector<predictor::DataPoint> points = [] {
        predictor::DataCollector collector;
        std::vector<predictor::BagSpec> specs;
        const auto ids = vision::kAllBenchmarks;
        for (std::size_t i = 0; i < 4; ++i)
            for (std::size_t j = i; j < 4; ++j)
                specs.push_back(predictor::BagSpec{{ids[i], 20},
                                                   {ids[j], 20}});
        return collector.collectAll(specs);
    }();
    return points;
}

TEST(PredictorAudit, DatasetPredictionsAreAuditedAndAnnotated)
{
    predictor::MultiAppPredictor model;
    model.train(tinyCampaign());

    auto& log = obs::predictionLog();
    log.clear();
    log.setSamplePeriod(1);
    log.setEnabled(true);

    const auto evalSet = predictor::toDataset(tinyCampaign());
    const auto predictions = model.predictDataset(evalSet);
    const std::uint64_t recorded = log.totalRecorded();
    EXPECT_EQ(recorded, evalSet.size());

    const std::uint64_t pairsBefore =
        predictor::ModelQualityMonitor::global().pairsSeen();
    model.observeGroundTruth(evalSet, predictions);
    log.setEnabled(false);

    EXPECT_GT(predictor::ModelQualityMonitor::global().pairsSeen(),
              pairsBefore);

    const auto records = log.snapshot();
    ASSERT_FALSE(records.empty());
    std::size_t annotated = 0;
    for (const auto& r : records) {
        EXPECT_EQ(r.model, "dataset");
        EXPECT_EQ(r.features.size(), evalSet.numFeatures());
        EXPECT_TRUE(std::isfinite(r.predictedSeconds));
        EXPECT_FALSE(r.pathSummary.empty());
        annotated += r.hasActual() ? 1 : 0;
    }
    // Ground truth for the whole batch was attached.
    EXPECT_EQ(annotated, records.size());

    // The quality monitor published into the default registry.
    const auto snap = obs::defaultRegistry().snapshot();
    ASSERT_NE(snap.findHistogram("predictor.error.abs_pct"), nullptr);
    EXPECT_GT(snap.findHistogram("predictor.error.abs_pct")->count, 0u);
    ASSERT_NE(snap.findGauge("predictor.quality.mape_pct"), nullptr);
}

TEST(PredictorAudit, SinglePredictionSampledAtPeriodOne)
{
    predictor::MultiAppPredictor model;
    model.train(tinyCampaign());

    auto& log = obs::predictionLog();
    log.clear();
    log.setSamplePeriod(1);
    log.setEnabled(true);
    const auto& p = tinyCampaign().front();
    const double out = model.predict(p);
    log.setEnabled(false);

    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].model, "single");
    EXPECT_DOUBLE_EQ(records[0].predictedSeconds, out);
    EXPECT_GE(records[0].uncertaintySeconds, 0.0);

    // The explain() view agrees with the audited provenance.
    const auto explanation = model.explain(p);
    EXPECT_DOUBLE_EQ(explanation.predictedSeconds, out);
    EXPECT_EQ(explanation.pathSummary, records[0].pathSummary);
}

}  // namespace
