/** @file Unit tests for CSV parsing and writing. */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/error.h"

namespace {

using namespace mapp;

TEST(Csv, ParseSimpleTable)
{
    const auto t = parseCsv("a,b,c\n1,2,3\n4,5,6\n");
    ASSERT_EQ(t.header.size(), 3u);
    EXPECT_EQ(t.header[0], "a");
    ASSERT_EQ(t.rows.size(), 2u);
    EXPECT_EQ(t.rows[1][2], "6");
}

TEST(Csv, ParseQuotedCells)
{
    const auto t = parseCsv("name,desc\nx,\"hello, world\"\n");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][1], "hello, world");
}

TEST(Csv, ParseEscapedQuotes)
{
    const auto t = parseCsv("a\n\"he said \"\"hi\"\"\"\n");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][0], "he said \"hi\"");
}

TEST(Csv, ParseEmbeddedNewline)
{
    const auto t = parseCsv("a,b\n\"line1\nline2\",x\n");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][0], "line1\nline2");
}

TEST(Csv, ParseCrLf)
{
    const auto t = parseCsv("a,b\r\n1,2\r\n");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Csv, ParseEmptyText)
{
    const auto t = parseCsv("");
    EXPECT_TRUE(t.header.empty());
    EXPECT_TRUE(t.rows.empty());
}

TEST(Csv, ParseQuotedCellWithCrLfInside)
{
    // CRLF inside quotes is cell content (the CR survives; only bare
    // CRs outside quotes are line-ending noise and get dropped).
    const auto t = parseCsv("a,b\r\n\"one\r\ntwo\",x\r\n");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][0], "one\r\ntwo");
    EXPECT_EQ(t.rows[0][1], "x");
}

TEST(Csv, TrailingCommaMakesEmptyLastCell)
{
    const auto t = parseCsv("a,b\n1,\n");
    ASSERT_EQ(t.rows.size(), 1u);
    ASSERT_EQ(t.rows[0].size(), 2u);
    EXPECT_EQ(t.rows[0][1], "");
}

TEST(Csv, TrailingCommaAtEofWithoutNewline)
{
    const auto t = parseCsv("a,b\n1,");
    ASSERT_EQ(t.rows.size(), 1u);
    ASSERT_EQ(t.rows[0].size(), 2u);
    EXPECT_EQ(t.rows[0][0], "1");
    EXPECT_EQ(t.rows[0][1], "");
}

TEST(Csv, FinalRecordWithoutTrailingNewline)
{
    const auto t = parseCsv("a,b\n1,2");
    ASSERT_EQ(t.rows.size(), 1u);
    EXPECT_EQ(t.rows[0][1], "2");
}

TEST(Csv, EscapePlainCellUnchanged)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(Csv, EscapeCommaAndQuote)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, RoundTripThroughWriter)
{
    CsvTable t;
    t.header = {"x", "label"};
    t.rows = {{"1.5", "alpha,beta"}, {"2.5", "plain"}};
    const std::string text = toCsv(t);
    const auto back = parseCsv(text);
    EXPECT_EQ(back.header, t.header);
    EXPECT_EQ(back.rows, t.rows);
}

TEST(Csv, NumericColumnParses)
{
    const auto t = parseCsv("x,y\n1.5,a\n2.5,b\n");
    const auto xs = t.numericColumn("x");
    ASSERT_EQ(xs.size(), 2u);
    EXPECT_DOUBLE_EQ(xs[0], 1.5);
    EXPECT_DOUBLE_EQ(xs[1], 2.5);
}

TEST(Csv, NumericColumnMissingThrows)
{
    const auto t = parseCsv("x\n1\n");
    EXPECT_THROW(t.numericColumn("nope"), std::runtime_error);
}

TEST(Csv, NumericColumnRejectsTrailingGarbage)
{
    // The old parser accepted "1.5abc" as 1.5; the strict one must
    // refuse and name the column and data row.
    const auto t = parseCsv("x,y\n1.5,0\n1.5abc,0\n", "bags.csv");
    try {
        (void)t.numericColumn("x");
        FAIL() << "trailing garbage accepted";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().context().file, "bags.csv");
        EXPECT_EQ(e.error().context().row, 2u);
        EXPECT_EQ(e.error().context().column, "x");
        EXPECT_NE(std::string(e.what()).find("1.5abc"),
                  std::string::npos);
    }
}

TEST(Csv, NumericColumnRejectsNanInfAndEmpty)
{
    EXPECT_THROW(parseCsv("x\nnan\n").numericColumn("x"), InputError);
    EXPECT_THROW(parseCsv("x\ninf\n").numericColumn("x"), InputError);
    EXPECT_THROW(parseCsv("x\n\"\"\n").numericColumn("x"), InputError);
}

TEST(Csv, NumericColumnShortRowIsLocated)
{
    const auto t = parseCsv("x,y\n1,2\n3\n");
    try {
        (void)t.numericColumn("y");
        FAIL() << "short row accepted";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().code(), ErrorCode::Schema);
        EXPECT_EQ(e.error().context().row, 2u);
    }
}

TEST(Csv, ColumnIndexLookup)
{
    const auto t = parseCsv("a,b\n1,2\n");
    EXPECT_EQ(t.columnIndex("b"), 1);
    EXPECT_EQ(t.columnIndex("z"), -1);
}

TEST(Csv, WriterNumericRowFullPrecision)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.writeHeader({"v"});
    w.writeNumericRow({0.1234567890123456});
    const auto t = parseCsv(os.str());
    EXPECT_NEAR(t.numericColumn("v")[0], 0.1234567890123456, 1e-16);
}

TEST(Csv, ReadCsvFileMissingThrows)
{
    EXPECT_THROW(readCsvFile("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
