/** @file Unit tests for KernelPhase and WorkloadTrace. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/trace.h"

namespace {

using namespace mapp::isa;

KernelPhase
makePhase(const std::string& name, mapp::InstCount alu,
          mapp::InstCount mem, double locality = 0.5,
          double parallel = 0.9)
{
    KernelPhase p;
    p.name = name;
    p.mix.add(InstClass::IntAlu, alu);
    p.mix.add(InstClass::MemRead, mem);
    p.bytesRead = mem * 4;
    p.bytesWritten = mem;
    p.footprint = 1024;
    p.locality = locality;
    p.parallelFraction = parallel;
    p.workItems = 100;
    return p;
}

TEST(KernelPhase, ValidateAcceptsWellFormed)
{
    EXPECT_NO_THROW(makePhase("ok", 10, 5).validate());
}

TEST(KernelPhase, ValidateRejectsBadFractions)
{
    auto p = makePhase("bad", 10, 5);
    p.parallelFraction = 1.5;
    EXPECT_THROW(p.validate(), mapp::FatalError);

    p = makePhase("bad", 10, 5);
    p.locality = -0.1;
    EXPECT_THROW(p.validate(), mapp::FatalError);

    p = makePhase("bad", 10, 5);
    p.branchDivergence = 2.0;
    EXPECT_THROW(p.validate(), mapp::FatalError);
}

TEST(KernelPhase, ValidateRejectsEmptyWork)
{
    auto p = makePhase("bad", 10, 5);
    p.workItems = 0;
    EXPECT_THROW(p.validate(), mapp::FatalError);

    KernelPhase empty;
    empty.name = "empty";
    EXPECT_THROW(empty.validate(), mapp::FatalError);
}

TEST(KernelPhase, TrafficAndIntensity)
{
    const auto p = makePhase("x", 10, 5);
    EXPECT_EQ(p.traffic(), 25u);
    EXPECT_DOUBLE_EQ(p.arithmeticIntensity(), 15.0 / 25.0);
}

TEST(KernelPhase, IntensityWithZeroTraffic)
{
    KernelPhase p;
    p.name = "compute_only";
    p.mix.add(InstClass::FpAlu, 42);
    EXPECT_DOUBLE_EQ(p.arithmeticIntensity(), 42.0);
}

TEST(WorkloadTrace, AppendValidatesPhases)
{
    WorkloadTrace t("APP", 20);
    EXPECT_NO_THROW(t.append(makePhase("a", 10, 5)));
    auto bad = makePhase("b", 10, 5);
    bad.workItems = 0;
    EXPECT_THROW(t.append(bad), mapp::FatalError);
    EXPECT_EQ(t.size(), 1u);
}

TEST(WorkloadTrace, AggregatesTotals)
{
    WorkloadTrace t("APP", 20);
    t.append(makePhase("a", 10, 5));
    t.append(makePhase("b", 20, 10));
    EXPECT_EQ(t.totalInstructions(), 45u);
    EXPECT_EQ(t.totalBytesRead(), 60u);
    EXPECT_EQ(t.totalBytesWritten(), 15u);
    EXPECT_EQ(t.totalMix().count(InstClass::IntAlu), 30u);
}

TEST(WorkloadTrace, PeakFootprint)
{
    WorkloadTrace t("APP", 20);
    auto a = makePhase("a", 10, 5);
    a.footprint = 2048;
    auto b = makePhase("b", 10, 5);
    b.footprint = 512;
    t.append(a);
    t.append(b);
    EXPECT_EQ(t.peakFootprint(), 2048u);
}

TEST(WorkloadTrace, WeightedMeansUseInstructionWeights)
{
    WorkloadTrace t("APP", 20);
    // Phase a: 100 insts, locality 1.0; phase b: 300 insts, locality 0.
    t.append(makePhase("a", 100, 0, 1.0));
    t.append(makePhase("b", 300, 0, 0.0));
    EXPECT_NEAR(t.meanLocality(), 0.25, 1e-12);
}

TEST(WorkloadTrace, AppendTraceConcatenates)
{
    WorkloadTrace t1("APP", 20);
    t1.append(makePhase("a", 10, 5));
    WorkloadTrace t2("APP", 20);
    t2.append(makePhase("b", 20, 5));
    t2.append(makePhase("c", 30, 5));
    t1.append(t2);
    EXPECT_EQ(t1.size(), 3u);
    EXPECT_EQ(t1.totalInstructions(), 75u);
}

TEST(WorkloadTrace, SummaryMentionsIdentity)
{
    WorkloadTrace t("SIFT", 40);
    t.append(makePhase("a", 10, 5));
    const std::string s = t.summary();
    EXPECT_NE(s.find("SIFT"), std::string::npos);
    EXPECT_NE(s.find("batch=40"), std::string::npos);
}

TEST(WorkloadTrace, EmptyTraceBehaviour)
{
    WorkloadTrace t("X", 1);
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.totalInstructions(), 0u);
    EXPECT_DOUBLE_EQ(t.meanLocality(), 0.0);
}

}  // namespace
