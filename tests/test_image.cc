/** @file Unit tests for images, integral images and scene synthesis. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vision/image.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

TEST(Image, ConstructionAndFill)
{
    Image img(8, 6, 3.0f);
    EXPECT_EQ(img.width(), 8);
    EXPECT_EQ(img.height(), 6);
    EXPECT_EQ(img.pixels(), 48u);
    EXPECT_FLOAT_EQ(img.at(7, 5), 3.0f);
    EXPECT_EQ(img.sizeBytes(), 48u * sizeof(float));
}

TEST(Image, ClampedAccessAtBorders)
{
    Image img(4, 4, 0.0f);
    img.at(0, 0) = 9.0f;
    img.at(3, 3) = 5.0f;
    EXPECT_FLOAT_EQ(img.atClamped(-3, -1), 9.0f);
    EXPECT_FLOAT_EQ(img.atClamped(10, 10), 5.0f);
}

TEST(Image, InsidePredicate)
{
    Image img(4, 4);
    EXPECT_TRUE(img.inside(0, 0));
    EXPECT_TRUE(img.inside(3, 3));
    EXPECT_FALSE(img.inside(4, 0));
    EXPECT_FALSE(img.inside(0, -1));
}

TEST(Image, MeanOfUniformImage)
{
    Image img(5, 5, 2.0f);
    EXPECT_DOUBLE_EQ(img.mean(), 2.0);
}

TEST(IntegralImage, BoxSumMatchesBruteForce)
{
    Rng rng(1);
    Image img(9, 7);
    for (int y = 0; y < 7; ++y)
        for (int x = 0; x < 9; ++x)
            img.at(x, y) = static_cast<float>(rng.uniform(0.0, 10.0));

    IntegralImage ii(img);
    for (auto [x0, y0, x1, y1] :
         {std::tuple{0, 0, 8, 6}, {2, 1, 5, 4}, {3, 3, 3, 3}}) {
        double brute = 0.0;
        for (int y = y0; y <= y1; ++y)
            for (int x = x0; x <= x1; ++x)
                brute += img.at(x, y);
        EXPECT_NEAR(ii.boxSum(x0, y0, x1, y1), brute, 1e-6);
    }
}

TEST(IntegralImage, ClampsOutOfRangeBoxes)
{
    Image img(4, 4, 1.0f);
    IntegralImage ii(img);
    EXPECT_DOUBLE_EQ(ii.boxSum(-5, -5, 10, 10), 16.0);
}

TEST(IntegralImage, InvertedBoxIsZero)
{
    Image img(4, 4, 1.0f);
    IntegralImage ii(img);
    EXPECT_DOUBLE_EQ(ii.boxSum(3, 3, 1, 1), 0.0);
}

TEST(Synth, TextureInRangeAndDeterministic)
{
    Rng r1(5);
    Rng r2(5);
    const Image a = synth::texture(32, 32, r1);
    const Image b = synth::texture(32, 32, r2);
    EXPECT_EQ(a.data(), b.data());
    for (float v : a.data()) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 255.0f);
    }
}

TEST(Synth, DrawRectFillsAndClips)
{
    Image img(8, 8, 0.0f);
    synth::drawRect(img, 2, 2, 20, 3, 7.0f);  // clipped right edge
    EXPECT_FLOAT_EQ(img.at(2, 2), 7.0f);
    EXPECT_FLOAT_EQ(img.at(7, 3), 7.0f);
    EXPECT_FLOAT_EQ(img.at(1, 2), 0.0f);
    EXPECT_FLOAT_EQ(img.at(2, 4), 0.0f);
}

TEST(Synth, DrawDiscRespectsRadius)
{
    Image img(16, 16, 0.0f);
    synth::drawDisc(img, 8, 8, 3, 1.0f);
    EXPECT_FLOAT_EQ(img.at(8, 8), 1.0f);
    EXPECT_FLOAT_EQ(img.at(8, 5), 1.0f);   // on radius
    EXPECT_FLOAT_EQ(img.at(8, 4), 0.0f);   // outside
    EXPECT_FLOAT_EQ(img.at(12, 12), 0.0f);
}

TEST(Synth, DrawLineConnectsEndpoints)
{
    Image img(10, 10, 0.0f);
    synth::drawLine(img, 0, 0, 9, 9, 1.0f, 1);
    EXPECT_FLOAT_EQ(img.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(img.at(9, 9), 1.0f);
    EXPECT_FLOAT_EQ(img.at(5, 5), 1.0f);
}

TEST(Synth, SceneHasContrastStructure)
{
    Rng rng(9);
    const Image img = synth::scene(64, 64, rng);
    // A cluttered scene must have substantial intensity variance.
    double mean = img.mean();
    double var = 0.0;
    for (float v : img.data())
        var += (v - mean) * (v - mean);
    var /= static_cast<double>(img.pixels());
    EXPECT_GT(var, 100.0);
}

TEST(Synth, FaceStampHasEyeCheekContrast)
{
    Image img(64, 64, 128.0f);
    synth::stampFace(img, 32, 32, 12);
    // Eye regions darker than mid-face.
    const float eye = img.at(32 - 6, 32 - 4);
    const float cheek = img.at(32, 32 + 2);
    EXPECT_LT(eye, cheek);
}

TEST(Synth, FacesSceneDeterministic)
{
    Rng r1(7);
    Rng r2(7);
    EXPECT_EQ(synth::facesScene(48, 48, r1, 2).data(),
              synth::facesScene(48, 48, r2, 2).data());
}

}  // namespace
