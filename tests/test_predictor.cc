/** @file Tests for the MultiAppPredictor public API and its
 * cross-validation entry points. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "ml/metrics.h"
#include "predictor/decision_analysis.h"
#include "predictor/predictor.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;
using vision::BenchmarkId;

/** Shared mini-campaign: all 36 hetero pairs + 9 homogeneous at batch
 * 20/40, collected once per process. */
const std::vector<DataPoint>&
miniCampaign()
{
    static const std::vector<DataPoint> points = [] {
        DataCollector collector;
        std::vector<BagSpec> specs;
        for (std::size_t i = 0; i < vision::kAllBenchmarks.size(); ++i) {
            specs.push_back(BagSpec{{vision::kAllBenchmarks[i], 20},
                                    {vision::kAllBenchmarks[i], 20}});
            specs.push_back(BagSpec{{vision::kAllBenchmarks[i], 40},
                                    {vision::kAllBenchmarks[i], 40}});
            for (std::size_t j = i + 1; j < vision::kAllBenchmarks.size();
                 ++j) {
                specs.push_back(BagSpec{{vision::kAllBenchmarks[i], 20},
                                        {vision::kAllBenchmarks[j], 20}});
            }
        }
        return collector.collectAll(specs);
    }();
    return points;
}

std::vector<std::string>
benchNames()
{
    std::vector<std::string> names;
    for (auto id : vision::kAllBenchmarks)
        names.push_back(vision::benchmarkName(id));
    return names;
}

TEST(Predictor, TrainsAndPredictsInRange)
{
    MultiAppPredictor model;
    model.train(miniCampaign());
    EXPECT_TRUE(model.trained());
    EXPECT_GT(model.tree().nodeCount(), 3u);

    double lo = 1e300;
    double hi = 0.0;
    for (const auto& p : miniCampaign()) {
        lo = std::min(lo, p.gpuBagTime);
        hi = std::max(hi, p.gpuBagTime);
    }
    for (const auto& p : miniCampaign()) {
        const double pred = model.predict(p);
        EXPECT_GE(pred, lo - 1e-12);
        EXPECT_LE(pred, hi + 1e-12);
    }
}

TEST(Predictor, TrainingFitIsTight)
{
    // With a deep tree the in-sample error must be small.
    MultiAppPredictor model;
    model.train(miniCampaign());
    double err = 0.0;
    for (const auto& p : miniCampaign())
        err += ml::relativeErrorPercent(p.gpuBagTime, model.predict(p));
    err /= static_cast<double>(miniCampaign().size());
    EXPECT_LT(err, 10.0);
}

TEST(Predictor, PredictBeforeTrainIsFatal)
{
    MultiAppPredictor model;
    EXPECT_THROW(model.predict(miniCampaign().front()), FatalError);
    EXPECT_THROW(model.tree(), FatalError);
}

TEST(Predictor, TrainOnEmptyIsFatal)
{
    MultiAppPredictor model;
    EXPECT_THROW(model.train(std::vector<DataPoint>{}), FatalError);
}

TEST(Predictor, ExplainReportsPathOverSchemeFeatures)
{
    MultiAppPredictor model;
    model.train(miniCampaign());
    const auto e = model.explain(miniCampaign().front());
    EXPECT_GT(e.predictedSeconds, 0.0);
    EXPECT_FALSE(e.path.empty());
    for (const auto& step : e.path) {
        ASSERT_GE(step.feature, 0);
        ASSERT_LT(static_cast<std::size_t>(step.feature),
                  e.featureNames.size());
    }
    EXPECT_DOUBLE_EQ(e.predictedSeconds,
                     model.predict(miniCampaign().front()));
}

TEST(Predictor, FeatureImportancesSumToOne)
{
    MultiAppPredictor model;
    model.train(miniCampaign());
    double total = 0.0;
    for (const auto& [name, importance] : model.featureImportances()) {
        EXPECT_FALSE(name.empty());
        total += importance;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Predictor, SchemeRestrictsFeatures)
{
    PredictorParams params;
    params.scheme = insmixScheme();
    MultiAppPredictor model(params);
    model.train(miniCampaign());
    const auto e = model.explain(miniCampaign().front());
    for (const auto& name : e.featureNames) {
        EXPECT_EQ(name.find("cpu_time"), std::string::npos);
        EXPECT_EQ(name.find("gpu_time"), std::string::npos);
        EXPECT_EQ(name.find("fairness"), std::string::npos);
    }
}

TEST(Predictor, LoocvHasOneFoldPerBenchmark)
{
    const auto raw = toDataset(miniCampaign());
    const auto cv = MultiAppPredictor::looBenchmarkCv(
        raw, PredictorParams{}, benchNames());
    ASSERT_EQ(cv.folds.size(), 9u);
    for (const auto& fold : cv.folds) {
        // Every benchmark appears in 2 homogeneous + 8 hetero bags.
        EXPECT_EQ(fold.testPoints, 10u) << fold.label;
        EXPECT_GE(fold.meanRelativeError, 0.0);
    }
}

TEST(Predictor, FullSchemeBeatsInsmixOnLoocv)
{
    // The paper's headline comparison (Figure 5), at mini-campaign
    // scale: the full feature vector must beat instruction mix alone by
    // a wide margin.
    const auto raw = toDataset(miniCampaign());
    PredictorParams full;
    PredictorParams insmix;
    insmix.scheme = insmixScheme();
    const double fullErr = MultiAppPredictor::looBenchmarkCv(
                               raw, full, benchNames())
                               .meanRelativeError();
    const double insmixErr = MultiAppPredictor::looBenchmarkCv(
                                 raw, insmix, benchNames())
                                 .meanRelativeError();
    EXPECT_LT(fullErr * 1.5, insmixErr);
}

TEST(Predictor, HoldoutErrorIsFinite)
{
    const auto raw = toDataset(miniCampaign());
    Rng rng(123);
    const double err = MultiAppPredictor::holdoutRelativeError(
        raw, PredictorParams{}, 0.2, rng);
    EXPECT_GE(err, 0.0);
    EXPECT_LT(err, 500.0);
}

TEST(DecisionAnalysis, CoversAllTestPointsAndFeatures)
{
    const auto raw = toDataset(miniCampaign());
    const auto stats = analyzeDecisionPaths(raw, PredictorParams{},
                                            benchNames());
    // Every bag appears in the union of held-out folds; hetero bags
    // appear twice (once per member benchmark).
    EXPECT_EQ(stats.points.size(), 9u * 10u);
    EXPECT_EQ(stats.features.size(), 12u);  // 11 base + fairness
    for (const auto& f : stats.features) {
        ASSERT_TRUE(stats.presencePercent.count(f));
        EXPECT_GE(stats.presencePercent.at(f), 0.0);
        EXPECT_LE(stats.presencePercent.at(f), 100.0);
        EXPECT_LE(stats.meanUsage.at(f),
                  static_cast<double>(stats.maxUsage.at(f)));
    }
}

TEST(DecisionAnalysis, TimesDominateDecisionPaths)
{
    // Section VI-C: the GPU/CPU time features gate the predictions far
    // more often than any single mix class.
    const auto raw = toDataset(miniCampaign());
    const auto stats = analyzeDecisionPaths(raw, PredictorParams{},
                                            benchNames());
    const double timePresence =
        std::max(stats.presencePercent.at("gpu_time"),
                 stats.presencePercent.at("cpu_time"));
    EXPECT_GT(timePresence, 75.0);
}

}  // namespace
