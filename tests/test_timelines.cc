/** @file Tests for the simulators' per-phase timeline diagnostics and
 * the logging utilities. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "cpusim/multicore_sim.h"
#include "gpusim/mps_sim.h"
#include "vision/registry.h"

namespace {

using namespace mapp;

TEST(GpuTimeline, OneEntryPerPhaseAndConsistentTotals)
{
    const auto& trace = vision::cachedTrace(vision::BenchmarkId::Hog, 20);
    gpusim::MpsSim sim;
    const auto phases = sim.timeline(trace);
    ASSERT_EQ(phases.size(), trace.size());
    double total = 0.0;
    for (const auto& t : phases) {
        EXPECT_GE(t.time, 0.0);
        // The overlapped total can never exceed the sum of components.
        EXPECT_LE(t.time, t.computeTime + t.serialTime + t.memoryTime +
                              t.tlbTime + t.overheadTime + 1e-15);
        total += t.time;
    }
    EXPECT_GT(total, 0.0);
}

TEST(GpuTimeline, StagedPhasesHaveNoSmWork)
{
    const auto& trace =
        vision::cachedTrace(vision::BenchmarkId::Fast, 20);
    gpusim::MpsSim sim;
    const auto phases = sim.timeline(trace);
    bool sawStaged = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!trace.phases()[i].hostStaged)
            continue;
        sawStaged = true;
        EXPECT_DOUBLE_EQ(phases[i].computeTime, 0.0);
        EXPECT_DOUBLE_EQ(phases[i].tlbTime, 0.0);
        EXPECT_GT(phases[i].time, 0.0);
    }
    EXPECT_TRUE(sawStaged);  // image_copy phases exist
}

TEST(CpuTimeline, OneEntryPerPhaseWithBreakdown)
{
    const auto& trace =
        vision::cachedTrace(vision::BenchmarkId::Surf, 20);
    cpusim::MulticoreSim sim;
    const auto phases = sim.timeline(trace, 8);
    ASSERT_EQ(phases.size(), trace.size());
    for (const auto& t : phases) {
        EXPECT_GT(t.time, 0.0);
        EXPECT_GT(t.computeCycles, 0.0);
        EXPECT_GE(t.llcMissRate, 0.0);
        EXPECT_LE(t.llcMissRate, 1.0);
        EXPECT_GE(t.effectiveParallelism, 0.25);
    }
}

TEST(CpuTimeline, MoreThreadsShrinkParallelPhases)
{
    const auto& trace = vision::cachedTrace(vision::BenchmarkId::Hog, 20);
    cpusim::MulticoreSim sim;
    const auto t1 = sim.timeline(trace, 1);
    const auto t16 = sim.timeline(trace, 16);
    double sum1 = 0.0;
    double sum16 = 0.0;
    for (std::size_t i = 0; i < t1.size(); ++i) {
        sum1 += t1[i].time;
        sum16 += t16[i].time;
    }
    EXPECT_LT(sum16, sum1);
}

TEST(Log, LevelsControlInform)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    EXPECT_NO_THROW(inform("suppressed"));
    EXPECT_NO_THROW(verbose("suppressed"));
    setLogLevel(LogLevel::Verbose);
    EXPECT_NO_THROW(verbose("printed"));
    setLogLevel(before);
}

TEST(Log, FatalThrowsWithMessage)
{
    try {
        fatal("the message");
        FAIL() << "fatal() must throw";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "the message");
    }
}

TEST(Log, WarnNeverThrows)
{
    EXPECT_NO_THROW(warn("just a warning"));
}

}  // namespace
