/** @file Functional tests for HoG, SVM, KNN, ObjRec and FaceDet. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "vision/facedet.h"
#include "vision/hog.h"
#include "vision/knn.h"
#include "vision/objrec.h"
#include "vision/svm.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

TEST(Hog, DescriptorSizeMatchesGeometry)
{
    const Image img(64, 64, 0.0f);
    HogParams params;  // cell 8, block 2, bins 9
    const auto d = computeHog(img, params);
    // cells 8x8 -> blocks 7x7 -> 7*7*2*2*9 floats.
    EXPECT_EQ(d.size(), 7u * 7u * 4u * 9u);
}

TEST(Hog, BlocksAreL2Normalized)
{
    Rng rng(1);
    const Image img = synth::scene(64, 64, rng);
    const auto d = computeHog(img);
    const std::size_t blockLen = 4 * 9;
    for (std::size_t start = 0; start + blockLen <= d.size();
         start += blockLen) {
        double norm = 0.0;
        for (std::size_t i = start; i < start + blockLen; ++i)
            norm += static_cast<double>(d[i]) * static_cast<double>(d[i]);
        EXPECT_LE(std::sqrt(norm), 1.0 + 1e-3);
    }
}

TEST(Hog, VerticalEdgeDominatesExpectedBin)
{
    // A vertical edge has a horizontal gradient: orientation ~0 (mod pi).
    Image img(32, 32, 0.0f);
    synth::drawRect(img, 16, 0, 31, 31, 200.0f);
    const auto d = computeHog(img);
    // Find the max-magnitude bin across the descriptor; it should be
    // bin 0 or bin 8 (orientations near 0 / pi).
    std::size_t best = 0;
    for (std::size_t i = 1; i < d.size(); ++i)
        if (d[i] > d[best])
            best = i;
    const std::size_t bin = best % 9;
    EXPECT_TRUE(bin == 0 || bin == 8) << "dominant bin " << bin;
}

TEST(LinearSvm, LearnsSeparableProblem)
{
    // Two Gaussian blobs separated along the first dimension.
    Rng rng(3);
    std::vector<Descriptor> xs;
    std::vector<int> ys;
    for (int i = 0; i < 40; ++i) {
        const float center = i % 2 == 0 ? 2.0f : -2.0f;
        Descriptor d{center + static_cast<float>(rng.normal(0.0, 0.3)),
                     static_cast<float>(rng.normal(0.0, 0.3))};
        xs.push_back(d);
        ys.push_back(i % 2 == 0 ? 1 : -1);
    }
    LinearSvm svm;
    svm.train(xs, ys);
    EXPECT_TRUE(svm.trained());
    EXPECT_GE(svm.accuracy(xs, ys), 0.95);
}

TEST(LinearSvm, DecisionSignMatchesPrediction)
{
    std::vector<Descriptor> xs{{1.0f}, {-1.0f}, {2.0f}, {-2.0f}};
    std::vector<int> ys{1, -1, 1, -1};
    LinearSvm svm;
    svm.train(xs, ys);
    EXPECT_EQ(svm.predict({3.0f}), 1);
    EXPECT_EQ(svm.predict({-3.0f}), -1);
    EXPECT_GT(svm.decision({3.0f}), 0.0);
}

TEST(LinearSvm, EmptyTrainingIsFatal)
{
    LinearSvm svm;
    EXPECT_THROW(svm.train({}, {}), FatalError);
}

TEST(Knn, MajorityVoteClassification)
{
    std::vector<Descriptor> refs{{0.0f}, {0.1f}, {0.2f},
                                 {5.0f}, {5.1f}, {5.2f}};
    std::vector<int> labels{1, 1, 1, -1, -1, -1};
    KnnClassifier knn;
    knn.fit(refs, labels);
    KnnParams params;
    params.k = 3;
    const auto out = knn.predict({{0.05f}, {5.05f}}, params);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], -1);
}

TEST(Knn, MismatchedFitIsFatal)
{
    KnnClassifier knn;
    EXPECT_THROW(knn.fit({{1.0f}}, {1, -1}), FatalError);
}

TEST(Knn, GridDescriptorsCountAndMeanCentered)
{
    Rng rng(5);
    const Image img = synth::scene(60, 60, rng);
    KnnParams params;
    params.patchGrid = 3;
    params.patchDim = 8;
    const auto descs = gridDescriptors(img, params);
    ASSERT_EQ(descs.size(), 9u);
    for (const auto& d : descs) {
        ASSERT_EQ(d.size(), 64u);
        double mean = 0.0;
        for (float v : d)
            mean += v;
        EXPECT_NEAR(mean / 64.0, 0.0, 1e-3);
    }
}

TEST(ObjRec, TrainsAndClassifiesPrototypeClasses)
{
    ObjectRecognizer rec;
    ObjRecParams params;
    rec.train(48, 0xC1A55ull, params);
    EXPECT_TRUE(rec.trained());

    // Class 2 prototypes are face scenes; a fresh face scene should be
    // recognized more often than not, but at minimum classification
    // must return a valid class.
    Rng rng(11);
    const Image img = synth::facesScene(48, 48, rng, 2);
    const int cls = rec.classify(img);
    EXPECT_GE(cls, 0);
    EXPECT_LT(cls, params.numClasses);
}

TEST(ObjRec, ClassifyBeforeTrainIsFatal)
{
    ObjectRecognizer rec;
    const Image img(48, 48, 0.0f);
    EXPECT_THROW(rec.classify(img), FatalError);
}

TEST(FaceDet, DetectsStampedFace)
{
    Image img(96, 96, 128.0f);
    synth::stampFace(img, 48, 48, 12);
    const auto faces = detectFaces(img);
    ASSERT_FALSE(faces.empty());
    // The best detection should cover the stamped face center.
    bool covered = false;
    for (const auto& f : faces) {
        if (f.x <= 48 && 48 <= f.x + f.size && f.y <= 48 &&
            48 <= f.y + f.size)
            covered = true;
    }
    EXPECT_TRUE(covered);
}

TEST(FaceDet, MostlyQuietOnTexture)
{
    Rng rng(13);
    const Image img = synth::texture(96, 96, rng);
    const auto faces = detectFaces(img);
    // The cascade rejects almost all texture windows; a couple of
    // false positives are tolerable, a flood is not.
    EXPECT_LE(faces.size(), 3u);
}

TEST(FaceDet, OverlapSuppressionKeepsDistinctBoxes)
{
    Image img(128, 96, 128.0f);
    synth::stampFace(img, 32, 48, 11);
    synth::stampFace(img, 96, 48, 11);
    const auto faces = detectFaces(img);
    EXPECT_GE(faces.size(), 2u);
    // No two kept boxes may be near-duplicates.
    for (std::size_t i = 0; i < faces.size(); ++i) {
        for (std::size_t j = i + 1; j < faces.size(); ++j) {
            const int dx = faces[i].x - faces[j].x;
            const int dy = faces[i].y - faces[j].y;
            EXPECT_GT(dx * dx + dy * dy, 16);
        }
    }
}

}  // namespace
