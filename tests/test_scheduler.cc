/** @file Tests for the predictor-guided co-scheduler. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "predictor/scheduler.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;
using vision::BenchmarkId;

/** One trained model + collector shared across this suite. */
struct Fixture
{
    DataCollector collector;
    MultiAppPredictor model;

    Fixture()
    {
        // A compact training campaign keeps the suite fast.
        std::vector<BagSpec> specs;
        for (std::size_t i = 0; i < vision::kAllBenchmarks.size(); ++i) {
            specs.push_back(BagSpec{{vision::kAllBenchmarks[i], 20},
                                    {vision::kAllBenchmarks[i], 20}});
            for (std::size_t j = i + 1; j < vision::kAllBenchmarks.size();
                 ++j)
                specs.push_back(BagSpec{{vision::kAllBenchmarks[i], 20},
                                        {vision::kAllBenchmarks[j], 20}});
        }
        model.train(collector.collectAll(specs));
    }
};

Fixture&
fixture()
{
    static Fixture f;
    return f;
}

std::vector<BagMember>
sampleQueue(std::size_t n)
{
    std::vector<BagMember> jobs;
    for (std::size_t i = 0; i < n; ++i)
        jobs.push_back({vision::kAllBenchmarks[i % 9], 20});
    return jobs;
}

TEST(Scheduler, FifoPairsInArrivalOrder)
{
    CoScheduler sched(fixture().model, fixture().collector);
    const auto jobs = sampleQueue(6);
    const auto s = sched.schedule(jobs, PairingPolicy::Fifo);
    ASSERT_EQ(s.bags.size(), 3u);
    EXPECT_FALSE(s.leftover.has_value());
    EXPECT_EQ(s.bags[0].spec.canonical(),
              (BagSpec{jobs[0], jobs[1]}.canonical()));
}

TEST(Scheduler, OddQueueLeavesOneJob)
{
    CoScheduler sched(fixture().model, fixture().collector);
    const auto s =
        sched.schedule(sampleQueue(5), PairingPolicy::Greedy);
    EXPECT_EQ(s.bags.size(), 2u);
    EXPECT_TRUE(s.leftover.has_value());
}

TEST(Scheduler, PredictionsArePositiveAndSummed)
{
    CoScheduler sched(fixture().model, fixture().collector);
    const auto s = sched.schedule(sampleQueue(6), PairingPolicy::Fifo);
    double total = 0.0;
    for (const auto& bag : s.bags) {
        EXPECT_GT(bag.predictedSeconds, 0.0);
        total += bag.predictedSeconds;
    }
    EXPECT_NEAR(s.predictedTotalSeconds, total, 1e-12);
}

TEST(Scheduler, GreedyNeverWorseThanFifoOnPrediction)
{
    // Greedy optimizes predicted time for its own head choices; it is
    // a heuristic, but the exhaustive policy is the predicted optimum,
    // so: exhaustive <= greedy and exhaustive <= fifo on predictions.
    CoScheduler sched(fixture().model, fixture().collector);
    const auto jobs = sampleQueue(8);
    const double fifo =
        sched.schedule(jobs, PairingPolicy::Fifo).predictedTotalSeconds;
    const double greedy =
        sched.schedule(jobs, PairingPolicy::Greedy)
            .predictedTotalSeconds;
    const double best = sched.schedule(jobs, PairingPolicy::Exhaustive)
                            .predictedTotalSeconds;
    EXPECT_LE(best, fifo + 1e-12);
    EXPECT_LE(best, greedy + 1e-12);
}

TEST(Scheduler, ExhaustiveCoversAllJobsExactlyOnce)
{
    CoScheduler sched(fixture().model, fixture().collector);
    const auto jobs = sampleQueue(6);
    const auto s = sched.schedule(jobs, PairingPolicy::Exhaustive);
    ASSERT_EQ(s.bags.size(), 3u);
    std::map<std::string, int> seen;
    for (const auto& bag : s.bags) {
        seen[vision::benchmarkName(bag.spec.a.id)] += 1;
        seen[vision::benchmarkName(bag.spec.b.id)] += 1;
    }
    int total = 0;
    for (const auto& [name, count] : seen)
        total += count;
    EXPECT_EQ(total, 6);
}

TEST(Scheduler, ExhaustiveRejectsHugeQueues)
{
    CoScheduler sched(fixture().model, fixture().collector);
    EXPECT_THROW(
        sched.schedule(sampleQueue(16), PairingPolicy::Exhaustive),
        FatalError);
}

TEST(Scheduler, MeasureMatchesCollectorGroundTruth)
{
    CoScheduler sched(fixture().model, fixture().collector);
    const auto s = sched.schedule(sampleQueue(4), PairingPolicy::Fifo);
    double expected = 0.0;
    for (const auto& bag : s.bags)
        expected += fixture().collector.collect(bag.spec).gpuBagTime;
    EXPECT_NEAR(sched.measure(s), expected, 1e-12);
}

TEST(Scheduler, MeasureFairnessMatchesCollectPipeline)
{
    auto& c = fixture().collector;
    const BagSpec spec{{BenchmarkId::Fast, 20}, {BenchmarkId::Sift, 20}};
    EXPECT_NEAR(c.measureFairness(spec), c.collect(spec).fairness,
                1e-12);
}

}  // namespace
