/** @file Unit and property tests for the CART regression tree. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

namespace {

using namespace mapp;
using namespace mapp::ml;

/** y = step function of x0 — a tree should nail this. */
Dataset
stepDataset()
{
    Dataset d({"x0", "x1"});
    for (int i = 0; i < 20; ++i) {
        const double x = static_cast<double>(i);
        d.addRow({x, 0.5}, x < 10.0 ? 1.0 : 5.0, "g");
    }
    return d;
}

TEST(DecisionTree, FitsStepFunctionExactly)
{
    DecisionTreeRegressor tree;
    tree.fit(stepDataset());
    EXPECT_TRUE(tree.trained());
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0, 0.5}), 1.0);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{15.0, 0.5}), 5.0);
}

TEST(DecisionTree, RootSplitOnInformativeFeature)
{
    DecisionTreeRegressor tree;
    tree.fit(stepDataset());
    const auto path =
        tree.decisionPath(std::vector<double>{3.0, 0.5});
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path[0].feature, 0);  // x0 drives the target
    EXPECT_NEAR(path[0].threshold, 9.5, 0.51);
}

TEST(DecisionTree, ConstantTargetGivesSingleLeaf)
{
    Dataset d({"x"});
    for (int i = 0; i < 10; ++i)
        d.addRow({static_cast<double>(i)}, 7.0, "g");
    DecisionTreeRegressor tree;
    tree.fit(d);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{100.0}), 7.0);
}

TEST(DecisionTree, RespectsMaxDepth)
{
    Rng rng(1);
    Dataset d({"x"});
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        d.addRow({x}, std::sin(10.0 * x), "g");
    }
    DecisionTreeParams params;
    params.maxDepth = 3;
    params.minSamplesLeaf = 1;
    DecisionTreeRegressor tree(params);
    tree.fit(d);
    EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTree, RespectsMinSamplesLeaf)
{
    Rng rng(2);
    Dataset d({"x"});
    for (int i = 0; i < 50; ++i) {
        const double x = rng.uniform(0.0, 1.0);
        d.addRow({x}, x * x, "g");
    }
    DecisionTreeParams params;
    params.minSamplesLeaf = 5;
    DecisionTreeRegressor tree(params);
    tree.fit(d);
    // Every decision path must end in a leaf whose sample count >= 5.
    // Verify indirectly: deep, tiny leaves would let the tree memorize;
    // with minSamplesLeaf 5 on 50 points the node count is bounded.
    EXPECT_LE(tree.nodeCount(), 2u * 10u + 1u);
}

TEST(DecisionTree, PredictionIsTrainTargetMeanInLeaf)
{
    // Two clusters with different spreads: leaves predict cluster means.
    Dataset d({"x"});
    d.addRow({0.0}, 1.0, "g");
    d.addRow({0.1}, 3.0, "g");
    d.addRow({10.0}, 10.0, "g");
    d.addRow({10.1}, 14.0, "g");
    DecisionTreeParams params;
    params.maxDepth = 1;
    DecisionTreeRegressor tree(params);
    tree.fit(d);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.05}), 2.0);
    EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{10.05}), 12.0);
}

TEST(DecisionTree, EmptyFitIsFatal)
{
    DecisionTreeRegressor tree;
    EXPECT_THROW(tree.fit(Dataset({"x"})), FatalError);
}

TEST(DecisionTree, PredictBeforeFitIsFatal)
{
    DecisionTreeRegressor tree;
    EXPECT_THROW(tree.predict(std::vector<double>{1.0}), FatalError);
}

TEST(DecisionTree, DecisionPathConsistentWithPrediction)
{
    DecisionTreeRegressor tree;
    tree.fit(stepDataset());
    const std::vector<double> x{12.0, 0.5};
    const auto path = tree.decisionPath(x);
    for (const auto& step : path) {
        const bool left =
            x[static_cast<std::size_t>(step.feature)] <= step.threshold;
        EXPECT_EQ(left, step.wentLeft);
    }
}

TEST(DecisionTree, FeatureUsageCountsMatchPath)
{
    DecisionTreeRegressor tree;
    tree.fit(stepDataset());
    const std::vector<double> x{12.0, 0.5};
    const auto counts = tree.featureUsageCounts(x);
    const auto path = tree.decisionPath(x);
    int total = 0;
    for (int c : counts)
        total += c;
    EXPECT_EQ(total, static_cast<int>(path.size()));
    EXPECT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[1], 0);  // x1 is uninformative
}

TEST(DecisionTree, ImportancesSumToOneAndFavorSignal)
{
    DecisionTreeRegressor tree;
    tree.fit(stepDataset());
    const auto imp = tree.featureImportances();
    ASSERT_EQ(imp.size(), 2u);
    EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
    EXPECT_GT(imp[0], 0.99);
}

TEST(DecisionTree, TextAndDotExports)
{
    DecisionTreeRegressor tree;
    tree.fit(stepDataset());
    const std::string text = tree.toText();
    EXPECT_NE(text.find("x0"), std::string::npos);
    EXPECT_NE(text.find("leaf"), std::string::npos);
    const std::string dot = tree.toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

/** Property sweep: training error decreases (weakly) with depth. */
class TreeDepthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TreeDepthProperty, TrainingErrorMonotoneInDepth)
{
    Rng rng(7);
    Dataset d({"a", "b"});
    for (int i = 0; i < 120; ++i) {
        const double a = rng.uniform(0.0, 1.0);
        const double b = rng.uniform(0.0, 1.0);
        d.addRow({a, b}, std::sin(6.0 * a) + 0.3 * b, "g");
    }
    const int depth = GetParam();
    auto fitError = [&](int maxDepth) {
        DecisionTreeParams params;
        params.maxDepth = maxDepth;
        params.minSamplesLeaf = 1;
        DecisionTreeRegressor tree(params);
        tree.fit(d);
        return meanSquaredError(d.targets(), tree.predict(d));
    };
    EXPECT_LE(fitError(depth + 1), fitError(depth) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Depths, TreeDepthProperty,
                         ::testing::Values(1, 2, 3, 4, 6));

/** Property sweep: predictions always lie within the target range. */
class TreeRangeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TreeRangeProperty, PredictionsBoundedByTargets)
{
    Rng rng(GetParam());
    Dataset d({"x", "y", "z"});
    double lo = 1e300;
    double hi = -1e300;
    for (int i = 0; i < 60; ++i) {
        const double t = rng.uniform(-5.0, 5.0);
        lo = std::min(lo, t);
        hi = std::max(hi, t);
        d.addRow({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                  rng.uniform(0.0, 1.0)},
                 t, "g");
    }
    DecisionTreeRegressor tree;
    tree.fit(d);
    for (int i = 0; i < 100; ++i) {
        const std::vector<double> x{rng.uniform(-1.0, 2.0),
                                    rng.uniform(-1.0, 2.0),
                                    rng.uniform(-1.0, 2.0)};
        const double p = tree.predict(x);
        EXPECT_GE(p, lo - 1e-9);
        EXPECT_LE(p, hi + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRangeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
