/** @file Tests for bag specs, the measurement pipeline and the campaign. */

#include <gtest/gtest.h>

#include "predictor/data_collection.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;
using vision::BenchmarkId;

TEST(BagSpec, CanonicalOrdersMembers)
{
    const BagSpec spec{{BenchmarkId::Sift, 20}, {BenchmarkId::Fast, 40}};
    const BagSpec canon = spec.canonical();
    EXPECT_EQ(canon.a.id, BenchmarkId::Fast);
    EXPECT_EQ(canon.b.id, BenchmarkId::Sift);
}

TEST(BagSpec, CanonicalOrdersByBatchWithinBenchmark)
{
    const BagSpec spec{{BenchmarkId::Hog, 80}, {BenchmarkId::Hog, 20}};
    const BagSpec canon = spec.canonical();
    EXPECT_EQ(canon.a.batchSize, 20);
    EXPECT_EQ(canon.b.batchSize, 80);
}

TEST(BagSpec, Labels)
{
    const BagSpec spec{{BenchmarkId::Fast, 20}, {BenchmarkId::Svm, 40}};
    EXPECT_EQ(spec.label(), "FAST@20+SVM@40");
    EXPECT_EQ(spec.groupLabel(), "FAST+SVM");
    EXPECT_FALSE(spec.homogeneous());
    const BagSpec homo{{BenchmarkId::Fast, 20}, {BenchmarkId::Fast, 20}};
    EXPECT_TRUE(homo.homogeneous());
}

TEST(Campaign, Has91RunsLikeThePaper)
{
    const auto specs = DataCollector::campaign91();
    EXPECT_EQ(specs.size(), 91u);

    std::size_t homo = 0;
    std::size_t heteroStd = 0;
    std::size_t heteroMixed = 0;
    for (const auto& spec : specs) {
        if (spec.homogeneous())
            ++homo;
        else if (spec.a.batchSize == 20 && spec.b.batchSize == 20)
            ++heteroStd;
        else
            ++heteroMixed;
    }
    EXPECT_EQ(homo, 45u);       // 9 benchmarks x 5 batch sizes
    EXPECT_EQ(heteroStd, 36u);  // C(9, 2) pairs
    EXPECT_EQ(heteroMixed, 10u);
}

TEST(Campaign, HomogeneousBagsCoverAllBatchSizes)
{
    const auto specs = DataCollector::campaign91();
    for (vision::BenchmarkId id : vision::kAllBenchmarks) {
        for (int batch : vision::kBatchSizes) {
            const bool found =
                std::any_of(specs.begin(), specs.end(),
                            [&](const BagSpec& s) {
                                return s.homogeneous() && s.a.id == id &&
                                       s.a.batchSize == batch;
                            });
            EXPECT_TRUE(found)
                << vision::benchmarkName(id) << "@" << batch;
        }
    }
}

class CollectorTest : public ::testing::Test
{
  protected:
    // One shared collector: per-app measurements are memoized across
    // the tests in this suite.
    static DataCollector& collector()
    {
        static DataCollector instance;
        return instance;
    }
};

TEST_F(CollectorTest, AppFeaturesArePlausible)
{
    const BagMember m{BenchmarkId::Hog, 20};
    const auto& f = collector().appFeatures(m);
    EXPECT_EQ(f.app, "HoG");
    EXPECT_EQ(f.batchSize, 20);
    EXPECT_GT(f.cpuTime, 0.0);
    EXPECT_GT(f.gpuTime, 0.0);
    double mixSum = 0.0;
    for (double p : f.mixPercent)
        mixSum += p;
    EXPECT_NEAR(mixSum, 100.0, 1e-6);
}

TEST_F(CollectorTest, AppFeaturesMemoized)
{
    const BagMember m{BenchmarkId::Hog, 20};
    const auto& a = collector().appFeatures(m);
    const auto& b = collector().appFeatures(m);
    EXPECT_EQ(&a, &b);
}

TEST_F(CollectorTest, HomogeneousBagFairnessIsOne)
{
    const BagMember m{BenchmarkId::Fast, 20};
    const auto point = collector().collect(BagSpec{m, m});
    EXPECT_NEAR(point.fairness, 1.0, 1e-9);
    EXPECT_GT(point.gpuBagTime, 0.0);
}

TEST_F(CollectorTest, BagGpuTimeExceedsSingleInstance)
{
    const BagMember m{BenchmarkId::Surf, 20};
    const auto point = collector().collect(BagSpec{m, m});
    const auto& f = collector().appFeatures(m);
    EXPECT_GT(point.gpuBagTime, f.gpuTime);
}

TEST_F(CollectorTest, HeterogeneousFairnessAtMostOne)
{
    const BagSpec spec{{BenchmarkId::Fast, 20}, {BenchmarkId::Sift, 20}};
    const auto point = collector().collect(spec);
    EXPECT_GT(point.fairness, 0.0);
    EXPECT_LE(point.fairness, 1.0 + 1e-9);
}

TEST_F(CollectorTest, CollectCanonicalizesSpec)
{
    const BagSpec spec{{BenchmarkId::Sift, 20}, {BenchmarkId::Fast, 20}};
    const auto point = collector().collect(spec);
    EXPECT_EQ(point.spec.a.id, BenchmarkId::Fast);
    EXPECT_EQ(point.a.app, "FAST");
    EXPECT_EQ(point.b.app, "SIFT");
}

TEST_F(CollectorTest, ScalingSeriesAreOrdered)
{
    const BagMember m{BenchmarkId::Hog, 20};
    const auto gpu = collector().gpuHomogeneousScaling(m, 3);
    ASSERT_EQ(gpu.size(), 3u);
    // GPU makespan grows with instance count (Fig. 2's degradation).
    EXPECT_LT(gpu[0], gpu[1]);
    EXPECT_LT(gpu[1], gpu[2]);

    const auto cpu = collector().cpuHomogeneousScaling(m, 3);
    ASSERT_EQ(cpu.size(), 3u);
    EXPECT_LE(cpu[0], cpu[1]);
}

TEST_F(CollectorTest, DatasetAssembly)
{
    std::vector<DataPoint> points;
    points.push_back(collector().collect(
        BagSpec{{BenchmarkId::Fast, 20}, {BenchmarkId::Fast, 20}}));
    points.push_back(collector().collect(
        BagSpec{{BenchmarkId::Fast, 20}, {BenchmarkId::Hog, 20}}));
    const auto data = toDataset(points);
    EXPECT_EQ(data.size(), 2u);
    EXPECT_EQ(data.numFeatures(), bagFeatureNames().size());
    EXPECT_EQ(data.group(0), "FAST+FAST");
    EXPECT_EQ(data.group(1), "FAST+HoG");
    EXPECT_DOUBLE_EQ(data.target(0), points[0].gpuBagTime);
}

TEST_F(CollectorTest, SplitOutBenchmarkMatchesTokens)
{
    std::vector<DataPoint> points;
    points.push_back(collector().collect(
        BagSpec{{BenchmarkId::Fast, 20}, {BenchmarkId::Fast, 20}}));
    points.push_back(collector().collect(
        BagSpec{{BenchmarkId::Fast, 20}, {BenchmarkId::Hog, 20}}));
    points.push_back(collector().collect(
        BagSpec{{BenchmarkId::Hog, 20}, {BenchmarkId::Hog, 20}}));
    const auto data = toDataset(points);

    auto [train, test] = splitOutBenchmark(data, "FAST");
    EXPECT_EQ(test.size(), 2u);   // both bags containing FAST
    EXPECT_EQ(train.size(), 1u);  // HoG+HoG only

    // Token matching must not confuse substrings.
    auto [train2, test2] = splitOutBenchmark(data, "FA");
    EXPECT_EQ(test2.size(), 0u);
}

}  // namespace
