/**
 * @file
 * Unit tests for the structured error subsystem: Error/SourceContext
 * formatting, Result<T> plumbing, and the strict numeric parsers that
 * every input boundary is built on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/parse.h"

namespace {

using namespace mapp;

// ---------------------------------------------------------------------------
// Error / SourceContext

TEST(Error, DescribeOnlyKnownParts)
{
    EXPECT_EQ(SourceContext{}.describe(), "");
    EXPECT_EQ((SourceContext{"a.csv", 0, ""}).describe(), "a.csv");
    EXPECT_EQ((SourceContext{"a.csv", 3, "x"}).describe(),
              "a.csv, row 3, column 'x'");
    EXPECT_EQ((SourceContext{"", 7, ""}).describe(), "row 7");
}

TEST(Error, ToStringIncludesCodeLocationAndMessage)
{
    const Error e(ErrorCode::Parse, "bad number '1x'",
                  {"bags.csv", 3, "batch"});
    EXPECT_EQ(e.toString(),
              "parse error at bags.csv, row 3, column 'batch': "
              "bad number '1x'");
}

TEST(Error, ToStringWithoutContext)
{
    const Error e(ErrorCode::Io, "cannot open file");
    EXPECT_EQ(e.toString(), "io error: cannot open file");
}

TEST(Error, AddContextFillsOnlyUnknownFields)
{
    Error e(ErrorCode::Range, "out of range", {"", 5, ""});
    e.addContext({"data.csv", 9, "target"});
    EXPECT_EQ(e.context().file, "data.csv");
    EXPECT_EQ(e.context().row, 5u);  // already known, kept
    EXPECT_EQ(e.context().column, "target");
}

TEST(Error, CodeNamesAreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Io), "io");
    EXPECT_STREQ(errorCodeName(ErrorCode::Parse), "parse");
    EXPECT_STREQ(errorCodeName(ErrorCode::Range), "range");
    EXPECT_STREQ(errorCodeName(ErrorCode::Schema), "schema");
    EXPECT_STREQ(errorCodeName(ErrorCode::InvalidArgument),
                 "invalid-argument");
}

TEST(Error, RaiseThrowsInputErrorCatchableAsFatalError)
{
    try {
        raise({ErrorCode::Schema, "wrong header", {"t.csv", 0, ""}});
        FAIL() << "raise did not throw";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("t.csv"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("wrong header"),
                  std::string::npos);
    }
}

TEST(Error, InputErrorKeepsStructuredPayload)
{
    try {
        raise({ErrorCode::Range, "too big", {"f.csv", 2, "batch"}});
        FAIL() << "raise did not throw";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().code(), ErrorCode::Range);
        EXPECT_EQ(e.error().context().row, 2u);
        EXPECT_EQ(e.error().context().column, "batch");
    }
}

// ---------------------------------------------------------------------------
// Result<T>

TEST(Result, ValueSide)
{
    const Result<int> r(42);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(-1), 42);
    EXPECT_EQ(r.orThrow(), 42);
}

TEST(Result, ErrorSide)
{
    const Result<int> r(Error{ErrorCode::Parse, "nope"});
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.valueOr(-1), -1);
    EXPECT_EQ(r.error().code(), ErrorCode::Parse);
    EXPECT_THROW(r.orThrow(), InputError);
}

TEST(Result, OrThrowAttachesContext)
{
    const Result<double> r(Error{ErrorCode::Parse, "bad cell"});
    try {
        r.orThrow({"d.csv", 4, "x"});
        FAIL() << "orThrow did not throw";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().context().file, "d.csv");
        EXPECT_EQ(e.error().context().row, 4u);
        EXPECT_EQ(e.error().context().column, "x");
    }
}

TEST(Result, WithContextMergesIntoError)
{
    auto r = Result<int>(Error{ErrorCode::Parse, "bad"})
                 .withContext({"f.csv", 1, "c"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().context().file, "f.csv");

    auto ok = Result<int>(5).withContext({"f.csv", 1, "c"});
    EXPECT_EQ(ok.value(), 5);
}

// ---------------------------------------------------------------------------
// parseDouble

TEST(ParseDouble, AcceptsOrdinaryNumbers)
{
    EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
    EXPECT_DOUBLE_EQ(parseDouble("-2e3").value(), -2000.0);
    EXPECT_DOUBLE_EQ(parseDouble("0").value(), 0.0);
    EXPECT_DOUBLE_EQ(parseDouble("  3.25\t").value(), 3.25);
}

TEST(ParseDouble, RejectsTrailingGarbage)
{
    const auto r = parseDouble("1.5abc");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Parse);
    EXPECT_NE(r.error().message().find("1.5abc"), std::string::npos);
}

TEST(ParseDouble, RejectsEmptyAndNonNumeric)
{
    EXPECT_FALSE(parseDouble("").ok());
    EXPECT_FALSE(parseDouble("   ").ok());
    EXPECT_FALSE(parseDouble("abc").ok());
    EXPECT_FALSE(parseDouble("--1").ok());
}

TEST(ParseDouble, RejectsNanAndInf)
{
    for (const char* text : {"nan", "NaN", "inf", "-inf", "Infinity"}) {
        const auto r = parseDouble(text);
        ASSERT_FALSE(r.ok()) << text;
        EXPECT_EQ(r.error().code(), ErrorCode::Range) << text;
    }
}

TEST(ParseDouble, RejectsOverflow)
{
    const auto r = parseDouble("1e999");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Range);
}

TEST(ParseDouble, RejectsHexAndPartialTokens)
{
    EXPECT_FALSE(parseDouble("0x10").ok());
    EXPECT_FALSE(parseDouble("1.5 2.5").ok());
}

// ---------------------------------------------------------------------------
// parseInt / parseUnsigned / parseBoundedInt

TEST(ParseInt, AcceptsAndBounds)
{
    EXPECT_EQ(parseInt("42").value(), 42);
    EXPECT_EQ(parseInt("-7").value(), -7);
    EXPECT_EQ(parseInt(" 10 ").value(), 10);
    EXPECT_EQ(parseInt("5", 0, 10).value(), 5);
}

TEST(ParseInt, RejectsGarbageAndFloats)
{
    EXPECT_FALSE(parseInt("1x6").ok());
    EXPECT_FALSE(parseInt("3.5").ok());
    EXPECT_FALSE(parseInt("").ok());
    EXPECT_FALSE(parseInt("12abc").ok());
}

TEST(ParseInt, RejectsOutOfRange)
{
    const auto r = parseInt("11", 0, 10);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Range);
    EXPECT_NE(r.error().message().find("[0, 10]"), std::string::npos);
    EXPECT_FALSE(parseInt("-1", 0, 10).ok());
    // Wider than long long entirely.
    EXPECT_FALSE(parseInt("99999999999999999999999999").ok());
}

TEST(ParseUnsigned, RejectsNegative)
{
    EXPECT_EQ(parseUnsigned("18446744073709551615").value(),
              std::numeric_limits<std::uint64_t>::max());
    const auto r = parseUnsigned("-3");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code(), ErrorCode::Range);
    EXPECT_NE(r.error().message().find("negative"), std::string::npos);
}

TEST(ParseBoundedInt, NarrowsToInt)
{
    EXPECT_EQ(parseBoundedInt("100", 1, 1000).value(), 100);
    EXPECT_FALSE(parseBoundedInt("0", 1, 1000).ok());
    EXPECT_FALSE(parseBoundedInt("2147483648", 1,
                                 std::numeric_limits<int>::max())
                     .ok());
}

TEST(Parse, LongCellIsTruncatedInMessage)
{
    const std::string cell(300, 'z');
    const auto r = parseDouble(cell);
    ASSERT_FALSE(r.ok());
    EXPECT_LT(r.error().message().size(), 120u);
    EXPECT_NE(r.error().message().find("..."), std::string::npos);
}

}  // namespace
