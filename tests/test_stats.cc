/** @file Unit tests for descriptive statistics. */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/stats.h"

namespace {

using namespace mapp::stats;

TEST(Stats, MeanOfKnownValues)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceOfConstantIsZero)
{
    const std::vector<double> xs{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, VariancePopulationDefinition)
{
    const std::vector<double> xs{1.0, 3.0};
    EXPECT_DOUBLE_EQ(variance(xs), 1.0);  // mean 2, deviations +-1
    EXPECT_DOUBLE_EQ(stddev(xs), 1.0);
}

TEST(Stats, GeomeanOfPowers)
{
    const std::vector<double> xs{1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive)
{
    const std::vector<double> xs{1.0, -2.0};
    EXPECT_DOUBLE_EQ(geomean(xs), 0.0);
}

TEST(Stats, MinMaxSum)
{
    const std::vector<double> xs{3.0, -1.0, 7.0};
    EXPECT_DOUBLE_EQ(minimum(xs), -1.0);
    EXPECT_DOUBLE_EQ(maximum(xs), 7.0);
    EXPECT_DOUBLE_EQ(sum(xs), 9.0);
}

TEST(Stats, MedianOddAndEven)
{
    EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpoints)
{
    const std::vector<double> xs{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 20.0);
}

TEST(Stats, PercentileInterpolates)
{
    const std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, PercentileClampsOutOfRangeP)
{
    // Regression: p > 100 used to index sorted[size] out of bounds and
    // a negative p wrapped to a huge index after the size_t cast.
    const std::vector<double> xs{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 150.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1e9), 30.0);
    EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, -1e9), 10.0);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DOUBLE_EQ(percentile(xs, nan), 10.0);
    EXPECT_DOUBLE_EQ(
        percentile(xs, std::numeric_limits<double>::infinity()), 30.0);
}

TEST(Stats, PearsonPerfectPositive)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{2.0, 4.0, 6.0};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{6.0, 4.0, 2.0};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceGuard)
{
    const std::vector<double> xs{1.0, 1.0, 1.0};
    const std::vector<double> ys{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, RanksHandleTies)
{
    const std::vector<double> xs{10.0, 20.0, 20.0, 30.0};
    const auto r = ranks(xs);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonicNonlinear)
{
    // y = x^3 is monotone: Spearman 1 even though the relation is
    // nonlinear.
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> ys{1.0, 8.0, 27.0, 64.0, 125.0};
    EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, AccumulatorMatchesBatchStatistics)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    Accumulator acc;
    for (double x : xs)
        acc.add(x);
    EXPECT_EQ(acc.count(), xs.size());
    EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
    EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(acc.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(acc.maximum(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), sum(xs));
}

TEST(Stats, AccumulatorEmptyIsSafe)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

}  // namespace
