/** @file Round-trip tests for trace and dataset serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/log.h"
#include "isa/trace_io.h"
#include "ml/dataset_io.h"
#include "vision/registry.h"

namespace {

using namespace mapp;

TEST(TraceIo, CsvRoundTripPreservesEverything)
{
    const auto trace = vision::profileWorkload(vision::BenchmarkId::Hog,
                                               20);
    const auto back = isa::traceFromCsv(isa::traceToCsv(trace));
    EXPECT_EQ(back.app(), trace.app());
    EXPECT_EQ(back.batchSize(), trace.batchSize());
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto& a = trace.phases()[i];
        const auto& b = back.phases()[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.mix, b.mix);
        EXPECT_EQ(a.bytesRead, b.bytesRead);
        EXPECT_EQ(a.bytesWritten, b.bytesWritten);
        EXPECT_EQ(a.footprint, b.footprint);
        EXPECT_EQ(a.workItems, b.workItems);
        EXPECT_EQ(a.launches, b.launches);
        EXPECT_EQ(a.hostStaged, b.hostStaged);
        EXPECT_NEAR(a.parallelFraction, b.parallelFraction, 1e-6);
        EXPECT_NEAR(a.locality, b.locality, 1e-6);
        EXPECT_NEAR(a.branchDivergence, b.branchDivergence, 1e-6);
    }
}

TEST(TraceIo, RejectsBadHeader)
{
    EXPECT_THROW(isa::traceFromCsv("a,b,c\n1,2,3\n"), FatalError);
}

TEST(TraceIo, RejectsEmptyTrace)
{
    const auto trace = vision::profileWorkload(vision::BenchmarkId::Fast,
                                               4);
    auto text = isa::traceToCsv(trace);
    // Keep only the header line.
    text.erase(text.find('\n') + 1);
    EXPECT_THROW(isa::traceFromCsv(text), FatalError);
}

TEST(TraceIo, FileRoundTrip)
{
    const auto trace = vision::profileWorkload(vision::BenchmarkId::Svm,
                                               20);
    const auto path = std::filesystem::temp_directory_path() /
                      "mapp_trace_io_test.csv";
    isa::writeTraceFile(trace, path.string());
    const auto back = isa::readTraceFile(path.string());
    EXPECT_EQ(back.totalInstructions(), trace.totalInstructions());
    std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_THROW(isa::readTraceFile("/nonexistent/trace.csv"),
                 FatalError);
}

TEST(DatasetIo, CsvRoundTrip)
{
    ml::Dataset d({"x", "y"});
    d.addRow({1.5, -2.0}, 10.0, "A+B");
    d.addRow({0.25, 1e-9}, 0.125, "C");
    const auto back = ml::datasetFromCsv(ml::datasetToCsv(d));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.featureNames(), d.featureNames());
    EXPECT_DOUBLE_EQ(back.row(0)[0], 1.5);
    EXPECT_DOUBLE_EQ(back.row(1)[1], 1e-9);
    EXPECT_DOUBLE_EQ(back.target(0), 10.0);
    EXPECT_EQ(back.group(0), "A+B");
}

TEST(DatasetIo, RejectsMissingTargetColumns)
{
    EXPECT_THROW(ml::datasetFromCsv("x,y\n1,2\n"), FatalError);
}

TEST(DatasetIo, RejectsNonNumericCells)
{
    EXPECT_THROW(
        ml::datasetFromCsv("x,target,group\nhello,1,g\n"), FatalError);
}

TEST(DatasetIo, FileRoundTrip)
{
    ml::Dataset d({"f"});
    d.addRow({42.0}, 7.0, "g");
    const auto path = std::filesystem::temp_directory_path() /
                      "mapp_dataset_io_test.csv";
    ml::writeDatasetFile(d, path.string());
    const auto back = ml::readDatasetFile(path.string());
    EXPECT_DOUBLE_EQ(back.row(0)[0], 42.0);
    std::filesystem::remove(path);
}

TEST(DatasetIo, GroupWithCommaSurvives)
{
    ml::Dataset d({"f"});
    d.addRow({1.0}, 2.0, "weird,group+name");
    const auto back = ml::datasetFromCsv(ml::datasetToCsv(d));
    EXPECT_EQ(back.group(0), "weird,group+name");
}

}  // namespace
