# End-to-end smoke for `mapp_cli report`: run one real prediction with
# every observability sidecar enabled, render the report from those
# sidecars, and assert the required sections came out. Driven by ctest:
#   cmake -DMAPP_CLI=<path> -DWORK_DIR=<dir> -P report_smoke.cmake

foreach(var MAPP_CLI WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "report_smoke: -D${var}=... is required")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(metrics "${WORK_DIR}/metrics.json")
set(predictions "${WORK_DIR}/predictions.jsonl")
set(trace "${WORK_DIR}/trace.json")

execute_process(
    COMMAND "${MAPP_CLI}"
            "--metrics-out=${metrics}"
            "--predictions-out=${predictions}"
            "--trace-out=${trace}"
            predict SIFT@20 FAST@20
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "report_smoke: predict failed (${rc}):\n${out}\n${err}")
endif()

foreach(sidecar metrics predictions trace)
    if(NOT EXISTS "${${sidecar}}")
        message(FATAL_ERROR
                "report_smoke: predict left no ${sidecar} sidecar at "
                "${${sidecar}}")
    endif()
endforeach()

execute_process(
    COMMAND "${MAPP_CLI}" report
            "${metrics}" "${predictions}" "${trace}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE report
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "report_smoke: report failed (${rc}):\n${report}\n${err}")
endif()

foreach(section
        "# MAPP run report"
        "## Phase tree"
        "## Latency percentiles"
        "## Prediction quality"
        "## Top-error predictions"
        "## Drift flags"
        "## Counters")
    string(FIND "${report}" "${section}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "report_smoke: report is missing '${section}':\n"
                "${report}")
    endif()
endforeach()

# The provenance flowed end to end: the report must carry at least one
# audited prediction row (the table header is only emitted with rows).
string(FIND "${report}" "| seq |" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
            "report_smoke: no audited predictions in the report:\n"
            "${report}")
endif()
