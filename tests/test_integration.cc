/** @file End-to-end integration tests: the full pipeline from synthetic
 * images through profiling, simulation, dataset construction, training
 * and prediction — the paper's workflow in miniature, plus
 * paper-specific phenomenon checks (Figures 1-3 shapes). */

#include <gtest/gtest.h>

#include "common/stats.h"
#include "ml/metrics.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;
using vision::BenchmarkId;

DataCollector&
collector()
{
    static DataCollector instance;
    return instance;
}

TEST(Integration, EndToEndPredictUnseenBag)
{
    // Train on homogeneous bags at batches {20, 40} plus all hetero
    // pairs at 20; predict an unseen hetero bag at batch 40.
    std::vector<BagSpec> specs;
    for (std::size_t i = 0; i < vision::kAllBenchmarks.size(); ++i) {
        for (int batch : {20, 40})
            specs.push_back(BagSpec{{vision::kAllBenchmarks[i], batch},
                                    {vision::kAllBenchmarks[i], batch}});
        for (std::size_t j = i + 1; j < vision::kAllBenchmarks.size(); ++j)
            specs.push_back(BagSpec{{vision::kAllBenchmarks[i], 20},
                                    {vision::kAllBenchmarks[j], 20}});
    }
    const auto points = collector().collectAll(specs);

    MultiAppPredictor model;
    model.train(points);

    const BagSpec unseen{{BenchmarkId::Surf, 40}, {BenchmarkId::Hog, 40}};
    const auto truth = collector().collect(unseen);
    const double predicted = model.predict(truth);
    const double err =
        ml::relativeErrorPercent(truth.gpuBagTime, predicted);
    EXPECT_LT(err, 60.0) << "predicted " << predicted << " vs "
                         << truth.gpuBagTime;
}

TEST(Integration, Figure1Shape_CpuToleratesConcurrency)
{
    // Fig. 1: CPU per-instance performance degrades only mildly with
    // multi-application concurrency (well-managed contention).
    for (BenchmarkId id :
         {BenchmarkId::Hog, BenchmarkId::Surf, BenchmarkId::Fast}) {
        const auto times =
            collector().cpuHomogeneousScaling({id, 20}, 2);
        const double perfRatio = times[0] / times[1];  // <= 1
        EXPECT_GT(perfRatio, 0.30) << vision::benchmarkName(id);
    }
}

TEST(Integration, Figure2Shape_GpuDegradesWithConcurrency)
{
    // Fig. 2: GPU performance drops clearly as instances are added.
    for (BenchmarkId id :
         {BenchmarkId::Hog, BenchmarkId::Surf, BenchmarkId::Sift}) {
        const auto times =
            collector().gpuHomogeneousScaling({id, 20}, 3);
        EXPECT_LT(times[0], times[1]);
        EXPECT_LT(times[1], times[2]);
        // Two instances cost at least 25% more than one.
        EXPECT_GT(times[1] / times[0], 1.25)
            << vision::benchmarkName(id);
    }
}

TEST(Integration, Figure3Shape_GpuWinsForMostSingleInstances)
{
    // Fig. 3: single-instance GPU beats CPU for most benchmarks, with a
    // few exceptions (the paper saw FAST, ORB, SVM).
    int gpuWins = 0;
    for (BenchmarkId id : vision::kAllBenchmarks) {
        const auto& f = collector().appFeatures({id, 20});
        if (f.gpuTime < f.cpuTime)
            ++gpuWins;
    }
    EXPECT_GE(gpuWins, 4);
    EXPECT_LT(gpuWins, 9);  // and some exceptions remain
    // SVM is a GPU loser (serial SMO epochs), as in the paper.
    const auto& svm = collector().appFeatures({BenchmarkId::Svm, 20});
    EXPECT_GT(svm.gpuTime, svm.cpuTime);
}

TEST(Integration, CpuTimeCorrelatesWithBagGpuTime)
{
    // Section VI-A reports corr(CPU time, bag GPU time) ~ 0.95.
    std::vector<BagSpec> specs;
    for (BenchmarkId id : vision::kAllBenchmarks)
        for (int batch : {20, 80})
            specs.push_back(BagSpec{{id, batch}, {id, batch}});
    const auto points = collector().collectAll(specs);
    std::vector<double> cpu;
    std::vector<double> target;
    for (const auto& p : points) {
        cpu.push_back(p.a.cpuTime);
        target.push_back(p.gpuBagTime);
    }
    EXPECT_GT(stats::pearson(cpu, target), 0.75);
}

TEST(Integration, BatchSizeScalesMeasuredTimes)
{
    // Bigger batches take longer everywhere (dataset sanity).
    for (BenchmarkId id : {BenchmarkId::Sift, BenchmarkId::Knn}) {
        const auto& small = collector().appFeatures({id, 20});
        const auto& large = collector().appFeatures({id, 160});
        EXPECT_GT(large.cpuTime, small.cpuTime)
            << vision::benchmarkName(id);
        EXPECT_GT(large.gpuTime, small.gpuTime)
            << vision::benchmarkName(id);
    }
}

TEST(Integration, HeterogeneousFairnessSpreads)
{
    // Fairness must actually vary across hetero bags (it carries the
    // contention-asymmetry signal the paper relies on).
    std::vector<double> fair;
    for (std::size_t i = 0; i < vision::kAllBenchmarks.size(); ++i)
        for (std::size_t j = i + 1; j < vision::kAllBenchmarks.size(); ++j)
            fair.push_back(
                collector()
                    .collect(BagSpec{{vision::kAllBenchmarks[i], 20},
                                     {vision::kAllBenchmarks[j], 20}})
                    .fairness);
    EXPECT_LT(stats::minimum(fair), 0.85);
    EXPECT_GT(stats::maximum(fair), 0.9);
}

}  // namespace
