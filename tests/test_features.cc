/** @file Unit tests for the feature schema, schemes and normalization. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/log.h"
#include "predictor/features.h"
#include "predictor/schemes.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;

TEST(Features, BaseNamesCoverTableIV)
{
    const auto names = baseFeatureNames();
    ASSERT_EQ(names.size(), 11u);  // 2 times + 9 mix classes
    EXPECT_EQ(names[0], "cpu_time");
    EXPECT_EQ(names[1], "gpu_time");
    EXPECT_NE(std::find(names.begin(), names.end(), "sse"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "mem_rd"),
              names.end());
}

TEST(Features, BagNamesReplicateSlotsPlusFairness)
{
    const auto names = bagFeatureNames();
    EXPECT_EQ(names.size(), 2u * 11u + 1u);
    EXPECT_EQ(names.front(), "a0_cpu_time");
    EXPECT_EQ(names.back(), "fairness");
    EXPECT_NE(std::find(names.begin(), names.end(), "a1_gpu_time"),
              names.end());
}

TEST(Features, BaseNameOfStripsSlot)
{
    EXPECT_EQ(baseNameOf("a0_cpu_time"), "cpu_time");
    EXPECT_EQ(baseNameOf("a1_sse"), "sse");
    EXPECT_EQ(baseNameOf("fairness"), "fairness");
}

TEST(Features, BuildBagVectorLayout)
{
    AppFeatures a;
    a.cpuTime = 1.0;
    a.gpuTime = 2.0;
    a.mixPercent[static_cast<std::size_t>(isa::InstClass::IntAlu)] = 40.0;
    AppFeatures b;
    b.cpuTime = 3.0;
    b.gpuTime = 4.0;
    const auto v = buildBagVector(a, b, 0.7);
    const auto names = bagFeatureNames();
    ASSERT_EQ(v.size(), names.size());
    EXPECT_DOUBLE_EQ(v[0], 1.0);   // a0_cpu_time
    EXPECT_DOUBLE_EQ(v[1], 2.0);   // a0_gpu_time
    EXPECT_DOUBLE_EQ(v[11], 3.0);  // a1_cpu_time
    EXPECT_DOUBLE_EQ(v.back(), 0.7);
    // arith percent lands at the right slot.
    const auto it = std::find(names.begin(), names.end(), "a0_arith");
    ASSERT_NE(it, names.end());
    EXPECT_DOUBLE_EQ(
        v[static_cast<std::size_t>(it - names.begin())], 40.0);
}

TEST(Normalizer, ScaleIsCpuTimeRange)
{
    ml::Dataset d(bagFeatureNames());
    AppFeatures a;
    a.cpuTime = 1.0;
    AppFeatures b;
    b.cpuTime = 5.0;
    d.addRow(buildBagVector(a, b, 1.0), 10.0, "g");
    AppFeatures c;
    c.cpuTime = 3.0;
    d.addRow(buildBagVector(c, c, 1.0), 20.0, "g");

    RangeNormalizer norm;
    norm.fit(d);
    EXPECT_DOUBLE_EQ(norm.scale(), 4.0);  // max 5 - min 1 across columns
}

TEST(Normalizer, AppliesOnlyToTimeFeaturesAndTarget)
{
    ml::Dataset d(bagFeatureNames());
    AppFeatures a;
    a.cpuTime = 2.0;
    a.gpuTime = 8.0;
    a.mixPercent[0] = 50.0;
    AppFeatures b;
    b.cpuTime = 6.0;
    d.addRow(buildBagVector(a, b, 0.9), 12.0, "g");

    RangeNormalizer norm;
    norm.fit(d);
    ASSERT_DOUBLE_EQ(norm.scale(), 4.0);
    const auto out = norm.apply(d);
    EXPECT_DOUBLE_EQ(out.row(0)[0], 0.5);   // cpu_time scaled
    EXPECT_DOUBLE_EQ(out.row(0)[1], 2.0);   // gpu_time scaled
    EXPECT_DOUBLE_EQ(out.row(0)[2], 50.0);  // mix untouched
    EXPECT_DOUBLE_EQ(out.row(0).back(), 0.9);  // fairness untouched
    EXPECT_DOUBLE_EQ(out.target(0), 3.0);   // target scaled
    EXPECT_DOUBLE_EQ(norm.denormalizeTarget(out.target(0)), 12.0);
}

TEST(Normalizer, DegenerateRangeFallsBackToIdentity)
{
    ml::Dataset d(bagFeatureNames());
    AppFeatures a;
    a.cpuTime = 2.0;
    d.addRow(buildBagVector(a, a, 1.0), 5.0, "g");
    RangeNormalizer norm;
    norm.fit(d);
    EXPECT_DOUBLE_EQ(norm.scale(), 1.0);
}

TEST(Schemes, InsmixExpandsBothSlots)
{
    const auto names = insmixScheme().featureNames();
    EXPECT_EQ(names.size(), 18u);  // 9 classes x 2 slots, no fairness
    EXPECT_EQ(std::count_if(names.begin(), names.end(),
                            [](const std::string& n) {
                                return n.find("cpu_time") !=
                                       std::string::npos;
                            }),
              0);
}

TEST(Schemes, FullSchemeIsWholeVector)
{
    const auto names = fullScheme().featureNames();
    EXPECT_EQ(names.size(), bagFeatureNames().size());
}

TEST(Schemes, MemOnlyAndComputeOnly)
{
    FeatureScheme mem;
    mem.memOnly = true;
    EXPECT_EQ(mem.featureNames().size(), 4u);  // mem_rd/mem_wr x 2

    FeatureScheme compute;
    compute.computeOnly = true;
    const auto names = compute.featureNames();
    EXPECT_EQ(names.size(), 4u);  // arith/sse x 2
    EXPECT_EQ(names[0], "a0_arith");
}

TEST(Schemes, AddComponentComposes)
{
    FeatureScheme s;
    s.memOnly = true;
    const auto with = s.with("cpu").with("fairness");
    const auto names = with.featureNames();
    EXPECT_EQ(names.size(), 4u + 2u + 1u);
    EXPECT_EQ(names.back(), "fairness");
}

TEST(Schemes, AddUnknownComponentFatal)
{
    EXPECT_THROW(addComponent({}, "bogus"), FatalError);
}

TEST(Schemes, Figure5LineupMatchesPaper)
{
    const auto schemes = figure5Schemes();
    ASSERT_EQ(schemes.size(), 4u);
    EXPECT_FALSE(schemes[0].cpuTime);   // insmix only
    EXPECT_TRUE(schemes[1].cpuTime);    // + CPU time
    EXPECT_TRUE(schemes[2].fairness);   // + fairness
    EXPECT_TRUE(schemes[3].gpuTime);    // full
    // Feature sets grow monotonically along the lineup.
    for (std::size_t i = 1; i < schemes.size(); ++i)
        EXPECT_GT(schemes[i].featureNames().size(),
                  schemes[i - 1].featureNames().size());
}

TEST(Schemes, SensitivityBasesAreDistinct)
{
    const auto bases = sensitivityBaseSchemes();
    EXPECT_GE(bases.size(), 5u);
    for (std::size_t i = 0; i < bases.size(); ++i)
        for (std::size_t j = i + 1; j < bases.size(); ++j)
            EXPECT_NE(bases[i].featureNames(), bases[j].featureNames());
}

}  // namespace
