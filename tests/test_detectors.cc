/** @file Functional tests for FAST, ORB, SIFT and SURF detectors. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "profiler/op_profiler.h"
#include "vision/fast.h"
#include "vision/image.h"
#include "vision/orb.h"
#include "vision/sift.h"
#include "vision/surf.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

/** A flat background with a single bright square: four sharp corners. */
Image
squareImage(int size = 48)
{
    Image img(size, size, 50.0f);
    synth::drawRect(img, size / 4, size / 4, 3 * size / 4, 3 * size / 4,
                    200.0f);
    return img;
}

TEST(Fast, FlatImageHasNoCorners)
{
    const Image img(48, 48, 100.0f);
    EXPECT_TRUE(detectFast(img).empty());
}

TEST(Fast, DetectsSquareCorners)
{
    const auto kps = detectFast(squareImage());
    EXPECT_GE(kps.size(), 4u);
    // At least one keypoint near the top-left corner of the square.
    bool nearCorner = false;
    for (const auto& kp : kps) {
        if (std::abs(kp.x - 12.0f) <= 3.0f && std::abs(kp.y - 12.0f) <= 3.0f)
            nearCorner = true;
    }
    EXPECT_TRUE(nearCorner);
}

TEST(Fast, NoCornersOnPlainEdge)
{
    // A straight vertical edge has no FAST-9 corners away from image
    // borders.
    Image img(48, 48, 50.0f);
    synth::drawRect(img, 24, 0, 47, 47, 200.0f);
    for (const auto& kp : detectFast(img)) {
        // Any detection must not be in the middle of the straight edge.
        EXPECT_FALSE(std::abs(kp.x - 24.0f) < 2.0f && kp.y > 8.0f &&
                     kp.y < 40.0f)
            << "corner at (" << kp.x << "," << kp.y << ")";
    }
}

TEST(Fast, ThresholdMonotonicity)
{
    Rng rng(3);
    const Image img = synth::scene(64, 64, rng);
    FastParams lo;
    lo.threshold = 10.0f;
    FastParams hi;
    hi.threshold = 40.0f;
    EXPECT_GE(detectFast(img, lo).size(), detectFast(img, hi).size());
}

TEST(Fast, RecordsSegmentTestPhase)
{
    profiler::ProfilerSession session("FAST", 1);
    detectFast(squareImage());
    const auto trace = session.take();
    ASSERT_GE(trace.size(), 2u);
    EXPECT_EQ(trace.phases()[0].name, "fast_segment_test");
    EXPECT_GT(trace.phases()[0].branchDivergence, 0.5);
}

TEST(Orb, ProducesDescriptorsForKeypoints)
{
    Rng rng(5);
    const Image img = synth::scene(64, 64, rng);
    const auto res = detectOrb(img);
    EXPECT_EQ(res.keypoints.size(), res.descriptors.size());
    EXPECT_FALSE(res.keypoints.empty());
    for (const auto& d : res.descriptors)
        EXPECT_EQ(d.size(), 32u);  // 256 bits
}

TEST(Orb, RespectsMaxKeypoints)
{
    Rng rng(7);
    const Image img = synth::scene(96, 96, rng);
    OrbParams params;
    params.maxKeypoints = 10;
    const auto res = detectOrb(img, params);
    EXPECT_LE(res.keypoints.size(), 10u);
}

TEST(Orb, KeypointsRankedByResponse)
{
    Rng rng(9);
    const Image img = synth::scene(64, 64, rng);
    const auto res = detectOrb(img);
    for (std::size_t i = 1; i < res.keypoints.size(); ++i)
        EXPECT_GE(res.keypoints[i - 1].response,
                  res.keypoints[i].response);
}

TEST(Orb, EmptyOnFlatImage)
{
    const Image img(64, 64, 128.0f);
    const auto res = detectOrb(img);
    EXPECT_TRUE(res.keypoints.empty());
}

TEST(Sift, DescriptorsAre128DAndNormalized)
{
    Rng rng(11);
    const Image img = synth::scene(64, 64, rng);
    const auto res = detectSift(img);
    ASSERT_FALSE(res.descriptors.empty());
    for (const auto& d : res.descriptors) {
        ASSERT_EQ(d.size(), 128u);
        double norm = 0.0;
        for (float v : d)
            norm += static_cast<double>(v) * static_cast<double>(v);
        EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
    }
}

TEST(Sift, FlatImageYieldsNothing)
{
    const Image img(64, 64, 90.0f);
    EXPECT_TRUE(detectSift(img).keypoints.empty());
}

TEST(Sift, ContrastThresholdMonotonicity)
{
    Rng rng(13);
    const Image img = synth::scene(64, 64, rng);
    SiftParams lo;
    lo.contrastThreshold = 1.0f;
    SiftParams hi;
    hi.contrastThreshold = 8.0f;
    EXPECT_GE(detectSift(img, lo).keypoints.size(),
              detectSift(img, hi).keypoints.size());
}

TEST(Sift, MultiOctaveKeypointsCoverScales)
{
    Rng rng(15);
    const Image img = synth::scene(128, 128, rng);
    const auto res = detectSift(img);
    bool sawBase = false;
    bool sawHigher = false;
    for (const auto& kp : res.keypoints) {
        if (kp.scale == 1.0f)
            sawBase = true;
        if (kp.scale > 1.0f)
            sawHigher = true;
    }
    EXPECT_TRUE(sawBase);
    EXPECT_TRUE(sawHigher);
}

TEST(Surf, DetectsBlobStructure)
{
    Image img(64, 64, 100.0f);
    synth::drawDisc(img, 32, 32, 6, 220.0f);
    const auto res = detectSurf(img);
    EXPECT_FALSE(res.keypoints.empty());
    // The strongest response should be near the blob center.
    const auto& best = *std::max_element(
        res.keypoints.begin(), res.keypoints.end(),
        [](const Keypoint& a, const Keypoint& b) {
            return a.response < b.response;
        });
    EXPECT_NEAR(best.x, 32.0f, 6.0f);
    EXPECT_NEAR(best.y, 32.0f, 6.0f);
}

TEST(Surf, DescriptorsAre64DAndNormalized)
{
    Rng rng(17);
    const Image img = synth::scene(64, 64, rng);
    const auto res = detectSurf(img);
    ASSERT_EQ(res.keypoints.size(), res.descriptors.size());
    for (const auto& d : res.descriptors) {
        ASSERT_EQ(d.size(), 64u);
        double norm = 0.0;
        for (float v : d)
            norm += static_cast<double>(v) * static_cast<double>(v);
        EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3);
    }
}

TEST(Surf, FlatImageYieldsNothing)
{
    const Image img(64, 64, 90.0f);
    EXPECT_TRUE(detectSurf(img).keypoints.empty());
}

}  // namespace
