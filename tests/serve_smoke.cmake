# Two-process smoke for `mapp_cli serve`: feed a JSONL session over
# stdin (ping, a member-form predict, a raw predict_batch, stats,
# shutdown), then assert the service answered every request, exited 0
# on the shutdown op, and wrote an intact metrics sidecar. Driven by
# ctest:
#   cmake -DMAPP_CLI=<path> -DWORK_DIR=<dir> -P serve_smoke.cmake

foreach(var MAPP_CLI WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "serve_smoke: -D${var}=... is required")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(requests "${WORK_DIR}/requests.jsonl")
set(responses "${WORK_DIR}/responses.jsonl")
set(metrics "${WORK_DIR}/metrics.json")

set(raw_app "{\"cpu_time\":0.5,\"gpu_time\":0.25,\"mix\":[10,10,10,10,10,10,10,10,20]}")
file(WRITE "${requests}"
     "{\"op\":\"ping\",\"id\":\"s1\"}\n"
     "{\"op\":\"predict\",\"id\":\"s2\",\"a\":\"SIFT@20\",\"b\":\"FAST@20\"}\n"
     "{\"op\":\"predict_batch\",\"id\":\"s3\",\"queries\":[{\"a\":${raw_app},\"b\":${raw_app},\"fairness\":0.5},{\"a\":${raw_app},\"b\":${raw_app},\"fairness\":0.9}]}\n"
     "{\"op\":\"stats\",\"id\":\"s4\"}\n"
     "{\"op\":\"shutdown\",\"id\":\"s5\"}\n")

execute_process(
    COMMAND "${MAPP_CLI}"
            "--metrics-out=${metrics}"
            serve --stdin --linger-ms=1
    INPUT_FILE "${requests}"
    OUTPUT_FILE "${responses}"
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    file(READ "${responses}" out)
    message(FATAL_ERROR
            "serve_smoke: serve exited ${rc}:\n${out}\n${err}")
endif()

file(READ "${responses}" out)

# Every request answered ok, none dropped on the drain path.
foreach(id s1 s2 s3 s4 s5)
    string(FIND "${out}" "\"id\":\"${id}\",\"ok\":true" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "serve_smoke: no ok response for ${id}:\n${out}\n${err}")
    endif()
endforeach()

# The predictions actually carry numbers.
string(FIND "${out}" "\"predicted_seconds\":" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
            "serve_smoke: no predicted_seconds in:\n${out}")
endif()

# The batch answer is a two-element array.
string(REGEX MATCH "\"id\":\"s3\"[^\n]*\"predicted_seconds\":\\[[^]]+,[^]]+\\]" batch "${out}")
if(batch STREQUAL "")
    message(FATAL_ERROR
            "serve_smoke: predict_batch did not answer an array:\n${out}")
endif()

# The metrics sidecar survived shutdown and saw the serve counters.
if(NOT EXISTS "${metrics}")
    message(FATAL_ERROR "serve_smoke: no metrics sidecar at ${metrics}")
endif()
file(READ "${metrics}" metric_doc)
foreach(counter "serve.requests" "serve.predictions" "serve.batches")
    string(FIND "${metric_doc}" "${counter}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "serve_smoke: metrics sidecar is missing ${counter}:\n"
                "${metric_doc}")
    endif()
endforeach()
