/** @file Dispatch-equivalence suite for the runtime SIMD kernel layer:
 * every available tier (scalar, sse2, avx2) must be bit-identical to
 * the scalar baseline — fuzzed over random trees/forests (including
 * NaN features and on-threshold probes), batch shapes that exercise
 * the 16-row gather strips and every cascade tail, the normalizer, the
 * metric reductions, and across thread counts. Also covers the
 * dispatch layer itself: tier parsing, clamping, the kernelsFor()
 * escape hatch and the simd.active_tier gauge. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stats.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "predictor/features.h"

namespace {

using namespace mapp;

/** Bitwise vector comparison: the contract is identity, not epsilon. */
void
expectBitIdentical(const std::vector<double>& scalar,
                   const std::vector<double>& tiered,
                   const std::string& what)
{
    ASSERT_EQ(scalar.size(), tiered.size()) << what;
    ASSERT_EQ(0, std::memcmp(scalar.data(), tiered.data(),
                             scalar.size() * sizeof(double)))
        << what;
}

ml::Dataset
randomDataset(Rng& rng, std::size_t rows, std::size_t features)
{
    std::vector<std::string> names;
    for (std::size_t f = 0; f < features; ++f)
        names.push_back("f" + std::to_string(f));
    ml::Dataset d(names);
    for (std::size_t r = 0; r < rows; ++r) {
        std::vector<double> row;
        for (std::size_t f = 0; f < features; ++f)
            row.push_back(rng.uniform(-10.0, 10.0));
        d.addRow(std::move(row), rng.uniform(-5.0, 5.0), "g");
    }
    return d;
}

/**
 * A row-major probe batch: random points, points sitting exactly ON
 * split thresholds (the <= boundary every tier must route the same
 * way), and a sprinkling of NaN features (NaN fails <=, so it must
 * route right in every tier).
 */
std::vector<double>
probeBatch(Rng& rng, const ml::DecisionTreeRegressor& tree,
           std::size_t features, std::size_t rows)
{
    std::vector<double> flat;
    flat.reserve(rows * features);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t f = 0; f < features; ++f)
            flat.push_back(rng.uniform(-12.0, 12.0));
    for (std::size_t r = 0; r < rows; ++r) {
        const auto n = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(tree.nodeCount()) - 1));
        const auto v = tree.nodeView(n);
        if (!v.leaf)
            flat[r * features + static_cast<std::size_t>(v.feature)] =
                v.threshold;
        if (r % 13 == 0)
            flat[r * features +
                 static_cast<std::size_t>(
                     rng.uniformInt(0, static_cast<int>(features) - 1))] =
                std::numeric_limits<double>::quiet_NaN();
    }
    return flat;
}

/** Run @p body once per available tier above scalar, restoring the
 * auto-detected tier afterwards even on assertion failure. */
template <typename Body>
void
forEachVectorTier(Body&& body)
{
    for (simd::Tier t : simd::availableTiers()) {
        if (t == simd::Tier::Scalar)
            continue;
        simd::setTier(t);
        body(t);
    }
    simd::setTier(simd::detectBestTier());
}

TEST(SimdDispatch, TierNamesRoundTrip)
{
    EXPECT_STREQ("scalar", simd::tierName(simd::Tier::Scalar));
    EXPECT_STREQ("sse2", simd::tierName(simd::Tier::Sse2));
    EXPECT_STREQ("avx2", simd::tierName(simd::Tier::Avx2));
    EXPECT_TRUE(simd::setTierFromName("scalar"));
    EXPECT_EQ(simd::Tier::Scalar, simd::activeTier());
    EXPECT_TRUE(simd::setTierFromName("auto"));
    EXPECT_EQ(simd::detectBestTier(), simd::activeTier());
    // Unknown names are rejected without changing the active tier.
    EXPECT_FALSE(simd::setTierFromName("avx512"));
    EXPECT_FALSE(simd::setTierFromName(""));
    EXPECT_EQ(simd::detectBestTier(), simd::activeTier());
}

TEST(SimdDispatch, AvailableTiersStartScalarAndHaveTables)
{
    const auto tiers = simd::availableTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(simd::Tier::Scalar, tiers.front());
    for (simd::Tier t : tiers) {
        const simd::Kernels* k = simd::kernelsFor(t);
        ASSERT_NE(nullptr, k) << simd::tierName(t);
        EXPECT_EQ(t, k->tier);
        EXPECT_STREQ(simd::tierName(t), k->name);
        EXPECT_NE(nullptr, k->walk);
        EXPECT_NE(nullptr, k->normalizeRows);
        EXPECT_NE(nullptr, k->scaleValues);
        EXPECT_NE(nullptr, k->sumSquaredDiff);
        EXPECT_NE(nullptr, k->sumSquaredDev);
        EXPECT_NE(nullptr, k->sumAbsRelErrPct);
    }
}

TEST(SimdDispatch, GaugeTracksActiveTier)
{
    const auto gaugeValue = [] {
        const auto snap = obs::defaultRegistry().snapshot();
        const double* v = snap.findGauge("simd.active_tier");
        return v != nullptr ? *v : -1.0;
    };
    simd::setTier(simd::Tier::Scalar);
    EXPECT_EQ(0.0, gaugeValue());
    simd::setTier(simd::detectBestTier());
    EXPECT_EQ(static_cast<double>(
                  static_cast<int>(simd::activeTier())),
              gaugeValue());
}

TEST(SimdDispatch, UnsupportedTierClampsInsteadOfCrashing)
{
    // Asking for a wider tier than the CPU has must clamp to the best
    // available — honoring it would be an illegal-instruction crash.
    simd::setTier(simd::Tier::Avx2);
    EXPECT_LE(simd::activeTier(), simd::detectBestTier());
    EXPECT_GE(simd::activeTier(), simd::Tier::Scalar);
    // kernelsFor is nullptr above the CPU's best, a real table below.
    if (simd::detectBestTier() < simd::Tier::Avx2)
        EXPECT_EQ(nullptr, simd::kernelsFor(simd::Tier::Avx2));
    simd::setTier(simd::detectBestTier());
}

TEST(SimdKernels, TreeBatchBitIdenticalAcrossTiers)
{
    Rng rng(90210);
    for (int trial = 0; trial < 24; ++trial) {
        const auto features =
            static_cast<std::size_t>(rng.uniformInt(1, 8));
        const auto d = randomDataset(
            rng, static_cast<std::size_t>(rng.uniformInt(4, 90)),
            features);
        ml::DecisionTreeParams params;
        params.maxDepth = static_cast<int>(rng.uniformInt(1, 9));
        ml::DecisionTreeRegressor tree(params);
        tree.fit(d);
        const ml::CompiledTree compiled(tree);

        // Row counts chosen to hit the 16-row AVX2 strips, the 8/4
        // scalar cascade blocks, the rolled tail, and the backward-
        // overlapping partial chunk blocks.
        const auto rows = static_cast<std::size_t>(
            rng.uniformInt(1, trial % 3 == 0 ? 700 : 70));
        const auto flat = probeBatch(rng, tree, features, rows);

        simd::setTier(simd::Tier::Scalar);
        std::vector<double> baseline(rows);
        compiled.predictBatch(flat, features, baseline);

        forEachVectorTier([&](simd::Tier t) {
            std::vector<double> out(rows);
            compiled.predictBatch(flat, features, out);
            expectBitIdentical(baseline, out,
                               std::string("tree walk, tier ") +
                                   simd::tierName(t));
        });
    }
}

TEST(SimdKernels, ForestBatchBitIdenticalAcrossTiersAndThreads)
{
    Rng rng(777);
    const std::size_t features = 5;
    const auto d = randomDataset(rng, 80, features);
    ml::RandomForestParams params;
    params.numTrees = 12;
    ml::RandomForestRegressor forest(params);
    forest.fit(d);
    const ml::CompiledForest compiled(forest);

    // 1100 rows: several 256-row chunks plus a partial one.
    const std::size_t rows = 1100;
    std::vector<double> flat;
    flat.reserve(rows * features);
    for (std::size_t i = 0; i < rows * features; ++i)
        flat.push_back(rng.uniform(-12.0, 12.0));

    simd::setTier(simd::Tier::Scalar);
    std::vector<double> baseline(rows);
    compiled.predictBatch(flat, features, baseline);

    for (int threads : {1, 2, 4}) {
        parallel::setMaxThreads(threads);
        forEachVectorTier([&](simd::Tier t) {
            std::vector<double> out(rows);
            compiled.predictBatch(flat, features, out);
            expectBitIdentical(baseline, out,
                               std::string("forest walk, tier ") +
                                   simd::tierName(t) + ", threads " +
                                   std::to_string(threads));
        });
    }
    parallel::setMaxThreads(0);  // restore the environment default
}

TEST(SimdKernels, NormalizeRowsBitIdenticalAcrossTiers)
{
    Rng rng(31337);
    for (int trial = 0; trial < 40; ++trial) {
        const auto features =
            static_cast<std::size_t>(rng.uniformInt(1, 13));
        const auto rows =
            static_cast<std::size_t>(rng.uniformInt(1, 50));
        std::vector<double> data(rows * features);
        for (double& v : data)
            v = rng.uniform(-1e6, 1e6);
        std::vector<double> divisors(features);
        for (double& v : divisors)
            v = rng.uniformInt(0, 2) == 0 ? 1.0
                                          : rng.uniform(1e-3, 1e3);

        auto baseline = data;
        simd::kernelsFor(simd::Tier::Scalar)
            ->normalizeRows(baseline.data(), rows, divisors.data(),
                            features);
        for (simd::Tier t : simd::availableTiers()) {
            auto out = data;
            simd::kernelsFor(t)->normalizeRows(out.data(), rows,
                                               divisors.data(),
                                               features);
            expectBitIdentical(baseline, out,
                               std::string("normalizeRows, tier ") +
                                   simd::tierName(t));
        }
    }
}

TEST(SimdKernels, RangeNormalizerMatchesMaskedReference)
{
    // Pins the divisor-of-1.0 trick: the branch-free kernel divide
    // must equal the old masked per-element divide bit for bit.
    Rng rng(5150);
    const auto names = predictor::bagFeatureNames();
    const auto mask = predictor::RangeNormalizer::timeFeatureMask(names);
    ml::Dataset train(names);
    for (int r = 0; r < 12; ++r) {
        std::vector<double> row(names.size());
        for (double& v : row)
            v = rng.uniform(0.1, 40.0);
        train.addRow(std::move(row), rng.uniform(0.1, 40.0), "g");
    }
    predictor::RangeNormalizer norm;
    norm.fit(train);
    ASSERT_NE(1.0, norm.scale());

    const std::size_t rows = 37;
    std::vector<double> flat(rows * names.size());
    for (double& v : flat)
        v = rng.uniform(-50.0, 50.0);

    auto reference = flat;
    for (std::size_t base = 0; base < reference.size();
         base += names.size())
        for (std::size_t f = 0; f < names.size(); ++f)
            if (mask[f])
                reference[base + f] /= norm.scale();

    for (simd::Tier t : simd::availableTiers()) {
        simd::setTier(t);
        auto out = flat;
        norm.applyBatchInPlace(out, mask);
        expectBitIdentical(reference, out,
                           std::string("applyBatchInPlace, tier ") +
                               simd::tierName(t));

        // denormalizeInPlace is the inverse direction (multiply).
        auto denorm = out;
        norm.denormalizeInPlace(denorm);
        auto denormRef = out;
        for (double& v : denormRef)
            v *= norm.scale();
        expectBitIdentical(denormRef, denorm,
                           std::string("denormalizeInPlace, tier ") +
                               simd::tierName(t));
    }
    simd::setTier(simd::detectBestTier());
}

TEST(SimdKernels, ReductionsBitIdenticalAcrossTiers)
{
    Rng rng(161803);
    for (int trial = 0; trial < 40; ++trial) {
        // Lengths hit full vectors, odd tails and the n < width case.
        const auto n =
            static_cast<std::size_t>(rng.uniformInt(1, 129));
        std::vector<double> a(n);
        std::vector<double> b(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.uniform(-1e4, 1e4);
            // Include tiny truths so the 1e-300 denominator floor and
            // the exact MAXPD tie both get exercised.
            b[i] = i % 11 == 0 ? 0.0 : rng.uniform(-1e4, 1e4);
            if (i % 17 == 0)
                a[i] = 0.0;
        }
        const double center = rng.uniform(-10.0, 10.0);

        const simd::Kernels* s =
            simd::kernelsFor(simd::Tier::Scalar);
        for (simd::Tier t : simd::availableTiers()) {
            const simd::Kernels* k = simd::kernelsFor(t);
            const auto* tn = simd::tierName(t);
            EXPECT_EQ(s->sumSquaredDiff(a.data(), b.data(), n),
                      k->sumSquaredDiff(a.data(), b.data(), n))
                << tn;
            EXPECT_EQ(s->sumSquaredDev(a.data(), n, center),
                      k->sumSquaredDev(a.data(), n, center))
                << tn;
            EXPECT_EQ(s->sumAbsRelErrPct(a.data(), b.data(), n),
                      k->sumAbsRelErrPct(a.data(), b.data(), n))
                << tn;
        }
    }
}

TEST(SimdKernels, MetricsAndStatsBitIdenticalAcrossTiers)
{
    Rng rng(271828);
    const std::size_t n = 513;
    std::vector<double> truth(n);
    std::vector<double> pred(n);
    for (std::size_t i = 0; i < n; ++i) {
        truth[i] = rng.uniform(-100.0, 100.0);
        pred[i] = truth[i] + rng.uniform(-5.0, 5.0);
    }

    simd::setTier(simd::Tier::Scalar);
    const double mse0 = ml::meanSquaredError(truth, pred);
    const double mre0 = ml::meanRelativeErrorPercent(truth, pred);
    const double r20 = ml::r2Score(truth, pred);
    const double var0 = stats::variance(truth);
    const double sd0 = stats::stddev(truth);

    forEachVectorTier([&](simd::Tier t) {
        const auto* tn = simd::tierName(t);
        EXPECT_EQ(mse0, ml::meanSquaredError(truth, pred)) << tn;
        EXPECT_EQ(mre0, ml::meanRelativeErrorPercent(truth, pred))
            << tn;
        EXPECT_EQ(r20, ml::r2Score(truth, pred)) << tn;
        EXPECT_EQ(var0, stats::variance(truth)) << tn;
        EXPECT_EQ(sd0, stats::stddev(truth)) << tn;
    });
}

TEST(SimdKernels, ScaleValuesHandlesEmptyAndSingle)
{
    for (simd::Tier t : simd::availableTiers()) {
        const simd::Kernels* k = simd::kernelsFor(t);
        k->scaleValues(nullptr, 0, 2.0);  // no-op, must not crash
        double one = 3.0;
        k->scaleValues(&one, 1, 2.0);
        EXPECT_EQ(6.0, one) << simd::tierName(t);
        EXPECT_EQ(0.0, k->sumSquaredDiff(nullptr, nullptr, 0));
        EXPECT_EQ(0.0, k->sumSquaredDev(nullptr, 0, 1.0));
        EXPECT_EQ(0.0, k->sumAbsRelErrPct(nullptr, nullptr, 0));
    }
}

}  // namespace
