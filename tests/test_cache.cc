/**
 * @file
 * The persistent artifact cache and its binary serialization formats:
 * frame validation (magic/version/checksum/truncation), bit-identical
 * round-trips for traces, datasets and models, corrupt-entry fallback
 * (evict + recompute, never a crash or a stale hit), key invalidation
 * on config/salt changes, cross-collector warm loads, and concurrent
 * multi-thread access with corruption injected (run under TSan via
 * `ctest -L parallel` and ASan via `ctest -L robustness`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/artifact_cache.h"
#include "cache/binary_io.h"
#include "cache/hash.h"
#include "common/error.h"
#include "isa/trace_binary.h"
#include "ml/dataset_binary.h"
#include "ml/decision_tree.h"
#include "ml/model_binary.h"
#include "ml/random_forest.h"
#include "obs/metrics.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"

namespace {

using namespace mapp;

namespace fs = std::filesystem;

/** A fresh empty directory under the test temp root. */
std::string
freshDir(const std::string& name)
{
    const std::string dir = ::testing::TempDir() + "mapp_cache_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/**
 * Point the process-wide artifact cache at a fresh temp directory for
 * one test; restores it to disabled on destruction so other tests in
 * the binary stay hermetic.
 */
class ScopedDefaultCache
{
  public:
    explicit ScopedDefaultCache(const std::string& name)
        : dir_(freshDir(name))
    {
        cache::defaultArtifactCache().setDirectory(dir_);
    }

    ~ScopedDefaultCache()
    {
        cache::defaultArtifactCache().setDirectory("");
        fs::remove_all(dir_);
    }

    const std::string& dir() const { return dir_; }

  private:
    std::string dir_;
};

std::uint64_t
counterValue(const char* name)
{
    return obs::defaultRegistry().counter(name).value();
}

// ---------------------------------------------------------------------------
// Hashing

TEST(CacheHash, FieldBoundariesMatter)
{
    cache::Hasher a;
    a.add(std::string_view("ab"));
    a.add(std::string_view("c"));
    cache::Hasher b;
    b.add(std::string_view("a"));
    b.add(std::string_view("bc"));
    EXPECT_NE(a.digest(), b.digest());
}

TEST(CacheHash, DeterministicAcrossInstances)
{
    cache::Hasher a;
    a.add(42);
    a.add(3.25);
    a.add(std::string_view("SIFT"));
    cache::Hasher b;
    b.add(42);
    b.add(3.25);
    b.add(std::string_view("SIFT"));
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.hex().size(), 16u);
}

TEST(CacheHash, DoublesHashedByBitPattern)
{
    cache::Hasher a;
    a.add(0.0);
    cache::Hasher b;
    b.add(-0.0);
    EXPECT_NE(a.digest(), b.digest());  // 0.0 == -0.0 but distinct bits
}

TEST(CacheHash, KindAndSaltChangeTheKey)
{
    const std::uint64_t trace = cache::keyHasher("trace").digest();
    const std::uint64_t model = cache::keyHasher("model").digest();
    EXPECT_NE(trace, model);

    ::setenv("MAPP_CACHE_SALT", "test-salt-x", 1);
    const std::uint64_t salted = cache::keyHasher("trace").digest();
    ::unsetenv("MAPP_CACHE_SALT");
    EXPECT_NE(trace, salted);
    EXPECT_EQ(trace, cache::keyHasher("trace").digest());
}

// ---------------------------------------------------------------------------
// Binary frame

TEST(BinaryIo, RoundTripsEveryFieldType)
{
    cache::BinaryWriter w("TSTF", 3);
    w.u8(200);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.i32(-42);
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.str("length-prefixed \0 binary");  // embedded NUL survives
    const std::string blob = std::move(w).finish();

    cache::BinaryReader r(blob, "test", "TSTF", 3);
    EXPECT_EQ(r.u8(), 200);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(-0.0));
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_EQ(r.str(), "length-prefixed ");  // string_view stops at NUL
    r.expectEnd();
}

TEST(BinaryIo, RejectsWrongMagic)
{
    cache::BinaryWriter w("AAAA", 1);
    w.u32(7);
    const std::string blob = std::move(w).finish();
    EXPECT_THROW(cache::BinaryReader(blob, "t", "BBBB", 1), InputError);
}

TEST(BinaryIo, RejectsWrongVersion)
{
    cache::BinaryWriter w("AAAA", 1);
    w.u32(7);
    const std::string blob = std::move(w).finish();
    EXPECT_THROW(cache::BinaryReader(blob, "t", "AAAA", 2), InputError);
}

TEST(BinaryIo, RejectsTruncationAtEveryLength)
{
    cache::BinaryWriter w("AAAA", 1);
    w.str("payload");
    w.f64(1.5);
    const std::string blob = std::move(w).finish();
    for (std::size_t n = 0; n < blob.size(); ++n) {
        EXPECT_THROW(cache::BinaryReader(blob.substr(0, n), "t", "AAAA", 1),
                     InputError)
            << "length " << n;
    }
}

TEST(BinaryIo, RejectsEverySingleBitFlip)
{
    cache::BinaryWriter w("AAAA", 1);
    w.u64(0x1122334455667788ull);
    const std::string blob = std::move(w).finish();
    for (std::size_t i = 0; i < blob.size(); ++i) {
        std::string bad = blob;
        bad[i] = static_cast<char>(bad[i] ^ 0x10);
        EXPECT_THROW(cache::BinaryReader(bad, "t", "AAAA", 1), InputError)
            << "byte " << i;
    }
}

TEST(BinaryIo, RejectsOverRead)
{
    cache::BinaryWriter w("AAAA", 1);
    w.u32(7);
    const std::string blob = std::move(w).finish();
    cache::BinaryReader r(blob, "t", "AAAA", 1);
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u32(), InputError);  // past the payload
}

TEST(BinaryIo, ExpectEndRejectsTrailingPayload)
{
    cache::BinaryWriter w("AAAA", 1);
    w.u32(7);
    w.u32(8);
    const std::string blob = std::move(w).finish();
    cache::BinaryReader r(blob, "t", "AAAA", 1);
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.expectEnd(), InputError);
}

// ---------------------------------------------------------------------------
// Artifact formats round-trip bit-identically

isa::WorkloadTrace
sampleTrace()
{
    isa::WorkloadTrace trace("SIFT", 40);
    isa::KernelPhase p;
    p.name = "dog-pyramid";
    p.mix.add(isa::InstClass::IntAlu, 1000);
    p.mix.add(isa::InstClass::MemRead, 500);
    p.mix.add(isa::InstClass::FpAlu, 250);
    p.bytesRead = 1 << 20;
    p.bytesWritten = 1 << 18;
    p.footprint = 1 << 21;
    p.parallelFraction = 0.875;
    p.workItems = 4096;
    p.locality = 0.625;
    p.branchDivergence = 0.125;
    p.launches = 3;
    p.hostStaged = true;
    trace.append(p);
    isa::KernelPhase q = p;
    q.name = "orientation";
    q.hostStaged = false;
    q.parallelFraction = 0.5;
    trace.append(q);
    return trace;
}

TEST(ArtifactFormats, TraceRoundTripsBitIdentically)
{
    const auto trace = sampleTrace();
    const std::string blob = isa::traceToBinary(trace);
    const auto back = isa::traceFromBinary(blob, "blob");
    EXPECT_EQ(back.app(), trace.app());
    EXPECT_EQ(back.batchSize(), trace.batchSize());
    ASSERT_EQ(back.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto& a = trace.phases()[i];
        const auto& b = back.phases()[i];
        EXPECT_EQ(a.name, b.name);
        for (isa::InstClass c : isa::kAllInstClasses)
            EXPECT_EQ(a.mix.count(c), b.mix.count(c));
        EXPECT_EQ(a.bytesRead, b.bytesRead);
        EXPECT_EQ(a.bytesWritten, b.bytesWritten);
        EXPECT_EQ(a.footprint, b.footprint);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.parallelFraction),
                  std::bit_cast<std::uint64_t>(b.parallelFraction));
        EXPECT_EQ(a.workItems, b.workItems);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.locality),
                  std::bit_cast<std::uint64_t>(b.locality));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.branchDivergence),
                  std::bit_cast<std::uint64_t>(b.branchDivergence));
        EXPECT_EQ(a.launches, b.launches);
        EXPECT_EQ(a.hostStaged, b.hostStaged);
    }
    // Serialization is deterministic, so blobs are byte-stable too.
    EXPECT_EQ(blob, isa::traceToBinary(back));
}

TEST(ArtifactFormats, TraceBinaryRejectsCorruption)
{
    const std::string blob = isa::traceToBinary(sampleTrace());
    EXPECT_THROW(isa::traceFromBinary(blob.substr(0, blob.size() / 2), "t"),
                 InputError);
    std::string bad = blob;
    bad[blob.size() / 2] ^= 0x01;
    EXPECT_THROW(isa::traceFromBinary(bad, "t"), InputError);
    EXPECT_THROW(isa::traceFromBinary("", "t"), InputError);
}

ml::Dataset
sampleDataset()
{
    ml::Dataset data({"a0_cpu_time", "a0_gpu_time", "fairness"});
    data.addRow({1.5, 0.25, 0.9}, 2.75, "FAST+SIFT");
    data.addRow({3.0, 0.125, 0.7}, 1.5, "HoG+HoG");
    data.addRow({0.75, 2.5, 0.85}, 4.25, "SVM+KNN");
    data.addRow({2.25, 1.75, 0.95}, 3.5, "FAST+FAST");
    return data;
}

TEST(ArtifactFormats, DatasetRoundTripsBitIdentically)
{
    const auto data = sampleDataset();
    const auto back = ml::datasetFromBinary(ml::datasetToBinary(data), "b");
    ASSERT_EQ(back.size(), data.size());
    EXPECT_EQ(back.featureNames(), data.featureNames());
    for (std::size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(back.row(i), data.row(i));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.target(i)),
                  std::bit_cast<std::uint64_t>(data.target(i)));
        EXPECT_EQ(back.group(i), data.group(i));
    }
}

TEST(ArtifactFormats, DatasetHashCoversContent)
{
    auto digestOf = [](const ml::Dataset& d) {
        cache::Hasher h;
        ml::hashDataset(h, d);
        return h.digest();
    };
    const auto data = sampleDataset();
    EXPECT_EQ(digestOf(data), digestOf(sampleDataset()));

    ml::Dataset tweakedTarget = sampleDataset();
    ml::Dataset tweakedGroup({"a0_cpu_time", "a0_gpu_time", "fairness"});
    for (std::size_t i = 0; i < data.size(); ++i)
        tweakedGroup.addRow(data.row(i), data.target(i),
                            i == 0 ? "OTHER" : data.group(i));
    EXPECT_NE(digestOf(data), digestOf(tweakedGroup));
}

TEST(ArtifactFormats, TreeRoundTripPredictsIdentically)
{
    const auto data = sampleDataset();
    ml::DecisionTreeParams params;
    params.maxDepth = 4;
    params.minSamplesLeaf = 1;
    params.minSamplesSplit = 2;
    ml::DecisionTreeRegressor tree(params);
    tree.fit(data);

    const auto back =
        ml::treeFromBinary(ml::treeToBinary(tree), "model-blob");
    ASSERT_EQ(back.nodeCount(), tree.nodeCount());
    for (const auto& row : data.rows()) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.predict(row)),
                  std::bit_cast<std::uint64_t>(tree.predict(row)));
    }
    // Node-for-node identity, not just behavioral equivalence.
    for (std::size_t i = 0; i < tree.nodeCount(); ++i) {
        const auto a = tree.nodeView(i);
        const auto b = back.nodeView(i);
        EXPECT_EQ(a.leaf, b.leaf);
        EXPECT_EQ(a.feature, b.feature);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.threshold),
                  std::bit_cast<std::uint64_t>(b.threshold));
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.value),
                  std::bit_cast<std::uint64_t>(b.value));
        EXPECT_EQ(a.samples, b.samples);
        EXPECT_EQ(a.left, b.left);
        EXPECT_EQ(a.right, b.right);
    }
}

TEST(ArtifactFormats, ForestRoundTripPredictsIdentically)
{
    const auto data = sampleDataset();
    ml::RandomForestParams params;
    params.numTrees = 5;
    ml::RandomForestRegressor forest(params);
    forest.fit(data);
    const auto back =
        ml::forestFromBinary(ml::forestToBinary(forest), "forest-blob");
    for (const auto& row : data.rows()) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back.predict(row)),
                  std::bit_cast<std::uint64_t>(forest.predict(row)));
    }
}

TEST(ArtifactFormats, ModelBinaryRejectsGarbledNodes)
{
    const auto data = sampleDataset();
    ml::DecisionTreeRegressor tree;
    tree.fit(data);
    const std::string blob = ml::treeToBinary(tree);
    for (std::size_t i = 8; i < blob.size(); i += 7) {
        std::string bad = blob;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        // Checksum catches the flip; anything that (hypothetically)
        // slipped through would still die in fromNodes validation.
        EXPECT_THROW(ml::treeFromBinary(bad, "t"), FatalError);
    }
}

// ---------------------------------------------------------------------------
// ArtifactCache behavior

std::string
testBlob(std::uint64_t key)
{
    cache::BinaryWriter w("TSTC", 1);
    w.u64(key * 3 + 1);
    return std::move(w).finish();
}

std::uint64_t
parseTestBlob(const std::string& blob, const std::string& path)
{
    cache::BinaryReader r(blob, path, "TSTC", 1);
    const std::uint64_t v = r.u64();
    r.expectEnd();
    return v;
}

TEST(ArtifactCache, StoreThenLoadHits)
{
    cache::ArtifactCache store(freshDir("store_load"));
    const std::uint64_t hits0 = counterValue("cache.hits");
    const std::uint64_t misses0 = counterValue("cache.misses");

    EXPECT_FALSE(
        store.loadAndParse("kind", 7, parseTestBlob).has_value());
    EXPECT_EQ(counterValue("cache.misses"), misses0 + 1);

    EXPECT_TRUE(store.store("kind", 7, testBlob(7)));
    const auto hit = store.loadAndParse("kind", 7, parseTestBlob);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 7u * 3 + 1);
    EXPECT_EQ(counterValue("cache.hits"), hits0 + 1);
}

TEST(ArtifactCache, DisabledCacheDoesNothing)
{
    cache::ArtifactCache store;  // no directory -> disabled
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.store("kind", 1, testBlob(1)));
    const std::uint64_t misses0 = counterValue("cache.misses");
    EXPECT_FALSE(store.loadAndParse("kind", 1, parseTestBlob).has_value());
    EXPECT_EQ(counterValue("cache.misses"), misses0);  // not counted

    cache::ArtifactCache rooted(freshDir("disabled"));
    rooted.setEnabled(false);
    EXPECT_FALSE(rooted.store("kind", 1, testBlob(1)));
    EXPECT_FALSE(
        rooted.loadAndParse("kind", 1, parseTestBlob).has_value());
}

TEST(ArtifactCache, CorruptEntryIsEvictedAndRecomputed)
{
    cache::ArtifactCache store(freshDir("corrupt"));
    ASSERT_TRUE(store.store("kind", 9, testBlob(9)));

    // Garble the file on disk behind the cache's back.
    const std::string path = store.entryPath("kind", 9);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "not a valid frame";
    }
    const std::uint64_t evictions0 = counterValue("cache.evictions");
    EXPECT_FALSE(
        store.loadAndParse("kind", 9, parseTestBlob).has_value());
    EXPECT_EQ(counterValue("cache.evictions"), evictions0 + 1);
    EXPECT_FALSE(fs::exists(path));  // corrupt file removed

    // The recompute-and-store path leaves the cache healthy again.
    ASSERT_TRUE(store.store("kind", 9, testBlob(9)));
    const auto hit = store.loadAndParse("kind", 9, parseTestBlob);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 9u * 3 + 1);
}

TEST(ArtifactCache, TruncatedEntryFallsBack)
{
    cache::ArtifactCache store(freshDir("truncated"));
    ASSERT_TRUE(store.store("kind", 11, testBlob(11)));
    const std::string path = store.entryPath("kind", 11);
    const auto size = fs::file_size(path);
    fs::resize_file(path, size / 2);
    EXPECT_FALSE(
        store.loadAndParse("kind", 11, parseTestBlob).has_value());
    EXPECT_FALSE(fs::exists(path));
}

TEST(ArtifactCache, ScanAndClear)
{
    cache::ArtifactCache store(freshDir("scan"));
    store.store("alpha", 1, testBlob(1));
    store.store("alpha", 2, testBlob(2));
    store.store("beta", 3, testBlob(3));

    const auto stats = store.scan();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].kind, "alpha");
    EXPECT_EQ(stats[0].entries, 2u);
    EXPECT_EQ(stats[1].kind, "beta");
    EXPECT_EQ(stats[1].entries, 1u);
    EXPECT_GT(stats[0].bytes, 0u);

    EXPECT_EQ(store.clear(), 3u);
    EXPECT_TRUE(store.scan().empty() ||
                store.scan()[0].entries + store.scan()[1].entries == 0);
}

// ---------------------------------------------------------------------------
// Pipeline integration: warm loads across collector instances

predictor::BagSpec
smallSpec()
{
    predictor::BagMember m{vision::BenchmarkId::Fast, 20};
    return predictor::BagSpec{m, m};
}

TEST(CacheIntegration, SecondCollectorLoadsIdenticalPointFromDisk)
{
    ScopedDefaultCache scoped("collector");

    predictor::DataCollector first;
    const auto cold = first.collect(smallSpec());

    const std::uint64_t hits0 = counterValue("cache.hits");
    predictor::DataCollector second;
    const auto warm = second.collect(smallSpec());
    // member + cpurun + gpurun records all hit.
    EXPECT_GE(counterValue("cache.hits"), hits0 + 3);

    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.fairness),
              std::bit_cast<std::uint64_t>(cold.fairness));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.cpuSharedMakespan),
              std::bit_cast<std::uint64_t>(cold.cpuSharedMakespan));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.gpuBagTime),
              std::bit_cast<std::uint64_t>(cold.gpuBagTime));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.a.cpuTime),
              std::bit_cast<std::uint64_t>(cold.a.cpuTime));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(warm.a.gpuTime),
              std::bit_cast<std::uint64_t>(cold.a.gpuTime));
    EXPECT_EQ(warm.a.mixPercent, cold.a.mixPercent);
}

TEST(CacheIntegration, SharedCpuCoRunIsMemoizedWithinACollector)
{
    ScopedDefaultCache scoped("shared_memo");

    predictor::DataCollector collector;
    const auto point = collector.collect(smallSpec());
    const std::uint64_t hits0 =
        counterValue("collector.shared_cache_hits");
    const std::uint64_t misses0 =
        counterValue("collector.shared_cache_misses");

    // measureFairness() reuses collect()'s co-run: a memo hit, no new
    // miss, and the identical fairness value.
    const double fair = collector.measureFairness(smallSpec());
    EXPECT_EQ(counterValue("collector.shared_cache_hits"), hits0 + 1);
    EXPECT_EQ(counterValue("collector.shared_cache_misses"), misses0);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(fair),
              std::bit_cast<std::uint64_t>(point.fairness));
}

TEST(CacheIntegration, CorruptMemberRecordFallsBackToSimulation)
{
    ScopedDefaultCache scoped("corrupt_member");

    predictor::DataCollector first;
    const auto cold = first.collect(smallSpec());

    // Garble every member record on disk.
    const std::string memberDir = scoped.dir() + "/member";
    ASSERT_TRUE(fs::exists(memberDir));
    for (const auto& entry : fs::directory_iterator(memberDir)) {
        std::ofstream out(entry.path(),
                          std::ios::binary | std::ios::trunc);
        out << "garbage";
    }

    predictor::DataCollector second;
    const auto recomputed = second.collect(smallSpec());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(recomputed.gpuBagTime),
              std::bit_cast<std::uint64_t>(cold.gpuBagTime));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(recomputed.a.cpuTime),
              std::bit_cast<std::uint64_t>(cold.a.cpuTime));
}

TEST(CacheIntegration, TrainedModelReloadsBitIdentically)
{
    ScopedDefaultCache scoped("model");

    predictor::PredictorParams params;
    params.scheme = predictor::FeatureScheme{};
    params.scheme.name = "times+fairness";
    params.scheme.cpuTime = true;
    params.scheme.gpuTime = true;
    params.scheme.fairness = true;

    // A small raw dataset carrying exactly the scheme's columns.
    ml::Dataset data(params.scheme.featureNames());
    const std::size_t nF = data.numFeatures();
    for (int r = 0; r < 12; ++r) {
        std::vector<double> row(nF);
        for (std::size_t k = 0; k < nF; ++k)
            row[k] = 0.25 * static_cast<double>((r * 7 + k * 3) % 11);
        data.addRow(std::move(row),
                    1.0 + 0.5 * static_cast<double>(r % 5), "G");
    }

    predictor::MultiAppPredictor cold(params);
    cold.train(data);
    const std::uint64_t hits0 = counterValue("cache.hits");

    predictor::MultiAppPredictor warm(params);
    warm.train(data);
    EXPECT_GE(counterValue("cache.hits"), hits0 + 1);

    const auto coldPred = cold.predictDataset(data);
    const auto warmPred = warm.predictDataset(data);
    ASSERT_EQ(coldPred.size(), warmPred.size());
    for (std::size_t i = 0; i < coldPred.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(coldPred[i]),
                  std::bit_cast<std::uint64_t>(warmPred[i]));
    }
}

// ---------------------------------------------------------------------------
// Concurrency: many threads over one store, corruption injected

TEST(CacheConcurrency, ParallelLoadStoreWithCorruptionIsSafe)
{
    cache::ArtifactCache store(freshDir("concurrent"));
    constexpr int kKeys = 16;
    constexpr int kThreads = 8;

    // Pre-corrupt the even keys: those files must be evicted and
    // recomputed by whichever thread touches them first.
    for (std::uint64_t key = 0; key < kKeys; key += 2) {
        store.store("kind", key, testBlob(key));
        std::ofstream out(store.entryPath("kind", key),
                          std::ios::binary | std::ios::trunc);
        out << "corrupt";
    }

    std::atomic<int> wrong{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, &wrong] {
            for (std::uint64_t key = 0; key < kKeys; ++key) {
                auto value =
                    store.loadAndParse("kind", key, parseTestBlob);
                if (!value) {
                    store.store("kind", key, testBlob(key));
                    value =
                        store.loadAndParse("kind", key, parseTestBlob);
                }
                if (!value || *value != key * 3 + 1)
                    wrong.fetch_add(1);
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(wrong.load(), 0);

    // Every key ends healthy.
    for (std::uint64_t key = 0; key < kKeys; ++key) {
        const auto value =
            store.loadAndParse("kind", key, parseTestBlob);
        ASSERT_TRUE(value.has_value()) << "key " << key;
        EXPECT_EQ(*value, key * 3 + 1);
    }
}

}  // namespace
