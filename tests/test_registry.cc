/** @file Tests for the benchmark registry and profiling batch runner. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "vision/registry.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

TEST(Registry, NamesRoundTrip)
{
    for (BenchmarkId id : kAllBenchmarks)
        EXPECT_EQ(benchmarkFromName(benchmarkName(id)), id);
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_THROW(benchmarkFromName("NOPE"), FatalError);
}

TEST(Registry, NineBenchmarksMatchTable2)
{
    EXPECT_EQ(kNumBenchmarks, 9);
    EXPECT_EQ(benchmarkName(BenchmarkId::ObjRec), "OBJREC");
    EXPECT_EQ(benchmarkName(BenchmarkId::FaceDet), "FACEDET");
    for (BenchmarkId id : kAllBenchmarks)
        EXPECT_FALSE(benchmarkDescription(id).empty());
}

TEST(Registry, PaperBatchSizes)
{
    ASSERT_EQ(kBatchSizes.size(), 5u);
    EXPECT_EQ(kBatchSizes[0], 20);
    EXPECT_EQ(kBatchSizes[4], 320);
}

TEST(Registry, GenerateBatchDeterministic)
{
    const auto a = generateBatch(BenchmarkId::Sift, 3, 7);
    const auto b = generateBatch(BenchmarkId::Sift, 3, 7);
    ASSERT_EQ(a.size(), 3u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].data(), b[i].data());
}

TEST(Registry, GenerateBatchVariesWithSeed)
{
    const auto a = generateBatch(BenchmarkId::Sift, 1, 7);
    const auto b = generateBatch(BenchmarkId::Sift, 1, 8);
    EXPECT_NE(a[0].data(), b[0].data());
}

TEST(Registry, EveryBenchmarkRunsOnASmallBatch)
{
    for (BenchmarkId id : kAllBenchmarks) {
        const auto batch = generateBatch(id, 4, 1);
        EXPECT_NO_THROW(runBenchmark(id, batch))
            << benchmarkName(id);
    }
}

TEST(Registry, ProfileWorkloadProducesNonEmptyTrace)
{
    const auto trace = profileWorkload(BenchmarkId::Hog, 20);
    EXPECT_EQ(trace.app(), "HoG");
    EXPECT_EQ(trace.batchSize(), 20);
    EXPECT_FALSE(trace.empty());
    EXPECT_GT(trace.totalInstructions(), 0u);
}

TEST(Registry, ProfileWorkloadRejectsBadBatch)
{
    EXPECT_THROW(profileWorkload(BenchmarkId::Hog, 0), FatalError);
}

TEST(Registry, SampledScalingGrowsWithBatch)
{
    // Per-image benchmarks are sampled + scaled: instructions should be
    // roughly proportional to the batch size.
    const auto t20 = profileWorkload(BenchmarkId::Fast, 20);
    const auto t80 = profileWorkload(BenchmarkId::Fast, 80);
    const double ratio =
        static_cast<double>(t80.totalInstructions()) /
        static_cast<double>(t20.totalInstructions());
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 6.0);
}

TEST(Registry, ScaleTraceMultipliesCountsNotFootprint)
{
    const auto base = profileWorkload(BenchmarkId::Fast, 4);
    const auto scaled = scaleTrace(base, 3);
    EXPECT_EQ(scaled.totalInstructions(), base.totalInstructions() * 3);
    EXPECT_EQ(scaled.totalBytesRead(), base.totalBytesRead() * 3);
    EXPECT_EQ(scaled.peakFootprint(), base.peakFootprint());
    ASSERT_EQ(scaled.size(), base.size());
    EXPECT_EQ(scaled.phases()[0].launches,
              base.phases()[0].launches * 3);
}

TEST(Registry, CachedTraceIsStable)
{
    const auto& a = cachedTrace(BenchmarkId::Svm, 20);
    const auto& b = cachedTrace(BenchmarkId::Svm, 20);
    EXPECT_EQ(&a, &b);  // same object, memoized
    EXPECT_EQ(a.app(), "SVM");
}

TEST(Registry, DistinctBenchmarksHaveDistinctMixes)
{
    // The predictor depends on benchmarks being distinguishable by mix:
    // compare FAST (integer/control heavy) vs SVM (SIMD heavy).
    const auto fast = profileWorkload(BenchmarkId::Fast, 20).totalMix();
    const auto svm = profileWorkload(BenchmarkId::Svm, 20).totalMix();
    EXPECT_GT(fast.fraction(isa::InstClass::Control),
              svm.fraction(isa::InstClass::Control));
    EXPECT_GT(svm.fraction(isa::InstClass::Simd),
              fast.fraction(isa::InstClass::Simd));
}

TEST(Registry, FaceDetBatchesContainFaces)
{
    // FaceDet inputs come from the faces generator, so the detector
    // actually finds work to do.
    const auto batch = generateBatch(BenchmarkId::FaceDet, 2, 3);
    EXPECT_GT(runBenchmark(BenchmarkId::FaceDet, batch), 0u);
}

}  // namespace
