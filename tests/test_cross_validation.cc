/** @file Tests for the cross-validation drivers. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"

namespace {

using namespace mapp;
using namespace mapp::ml;

Dataset
groupedData()
{
    Dataset d({"x"});
    for (int g = 0; g < 4; ++g)
        for (int i = 0; i < 5; ++i)
            d.addRow({static_cast<double>(g * 5 + i)},
                     static_cast<double>(g), "G" + std::to_string(g));
    return d;
}

FitPredictFn
treeFitPredict()
{
    return [](const Dataset& train, const Dataset& test) {
        DecisionTreeRegressor tree;
        tree.fit(train);
        return tree.predict(test);
    };
}

TEST(LeaveOneGroupOut, OneFoldPerGroup)
{
    const auto cv = leaveOneGroupOut(groupedData(), treeFitPredict());
    ASSERT_EQ(cv.folds.size(), 4u);
    for (const auto& fold : cv.folds)
        EXPECT_EQ(fold.testPoints, 5u);
}

TEST(LeaveOneGroupOut, FoldLabelsAreGroups)
{
    const auto cv = leaveOneGroupOut(groupedData(), treeFitPredict());
    EXPECT_EQ(cv.folds[0].label, "G0");
    EXPECT_EQ(cv.folds[3].label, "G3");
}

TEST(LeaveOneGroupOut, HeldOutGroupIsUnseen)
{
    // The target equals the group id, so every held-out fold must have a
    // non-zero error (the model never saw that target value) except
    // where extrapolation happens to coincide.
    bool sawError = false;
    const auto cv = leaveOneGroupOut(groupedData(), treeFitPredict());
    for (const auto& fold : cv.folds)
        if (fold.mse > 0.0)
            sawError = true;
    EXPECT_TRUE(sawError);
}

TEST(LeaveOneGroupOut, MeanAggregatesFolds)
{
    CrossValidationResult r;
    r.folds.push_back({"a", 10.0, 0.0, 1});
    r.folds.push_back({"b", 30.0, 0.0, 1});
    EXPECT_DOUBLE_EQ(r.meanRelativeError(), 20.0);
}

TEST(KFold, PartitionsAllRows)
{
    Rng rng(1);
    const auto cv = kFold(groupedData(), 4, rng, treeFitPredict());
    ASSERT_EQ(cv.folds.size(), 4u);
    std::size_t total = 0;
    for (const auto& fold : cv.folds)
        total += fold.testPoints;
    EXPECT_EQ(total, 20u);
}

TEST(KFold, RejectsSingleFold)
{
    Rng rng(1);
    EXPECT_THROW(kFold(groupedData(), 1, rng, treeFitPredict()),
                 FatalError);
}

TEST(KFold, InterpolationEasierThanGroupExtrapolation)
{
    // k-fold mixes groups into training, so its error should not exceed
    // the leave-group-out error on this group-determined target.
    Rng rng(2);
    const auto kf = kFold(groupedData(), 5, rng, treeFitPredict());
    const auto logo = leaveOneGroupOut(groupedData(), treeFitPredict());
    EXPECT_LE(kf.meanRelativeError(), logo.meanRelativeError() + 1e-9);
}

TEST(CrossValidation, EmptyResultMeanIsZero)
{
    CrossValidationResult r;
    EXPECT_DOUBLE_EQ(r.meanRelativeError(), 0.0);
}

}  // namespace
