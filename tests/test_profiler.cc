/** @file Unit tests for the op profiler and MICA characterization. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "profiler/mica.h"
#include "profiler/op_profiler.h"

namespace {

using namespace mapp;
using namespace mapp::profiler;

isa::KernelPhase
phaseWith(InstCount alu, InstCount mem)
{
    isa::KernelPhase p;
    p.name = "p";
    p.mix.add(isa::InstClass::IntAlu, alu);
    p.mix.add(isa::InstClass::MemRead, mem);
    p.bytesRead = mem * 4;
    p.footprint = 4096;
    p.workItems = 10;
    return p;
}

TEST(ProfilerSession, CapturesRecordedPhases)
{
    ProfilerSession session("APP", 20);
    EXPECT_TRUE(sessionActive());
    record(phaseWith(10, 2));
    record(phaseWith(20, 4));
    const auto trace = session.take();
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.app(), "APP");
    EXPECT_EQ(trace.batchSize(), 20);
    EXPECT_FALSE(sessionActive());
}

TEST(ProfilerSession, RecordWithoutSessionIsNoop)
{
    ASSERT_FALSE(sessionActive());
    EXPECT_NO_THROW(record(phaseWith(5, 1)));
}

TEST(ProfilerSession, RecordValidatesEvenWithoutSession)
{
    isa::KernelPhase bad;
    bad.name = "bad";
    EXPECT_THROW(record(bad), FatalError);
}

TEST(ProfilerSession, NestedSessionsAreFatal)
{
    ProfilerSession outer("A", 1);
    EXPECT_THROW(ProfilerSession inner("B", 1), FatalError);
}

TEST(ProfilerSession, SequentialSessionsAllowed)
{
    {
        ProfilerSession s1("A", 1);
        record(phaseWith(1, 1));
    }
    ProfilerSession s2("B", 1);
    record(phaseWith(2, 2));
    EXPECT_EQ(s2.trace().size(), 1u);
}

TEST(ProfilerSession, RecordedPhaseCountMonotonic)
{
    const auto before = recordedPhaseCount();
    record(phaseWith(3, 1));
    EXPECT_EQ(recordedPhaseCount(), before + 1);
}

TEST(Mica, CharacterizeComputesMixPercent)
{
    isa::WorkloadTrace t("APP", 20);
    t.append(phaseWith(75, 25));
    const auto r = characterize(t);
    EXPECT_EQ(r.app, "APP");
    EXPECT_EQ(r.instructions, 100u);
    EXPECT_DOUBLE_EQ(r.percent(isa::InstClass::IntAlu), 75.0);
    EXPECT_DOUBLE_EQ(r.percent(isa::InstClass::MemRead), 25.0);
    EXPECT_DOUBLE_EQ(r.memPercent(), 25.0);
}

TEST(Mica, BytesPerInstruction)
{
    isa::WorkloadTrace t("APP", 20);
    t.append(phaseWith(0, 100));  // 100 insts, 400 bytes read
    const auto r = characterize(t);
    EXPECT_DOUBLE_EQ(r.bytesPerInstruction, 4.0);
}

TEST(Mica, CarriesBehaviouralAttributes)
{
    isa::WorkloadTrace t("APP", 20);
    auto p = phaseWith(10, 10);
    p.locality = 0.7;
    p.parallelFraction = 0.6;
    p.branchDivergence = 0.4;
    t.append(p);
    const auto r = characterize(t);
    EXPECT_DOUBLE_EQ(r.locality, 0.7);
    EXPECT_DOUBLE_EQ(r.parallelFraction, 0.6);
    EXPECT_DOUBLE_EQ(r.branchDivergence, 0.4);
    EXPECT_EQ(r.footprint, 4096u);
}

TEST(Mica, EmptyTraceSafe)
{
    isa::WorkloadTrace t("APP", 20);
    const auto r = characterize(t);
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_DOUBLE_EQ(r.bytesPerInstruction, 0.0);
}

TEST(Mica, ToStringMentionsAppAndMix)
{
    isa::WorkloadTrace t("SURF", 80);
    t.append(phaseWith(10, 10));
    const auto s = characterize(t).toString();
    EXPECT_NE(s.find("SURF"), std::string::npos);
    EXPECT_NE(s.find("arith"), std::string::npos);
}

}  // namespace
