/** @file System-wide property tests: invariants that must hold for every
 * benchmark, batch size, instance count or random input — parameterized
 * gtest sweeps across the full cartesian spaces. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/sharing.h"
#include "predictor/data_collection.h"
#include "predictor/fairness.h"
#include "predictor/predictor.h"
#include "vision/registry.h"

namespace {

using namespace mapp;
using vision::BenchmarkId;

predictor::DataCollector&
collector()
{
    static predictor::DataCollector instance;
    return instance;
}

/* -------------------------------------------------------------------- */
/* Per-benchmark invariants                                              */

class PerBenchmark : public ::testing::TestWithParam<BenchmarkId>
{
};

TEST_P(PerBenchmark, TraceIsNonTrivialAndValid)
{
    const auto& trace = vision::cachedTrace(GetParam(), 20);
    EXPECT_GE(trace.size(), 2u);
    EXPECT_GT(trace.totalInstructions(), 100'000u);
    EXPECT_GT(trace.peakFootprint(), 0u);
    for (const auto& p : trace.phases())
        EXPECT_NO_THROW(p.validate());
}

TEST_P(PerBenchmark, MixPercentagesSumTo100)
{
    const auto mix = vision::cachedTrace(GetParam(), 20).totalMix();
    double sum = 0.0;
    for (isa::InstClass c : isa::kAllInstClasses)
        sum += mix.percent(c);
    EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST_P(PerBenchmark, CoRunNeverFasterThanAlone)
{
    const predictor::BagMember m{GetParam(), 20};
    const auto& f = collector().appFeatures(m);
    const auto bag =
        collector().collect(predictor::BagSpec{m, m});
    EXPECT_GE(bag.gpuBagTime, f.gpuTime * (1.0 - 1e-9));
    EXPECT_GE(bag.cpuSharedMakespan, f.cpuTime * (1.0 - 1e-9));
}

TEST_P(PerBenchmark, GpuDegradationMonotoneInInstances)
{
    const auto times =
        collector().gpuHomogeneousScaling({GetParam(), 20}, 4);
    for (std::size_t k = 1; k < times.size(); ++k)
        EXPECT_GE(times[k], times[k - 1] * (1.0 - 1e-9))
            << "at " << k + 1 << " instances";
}

TEST_P(PerBenchmark, CpuDegradationMonotoneInInstances)
{
    const auto times =
        collector().cpuHomogeneousScaling({GetParam(), 20}, 4);
    for (std::size_t k = 1; k < times.size(); ++k)
        EXPECT_GE(times[k], times[k - 1] * (1.0 - 1e-9))
            << "at " << k + 1 << " instances";
}

TEST_P(PerBenchmark, FairnessOfHomogeneousBagIsOne)
{
    const predictor::BagMember m{GetParam(), 20};
    EXPECT_NEAR(
        collector().measureFairness(predictor::BagSpec{m, m}), 1.0,
        1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PerBenchmark,
    ::testing::ValuesIn(vision::kAllBenchmarks.begin(),
                        vision::kAllBenchmarks.end()),
    [](const auto& info) {
        return vision::benchmarkName(info.param);
    });

/* -------------------------------------------------------------------- */
/* Per-batch-size invariants                                             */

class PerBatchSize : public ::testing::TestWithParam<int>
{
};

TEST_P(PerBatchSize, WorkGrowsWithBatch)
{
    // Instructions must be strictly monotone in batch size (each batch
    // is more work) for a per-image and a training-style benchmark.
    if (GetParam() == 20)
        return;  // nothing smaller to compare against
    const int batch = GetParam();
    for (BenchmarkId id : {BenchmarkId::Surf, BenchmarkId::Svm}) {
        EXPECT_GT(vision::cachedTrace(id, batch).totalInstructions(),
                  vision::cachedTrace(id, 20).totalInstructions())
            << vision::benchmarkName(id) << "@" << batch;
    }
}

TEST_P(PerBatchSize, TimesGrowWithBatch)
{
    if (GetParam() == 20)
        return;
    const predictor::BagMember small{BenchmarkId::Hog, 20};
    const predictor::BagMember big{BenchmarkId::Hog, GetParam()};
    EXPECT_GT(collector().appFeatures(big).gpuTime,
              collector().appFeatures(small).gpuTime);
    EXPECT_GT(collector().appFeatures(big).cpuTime,
              collector().appFeatures(small).cpuTime);
}

INSTANTIATE_TEST_SUITE_P(PaperBatchSizes, PerBatchSize,
                         ::testing::ValuesIn(vision::kBatchSizes.begin(),
                                             vision::kBatchSizes.end()));

/* -------------------------------------------------------------------- */
/* Randomized invariants                                                 */

class RandomSeed : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomSeed, MaxMinShareInvariants)
{
    Rng rng(GetParam());
    std::vector<double> demands;
    const int n = static_cast<int>(rng.uniformInt(1, 8));
    for (int i = 0; i < n; ++i)
        demands.push_back(rng.uniform(0.0, 100.0));
    const double total = rng.uniform(1.0, 300.0);

    const auto granted = maxMinShare(demands, total);
    double sum = 0.0;
    for (std::size_t i = 0; i < granted.size(); ++i) {
        EXPECT_GE(granted[i], 0.0);
        EXPECT_LE(granted[i], demands[i] + 1e-9);
        sum += granted[i];
    }
    EXPECT_LE(sum, total + 1e-9);
    // Work conservation: if total demand exceeds capacity, the channel
    // must be fully used.
    double demandSum = 0.0;
    for (double d : demands)
        demandSum += d;
    if (demandSum >= total)
        EXPECT_NEAR(sum, total, 1e-9);
    else
        EXPECT_NEAR(sum, demandSum, 1e-9);
}

TEST_P(RandomSeed, FairnessBoundedForRandomIpcs)
{
    Rng rng(GetParam() ^ 0xF00Dull);
    const int n = static_cast<int>(rng.uniformInt(2, 5));
    std::vector<double> shared;
    std::vector<double> alone;
    for (int i = 0; i < n; ++i) {
        const double a = rng.uniform(0.5, 4.0);
        alone.push_back(a);
        shared.push_back(a * rng.uniform(0.05, 1.0));  // any slowdown
    }
    const double f = predictor::fairness(shared, alone);
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-12);
}

TEST_P(RandomSeed, PredictorIsDeterministic)
{
    // Same data -> identical trees and predictions, independent of seed
    // (there is no randomness in training); the seed varies the query.
    static const auto points = [] {
        std::vector<predictor::BagSpec> specs;
        for (auto id : vision::kAllBenchmarks)
            specs.push_back(predictor::BagSpec{{id, 20}, {id, 20}});
        return collector().collectAll(specs);
    }();
    predictor::MultiAppPredictor m1;
    predictor::MultiAppPredictor m2;
    m1.train(points);
    m2.train(points);
    const auto& probe = points[GetParam() % points.size()];
    EXPECT_DOUBLE_EQ(m1.predict(probe), m2.predict(probe));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

/* -------------------------------------------------------------------- */
/* Cross-cutting determinism                                             */

TEST(Determinism, ProfilingIsBitStable)
{
    const auto a = vision::profileWorkload(BenchmarkId::Orb, 20);
    const auto b = vision::profileWorkload(BenchmarkId::Orb, 20);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.totalMix(), b.totalMix());
    EXPECT_EQ(a.totalBytesRead(), b.totalBytesRead());
}

TEST(Determinism, CollectionIsBitStable)
{
    predictor::DataCollector c1;
    predictor::DataCollector c2;
    const predictor::BagSpec spec{{BenchmarkId::Fast, 20},
                                  {BenchmarkId::Surf, 20}};
    const auto p1 = c1.collect(spec);
    const auto p2 = c2.collect(spec);
    EXPECT_DOUBLE_EQ(p1.gpuBagTime, p2.gpuBagTime);
    EXPECT_DOUBLE_EQ(p1.fairness, p2.fairness);
    EXPECT_DOUBLE_EQ(p1.a.cpuTime, p2.a.cpuTime);
}

}  // namespace
