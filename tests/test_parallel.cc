/**
 * @file
 * Tests for the parallel execution layer: ThreadPool lifecycle,
 * parallelFor/parallelMap correctness and exception propagation, and —
 * the layer's hard requirement — bit-identical serial-vs-parallel
 * results for campaign collection, LOOCV fold errors and random-forest
 * predictions.
 */

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "obs/timer.h"
#include "predictor/data_collection.h"

using namespace mapp;

namespace {

/** Force a lane budget for the duration of a scope. */
struct ThreadScope
{
    explicit ThreadScope(int threads)
    {
        parallel::setMaxThreads(threads);
    }
    ~ThreadScope() { parallel::setMaxThreads(0); }
};

}  // namespace

TEST(ThreadPool, RunsSubmittedTasksAndShutsDownCleanly)
{
    std::atomic<int> ran{0};
    {
        parallel::ThreadPool pool(3);
        EXPECT_EQ(pool.workerCount(), 3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ran.fetch_add(1); });
        // Destructor drains the queue and joins: all 50 must have run.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    parallel::ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0);
    int ran = 0;
    pool.submit([&ran] { ++ran; });
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(pool.tasksRun(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    const ThreadScope scope(4);
    std::vector<int> hits(1000, 0);
    parallel::parallelFor(hits.size(),
                          [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyAndSingleIterationWork)
{
    const ThreadScope scope(4);
    int calls = 0;
    parallel::parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    parallel::parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesBodyExceptions)
{
    const ThreadScope scope(4);
    EXPECT_THROW(
        parallel::parallelFor(64,
                              [&](std::size_t i) {
                                  if (i == 7)
                                      throw std::runtime_error("boom");
                              }),
        std::runtime_error);
}

TEST(ParallelFor, SerialFallbackPropagatesExceptionsToo)
{
    const ThreadScope scope(1);
    EXPECT_THROW(parallel::parallelFor(
                     8,
                     [&](std::size_t i) {
                         if (i == 3)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
}

TEST(ParallelMap, PreservesOrdering)
{
    const ThreadScope scope(4);
    std::vector<int> in(257);
    std::iota(in.begin(), in.end(), 0);
    const auto out =
        parallel::parallelMap(in, [](int v) { return v * v; });
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], in[i] * in[i]);
}

TEST(ParallelConfig, MaxThreadsOverrideWins)
{
    parallel::setMaxThreads(2);
    EXPECT_EQ(parallel::maxThreads(), 2);
    parallel::setMaxThreads(0);
    EXPECT_GE(parallel::maxThreads(), 1);
}

TEST(PhaseProfiler, ConcurrentPhasesKeepPerThreadStacks)
{
    obs::PhaseProfiler profiler;
    const ThreadScope scope(4);
    parallel::parallelFor(32, [&](std::size_t) {
        obs::ScopedPhase outer(profiler, "outer");
        obs::ScopedPhase inner(profiler, "inner");
    });
    const auto report = profiler.report();
    // Every thread roots "outer" at the top level with "inner" below
    // it; 32 entries total across all threads.
    std::uint64_t outerCount = 0;
    std::uint64_t innerCount = 0;
    for (const auto& top : report.children) {
        EXPECT_EQ(top.name, "outer");
        outerCount += top.count;
        for (const auto& child : top.children) {
            EXPECT_EQ(child.name, "inner");
            innerCount += child.count;
        }
    }
    EXPECT_EQ(outerCount, 32u);
    EXPECT_EQ(innerCount, 32u);
}

namespace {

/** A small campaign spanning homogeneous and heterogeneous bags. */
std::vector<predictor::BagSpec>
miniCampaign()
{
    using vision::BenchmarkId;
    const predictor::BagMember fast{BenchmarkId::Fast, 20};
    const predictor::BagMember orb{BenchmarkId::Orb, 20};
    const predictor::BagMember hog{BenchmarkId::Hog, 40};
    return {
        {fast, fast}, {orb, orb}, {hog, hog},
        {fast, orb},  {fast, hog}, {orb, hog},
    };
}

ml::Dataset
collectMini(int threads)
{
    const ThreadScope scope(threads);
    predictor::DataCollector collector;
    return predictor::toDataset(collector.collectAll(miniCampaign()));
}

}  // namespace

TEST(SerialVsParallel, CampaignDatasetsAreBitIdentical)
{
    const ml::Dataset serial = collectMini(1);
    const ml::Dataset threaded = collectMini(4);

    ASSERT_EQ(serial.size(), threaded.size());
    ASSERT_EQ(serial.featureNames(), threaded.featureNames());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial.group(i), threaded.group(i)) << "row " << i;
        EXPECT_EQ(serial.target(i), threaded.target(i)) << "row " << i;
        ASSERT_EQ(serial.row(i).size(), threaded.row(i).size());
        for (std::size_t j = 0; j < serial.row(i).size(); ++j) {
            EXPECT_EQ(serial.row(i)[j], threaded.row(i)[j])
                << "row " << i << " col " << j;
        }
    }
}

TEST(SerialVsParallel, LoocvFoldErrorsAreBitIdentical)
{
    const ml::Dataset data = collectMini(1);
    const ml::FitPredictFn fitPredict =
        [](const ml::Dataset& train, const ml::Dataset& test) {
            ml::DecisionTreeRegressor tree;
            tree.fit(train);
            return tree.predict(test);
        };

    parallel::setMaxThreads(1);
    const auto serial = ml::leaveOneGroupOut(data, fitPredict);
    parallel::setMaxThreads(4);
    const auto threaded = ml::leaveOneGroupOut(data, fitPredict);
    parallel::setMaxThreads(0);

    ASSERT_EQ(serial.folds.size(), threaded.folds.size());
    for (std::size_t f = 0; f < serial.folds.size(); ++f) {
        EXPECT_EQ(serial.folds[f].label, threaded.folds[f].label);
        EXPECT_EQ(serial.folds[f].testPoints,
                  threaded.folds[f].testPoints);
        EXPECT_EQ(serial.folds[f].meanRelativeError,
                  threaded.folds[f].meanRelativeError)
            << "fold " << serial.folds[f].label;
        EXPECT_EQ(serial.folds[f].mse, threaded.folds[f].mse);
    }
    EXPECT_EQ(serial.meanRelativeError(), threaded.meanRelativeError());
}

TEST(SerialVsParallel, ForestPredictionsAreBitIdentical)
{
    // Synthetic regression data: enough rows that trees bootstrap
    // distinct samples.
    Rng rng(17);
    ml::Dataset data({"x0", "x1"});
    for (int i = 0; i < 200; ++i) {
        const double x0 = rng.uniform(-1.0, 1.0);
        const double x1 = rng.uniform(-1.0, 1.0);
        data.addRow({x0, x1}, 3.0 * x0 - 2.0 * x1 + 0.1 * x0 * x1, "g");
    }

    ml::RandomForestParams params;
    params.numTrees = 16;
    params.seed = 99;

    parallel::setMaxThreads(1);
    ml::RandomForestRegressor serial(params);
    serial.fit(data);
    parallel::setMaxThreads(4);
    ml::RandomForestRegressor threaded(params);
    threaded.fit(data);
    parallel::setMaxThreads(0);

    ASSERT_EQ(serial.treeCount(), threaded.treeCount());
    const auto a = serial.predict(data);
    const auto b = threaded.predict(data);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "row " << i;
}

TEST(PresortedSplit, MatchesNaiveSearchOnRandomData)
{
    // The presorted fit must grow exactly the tree the naive per-node
    // sort grew: validate invariants on data with heavy ties.
    Rng rng(5);
    ml::Dataset data({"a", "b", "c"});
    for (int i = 0; i < 150; ++i) {
        const double a = std::floor(rng.uniform(0.0, 4.0));
        const double b = rng.uniform(0.0, 1.0);
        const double c = std::floor(rng.uniform(0.0, 2.0));
        data.addRow({a, b, c}, a * 2.0 + (c > 0 ? 5.0 : 0.0) + b, "g");
    }
    ml::DecisionTreeRegressor tree;
    tree.fit(data);
    EXPECT_TRUE(tree.trained());
    EXPECT_GT(tree.nodeCount(), 1u);

    // Predictions at the training points recover the piecewise means:
    // in-sample MSE must be tiny for this nearly-separable target.
    const auto pred = tree.predict(data);
    double sse = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i)
        sse += (pred[i] - data.target(i)) * (pred[i] - data.target(i));
    EXPECT_LT(sse / static_cast<double>(data.size()), 0.2);
}
