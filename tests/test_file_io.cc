/**
 * @file
 * Crash-safe sidecar writes: writeFileAtomic must either leave the old
 * file untouched or atomically replace it with the complete new
 * contents — never a truncated half-document, never stray temp files.
 * The concurrency section runs under `ctest -L parallel` (TSan) and
 * the fault-injection section under `ctest -L robustness` (ASan).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/file_io.h"

namespace {

namespace fs = std::filesystem;
using namespace mapp;

class FileIoTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("mapp_file_io_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string& name) const
    {
        return (dir_ / name).string();
    }

    static std::string slurp(const std::string& p)
    {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream out;
        out << in.rdbuf();
        return out.str();
    }

    /** Files in the test dir whose name contains ".tmp.". */
    std::size_t tempLeftovers() const
    {
        std::size_t n = 0;
        for (const auto& entry : fs::directory_iterator(dir_))
            if (entry.path().filename().string().find(".tmp.") !=
                std::string::npos)
                ++n;
        return n;
    }

    fs::path dir_;
};

TEST_F(FileIoTest, WritesAndReplacesWholeContents)
{
    const auto target = path("doc.json");
    ASSERT_TRUE(writeFileAtomic(target, "first version"));
    EXPECT_EQ(slurp(target), "first version");
    ASSERT_TRUE(writeFileAtomic(target, "v2"));
    EXPECT_EQ(slurp(target), "v2");  // shorter: no stale tail bytes
    EXPECT_EQ(tempLeftovers(), 0u);
}

TEST_F(FileIoTest, EmptyContentsAndBinaryBytesSurvive)
{
    const auto target = path("blob.bin");
    std::string payload = "a\0b\r\n\xff";
    payload.resize(6);
    ASSERT_TRUE(writeFileAtomic(target, payload));
    EXPECT_EQ(slurp(target), payload);
    ASSERT_TRUE(writeFileAtomic(target, ""));
    EXPECT_EQ(slurp(target), "");
}

TEST_F(FileIoTest, EmptyPathFails)
{
    EXPECT_FALSE(writeFileAtomic("", "anything"));
}

// Fault injection: a regular file used as a directory component makes
// the temp file impossible to create (works even as root, unlike
// permission bits). The write must fail cleanly: false, no temp
// litter, and an existing destination untouched.
TEST_F(FileIoTest, UnwritableDirectoryFailsWithoutLitter)
{
    const auto blocker = path("blocker");
    ASSERT_TRUE(writeFileAtomic(blocker, "i am a file"));
    const auto target = blocker + "/nested/out.json";
    EXPECT_FALSE(writeFileAtomic(target, "payload"));
    EXPECT_EQ(slurp(blocker), "i am a file");
    EXPECT_EQ(tempLeftovers(), 0u);
}

TEST_F(FileIoTest, FailedWriteLeavesPreviousContents)
{
    // Destination whose parent then becomes invalid: write once into
    // dir_, then aim a second write through a file component.
    const auto target = path("keep.json");
    ASSERT_TRUE(writeFileAtomic(target, "precious"));
    EXPECT_FALSE(writeFileAtomic(target + "/impossible", "x"));
    EXPECT_EQ(slurp(target), "precious");
}

// Atomicity under contention: many writers replace one path with
// distinct complete payloads while readers poll it. Every read must
// observe exactly one writer's full payload — a torn or interleaved
// document means the temp+rename contract broke.
TEST_F(FileIoTest, ConcurrentWritersNeverTearThePayload)
{
    const auto target = path("contended.json");
    constexpr int kWriters = 4;
    constexpr int kRounds = 25;
    const auto payloadOf = [](int writer) {
        // Distinct length & content per writer, long enough that a
        // torn write would be visible.
        return std::string(256 + writer, static_cast<char>('A' + writer));
    };
    ASSERT_TRUE(writeFileAtomic(target, payloadOf(0)));

    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string seen = slurp(target);
            bool whole = false;
            for (int w = 0; w < kWriters; ++w)
                whole = whole || seen == payloadOf(w);
            if (!whole)
                torn.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&, w] {
            for (int r = 0; r < kRounds; ++r)
                EXPECT_TRUE(writeFileAtomic(target, payloadOf(w)));
        });
    for (auto& t : writers)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(torn.load(), 0);
    EXPECT_EQ(tempLeftovers(), 0u);
    const std::string last = slurp(target);
    bool whole = false;
    for (int w = 0; w < kWriters; ++w)
        whole = whole || last == payloadOf(w);
    EXPECT_TRUE(whole);
}

}  // namespace
