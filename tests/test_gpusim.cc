/** @file Unit tests for the GPU L2/TLB/SM models and the MPS co-run
 * simulator. */

#include <gtest/gtest.h>

#include <map>

#include "common/log.h"
#include "gpusim/l2_model.h"
#include "gpusim/mps_sim.h"
#include "gpusim/sm_model.h"
#include "gpusim/tlb_model.h"
#include "obs/trace.h"

namespace {

using namespace mapp;
using namespace mapp::gpusim;

isa::KernelPhase
gpuComputePhase(InstCount insts = 10'000'000, double parallel = 0.97)
{
    isa::KernelPhase p;
    p.name = "compute";
    p.mix.add(isa::InstClass::FpAlu, insts / 2);
    p.mix.add(isa::InstClass::Simd, insts / 4);
    p.mix.add(isa::InstClass::IntAlu, insts / 4);
    p.footprint = 256 * 1024;
    p.locality = 0.8;
    p.parallelFraction = parallel;
    p.workItems = 200'000;
    return p;
}

isa::KernelPhase
gpuMemoryPhase(InstCount insts = 10'000'000)
{
    isa::KernelPhase p;
    p.name = "memory";
    p.mix.add(isa::InstClass::MemRead, insts / 2);
    p.mix.add(isa::InstClass::MemWrite, insts / 4);
    p.mix.add(isa::InstClass::IntAlu, insts / 4);
    p.bytesRead = insts * 8;
    p.bytesWritten = insts * 2;
    p.footprint = 16ull << 20;
    p.locality = 0.1;
    p.parallelFraction = 0.97;
    p.workItems = 200'000;
    return p;
}

GpuAllocation
wholeGpu(const GpuConfig& cfg)
{
    return GpuAllocation{.sms = cfg.numSms,
                         .l2Share = cfg.l2Size,
                         .bandwidthShare = cfg.memBandwidth,
                         .residentApps = 1,
                         .memQueueFactor = 1.0};
}

TEST(L2Model, CapacityAndInterference)
{
    const Bytes share = 2ull << 20;
    EXPECT_LT(l2MissRate(64_KiB, share, 0.8, 1),
              l2MissRate(32ull << 20, share, 0.8, 1));
    // A co-resident app adds conflict misses.
    EXPECT_LT(l2MissRate(1ull << 20, share, 0.5, 1),
              l2MissRate(1ull << 20, share, 0.5, 2));
}

TEST(L2Model, ZeroShareIsWorstCase)
{
    L2ModelParams params;
    EXPECT_DOUBLE_EQ(l2MissRate(1024, 0, 0.5, 1), params.maxMissRate);
}

TEST(TlbModel, SmallFootprintNoMisses)
{
    GpuConfig cfg;
    EXPECT_DOUBLE_EQ(tlbMissRate(cfg.pageSize / 2, 1, cfg), 0.0);
}

TEST(TlbModel, MultiAppPressureInflatesMisses)
{
    GpuConfig cfg;
    const Bytes foot = 8ull << 20;
    EXPECT_LT(tlbMissRate(foot, 1, cfg), tlbMissRate(foot, 2, cfg));
    EXPECT_LT(tlbMissRate(foot, 2, cfg), tlbMissRate(foot, 4, cfg));
}

TEST(TlbModel, StallTimeScalesWithPageTouches)
{
    GpuConfig cfg;
    EXPECT_LT(tlbStallTime(100.0, 0.2, 1, cfg),
              tlbStallTime(10000.0, 0.2, 1, cfg));
    // Co-residents expose more of the walk latency.
    EXPECT_LT(tlbStallTime(1000.0, 0.2, 1, cfg),
              tlbStallTime(1000.0, 0.2, 2, cfg));
}

TEST(SmModel, OccupancySaturatesAtCapacity)
{
    GpuConfig cfg;
    auto p = gpuComputePhase();
    p.workItems = 10;  // tiny kernel
    EXPECT_LT(phaseOccupancy(p, cfg.numSms, cfg), 0.1);
    p.workItems = 10'000'000;
    EXPECT_DOUBLE_EQ(phaseOccupancy(p, cfg.numSms, cfg), 1.0);
}

TEST(SmModel, MoreSmsFaster)
{
    GpuConfig cfg;
    auto alloc = wholeGpu(cfg);
    const auto full = timeGpuPhase(gpuComputePhase(), alloc, cfg);
    alloc.sms = cfg.numSms / 4;
    const auto quarter = timeGpuPhase(gpuComputePhase(), alloc, cfg);
    EXPECT_GT(quarter.time, full.time);
}

TEST(SmModel, DivergenceSlowsKernels)
{
    GpuConfig cfg;
    const auto alloc = wholeGpu(cfg);
    auto p = gpuComputePhase();
    p.branchDivergence = 0.0;
    const auto straight = timeGpuPhase(p, alloc, cfg);
    p.branchDivergence = 0.9;
    const auto divergent = timeGpuPhase(p, alloc, cfg);
    EXPECT_GT(divergent.computeTime, straight.computeTime);
}

TEST(SmModel, SerialFractionCrawls)
{
    GpuConfig cfg;
    const auto alloc = wholeGpu(cfg);
    auto p = gpuComputePhase(10'000'000, 1.0);
    const auto parallel = timeGpuPhase(p, alloc, cfg);
    p.parallelFraction = 0.3;
    const auto serialish = timeGpuPhase(p, alloc, cfg);
    EXPECT_GT(serialish.serialTime, parallel.serialTime);
    EXPECT_GT(serialish.time, parallel.time);
}

TEST(SmModel, LaunchOverheadScalesWithLaunches)
{
    GpuConfig cfg;
    const auto alloc = wholeGpu(cfg);
    auto p = gpuComputePhase();
    p.launches = 1;
    const auto one = timeGpuPhase(p, alloc, cfg);
    p.launches = 100;
    const auto many = timeGpuPhase(p, alloc, cfg);
    EXPECT_NEAR(many.overheadTime, one.overheadTime * 100.0, 1e-12);
}

TEST(SmModel, HostStagedPhaseUsesPcie)
{
    GpuConfig cfg;
    const auto alloc = wholeGpu(cfg);
    isa::KernelPhase p;
    p.name = "copy";
    p.hostStaged = true;
    p.mix.add(isa::InstClass::String, 1000);
    p.bytesRead = 12ull << 20;
    p.bytesWritten = 12ull << 20;
    p.footprint = 12ull << 20;
    p.workItems = 1000;
    const auto t = timeGpuPhase(p, alloc, cfg);
    // 12 MiB over ~12 GB/s is ~1 ms; SM terms must be zero.
    EXPECT_NEAR(t.memoryTime,
                static_cast<double>(p.bytesWritten) / cfg.pcieBandwidth,
                1e-12);
    EXPECT_DOUBLE_EQ(t.computeTime, 0.0);
    EXPECT_DOUBLE_EQ(t.tlbTime, 0.0);
}

TEST(SmModel, MemoryPhaseBoundByBandwidthShare)
{
    GpuConfig cfg;
    auto alloc = wholeGpu(cfg);
    const auto fast = timeGpuPhase(gpuMemoryPhase(), alloc, cfg);
    alloc.bandwidthShare = cfg.memBandwidth / 10.0;
    const auto starved = timeGpuPhase(gpuMemoryPhase(), alloc, cfg);
    EXPECT_GT(starved.memoryTime, fast.memoryTime * 5.0);
}

TEST(MpsSim, AloneRunBasics)
{
    MpsSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(gpuComputePhase());
    const auto r = sim.runAlone(t);
    EXPECT_GT(r.time, 0.0);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(r.app, "A");
}

TEST(MpsSim, CoRunDegradesBothClients)
{
    MpsSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(gpuComputePhase());
    t.append(gpuMemoryPhase());
    const auto alone = sim.runAlone(t);
    const auto bag = sim.runShared({&t, &t});
    EXPECT_GT(bag.apps[0].time, alone.time);
    EXPECT_GT(bag.makespan, alone.time);
}

TEST(MpsSim, DegradationGrowsWithClients)
{
    MpsSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(gpuComputePhase());
    t.append(gpuMemoryPhase());
    const auto alone = sim.runAlone(t).time;
    const auto two = sim.runShared({&t, &t}).makespan;
    const auto four = sim.runShared({&t, &t, &t, &t}).makespan;
    EXPECT_GT(two, alone);
    EXPECT_GT(four, two);
}

TEST(MpsSim, ComputeBoundBagRoughlyDoubles)
{
    // Paper Fig. 2's shape: a compute-bound homogeneous pair on half
    // the SMs each takes roughly twice as long (between 1.5x and 3x).
    MpsSim sim;
    isa::WorkloadTrace t("A", 1);
    t.append(gpuComputePhase(100'000'000, 1.0));  // fully parallel
    const auto alone = sim.runAlone(t).time;
    const auto bag = sim.runShared({&t, &t}).makespan;
    const double factor = bag / alone;
    EXPECT_GT(factor, 1.4);
    EXPECT_LT(factor, 3.0);
}

TEST(MpsSim, EmptyBagIsFatal)
{
    MpsSim sim;
    EXPECT_THROW(sim.runShared({}), FatalError);
}

TEST(MpsSim, TracedBagEmitsRepartitionsAndExactPhaseSpans)
{
    obs::Tracer& tracer = obs::tracer();
    tracer.clear();
    tracer.setEnabled(true);

    MpsSim sim;
    isa::WorkloadTrace small("S", 1);
    small.append(gpuComputePhase(1'000'000));
    small.append(gpuMemoryPhase(1'000'000));
    isa::WorkloadTrace big("B", 1);
    big.append(gpuComputePhase(50'000'000));
    big.append(gpuMemoryPhase(20'000'000));
    const auto bag = sim.runShared({&small, &big});

    const auto events = tracer.snapshot();
    tracer.setEnabled(false);
    tracer.clear();

    // The 2-client bag re-partitions at least once: the initial split
    // plus the shrink to one resident when the small client finishes.
    int repartitions = 0;
    std::map<int, double> spanSumUs;  // tid -> total span time
    for (const auto& e : events) {
        if (e.kind == obs::TraceEventKind::Instant &&
            e.name == "re-partition")
            ++repartitions;
        if (e.kind == obs::TraceEventKind::Complete &&
            e.category == "gpusim.phase")
            spanSumUs[e.tid] += e.durUs;
    }
    EXPECT_GE(repartitions, 1);
    EXPECT_EQ(repartitions, 2);

    // Each client's kernel-phase spans tile its timeline exactly: their
    // durations sum to the client's reported completion time.
    ASSERT_EQ(spanSumUs.size(), 2u);
    for (std::size_t i = 0; i < bag.apps.size(); ++i) {
        const double reportedUs = bag.apps[i].time * 1e6;
        ASSERT_TRUE(spanSumUs.count(static_cast<int>(i)));
        EXPECT_NEAR(spanSumUs[static_cast<int>(i)], reportedUs,
                    reportedUs * 1e-9);
    }
}

TEST(MpsSim, HeterogeneousMakespanIsMax)
{
    MpsSim sim;
    isa::WorkloadTrace small("S", 1);
    small.append(gpuComputePhase(1'000'000));
    isa::WorkloadTrace big("B", 1);
    big.append(gpuComputePhase(200'000'000));
    const auto bag = sim.runShared({&small, &big});
    EXPECT_NEAR(bag.makespan,
                std::max(bag.apps[0].time, bag.apps[1].time), 1e-15);
}

}  // namespace
