/**
 * @file
 * Fault-injection harness for every input boundary: feeds truncated,
 * garbled, and numerically degenerate CSV/trace/dataset inputs to each
 * loader and asserts it fails with a *located* mapp::Error (InputError)
 * instead of crashing, corrupting memory (run under ASan via
 * `ctest -L robustness`), or silently mis-parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <typeinfo>
#include <vector>

#include "common/csv.h"
#include "common/error.h"
#include "common/shutdown.h"
#include "isa/trace_io.h"
#include "ml/dataset_io.h"

namespace {

using namespace mapp;

// ---------------------------------------------------------------------------
// Corpus helpers

/** A known-good trace CSV produced by the writer itself. */
std::string
validTraceCsv()
{
    isa::WorkloadTrace trace("FAULTY", 4);
    isa::KernelPhase p;
    p.name = "conv";
    p.mix.add(isa::InstClass::IntAlu, 100);
    p.mix.add(isa::InstClass::MemRead, 50);
    p.bytesRead = 1024;
    p.bytesWritten = 512;
    p.footprint = 2048;
    p.workItems = 64;
    trace.append(p);
    isa::KernelPhase q = p;
    q.name = "hist";
    trace.append(q);
    return isa::traceToCsv(trace);
}

std::string
validDatasetCsv()
{
    return "f_a,f_b,target,group\n"
           "1.0,2.0,3.0,g1\n"
           "4.0,5.0,6.0,g2\n";
}

/** Replace the cell in data row @p row (0-based) under @p column. */
std::string
tamperCell(const std::string& csv, std::size_t row,
           const std::string& column, const std::string& replacement)
{
    CsvTable t = parseCsv(csv);
    const int idx = t.columnIndex(column);
    EXPECT_GE(idx, 0) << "corpus bug: no column " << column;
    t.rows.at(row).at(static_cast<std::size_t>(idx)) = replacement;
    return toCsv(t);
}

/** The InputError a loader throws for @p text, with crash = test fail. */
Error
expectLocatedFailure(const std::function<void(const std::string&)>& load,
                     const std::string& text, const char* what)
{
    try {
        load(text);
    } catch (const InputError& e) {
        return e.error();
    } catch (const std::exception& e) {
        ADD_FAILURE() << what << ": escaped as unstructured "
                      << typeid(e).name() << ": " << e.what();
        return {ErrorCode::Parse, "unstructured"};
    }
    ADD_FAILURE() << what << ": malformed input was accepted";
    return {ErrorCode::Parse, "accepted"};
}

// ---------------------------------------------------------------------------
// Trace loader corpus

const auto kLoadTrace = [](const std::string& text) {
    (void)isa::traceFromCsv(text, "corpus.csv");
};

TEST(TraceFaults, EmptyFile)
{
    const Error e = expectLocatedFailure(kLoadTrace, "", "empty");
    EXPECT_EQ(e.code(), ErrorCode::Schema);
}

TEST(TraceFaults, WrongHeader)
{
    const Error e = expectLocatedFailure(
        kLoadTrace, "alpha,beta\n1,2\n", "wrong header");
    EXPECT_EQ(e.code(), ErrorCode::Schema);
    EXPECT_EQ(e.context().file, "corpus.csv");
}

TEST(TraceFaults, HeaderOnlyNoPhases)
{
    const std::string csv = validTraceCsv();
    const std::string headerOnly = csv.substr(0, csv.find('\n') + 1);
    const Error e =
        expectLocatedFailure(kLoadTrace, headerOnly, "no phases");
    EXPECT_EQ(e.code(), ErrorCode::Schema);
}

TEST(TraceFaults, TruncatedMidRow)
{
    const std::string csv = validTraceCsv();
    // Cut the last row in half: the final record comes up short.
    const std::string truncated = csv.substr(0, csv.size() - 20);
    const Error e =
        expectLocatedFailure(kLoadTrace, truncated, "truncated");
    EXPECT_EQ(e.code(), ErrorCode::Schema);
    EXPECT_EQ(e.context().row, 2u);
}

TEST(TraceFaults, GarbageCountCell)
{
    const Error e = expectLocatedFailure(
        kLoadTrace, tamperCell(validTraceCsv(), 0, "bytes_read", "12x"),
        "garbage count");
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.context().row, 1u);
    EXPECT_EQ(e.context().column, "bytes_read");
}

TEST(TraceFaults, NanFractionCell)
{
    const Error e = expectLocatedFailure(
        kLoadTrace, tamperCell(validTraceCsv(), 1, "parallel", "nan"),
        "nan cell");
    EXPECT_EQ(e.code(), ErrorCode::Range);
    EXPECT_EQ(e.context().row, 2u);
    EXPECT_EQ(e.context().column, "parallel");
}

TEST(TraceFaults, NegativeCount)
{
    const Error e = expectLocatedFailure(
        kLoadTrace, tamperCell(validTraceCsv(), 0, "work_items", "-5"),
        "negative count");
    EXPECT_EQ(e.code(), ErrorCode::Range);
}

TEST(TraceFaults, BatchZeroAndOverflow)
{
    EXPECT_EQ(expectLocatedFailure(
                  kLoadTrace, tamperCell(validTraceCsv(), 0, "batch", "0"),
                  "batch 0")
                  .code(),
              ErrorCode::Range);
    const Error e = expectLocatedFailure(
        kLoadTrace,
        tamperCell(validTraceCsv(), 0, "batch", "99999999999999999999"),
        "batch overflow");
    EXPECT_EQ(e.code(), ErrorCode::Range);
    EXPECT_EQ(e.context().column, "batch");
}

TEST(TraceFaults, BadHostStagedFlag)
{
    const Error e = expectLocatedFailure(
        kLoadTrace, tamperCell(validTraceCsv(), 0, "host_staged", "yes"),
        "bad host_staged");
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.context().column, "host_staged");
}

TEST(TraceFaults, PhaseValidationFailureIsLocated)
{
    // locality=2.0 parses fine but violates the phase invariant; the
    // loader must relocate the validation error to the offending row.
    const Error e = expectLocatedFailure(
        kLoadTrace, tamperCell(validTraceCsv(), 1, "locality", "2.0"),
        "invalid phase");
    EXPECT_EQ(e.code(), ErrorCode::Range);
    EXPECT_EQ(e.context().row, 2u);
}

TEST(TraceFaults, ValidCorpusStillLoads)
{
    const auto trace = isa::traceFromCsv(validTraceCsv());
    EXPECT_EQ(trace.app(), "FAULTY");
    EXPECT_EQ(trace.size(), 2u);
}

// ---------------------------------------------------------------------------
// Dataset loader corpus

const auto kLoadDataset = [](const std::string& text) {
    (void)ml::datasetFromCsv(text, "corpus.csv");
};

TEST(DatasetFaults, EmptyAndWrongHeader)
{
    EXPECT_EQ(expectLocatedFailure(kLoadDataset, "", "empty").code(),
              ErrorCode::Schema);
    EXPECT_EQ(expectLocatedFailure(kLoadDataset, "a,b,c\n1,2,3\n",
                                   "no target/group")
                  .code(),
              ErrorCode::Schema);
}

TEST(DatasetFaults, GarbageFeatureCell)
{
    const Error e = expectLocatedFailure(
        kLoadDataset, tamperCell(validDatasetCsv(), 1, "f_b", "5.0abc"),
        "garbage cell");
    EXPECT_EQ(e.code(), ErrorCode::Parse);
    EXPECT_EQ(e.context().row, 2u);
    EXPECT_EQ(e.context().column, "f_b");
}

TEST(DatasetFaults, NonFiniteCellsRejected)
{
    for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
        const Error e = expectLocatedFailure(
            kLoadDataset, tamperCell(validDatasetCsv(), 0, "f_a", bad),
            bad);
        EXPECT_EQ(e.code(), ErrorCode::Range) << bad;
    }
    const Error e = expectLocatedFailure(
        kLoadDataset, tamperCell(validDatasetCsv(), 0, "target", "nan"),
        "nan target");
    EXPECT_EQ(e.context().column, "target");
}

TEST(DatasetFaults, ShortRow)
{
    const Error e = expectLocatedFailure(
        kLoadDataset, "f_a,f_b,target,group\n1.0,2.0\n", "short row");
    EXPECT_EQ(e.code(), ErrorCode::Schema);
    EXPECT_EQ(e.context().row, 1u);
}

TEST(DatasetFaults, ValidCorpusStillLoads)
{
    const auto data = ml::datasetFromCsv(validDatasetCsv());
    EXPECT_EQ(data.size(), 2u);
    EXPECT_DOUBLE_EQ(data.target(1), 6.0);
}

// ---------------------------------------------------------------------------
// File-level I/O faults

class RobustnessFiles : public ::testing::Test
{
  protected:
    std::string
    writeTemp(const std::string& name, const std::string& text)
    {
        const std::string path =
            ::testing::TempDir() + "mapp_robustness_" + name;
        std::ofstream out(path, std::ios::binary);
        out << text;
        paths_.push_back(path);
        return path;
    }

    void TearDown() override
    {
        for (const auto& p : paths_)
            std::remove(p.c_str());
    }

    std::vector<std::string> paths_;
};

TEST_F(RobustnessFiles, MissingFilesRaiseIoErrors)
{
    const char* missing = "/nonexistent/mapp/input.csv";
    EXPECT_THROW(readCsvFile(missing), InputError);
    EXPECT_THROW(isa::readTraceFile(missing), InputError);
    EXPECT_THROW(ml::readDatasetFile(missing), InputError);
}

TEST_F(RobustnessFiles, ErrorsNameTheFile)
{
    const auto path =
        writeTemp("garbled_trace.csv",
                  tamperCell(validTraceCsv(), 0, "footprint", "oops"));
    try {
        (void)isa::readTraceFile(path);
        FAIL() << "garbled trace accepted";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().context().file, path);
        EXPECT_EQ(e.error().context().column, "footprint");
        EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    }
}

TEST_F(RobustnessFiles, TruncatedDatasetFileIsLocated)
{
    const std::string whole = validDatasetCsv();
    const auto path = writeTemp("truncated_dataset.csv",
                                whole.substr(0, whole.size() - 8));
    try {
        (void)ml::readDatasetFile(path);
        FAIL() << "truncated dataset accepted";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().context().file, path);
    }
}

TEST_F(RobustnessFiles, NumericColumnLocatesFileRowAndColumn)
{
    const auto path = writeTemp("bad_column.csv", "x,y\n1.5,a\n2.0,b\n");
    const CsvTable t = readCsvFile(path);
    EXPECT_EQ(t.source, path);
    try {
        (void)t.numericColumn("y");
        FAIL() << "garbage column accepted";
    } catch (const InputError& e) {
        EXPECT_EQ(e.error().context().file, path);
        EXPECT_EQ(e.error().context().row, 1u);
        EXPECT_EQ(e.error().context().column, "y");
    }
}

TEST_F(RobustnessFiles, RoundTripsSurviveTheHardening)
{
    // The strict loaders must still accept everything the writers emit.
    const auto tracePath = writeTemp("roundtrip_trace.csv", "");
    isa::WorkloadTrace trace("RT", 2);
    isa::KernelPhase p;
    p.name = "k";
    p.mix.add(isa::InstClass::FpAlu, 7);
    trace.append(p);
    isa::writeTraceFile(trace, tracePath);
    const auto back = isa::readTraceFile(tracePath);
    EXPECT_EQ(back.app(), "RT");
    EXPECT_EQ(back.batchSize(), 2);

    const auto dataPath = writeTemp("roundtrip_dataset.csv", "");
    ml::Dataset data({"f"});
    data.addRow({0.125}, 4.5, "g");
    ml::writeDatasetFile(data, dataPath);
    const auto dataBack = ml::readDatasetFile(dataPath);
    ASSERT_EQ(dataBack.size(), 1u);
    EXPECT_DOUBLE_EQ(dataBack.row(0)[0], 0.125);
}

// ---------------------------------------------------------------------------
// Graceful-shutdown plumbing. One real SIGINT travels the whole path:
// sigaction handler -> self-pipe -> watcher thread -> callback. Only
// one signal may be raised in this process — the handler hard-exits on
// the second delivery by design.

TEST(Shutdown, RealSignalReachesTheInstalledCallback)
{
    std::atomic<int> fired{0};
    std::atomic<int> delivered{0};
    installShutdownHandler([&fired, &delivered](int signo) {
        delivered.store(signo);
        fired.fetch_add(1);
    });
    ASSERT_FALSE(shutdownRequested());

    ASSERT_EQ(::raise(SIGINT), 0);
    for (int i = 0; i < 500 && fired.load() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));

    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(delivered.load(), SIGINT);
    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), SIGINT);

    // A later synthetic request must not double-deliver: the first
    // delivery already claimed the process's shutdown.
    requestShutdown(SIGTERM);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(shutdownSignal(), SIGINT);

    // Drop the dangling captures before the locals die.
    installShutdownHandler([](int) {});
}

}  // namespace
