/** @file Unit tests for shared-resource arbitration helpers. */

#include <gtest/gtest.h>

#include "common/sharing.h"

namespace {

using namespace mapp;

TEST(MaxMinShare, UnderloadedGrantsAllDemands)
{
    const auto g = maxMinShare({10.0, 20.0}, 100.0);
    EXPECT_DOUBLE_EQ(g[0], 10.0);
    EXPECT_DOUBLE_EQ(g[1], 20.0);
}

TEST(MaxMinShare, OverloadedSplitsFairly)
{
    const auto g = maxMinShare({100.0, 100.0}, 60.0);
    EXPECT_DOUBLE_EQ(g[0], 30.0);
    EXPECT_DOUBLE_EQ(g[1], 30.0);
}

TEST(MaxMinShare, SmallDemandProtected)
{
    // The small demand is fully granted; the big ones split the rest.
    const auto g = maxMinShare({5.0, 100.0, 100.0}, 65.0);
    EXPECT_DOUBLE_EQ(g[0], 5.0);
    EXPECT_DOUBLE_EQ(g[1], 30.0);
    EXPECT_DOUBLE_EQ(g[2], 30.0);
}

TEST(MaxMinShare, TotalNeverExceeded)
{
    const auto g = maxMinShare({50.0, 70.0, 10.0, 90.0}, 100.0);
    double sum = 0.0;
    for (double v : g)
        sum += v;
    EXPECT_LE(sum, 100.0 + 1e-9);
}

TEST(MaxMinShare, EmptyDemands)
{
    EXPECT_TRUE(maxMinShare({}, 10.0).empty());
}

TEST(MaxMinShare, ZeroCapacity)
{
    const auto g = maxMinShare({10.0}, 0.0);
    EXPECT_DOUBLE_EQ(g[0], 0.0);
}

TEST(MaxMinShare, CascadedSatisfaction)
{
    // 10 fits; then 30 fits in the remainder (90/2 = 45 >= 30); the last
    // takes what is left (60).
    const auto g = maxMinShare({10.0, 30.0, 100.0}, 100.0);
    EXPECT_DOUBLE_EQ(g[0], 10.0);
    EXPECT_DOUBLE_EQ(g[1], 30.0);
    EXPECT_DOUBLE_EQ(g[2], 60.0);
}

TEST(QueueingDelay, GrowsWithUtilization)
{
    EXPECT_DOUBLE_EQ(queueingDelayFactor(0.0), 1.0);
    EXPECT_LT(queueingDelayFactor(0.3), queueingDelayFactor(0.8));
}

TEST(QueueingDelay, ClampedNearSaturation)
{
    EXPECT_DOUBLE_EQ(queueingDelayFactor(0.99),
                     queueingDelayFactor(2.0));
    EXPECT_NEAR(queueingDelayFactor(0.95), 20.0, 1e-9);
}

TEST(QueueingDelay, NegativeUtilizationClamps)
{
    EXPECT_DOUBLE_EQ(queueingDelayFactor(-1.0), 1.0);
}

}  // namespace
