/** @file Property tests for the instrumentation itself: recorded
 * instruction counts must scale with the actual work performed (image
 * area, vector length, batch size), since the simulators trust them. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "profiler/op_profiler.h"
#include "vision/ops.h"
#include "vision/registry.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

Image
noiseImage(int size, std::uint64_t seed)
{
    Rng rng(seed);
    Image img(size, size);
    for (auto& v : img.data())
        v = static_cast<float>(rng.uniform(0.0, 255.0));
    return img;
}

/** Total instructions recorded while running fn. */
template <typename Fn>
InstCount
instsOf(Fn&& fn)
{
    profiler::ProfilerSession session("T", 1);
    fn();
    return session.take().totalInstructions();
}

class AreaScaling : public ::testing::TestWithParam<int>
{
};

TEST_P(AreaScaling, ConvolutionCountsScaleWithArea)
{
    const int size = GetParam();
    const std::vector<float> kernel(9, 1.0f / 9.0f);
    const auto base = instsOf(
        [&] { ops::convolve2d(noiseImage(32, 1), kernel, 3); });
    const auto scaled = instsOf(
        [&] { ops::convolve2d(noiseImage(size, 1), kernel, 3); });
    const double expected = static_cast<double>(size * size) / (32.0 * 32.0);
    const double actual =
        static_cast<double>(scaled) / static_cast<double>(base);
    EXPECT_NEAR(actual, expected, expected * 0.15);
}

TEST_P(AreaScaling, SobelCountsScaleWithArea)
{
    const int size = GetParam();
    Image gx, gy;
    const auto base =
        instsOf([&] { ops::sobel(noiseImage(32, 2), gx, gy); });
    const auto scaled =
        instsOf([&] { ops::sobel(noiseImage(size, 2), gx, gy); });
    const double expected = static_cast<double>(size * size) / (32.0 * 32.0);
    EXPECT_NEAR(static_cast<double>(scaled) / static_cast<double>(base),
                expected, expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AreaScaling,
                         ::testing::Values(48, 64, 96, 128));

TEST(OpScaling, DotCountsScaleWithLength)
{
    std::vector<float> a(256, 1.0f);
    std::vector<float> b(256, 2.0f);
    const auto small = instsOf([&] { ops::dot(a, b); });
    std::vector<float> a4(1024, 1.0f);
    std::vector<float> b4(1024, 2.0f);
    const auto large = instsOf([&] { ops::dot(a4, b4); });
    EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small),
                4.0, 0.5);
}

TEST(OpScaling, DistanceMatrixCountsScaleWithPairs)
{
    const std::vector<Descriptor> a8(8, Descriptor(16, 1.0f));
    const std::vector<Descriptor> a16(16, Descriptor(16, 1.0f));
    const auto small = instsOf([&] { ops::distanceMatrix(a8, a8); });
    const auto large = instsOf([&] { ops::distanceMatrix(a16, a16); });
    EXPECT_NEAR(static_cast<double>(large) / static_cast<double>(small),
                4.0, 0.6);
}

TEST(OpScaling, TrafficConsistentWithCounts)
{
    // Bytes read must track mem_rd counts for streaming ops.
    profiler::ProfilerSession session("T", 1);
    const std::vector<float> kernel(9, 1.0f / 9.0f);
    ops::convolve2d(noiseImage(64, 3), kernel, 3);
    const auto trace = session.take();
    const auto& p = trace.phases()[0];
    EXPECT_EQ(p.bytesRead,
              p.mix.count(isa::InstClass::MemRead) * sizeof(float));
}

TEST(OpScaling, BatchScalingMatchesSampledTraces)
{
    // For a per-image benchmark, the scaled full-batch trace must equal
    // (batch / sample) x the sampled trace, phase by phase.
    const auto t80 = profileWorkload(BenchmarkId::Hog, 80);
    const auto t160 = profileWorkload(BenchmarkId::Hog, 160);
    // Instructions roughly double (different image content allows a
    // small deviation).
    const double ratio =
        static_cast<double>(t160.totalInstructions()) /
        static_cast<double>(t80.totalInstructions());
    EXPECT_NEAR(ratio, 2.0, 0.2);
}

}  // namespace
