/** @file Unit tests for instruction classes and mixes. */

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/inst_mix.h"

namespace {

using namespace mapp::isa;

TEST(InstClass, NamesRoundTrip)
{
    for (InstClass c : kAllInstClasses)
        EXPECT_EQ(instClassFromName(instClassName(c)), c);
}

TEST(InstClass, NamesMatchFigure12Labels)
{
    EXPECT_EQ(instClassName(InstClass::MemRead), "mem_rd");
    EXPECT_EQ(instClassName(InstClass::MemWrite), "mem_wr");
    EXPECT_EQ(instClassName(InstClass::Control), "ctrl");
    EXPECT_EQ(instClassName(InstClass::IntAlu), "arith");
    EXPECT_EQ(instClassName(InstClass::FpAlu), "fp");
    EXPECT_EQ(instClassName(InstClass::Stack), "stack");
    EXPECT_EQ(instClassName(InstClass::Shift), "shift");
    EXPECT_EQ(instClassName(InstClass::String), "string");
    EXPECT_EQ(instClassName(InstClass::Simd), "sse");
}

TEST(InstClass, UnknownNameIsFatal)
{
    EXPECT_THROW(instClassFromName("bogus"), mapp::FatalError);
}

TEST(InstMix, StartsEmpty)
{
    InstMix m;
    EXPECT_EQ(m.total(), 0u);
    EXPECT_DOUBLE_EQ(m.percent(InstClass::IntAlu), 0.0);
}

TEST(InstMix, AddAndCount)
{
    InstMix m;
    m.add(InstClass::IntAlu, 30);
    m.add(InstClass::FpAlu, 10);
    m.add(InstClass::IntAlu);  // default +1
    EXPECT_EQ(m.count(InstClass::IntAlu), 31u);
    EXPECT_EQ(m.total(), 41u);
}

TEST(InstMix, PercentagesSumTo100)
{
    InstMix m;
    m.add(InstClass::MemRead, 10);
    m.add(InstClass::IntAlu, 20);
    m.add(InstClass::Control, 5);
    double sum = 0.0;
    for (InstClass c : kAllInstClasses)
        sum += m.percent(c);
    EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(InstMix, FractionMatchesPercent)
{
    InstMix m;
    m.add(InstClass::Simd, 1);
    m.add(InstClass::IntAlu, 3);
    EXPECT_DOUBLE_EQ(m.fraction(InstClass::Simd), 0.25);
    EXPECT_DOUBLE_EQ(m.percent(InstClass::Simd), 25.0);
}

TEST(InstMix, MemAndComputeAggregates)
{
    InstMix m;
    m.add(InstClass::MemRead, 2);
    m.add(InstClass::MemWrite, 1);
    m.add(InstClass::IntAlu, 4);
    m.add(InstClass::Simd, 1);
    m.add(InstClass::FpAlu, 2);
    EXPECT_DOUBLE_EQ(m.memFraction(), 0.3);
    EXPECT_DOUBLE_EQ(m.computeFraction(), 0.5);
}

TEST(InstMix, AccumulateOperator)
{
    InstMix a;
    a.add(InstClass::IntAlu, 5);
    InstMix b;
    b.add(InstClass::IntAlu, 3);
    b.add(InstClass::FpAlu, 2);
    a += b;
    EXPECT_EQ(a.count(InstClass::IntAlu), 8u);
    EXPECT_EQ(a.count(InstClass::FpAlu), 2u);
}

TEST(InstMix, ScaledMultipliesAllCounts)
{
    InstMix m;
    m.add(InstClass::MemRead, 7);
    m.add(InstClass::Control, 3);
    const InstMix s = m.scaled(4);
    EXPECT_EQ(s.count(InstClass::MemRead), 28u);
    EXPECT_EQ(s.count(InstClass::Control), 12u);
    // Percentages are scale-invariant.
    EXPECT_DOUBLE_EQ(s.percent(InstClass::MemRead),
                     m.percent(InstClass::MemRead));
}

TEST(InstMix, EqualityComparesCounts)
{
    InstMix a;
    a.add(InstClass::IntAlu, 1);
    InstMix b;
    b.add(InstClass::IntAlu, 1);
    EXPECT_EQ(a, b);
    b.add(InstClass::FpAlu, 1);
    EXPECT_NE(a, b);
}

TEST(InstMix, ToStringMentionsTotalAndClasses)
{
    InstMix m;
    m.add(InstClass::IntAlu, 10);
    const std::string s = m.toString();
    EXPECT_NE(s.find("total=10"), std::string::npos);
    EXPECT_NE(s.find("arith"), std::string::npos);
}

}  // namespace
