/** @file Unit tests for the instrumented vision primitives: both their
 * functional results and the phases they record. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "profiler/op_profiler.h"
#include "vision/ops.h"

namespace {

using namespace mapp;
using namespace mapp::vision;

/** Run fn inside a profiler session and return the recorded trace. */
template <typename Fn>
isa::WorkloadTrace
traced(Fn&& fn)
{
    profiler::ProfilerSession session("T", 1);
    fn();
    return session.take();
}

Image
randomImage(int w, int h, std::uint64_t seed)
{
    Rng rng(seed);
    Image img(w, h);
    for (auto& v : img.data())
        v = static_cast<float>(rng.uniform(0.0, 255.0));
    return img;
}

TEST(Ops, ConvolveIdentityKernel)
{
    const Image img = randomImage(12, 12, 1);
    const std::vector<float> kernel{0, 0, 0, 0, 1, 0, 0, 0, 0};
    const Image out = ops::convolve2d(img, kernel, 3);
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x)
            EXPECT_NEAR(out.at(x, y), img.at(x, y), 1e-4);
}

TEST(Ops, ConvolveRecordsPhaseWithCorrectTapCount)
{
    const Image img = randomImage(8, 8, 2);
    const std::vector<float> kernel(9, 1.0f / 9.0f);
    const auto trace = traced([&] { ops::convolve2d(img, kernel, 3); });
    ASSERT_EQ(trace.size(), 1u);
    const auto& p = trace.phases()[0];
    EXPECT_EQ(p.name, "convolve2d");
    EXPECT_EQ(p.mix.count(isa::InstClass::MemRead), 64u * 9u);
    EXPECT_EQ(p.mix.count(isa::InstClass::MemWrite), 64u);
    EXPECT_EQ(p.workItems, 64u);
}

TEST(Ops, GaussianBlurPreservesConstantImage)
{
    const Image img(16, 16, 42.0f);
    const Image out = ops::gaussianBlur(img, 1.2f);
    for (float v : out.data())
        EXPECT_NEAR(v, 42.0f, 1e-3);
}

TEST(Ops, GaussianBlurSmooths)
{
    Image img(17, 17, 0.0f);
    img.at(8, 8) = 100.0f;  // impulse
    const Image out = ops::gaussianBlur(img, 1.5f);
    EXPECT_LT(out.at(8, 8), 100.0f);
    EXPECT_GT(out.at(8, 8), out.at(8, 4));  // peak stays central
}

TEST(Ops, SobelDetectsVerticalEdge)
{
    Image img(10, 10, 0.0f);
    for (int y = 0; y < 10; ++y)
        for (int x = 5; x < 10; ++x)
            img.at(x, y) = 100.0f;
    Image gx, gy;
    ops::sobel(img, gx, gy);
    EXPECT_GT(std::abs(gx.at(4, 5)), 100.0f);
    EXPECT_NEAR(gy.at(4, 5), 0.0f, 1e-3);
    EXPECT_NEAR(gx.at(1, 5), 0.0f, 1e-3);
}

TEST(Ops, GradientPolarMagnitudeAndAngle)
{
    Image gx(3, 3, 3.0f);
    Image gy(3, 3, 4.0f);
    Image mag, orient;
    ops::gradientPolar(gx, gy, mag, orient);
    EXPECT_NEAR(mag.at(1, 1), 5.0f, 1e-4);
    EXPECT_NEAR(orient.at(1, 1), std::atan2(4.0, 3.0), 1e-4);
}

TEST(Ops, Downsample2xAverages)
{
    Image img(4, 4, 0.0f);
    img.at(0, 0) = 4.0f;
    img.at(1, 0) = 8.0f;
    img.at(0, 1) = 12.0f;
    img.at(1, 1) = 16.0f;
    const Image out = ops::downsample2x(img);
    EXPECT_EQ(out.width(), 2);
    EXPECT_NEAR(out.at(0, 0), 10.0f, 1e-4);
}

TEST(Ops, ResizeBilinearPreservesConstant)
{
    const Image img(9, 9, 7.0f);
    const Image out = ops::resizeBilinear(img, 5, 13);
    EXPECT_EQ(out.width(), 5);
    EXPECT_EQ(out.height(), 13);
    for (float v : out.data())
        EXPECT_NEAR(v, 7.0f, 1e-4);
}

TEST(Ops, IntegralMatchesDirectConstruction)
{
    const Image img = randomImage(7, 5, 3);
    const IntegralImage a = ops::integral(img);
    const IntegralImage b(img);
    EXPECT_NEAR(a.boxSum(1, 1, 5, 3), b.boxSum(1, 1, 5, 3), 1e-9);
}

TEST(Ops, HistogramCountsAndClamps)
{
    const std::vector<float> values{0.5f, 1.5f, 1.6f, 9.9f, -5.0f, 42.0f};
    const auto h = ops::histogram(values, 10, 0.0f, 10.0f);
    ASSERT_EQ(h.size(), 10u);
    EXPECT_DOUBLE_EQ(h[0], 2.0);  // 0.5 and clamped -5.0
    EXPECT_DOUBLE_EQ(h[1], 2.0);
    EXPECT_DOUBLE_EQ(h[9], 2.0);  // 9.9 and clamped 42
}

TEST(Ops, NonMaxSuppressFindsIsolatedPeak)
{
    Image resp(9, 9, 0.0f);
    resp.at(4, 4) = 10.0f;
    resp.at(1, 1) = 5.0f;
    const auto maxima = ops::nonMaxSuppress(resp, 1.0f, 2);
    ASSERT_EQ(maxima.size(), 2u);
}

TEST(Ops, NonMaxSuppressRejectsNeighbors)
{
    Image resp(9, 9, 0.0f);
    resp.at(4, 4) = 10.0f;
    resp.at(5, 4) = 9.0f;  // suppressed by the neighbor
    const auto maxima = ops::nonMaxSuppress(resp, 1.0f, 2);
    ASSERT_EQ(maxima.size(), 1u);
    EXPECT_EQ(maxima[0].first, 4);
}

TEST(Ops, DotMatchesManualComputation)
{
    const std::vector<float> a{1.0f, 2.0f, 3.0f};
    const std::vector<float> b{4.0f, 5.0f, 6.0f};
    EXPECT_DOUBLE_EQ(ops::dot(a, b), 32.0);
}

TEST(Ops, DistanceMatrixValues)
{
    const std::vector<Descriptor> a{{0.0f, 0.0f}, {1.0f, 1.0f}};
    const std::vector<Descriptor> b{{0.0f, 1.0f}};
    const auto d = ops::distanceMatrix(a, b);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_DOUBLE_EQ(d[0], 1.0);
    EXPECT_DOUBLE_EQ(d[1], 1.0);
}

TEST(Ops, TopKSmallestOrdersResults)
{
    const std::vector<double> v{5.0, 1.0, 3.0, 0.5, 4.0};
    const auto idx = ops::topKSmallest(v, 3);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 3);
    EXPECT_EQ(idx[1], 1);
    EXPECT_EQ(idx[2], 2);
}

TEST(Ops, TopKClampsToSize)
{
    const std::vector<double> v{2.0, 1.0};
    EXPECT_EQ(ops::topKSmallest(v, 10).size(), 2u);
}

TEST(Ops, HammingDistanceCountsBits)
{
    const BinaryDescriptor a{0b1010, 0xFF};
    const BinaryDescriptor b{0b0110, 0x00};
    EXPECT_EQ(ops::hammingDistance(a, b), 2 + 8);
}

TEST(Ops, CopyImageIsExactAndStaged)
{
    const Image img = randomImage(6, 6, 4);
    const auto trace = traced([&] {
        const Image out = ops::copyImage(img);
        EXPECT_EQ(out.data(), img.data());
    });
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_TRUE(trace.phases()[0].hostStaged);
    EXPECT_GT(trace.phases()[0].mix.count(isa::InstClass::String), 0u);
}

TEST(Ops, PhasesValidateThemselves)
{
    // Every op must record a well-formed phase; run a sampler of ops
    // under a session and rely on record()'s validation.
    const Image img = randomImage(16, 16, 5);
    const auto trace = traced([&] {
        Image gx, gy, mag, orient;
        ops::sobel(img, gx, gy);
        ops::gradientPolar(gx, gy, mag, orient);
        ops::integral(img);
        ops::downsample2x(img);
        ops::gaussianBlur(img, 1.0f);
    });
    EXPECT_EQ(trace.size(), 5u);
    for (const auto& p : trace.phases())
        EXPECT_NO_THROW(p.validate());
}

}  // namespace
