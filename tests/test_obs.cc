/** @file Unit tests for the observability layer: metrics registry,
 * scoped timers, phase profiler and the Chrome-trace event tracer. */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "common/parallel.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace {

using namespace mapp;

// ---------------------------------------------------------------------------
// A tiny validating JSON parser: enough to parse back what the obs layer
// emits (objects, arrays, strings with escapes, numbers, bools, null) and
// fail loudly on malformed output.

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    bool has(const std::string& key) const
    {
        return fields.find(key) != fields.end();
    }
    const JsonValue& at(const std::string& key) const
    {
        return fields.at(key);
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    JsonValue parse()
    {
        const JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& why)
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue parseValue()
    {
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            const JsonValue key = parseString();
            expect(':');
            v.fields[key.text] = parseValue();
            const char c = peek();
            ++pos_;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.items.push_back(parseValue());
            const char c = peek();
            ++pos_;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    JsonValue parseString()
    {
        expect('"');
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (c != '\\') {
                v.text += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("dangling escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                v.text += '"';
                break;
              case '\\':
                v.text += '\\';
                break;
              case '/':
                v.text += '/';
                break;
              case 'n':
                v.text += '\n';
                break;
              case 'r':
                v.text += '\r';
                break;
              case 't':
                v.text += '\t';
                break;
              case 'b':
                v.text += '\b';
                break;
              case 'f':
                v.text += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                v.text += static_cast<char>(code < 128 ? code : '?');
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return JsonValue{};
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Registry, CounterCreateIncrementSnapshotReset)
{
    obs::Registry reg;
    obs::Counter& c = reg.counter("widgets");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    // Same name resolves to the same instrument.
    reg.counter("widgets").add(8);
    EXPECT_EQ(c.value(), 50u);

    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "widgets");
    EXPECT_EQ(snap.counters[0].second, 50u);

    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    // Reset keeps the instrument registered.
    EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(Registry, GaugeLastWriteWins)
{
    obs::Registry reg;
    reg.gauge("depth").set(3.0);
    reg.gauge("depth").set(5.5);
    EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 5.5);
}

TEST(Registry, HistogramBucketEdges)
{
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});

    // Bucket i counts v <= bounds[i]: the edge lands in its own bucket.
    h.observe(0.5);
    h.observe(1.0);   // exactly the first bound
    h.observe(1.01);  // just past it
    h.observe(4.0);   // exactly the last bound
    h.observe(100.0);  // overflow

    const auto counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.01 + 4.0 + 100.0);
}

TEST(Registry, HistogramRejectsMalformedBounds)
{
    obs::Registry reg;
    EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), FatalError);
    EXPECT_THROW(reg.histogram("dup", {1.0, 1.0}), FatalError);
    // Registry maps empty bounds to the defaults; the Histogram type
    // itself must reject them.
    EXPECT_THROW(obs::Histogram({}, "empty"), FatalError);
    EXPECT_THROW(
        reg.histogram("nan",
                      {1.0, std::numeric_limits<double>::quiet_NaN()}),
        FatalError);
    EXPECT_THROW(
        reg.histogram("inf",
                      {1.0, std::numeric_limits<double>::infinity()}),
        FatalError);
}

TEST(HistogramSnapshot, QuantileEmptyIsNaN)
{
    obs::Registry reg;
    reg.histogram("q.empty", {1.0, 2.0});
    const auto snap = reg.snapshot();
    const auto* h = snap.findHistogram("q.empty");
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(std::isnan(h->quantile(0.5)));
}

TEST(HistogramSnapshot, QuantileInterpolatesInsideBucket)
{
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("q.interp", {10.0, 20.0});
    // 10 observations in (0, 10], none beyond: ranks spread linearly
    // across the first bucket [0, 10].
    for (int i = 0; i < 10; ++i)
        h.observe(5.0);
    const auto snap = reg.snapshot();
    const auto* s = snap.findHistogram("q.interp");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s->quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(s->quantile(1.0), 10.0);
    // q is clamped, not rejected.
    EXPECT_DOUBLE_EQ(s->quantile(-1.0), s->quantile(0.0));
    EXPECT_DOUBLE_EQ(s->quantile(2.0), s->quantile(1.0));
}

TEST(HistogramSnapshot, QuantileSplitsAcrossBuckets)
{
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("q.split", {1.0, 2.0, 4.0});
    for (int i = 0; i < 3; ++i)
        h.observe(0.5);  // bucket [0,1]
    h.observe(3.0);  // bucket (2,4]
    const auto snap = reg.snapshot();
    const auto* s = snap.findHistogram("q.split");
    ASSERT_NE(s, nullptr);
    // Rank 2 of 4 lands at the end of the first bucket's mass.
    EXPECT_LE(s->quantile(0.5), 1.0);
    EXPECT_GT(s->quantile(0.5), 0.0);
    // The top quartile interpolates inside (2, 4].
    EXPECT_GT(s->quantile(0.95), 2.0);
    EXPECT_LE(s->quantile(0.95), 4.0);
}

TEST(HistogramSnapshot, QuantileOverflowClampsToLastBound)
{
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("q.overflow", {1.0, 2.0});
    for (int i = 0; i < 5; ++i)
        h.observe(100.0);  // all mass beyond the last bound
    const auto snap = reg.snapshot();
    const auto* s = snap.findHistogram("q.overflow");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(s->quantile(0.99), 2.0);
}

TEST(HistogramSnapshot, QuantileNegativeBoundsUseFirstBoundEdge)
{
    // Signed-error histograms extend below zero: the first bucket's
    // lower edge is its own bound, not zero.
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("q.signed", {-10.0, 0.0, 10.0});
    for (int i = 0; i < 4; ++i)
        h.observe(-5.0);  // bucket (-10, 0]
    const auto snap = reg.snapshot();
    const auto* s = snap.findHistogram("q.signed");
    ASSERT_NE(s, nullptr);
    const double p50 = s->quantile(0.5);
    EXPECT_GE(p50, -10.0);
    EXPECT_LE(p50, 0.0);
}

TEST(Registry, ConcurrentCountersAreExact)
{
    obs::Registry reg;
    obs::Counter& c = reg.counter("hits");
    constexpr int kThreads = 4;
    constexpr int kIncrements = 10'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kIncrements; ++i)
                c.add();
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Registry, JsonSnapshotParses)
{
    obs::Registry reg;
    reg.counter("a.count").add(7);
    reg.gauge("b.gauge").set(-2.25);
    reg.histogram("c.hist", {1.0, 10.0}).observe(3.0);

    const JsonValue doc = JsonParser(reg.toJson()).parse();
    EXPECT_DOUBLE_EQ(doc.at("counters").at("a.count").number, 7.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("b.gauge").number, -2.25);
    const JsonValue& hist = doc.at("histograms").at("c.hist");
    EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
    EXPECT_DOUBLE_EQ(hist.at("sum").number, 3.0);
    ASSERT_EQ(hist.at("buckets").items.size(), 3u);
    EXPECT_DOUBLE_EQ(hist.at("buckets").items[1].number, 1.0);
}

TEST(Registry, NonFiniteGaugeExportsAsNull)
{
    // JSON has no NaN/Inf literal; rewriting to 0 would fabricate a
    // data point in dashboards, so the exporter must emit null.
    obs::Registry reg;
    reg.gauge("bad.nan").set(std::numeric_limits<double>::quiet_NaN());
    reg.gauge("bad.inf").set(std::numeric_limits<double>::infinity());
    reg.gauge("good").set(1.5);

    const std::string json = reg.toJson();
    EXPECT_EQ(json.find('\0'), std::string::npos);
    const JsonValue doc = JsonParser(json).parse();
    EXPECT_EQ(doc.at("gauges").at("bad.nan").kind,
              JsonValue::Kind::Null);
    EXPECT_EQ(doc.at("gauges").at("bad.inf").kind,
              JsonValue::Kind::Null);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("good").number, 1.5);
}

// ---------------------------------------------------------------------------
// Timers and the phase profiler

TEST(ScopedTimer, AccumulatesIntoHistogram)
{
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("op_seconds");
    for (int i = 0; i < 3; ++i) {
        obs::ScopedTimer timer(h);
        // A little busy-work so elapsed time is strictly positive.
        volatile double sink = 0.0;
        for (int k = 0; k < 1000; ++k)
            sink = sink + k;
    }
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GT(h.sum(), 0.0);
}

TEST(ScopedTimer, CancelSuppressesRecording)
{
    obs::Registry reg;
    obs::Histogram& h = reg.histogram("op_seconds");
    {
        obs::ScopedTimer timer(h);
        timer.cancel();
    }
    EXPECT_EQ(h.count(), 0u);
}

TEST(PhaseProfiler, BuildsHierarchyAndMergesRepeats)
{
    obs::PhaseProfiler profiler;
    for (int i = 0; i < 2; ++i) {
        profiler.enter("loocv");
        profiler.enter("tree-training");
        profiler.exit(0.25);
        profiler.exit(1.0);
    }

    const auto report = profiler.report();
    ASSERT_EQ(report.children.size(), 1u);
    const auto& loocv = report.children[0];
    EXPECT_EQ(loocv.name, "loocv");
    EXPECT_EQ(loocv.count, 2u);
    EXPECT_DOUBLE_EQ(loocv.seconds, 2.0);
    ASSERT_EQ(loocv.children.size(), 1u);
    EXPECT_EQ(loocv.children[0].name, "tree-training");
    EXPECT_EQ(loocv.children[0].count, 2u);
    EXPECT_DOUBLE_EQ(loocv.children[0].seconds, 0.5);

    const std::string text = profiler.toText();
    EXPECT_NE(text.find("loocv"), std::string::npos);
    EXPECT_NE(text.find("tree-training"), std::string::npos);

    profiler.reset();
    EXPECT_TRUE(profiler.report().children.empty());
}

TEST(PhaseProfiler, ScopedPhaseNests)
{
    obs::PhaseProfiler profiler;
    {
        obs::ScopedPhase outer(profiler, "outer");
        obs::ScopedPhase inner(profiler, "inner");
    }
    const auto report = profiler.report();
    ASSERT_EQ(report.children.size(), 1u);
    EXPECT_EQ(report.children[0].name, "outer");
    ASSERT_EQ(report.children[0].children.size(), 1u);
    EXPECT_EQ(report.children[0].children[0].name, "inner");
}

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, DisabledRecordsNothing)
{
    obs::Tracer tracer;
    ASSERT_FALSE(tracer.enabled());
    for (int i = 0; i < 1000; ++i) {
        tracer.completeEvent("phase", "cat", i, 1.0, 1, 0);
        tracer.instantEvent("mark", "cat", i, 1, 0);
    }
    // Zero-overhead smoke check: a disabled tracer stores no events and
    // its export is an empty (but valid) document.
    EXPECT_EQ(tracer.size(), 0u);
    const JsonValue doc =
        JsonParser(tracer.chromeTraceJson()).parse();
    EXPECT_TRUE(doc.at("traceEvents").items.empty());
}

TEST(Tracer, ChromeTraceJsonRoundTrips)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);

    const int pid = tracer.beginTrack("gpusim bag: \"A\"+B\\slash");
    tracer.nameThread(pid, 0, "client 0");
    tracer.completeEvent(
        "kernel \"phase\"\nwith newline", "gpusim.phase", 10.0, 32.5,
        pid, 0,
        {obs::TraceArg::str("app", "SIFT"),
         obs::TraceArg::num("phase_index", 3.0)});
    tracer.instantEvent("re-partition", "gpusim.partition", 42.5, pid, 0,
                        {obs::TraceArg::num("residents", 2.0)});
    tracer.counterEvent("bandwidth", 50.0, pid,
                        {obs::TraceArg::num("gbps", 123.5)});

    const std::string json = tracer.chromeTraceJson();
    const JsonValue doc = JsonParser(json).parse();
    const auto& events = doc.at("traceEvents").items;
    ASSERT_EQ(events.size(), 5u);

    // Every event has the Chrome-trace required fields.
    for (const auto& e : events) {
        EXPECT_TRUE(e.has("name"));
        EXPECT_TRUE(e.has("ph"));
        EXPECT_TRUE(e.has("pid"));
        EXPECT_TRUE(e.has("tid"));
    }

    const auto& span = events[2];
    EXPECT_EQ(span.at("ph").text, "X");
    EXPECT_EQ(span.at("name").text, "kernel \"phase\"\nwith newline");
    EXPECT_DOUBLE_EQ(span.at("ts").number, 10.0);
    EXPECT_DOUBLE_EQ(span.at("dur").number, 32.5);
    EXPECT_EQ(span.at("args").at("app").text, "SIFT");
    EXPECT_DOUBLE_EQ(span.at("args").at("phase_index").number, 3.0);

    const auto& instant = events[3];
    EXPECT_EQ(instant.at("ph").text, "i");
    EXPECT_DOUBLE_EQ(instant.at("args").at("residents").number, 2.0);

    const auto& meta = events[0];
    EXPECT_EQ(meta.at("ph").text, "M");
    EXPECT_EQ(meta.at("args").at("name").text,
              "gpusim bag: \"A\"+B\\slash");
}

TEST(Tracer, WriteChromeTraceFileParsesBack)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    const int pid = tracer.beginTrack("test track");
    tracer.completeEvent("work", "cat", 0.0, 5.0, pid, 0);

    const std::string path = ::testing::TempDir() + "mapp_obs_trace.json";
    ASSERT_TRUE(tracer.writeChromeTrace(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const JsonValue doc = JsonParser(buffer.str()).parse();
    EXPECT_EQ(doc.at("traceEvents").items.size(), 2u);
    std::remove(path.c_str());
}

TEST(Tracer, TextTimelineSortedAndAnnotated)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    const int pid = tracer.beginTrack("track");
    tracer.instantEvent("late", "cat", 100.0, pid, 0);
    tracer.completeEvent("early", "cat", 1.0, 2.0, pid, 0,
                         {obs::TraceArg::str("app", "FAST")});

    const std::string text = tracer.textTimeline();
    const auto early = text.find("early");
    const auto late = text.find("late");
    ASSERT_NE(early, std::string::npos);
    ASSERT_NE(late, std::string::npos);
    EXPECT_LT(early, late);  // sorted by timestamp despite record order
    EXPECT_NE(text.find("app=FAST"), std::string::npos);
}

TEST(Tracer, ClearDropsEventsButKeepsEnabled)
{
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.instantEvent("mark", "cat", 0.0, 1, 0);
    EXPECT_EQ(tracer.size(), 1u);
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_TRUE(tracer.enabled());
}

// ---------------------------------------------------------------------------
// Logging satellites

TEST(Log, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("quiet"), LogLevel::Quiet);
    EXPECT_EQ(parseLogLevel("NORMAL"), LogLevel::Normal);
    EXPECT_EQ(parseLogLevel("Verbose"), LogLevel::Verbose);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_FALSE(parseLogLevel("loud").has_value());
}

TEST(Log, DebugTierOrdering)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Verbose);
    EXPECT_NO_THROW(debug("suppressed at verbose"));
    setLogLevel(LogLevel::Debug);
    EXPECT_NO_THROW(debug("printed at debug"));
    EXPECT_NO_THROW(verbose("also printed at debug"));
    setLogLevel(before);
}

// ---------------------------------------------------------------------------
// Static-destruction ordering: the global thread pool's destructor
// joins workers whose tasks (and queued leftovers) touch the obs
// singletons, so globalPool() pins registry/tracer/prediction-log
// construction before the pool's. The assertions that matter run at
// process exit under ASan/TSan — a regression shows up as a
// use-after-free when this binary tears down, not as an EXPECT here.

TEST(ShutdownOrder, PoolTasksMayConstructObsSingletons)
{
    obs::predictionLog().setEnabled(true);
    std::atomic<int> touched{0};
    parallel::parallelFor(64, [&touched](std::size_t i) {
        obs::defaultRegistry()
            .counter("test.shutdown_order.tasks")
            .add(1);
        obs::tracer().instantEvent(
            "shutdown-order-" + std::to_string(i), "test", 0.0, 0, 0);
        obs::predictionLog();
        touched.fetch_add(1, std::memory_order_relaxed);
    });
    obs::predictionLog().setEnabled(false);
    EXPECT_EQ(touched.load(), 64);
    const auto snap = obs::defaultRegistry().snapshot();
    const auto* count =
        snap.findCounter("test.shutdown_order.tasks");
    ASSERT_NE(count, nullptr);
    EXPECT_GE(*count, 64u);
}

TEST(ShutdownOrder, LateParallelForRunsSerialOncePoolRetired)
{
    // Normal operation: the retired flag is still false, so this runs
    // through the pool. The serial fallback itself is exercised at
    // exit by any atexit-registered parallelFor; here we just assert
    // the live path completes every index exactly once.
    std::vector<std::atomic<int>> hits(17);
    parallel::parallelFor(hits.size(), [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Log, ConcurrentWritersDoNotCrash)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);  // exercise the path, keep output clean
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < 100; ++i) {
                inform("i" + std::to_string(i));
                if (i == 0)
                    warn("concurrent writer " + std::to_string(t));
            }
        });
    }
    for (auto& t : threads)
        t.join();
    setLogLevel(before);
}

}  // namespace
