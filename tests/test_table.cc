/** @file Unit tests for ASCII table and bar-chart rendering. */

#include <gtest/gtest.h>

#include "common/table.h"

namespace {

using namespace mapp;

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("My Title");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("My Title"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, NumericRowFormatting)
{
    TextTable t;
    t.setHeader({"bench", "err"});
    t.addRow("FAST", {12.3456}, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("12.35"), std::string::npos);
}

TEST(TextTable, PadsShortRows)
{
    TextTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"only"});
    EXPECT_NO_THROW(t.render());
}

TEST(TextTable, HandlesWideCells)
{
    TextTable t;
    t.setHeader({"x"});
    t.addRow({"a-very-long-cell-value"});
    const std::string out = t.render();
    EXPECT_NE(out.find("a-very-long-cell-value"), std::string::npos);
}

TEST(BarChart, ProportionalBars)
{
    const std::string out = renderBarChart(
        "T", {{"a", 10.0}, {"b", 5.0}}, 20, "%");
    // The larger value gets the full width; the smaller roughly half.
    const auto countHashes = [&](const std::string& label) {
        const auto pos = out.find(label);
        const auto eol = out.find('\n', pos);
        int n = 0;
        for (auto i = pos; i < eol; ++i)
            if (out[i] == '#')
                ++n;
        return n;
    };
    EXPECT_EQ(countHashes("a"), 20);
    EXPECT_EQ(countHashes("b"), 10);
    EXPECT_NE(out.find("10.00%"), std::string::npos);
}

TEST(BarChart, ZeroValuesSafe)
{
    EXPECT_NO_THROW(renderBarChart("T", {{"a", 0.0}}, 10));
}

TEST(BarChart, EmptySafe)
{
    EXPECT_NO_THROW(renderBarChart("T", {}, 10));
}

TEST(GroupedBars, RendersAllGroupsAndSeries)
{
    const std::string out = renderGroupedBars(
        "G", {"FAST", "HoG"}, {"1", "2"},
        {{1.0, 0.8}, {1.0, 0.5}}, 20);
    EXPECT_NE(out.find("FAST"), std::string::npos);
    EXPECT_NE(out.find("HoG"), std::string::npos);
    EXPECT_NE(out.find("0.500"), std::string::npos);
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
}

}  // namespace
