/** @file Tests for the run-report pipeline: the sidecar JSON reader,
 * the Prometheus text exposition and the `mapp_cli report` markdown
 * renderer (metrics round trip, graceful degradation, located errors
 * on malformed sidecars). */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/json_reader.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace {

using namespace mapp;

std::string
writeTemp(const std::string& name, const std::string& content)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonReader, ParsesScalarsContainersAndEscapes)
{
    const auto doc = obs::parseJson(
        R"({"a": [1, -2.5e2, true, null], "s": "x\n\"y\""})", "t");
    ASSERT_TRUE(doc.ok());
    const auto& root = doc.value();
    ASSERT_TRUE(root.isObject());
    const auto* a = root.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 4u);
    EXPECT_DOUBLE_EQ(a->items()[0].number(), 1.0);
    EXPECT_DOUBLE_EQ(a->items()[1].number(), -250.0);
    EXPECT_TRUE(a->items()[2].boolean());
    EXPECT_TRUE(a->items()[3].isNull());
    EXPECT_EQ(root.find("s")->text(), "x\n\"y\"");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonReader, MalformedInputIsALocatedError)
{
    for (const char* bad : {"{", "[1,]", "\"open", "{\"a\" 1}",
                            "nulx", "1 trailing"}) {
        const auto doc = obs::parseJson(bad, "bad.json");
        EXPECT_FALSE(doc.ok()) << bad;
        if (!doc.ok())
            EXPECT_NE(doc.error().toString().find("bad.json"),
                      std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, NameManglingAndPrefix)
{
    EXPECT_EQ(obs::prometheusName("ml.tree.fits"),
              "mapp_ml_tree_fits");
    EXPECT_EQ(obs::prometheusName("a-b c/d"), "mapp_a_b_c_d");
}

TEST(Prometheus, ExposesCountersGaugesAndCumulativeBuckets)
{
    obs::Registry reg;
    reg.counter("runs").add(3);
    reg.gauge("speed").set(1.5);
    auto& h = reg.histogram("lat", {1.0, 2.0});
    h.observe(0.5);
    h.observe(0.5);
    h.observe(1.5);
    h.observe(99.0);

    const std::string text = obs::writePrometheus(reg.snapshot());
    EXPECT_NE(text.find("# TYPE mapp_runs counter"),
              std::string::npos);
    EXPECT_NE(text.find("mapp_runs 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE mapp_speed gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE mapp_lat histogram"),
              std::string::npos);
    // Buckets are cumulative and close with +Inf == _count.
    EXPECT_NE(text.find("mapp_lat_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("mapp_lat_bucket{le=\"2\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("mapp_lat_bucket{le=\"+Inf\"} 4"),
              std::string::npos);
    EXPECT_NE(text.find("mapp_lat_count 4"), std::string::npos);
}

TEST(Prometheus, NonFiniteGaugesUseExpositionLiterals)
{
    obs::Registry reg;
    reg.gauge("bad").set(std::numeric_limits<double>::quiet_NaN());
    reg.gauge("up").set(std::numeric_limits<double>::infinity());
    const std::string text = obs::writePrometheus(reg.snapshot());
    EXPECT_NE(text.find("mapp_bad NaN"), std::string::npos);
    EXPECT_NE(text.find("mapp_up +Inf"), std::string::npos);
}

// The whole exposition, byte for byte. Any accidental format drift
// (ordering, spacing, TYPE lines, bucket math) breaks scrapers even
// when each piece still "looks right", so the document is pinned.
TEST(Prometheus, PinnedExposition)
{
    obs::Registry reg;
    reg.counter("runs").add(2);
    reg.gauge("queue.depth").set(1.5);
    auto& h = reg.histogram("wait", {1.0, 2.0});
    h.observe(0.5);
    h.observe(3.0);

    EXPECT_EQ(obs::writePrometheus(reg.snapshot()),
              "# TYPE mapp_runs counter\n"
              "mapp_runs 2\n"
              "# TYPE mapp_queue_depth gauge\n"
              "mapp_queue_depth 1.5\n"
              "# TYPE mapp_wait histogram\n"
              "mapp_wait_bucket{le=\"1\"} 1\n"
              "mapp_wait_bucket{le=\"2\"} 1\n"
              "mapp_wait_bucket{le=\"+Inf\"} 2\n"
              "mapp_wait_sum 3.5\n"
              "mapp_wait_count 2\n");
}

// Registry names sanitize many-to-one ("a.b" and "a-b" both become
// mapp_a_b); a duplicate metric name or second TYPE line invalidates
// the whole 0.0.4 exposition, so later collisions must be dropped
// (first wins) and surfaced as comments.
TEST(Prometheus, SanitizedNameCollisionsEmitOnce)
{
    obs::Registry reg;
    reg.counter("a.b").add(1);
    reg.counter("a-b").add(2);
    reg.gauge("a/b").set(9.0);  // collides across instrument kinds too

    const std::string text = obs::writePrometheus(reg.snapshot());
    std::size_t types = 0;
    for (std::size_t at = text.find("# TYPE mapp_a_b ");
         at != std::string::npos;
         at = text.find("# TYPE mapp_a_b ", at + 1))
        ++types;
    EXPECT_EQ(types, 1u);
    // Counters snapshot in sorted order, so "a-b" claims mapp_a_b.
    EXPECT_NE(text.find("mapp_a_b 2\n"), std::string::npos);
    EXPECT_EQ(text.find("mapp_a_b 1\n"), std::string::npos);
    EXPECT_EQ(text.find("mapp_a_b 9\n"), std::string::npos);
    EXPECT_NE(text.find("# mapp: skipped 'a.b'"), std::string::npos);
    EXPECT_NE(text.find("# mapp: skipped 'a/b'"), std::string::npos);
}

// Audit: every metric name the exposition emits — even from hostile
// registry names — matches the Prometheus 0.0.4 charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
TEST(Prometheus, EmittedNamesMatchExpositionCharset)
{
    obs::Registry reg;
    reg.counter("9starts.with digit").add(1);
    reg.gauge("weird-\xc3\xa9name!{}").set(2.0);
    reg.histogram("spaces and\ttabs", {1.0}).observe(0.5);

    const std::string text = obs::writePrometheus(reg.snapshot());
    std::istringstream lines(text);
    std::string line;
    std::size_t audited = 0;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::string name =
            line.substr(0, line.find_first_of(" {"));
        ASSERT_FALSE(name.empty()) << line;
        const auto head = static_cast<unsigned char>(name[0]);
        EXPECT_TRUE(std::isalpha(head) || name[0] == '_' ||
                    name[0] == ':')
            << line;
        for (const char c : name)
            EXPECT_TRUE(
                std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == ':')
                << line;
        ++audited;
    }
    EXPECT_GE(audited, 6u);  // 1 counter + 1 gauge + 4 histogram lines
}

// ---------------------------------------------------------------------------
// Metrics snapshot round trip

TEST(Report, SnapshotFromJsonRoundTrips)
{
    obs::Registry reg;
    reg.counter("c.hits").add(7);
    reg.gauge("g.depth").set(-1.25);
    auto& h = reg.histogram("h.lat", {1.0, 4.0});
    h.observe(0.5);
    h.observe(8.0);

    const auto snap =
        obs::snapshotFromJson(reg.toJson(), "metrics.json");
    ASSERT_TRUE(snap.ok()) << snap.error().message();
    const auto& s = snap.value();
    ASSERT_NE(s.findCounter("c.hits"), nullptr);
    EXPECT_EQ(*s.findCounter("c.hits"), 7u);
    ASSERT_NE(s.findGauge("g.depth"), nullptr);
    EXPECT_DOUBLE_EQ(*s.findGauge("g.depth"), -1.25);
    const auto* hist = s.findHistogram("h.lat");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 2u);
    EXPECT_DOUBLE_EQ(hist->sum, 8.5);
    ASSERT_EQ(hist->bounds.size(), 2u);
    ASSERT_EQ(hist->counts.size(), 3u);
    EXPECT_EQ(hist->counts[0], 1u);
    EXPECT_EQ(hist->counts[2], 1u);
}

TEST(Report, SnapshotFromJsonRejectsNonSidecarDocuments)
{
    EXPECT_FALSE(obs::snapshotFromJson("[]", "x").ok());
    EXPECT_FALSE(obs::snapshotFromJson("{\"histograms\": 3}", "x").ok());
    EXPECT_FALSE(obs::snapshotFromJson("{nope", "x").ok());
}

// ---------------------------------------------------------------------------
// The full report renderer

TEST(Report, RendersAllSectionsFromSidecars)
{
    // Metrics sidecar with a latency histogram, quality metrics and a
    // drift gauge over the flag threshold.
    obs::Registry reg;
    reg.histogram("predict.batch.seconds", {0.001, 0.01, 0.1})
        .observe(0.004);
    reg.histogram("predictor.error.abs_pct", {5.0, 10.0, 20.0})
        .observe(7.0);
    reg.gauge("predictor.quality.mape_pct").set(7.0);
    reg.counter("predictor.quality.pairs").add(1);
    reg.gauge("predictor.drift.oor_frac.a0_gpu_time").set(0.25);
    const std::string metrics =
        writeTemp("report_metrics.json", reg.toJson());

    // Prediction JSONL: one annotated high-error record plus one line
    // of garbage that must be skipped, not fatal.
    obs::PredictionLog log(8);
    log.recordInPlace([](obs::PredictionRecord& r) {
        r.seq = 3;
        r.model.assign("dataset");
        r.features.assign({0.5, 0.25});
        r.predictedSeconds = 2.0;
        r.uncertaintySeconds = 0.1;
        r.pathSummary.assign("a0_gpu_time>1.5");
        r.actualSeconds = 1.0;
    });
    const std::string predictions = writeTemp(
        "report_predictions.jsonl", log.toJsonl() + "not json\n");

    // Trace sidecar: two nested pipeline spans.
    obs::Tracer tracer;
    tracer.setEnabled(true);
    tracer.completeEvent("campaign-collection", "pipeline", 0.0,
                         1000.0, obs::kPipelineTrackPid, 0);
    tracer.completeEvent("feature-extraction", "pipeline", 100.0,
                         200.0, obs::kPipelineTrackPid, 0);
    const std::string trace =
        writeTemp("report_trace.json", tracer.chromeTraceJson());

    const auto report = obs::renderRunReport(
        obs::RunReportInputs{metrics, predictions, trace});
    ASSERT_TRUE(report.ok()) << report.error().message();
    const std::string& text = report.value();

    EXPECT_NE(text.find("# MAPP run report"), std::string::npos);
    EXPECT_NE(text.find("## Phase tree"), std::string::npos);
    EXPECT_NE(text.find("campaign-collection"), std::string::npos);
    // feature-extraction nests under campaign-collection.
    EXPECT_NE(text.find("  - `feature-extraction`"),
              std::string::npos);
    EXPECT_NE(text.find("## Latency percentiles"), std::string::npos);
    EXPECT_NE(text.find("predict.batch.seconds"), std::string::npos);
    EXPECT_NE(text.find("## Prediction quality"), std::string::npos);
    EXPECT_NE(text.find("## Top-error predictions"),
              std::string::npos);
    EXPECT_NE(text.find("a0_gpu_time>1.5"), std::string::npos);
    EXPECT_NE(text.find("## Drift flags"), std::string::npos);
    EXPECT_NE(text.find("a0_gpu_time"), std::string::npos);
    EXPECT_NE(text.find("## Counters"), std::string::npos);
    EXPECT_NE(text.find("1 malformed lines skipped"),
              std::string::npos);

    std::remove(metrics.c_str());
    std::remove(predictions.c_str());
    std::remove(trace.c_str());
}

TEST(Report, OptionalSidecarsDegradeToNotes)
{
    obs::Registry reg;
    reg.counter("runs").add(1);
    const std::string metrics =
        writeTemp("report_metrics_only.json", reg.toJson());

    const auto report =
        obs::renderRunReport(obs::RunReportInputs{metrics, "", ""});
    ASSERT_TRUE(report.ok()) << report.error().message();
    EXPECT_NE(report.value().find("## Phase tree"), std::string::npos);
    EXPECT_NE(report.value().find("--trace-out"), std::string::npos);

    std::remove(metrics.c_str());
}

TEST(Report, MissingOrMalformedMetricsFails)
{
    const auto missing = obs::renderRunReport(
        obs::RunReportInputs{"/nonexistent/metrics.json", "", ""});
    EXPECT_FALSE(missing.ok());

    const std::string bad =
        writeTemp("report_bad_metrics.json", "not json at all");
    const auto malformed =
        obs::renderRunReport(obs::RunReportInputs{bad, "", ""});
    EXPECT_FALSE(malformed.ok());
    std::remove(bad.c_str());
}

}  // namespace
