# End-to-end smoke for the persistent artifact cache: run the campaign
# collection twice against a fresh cache directory, assert the second
# (warm) run served from the cache and produced byte-identical output,
# then exercise `cache stats` and `cache clear`. Driven by ctest:
#   cmake -DMAPP_CLI=<path> -DWORK_DIR=<dir> -P cache_smoke.cmake

foreach(var MAPP_CLI WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "cache_smoke: -D${var}=... is required")
    endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(cache_dir "${WORK_DIR}/cache")
set(cold_csv "${WORK_DIR}/cold.csv")
set(warm_csv "${WORK_DIR}/warm.csv")
set(cold_metrics "${WORK_DIR}/cold.metrics.json")
set(warm_metrics "${WORK_DIR}/warm.metrics.json")

# Cold run: everything computed, everything stored.
execute_process(
    COMMAND "${MAPP_CLI}" "--cache-dir=${cache_dir}"
            "--metrics-out=${cold_metrics}"
            collect "${cold_csv}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cache_smoke: cold collect failed (${rc}):\n${out}\n${err}")
endif()

file(READ "${cold_metrics}" cold_json)
string(FIND "${cold_json}" "\"cache.bytes_written\"" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
            "cache_smoke: cold run wrote nothing to the cache:\n"
            "${cold_json}")
endif()

# Warm run in a fresh process: must hit the cache and reproduce the
# dataset byte for byte.
execute_process(
    COMMAND "${MAPP_CLI}" "--cache-dir=${cache_dir}"
            "--metrics-out=${warm_metrics}"
            collect "${warm_csv}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cache_smoke: warm collect failed (${rc}):\n${out}\n${err}")
endif()

file(READ "${warm_metrics}" warm_json)
string(FIND "${warm_json}" "\"cache.hits\"" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
            "cache_smoke: warm run had no cache hits:\n${warm_json}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${cold_csv}" "${warm_csv}"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cache_smoke: warm dataset differs from the cold one")
endif()

# Stats must list the populated kinds.
execute_process(
    COMMAND "${MAPP_CLI}" "--cache-dir=${cache_dir}" cache stats
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stats
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cache_smoke: cache stats failed (${rc}):\n${stats}\n${err}")
endif()
foreach(kind trace member cpurun gpurun campaign)
    string(FIND "${stats}" "${kind}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "cache_smoke: stats is missing kind '${kind}':\n"
                "${stats}")
    endif()
endforeach()

# Clear must empty the cache.
execute_process(
    COMMAND "${MAPP_CLI}" "--cache-dir=${cache_dir}" cache clear
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "cache_smoke: cache clear failed (${rc}):\n${out}\n${err}")
endif()
execute_process(
    COMMAND "${MAPP_CLI}" "--cache-dir=${cache_dir}" cache stats
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE stats)
string(FIND "${stats}" "total           0 entries" pos)
if(pos EQUAL -1)
    message(FATAL_ERROR
            "cache_smoke: cache is not empty after clear:\n${stats}")
endif()
