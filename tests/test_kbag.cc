/** @file Tests for the k-app bag extension (Section VII open problem). */

#include <gtest/gtest.h>

#include "common/log.h"
#include "ml/metrics.h"
#include "predictor/kbag.h"

namespace {

using namespace mapp;
using namespace mapp::predictor;
using vision::BenchmarkId;

DataCollector&
collector()
{
    static DataCollector instance;
    return instance;
}

KBagCollector&
kcollector()
{
    static KBagCollector instance(collector());
    return instance;
}

TEST(KBagSpec, CanonicalSortsMembers)
{
    KBagSpec spec;
    spec.members = {{BenchmarkId::Sift, 20},
                    {BenchmarkId::Fast, 40},
                    {BenchmarkId::Fast, 20}};
    const auto canon = spec.canonical();
    EXPECT_EQ(canon.members[0].id, BenchmarkId::Fast);
    EXPECT_EQ(canon.members[0].batchSize, 20);
    EXPECT_EQ(canon.members[1].batchSize, 40);
    EXPECT_EQ(canon.members[2].id, BenchmarkId::Sift);
}

TEST(KBagSpec, Labels)
{
    KBagSpec spec;
    spec.members = {{BenchmarkId::Fast, 20}, {BenchmarkId::Hog, 40},
                    {BenchmarkId::Svm, 20}};
    EXPECT_EQ(spec.label(), "FAST@20+HoG@40+SVM@20");
    EXPECT_EQ(spec.groupLabel(), "FAST+HoG+SVM");
}

TEST(KBagFeatures, NamesScaleWithK)
{
    EXPECT_EQ(kBagFeatureNames(2).size(), 23u);
    EXPECT_EQ(kBagFeatureNames(3).size(), 34u);
    EXPECT_EQ(kBagFeatureNames(4).back(), "fairness");
    EXPECT_EQ(kBagFeatureNames(3)[22], "a2_cpu_time");
}

TEST(KBagCollector, CampaignLayout)
{
    const auto specs = kcollector().campaign(3, 12, 7);
    EXPECT_EQ(specs.size(), 9u + 12u);
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_EQ(specs[i].members.size(), 3u);
        EXPECT_EQ(specs[i].members[0].id, specs[i].members[2].id);
    }
    for (const auto& spec : specs)
        EXPECT_EQ(spec.members.size(), 3u);
}

TEST(KBagCollector, CampaignDeterministic)
{
    const auto a = kcollector().campaign(3, 10, 42);
    const auto b = kcollector().campaign(3, 10, 42);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].label(), b[i].label());
}

TEST(KBagCollector, CollectMeasuresPlausibly)
{
    KBagSpec spec;
    spec.members = {{BenchmarkId::Hog, 20},
                    {BenchmarkId::Fast, 20},
                    {BenchmarkId::Surf, 20}};
    const auto point = kcollector().collect(spec);
    EXPECT_EQ(point.apps.size(), 3u);
    EXPECT_GT(point.gpuBagTime, 0.0);
    EXPECT_GT(point.fairness, 0.0);
    EXPECT_LE(point.fairness, 1.0 + 1e-9);
    // A 3-bag must take at least as long as the slowest member alone.
    double slowest = 0.0;
    for (const auto& app : point.apps)
        slowest = std::max(slowest, app.gpuTime);
    EXPECT_GE(point.gpuBagTime, slowest * (1.0 - 1e-9));
}

TEST(KBagCollector, RejectsTinyBags)
{
    KBagSpec spec;
    spec.members = {{BenchmarkId::Hog, 20}};
    EXPECT_THROW(kcollector().collect(spec), FatalError);
}

TEST(KBagPredictor, TrainPredict3Bags)
{
    const auto specs = kcollector().campaign(3, 16, 3);
    std::vector<KBagPoint> points;
    for (const auto& spec : specs)
        points.push_back(kcollector().collect(spec));

    KBagPredictor model(3);
    model.train(points);
    EXPECT_TRUE(model.trained());

    // In-sample fit must be tight (deterministic targets).
    double err = 0.0;
    for (const auto& p : points)
        err += ml::relativeErrorPercent(p.gpuBagTime, model.predict(p));
    EXPECT_LT(err / static_cast<double>(points.size()), 15.0);
}

TEST(KBagPredictor, GeneralizesToUnseen3Bag)
{
    const auto specs = kcollector().campaign(3, 20, 5);
    std::vector<KBagPoint> points;
    for (const auto& spec : specs)
        points.push_back(kcollector().collect(spec));

    KBagPredictor model(3);
    model.train(points);

    KBagSpec unseen;
    unseen.members = {{BenchmarkId::Knn, 20},
                      {BenchmarkId::Orb, 40},
                      {BenchmarkId::FaceDet, 20}};
    const auto truth = kcollector().collect(unseen);
    const double err = ml::relativeErrorPercent(truth.gpuBagTime,
                                                model.predict(truth));
    EXPECT_LT(err, 120.0);  // sane, not wildly extrapolated
}

TEST(KBagPredictor, SizeMismatchesAreFatal)
{
    KBagPredictor model(3);
    EXPECT_THROW(model.train({}), FatalError);
    EXPECT_THROW(KBagPredictor bad(1), FatalError);

    const auto specs = kcollector().campaign(3, 4, 1);
    std::vector<KBagPoint> points;
    for (const auto& spec : specs)
        points.push_back(kcollector().collect(spec));
    model.train(points);

    KBagSpec two;
    two.members = {{BenchmarkId::Hog, 20}, {BenchmarkId::Fast, 20}};
    const auto point = kcollector().collect(two);
    EXPECT_THROW(model.predict(point), FatalError);
}

TEST(KBagPredictor, FairnessDropsWithBagSize)
{
    // Larger heterogeneous bags have more slowdown asymmetry: fairness
    // of a nested 4-bag can only be <= the 2-bag's (min/max over a
    // superset of slowdowns widens the spread).
    KBagSpec two;
    two.members = {{BenchmarkId::Svm, 20}, {BenchmarkId::Surf, 20}};
    KBagSpec four;
    four.members = {{BenchmarkId::Svm, 20},
                    {BenchmarkId::Surf, 20},
                    {BenchmarkId::Sift, 20},
                    {BenchmarkId::Fast, 20}};
    const auto p2 = kcollector().collect(two);
    const auto p4 = kcollector().collect(four);
    EXPECT_LE(p4.fairness, p2.fairness + 0.15);
}

}  // namespace
