#include "isa/trace_io.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/log.h"

namespace mapp::isa {

namespace {

std::vector<std::string>
header()
{
    std::vector<std::string> cols{"app", "batch", "phase"};
    for (InstClass c : kAllInstClasses)
        cols.push_back(instClassName(c));
    for (const char* extra :
         {"bytes_read", "bytes_written", "footprint", "parallel",
          "work_items", "locality", "divergence", "launches",
          "host_staged"}) {
        cols.emplace_back(extra);
    }
    return cols;
}

}  // namespace

std::string
traceToCsv(const WorkloadTrace& trace)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader(header());
    for (const auto& p : trace.phases()) {
        std::vector<std::string> row{trace.app(),
                                     std::to_string(trace.batchSize()),
                                     p.name};
        for (InstClass c : kAllInstClasses)
            row.push_back(std::to_string(p.mix.count(c)));
        row.push_back(std::to_string(p.bytesRead));
        row.push_back(std::to_string(p.bytesWritten));
        row.push_back(std::to_string(p.footprint));
        row.push_back(std::to_string(p.parallelFraction));
        row.push_back(std::to_string(p.workItems));
        row.push_back(std::to_string(p.locality));
        row.push_back(std::to_string(p.branchDivergence));
        row.push_back(std::to_string(p.launches));
        row.push_back(p.hostStaged ? "1" : "0");
        writer.writeRow(row);
    }
    return os.str();
}

WorkloadTrace
traceFromCsv(const std::string& text)
{
    const CsvTable table = parseCsv(text);
    const auto expected = header();
    if (table.header != expected)
        fatal("traceFromCsv: unexpected header");
    if (table.rows.empty())
        fatal("traceFromCsv: trace has no phases");

    auto col = [&](const std::string& name) {
        const int idx = table.columnIndex(name);
        if (idx < 0)
            fatal("traceFromCsv: missing column " + name);
        return static_cast<std::size_t>(idx);
    };

    WorkloadTrace trace(table.rows.front()[col("app")],
                        std::stoi(table.rows.front()[col("batch")]));
    for (const auto& row : table.rows) {
        if (row.size() != expected.size())
            fatal("traceFromCsv: short row");
        KernelPhase p;
        p.name = row[col("phase")];
        for (InstClass c : kAllInstClasses) {
            p.mix.add(c, static_cast<InstCount>(std::stoull(
                             row[col(instClassName(c))])));
        }
        p.bytesRead = std::stoull(row[col("bytes_read")]);
        p.bytesWritten = std::stoull(row[col("bytes_written")]);
        p.footprint = std::stoull(row[col("footprint")]);
        p.parallelFraction = std::stod(row[col("parallel")]);
        p.workItems = std::stoull(row[col("work_items")]);
        p.locality = std::stod(row[col("locality")]);
        p.branchDivergence = std::stod(row[col("divergence")]);
        p.launches = std::stoull(row[col("launches")]);
        p.hostStaged = row[col("host_staged")] == "1";
        trace.append(std::move(p));  // validates
    }
    return trace;
}

void
writeTraceFile(const WorkloadTrace& trace, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("writeTraceFile: cannot open " + path);
    out << traceToCsv(trace);
    if (!out)
        fatal("writeTraceFile: write failed for " + path);
}

WorkloadTrace
readTraceFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("readTraceFile: cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return traceFromCsv(ss.str());
}

}  // namespace mapp::isa
