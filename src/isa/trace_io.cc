#include "isa/trace_io.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/csv.h"
#include "common/error.h"
#include "common/file_io.h"
#include "common/log.h"
#include "common/parse.h"

namespace mapp::isa {

namespace {

std::vector<std::string>
header()
{
    std::vector<std::string> cols{"app", "batch", "phase"};
    for (InstClass c : kAllInstClasses)
        cols.push_back(instClassName(c));
    for (const char* extra :
         {"bytes_read", "bytes_written", "footprint", "parallel",
          "work_items", "locality", "divergence", "launches",
          "host_staged"}) {
        cols.emplace_back(extra);
    }
    return cols;
}

}  // namespace

std::string
traceToCsv(const WorkloadTrace& trace)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader(header());
    for (const auto& p : trace.phases()) {
        std::vector<std::string> row{trace.app(),
                                     std::to_string(trace.batchSize()),
                                     p.name};
        for (InstClass c : kAllInstClasses)
            row.push_back(std::to_string(p.mix.count(c)));
        row.push_back(std::to_string(p.bytesRead));
        row.push_back(std::to_string(p.bytesWritten));
        row.push_back(std::to_string(p.footprint));
        row.push_back(std::to_string(p.parallelFraction));
        row.push_back(std::to_string(p.workItems));
        row.push_back(std::to_string(p.locality));
        row.push_back(std::to_string(p.branchDivergence));
        row.push_back(std::to_string(p.launches));
        row.push_back(p.hostStaged ? "1" : "0");
        writer.writeRow(row);
    }
    return os.str();
}

WorkloadTrace
traceFromCsv(const std::string& text, const std::string& source)
{
    const CsvTable table = parseCsv(text, source);
    const auto expected = header();
    if (table.header != expected)
        raise({ErrorCode::Schema,
               "unexpected trace header (" +
                   std::to_string(table.header.size()) + " columns, " +
                   std::to_string(expected.size()) +
                   " expected starting 'app,batch,phase')",
               {source, 0, ""}});
    if (table.rows.empty())
        raise({ErrorCode::Schema, "trace has no phases", {source, 0, ""}});

    auto col = [&](const std::string& name) {
        // The full header matched above, so the column must exist.
        const int idx = table.columnIndex(name);
        if (idx < 0)
            panic("traceFromCsv: missing column " + name);
        return static_cast<std::size_t>(idx);
    };
    // Cell accessors carrying (source, row, column) into every error.
    auto cellAt = [&](std::size_t r, const std::string& name) {
        return table.rows[r][col(name)];
    };
    auto ctxAt = [&](std::size_t r, const std::string& name) {
        return SourceContext{source, r + 1, name};
    };
    auto countAt = [&](std::size_t r, const std::string& name) {
        return parseUnsigned(cellAt(r, name)).orThrow(ctxAt(r, name));
    };
    auto fractionAt = [&](std::size_t r, const std::string& name) {
        return parseDouble(cellAt(r, name)).orThrow(ctxAt(r, name));
    };

    WorkloadTrace trace(
        cellAt(0, "app"),
        parseBoundedInt(cellAt(0, "batch"), 1,
                        std::numeric_limits<int>::max())
            .orThrow(ctxAt(0, "batch")));
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        const auto& row = table.rows[r];
        if (row.size() != expected.size())
            raise({ErrorCode::Schema,
                   "row has " + std::to_string(row.size()) +
                       " cells, expected " +
                       std::to_string(expected.size()),
                   {source, r + 1, ""}});
        KernelPhase p;
        p.name = cellAt(r, "phase");
        for (InstClass c : kAllInstClasses) {
            p.mix.add(c, static_cast<InstCount>(
                             countAt(r, instClassName(c))));
        }
        p.bytesRead = countAt(r, "bytes_read");
        p.bytesWritten = countAt(r, "bytes_written");
        p.footprint = countAt(r, "footprint");
        p.parallelFraction = fractionAt(r, "parallel");
        p.workItems = countAt(r, "work_items");
        p.locality = fractionAt(r, "locality");
        p.branchDivergence = fractionAt(r, "divergence");
        p.launches = countAt(r, "launches");
        const std::string& staged = cellAt(r, "host_staged");
        if (staged != "0" && staged != "1")
            raise({ErrorCode::Parse,
                   "host_staged must be 0 or 1, got '" + staged + "'",
                   ctxAt(r, "host_staged")});
        p.hostStaged = staged == "1";
        try {
            trace.append(std::move(p));  // validates the phase
        } catch (const InputError&) {
            throw;
        } catch (const FatalError& e) {
            raise({ErrorCode::Range, e.what(), {source, r + 1, ""}});
        }
    }
    return trace;
}

void
writeTraceFile(const WorkloadTrace& trace, const std::string& path)
{
    if (!writeFileAtomic(path, traceToCsv(trace)))
        raise({ErrorCode::Io, "cannot write file", {path, 0, ""}});
}

WorkloadTrace
readTraceFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise({ErrorCode::Io, "cannot open file", {path, 0, ""}});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise({ErrorCode::Io, "read failed", {path, 0, ""}});
    return traceFromCsv(ss.str(), path);
}

}  // namespace mapp::isa
