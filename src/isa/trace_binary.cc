#include "isa/trace_binary.h"

#include <fstream>
#include <sstream>

#include "cache/binary_io.h"
#include "common/error.h"
#include "isa/inst_class.h"

namespace mapp::isa {

namespace {

constexpr std::string_view kMagic = "MTRC";
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::string
traceToBinary(const WorkloadTrace& trace)
{
    cache::BinaryWriter w(kMagic, kVersion);
    w.str(trace.app());
    w.i32(trace.batchSize());
    w.u32(static_cast<std::uint32_t>(kNumInstClasses));
    w.u64(trace.size());
    for (const auto& p : trace.phases()) {
        w.str(p.name);
        for (InstClass c : kAllInstClasses)
            w.u64(p.mix.count(c));
        w.u64(p.bytesRead);
        w.u64(p.bytesWritten);
        w.u64(p.footprint);
        w.f64(p.parallelFraction);
        w.u64(p.workItems);
        w.f64(p.locality);
        w.f64(p.branchDivergence);
        w.u64(p.launches);
        w.u8(p.hostStaged ? 1 : 0);
    }
    return std::move(w).finish();
}

WorkloadTrace
traceFromBinary(const std::string& blob, const std::string& source)
{
    cache::BinaryReader r(blob, source, kMagic, kVersion);
    const std::string app = r.str();
    const std::int32_t batch = r.i32();
    const std::uint32_t numClasses = r.u32();
    if (numClasses != kNumInstClasses)
        raise({ErrorCode::Schema,
               "instruction-class count mismatch (expected " +
                   std::to_string(kNumInstClasses) + ", found " +
                   std::to_string(numClasses) + ")",
               {source, 0, ""}});
    const std::uint64_t phases = r.u64();
    WorkloadTrace trace(app, batch);
    for (std::uint64_t i = 0; i < phases; ++i) {
        KernelPhase p;
        p.name = r.str();
        for (InstClass c : kAllInstClasses)
            p.mix.add(c, r.u64());
        p.bytesRead = r.u64();
        p.bytesWritten = r.u64();
        p.footprint = r.u64();
        p.parallelFraction = r.f64();
        p.workItems = r.u64();
        p.locality = r.f64();
        p.branchDivergence = r.f64();
        p.launches = r.u64();
        p.hostStaged = r.u8() != 0;
        // append() re-validates the phase, so semantic corruption that
        // survives the checksum still cannot enter the pipeline.
        trace.append(std::move(p));
    }
    r.expectEnd();
    return trace;
}

void
writeTraceBinaryFile(const WorkloadTrace& trace, const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        raise({ErrorCode::Io, "cannot open for writing", {path, 0, ""}});
    const std::string blob = traceToBinary(trace);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out)
        raise({ErrorCode::Io, "write failed", {path, 0, ""}});
}

WorkloadTrace
readTraceBinaryFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise({ErrorCode::Io, "cannot open file", {path, 0, ""}});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise({ErrorCode::Io, "read failed", {path, 0, ""}});
    return traceFromBinary(ss.str(), path);
}

}  // namespace mapp::isa
