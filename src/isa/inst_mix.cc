#include "isa/inst_mix.h"

#include <sstream>

#include "common/log.h"

namespace mapp::isa {

std::string
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::MemRead: return "mem_rd";
      case InstClass::MemWrite: return "mem_wr";
      case InstClass::Control: return "ctrl";
      case InstClass::IntAlu: return "arith";
      case InstClass::FpAlu: return "fp";
      case InstClass::Stack: return "stack";
      case InstClass::Shift: return "shift";
      case InstClass::String: return "string";
      case InstClass::Simd: return "sse";
      default: break;
    }
    panic("instClassName: invalid class");
}

InstClass
instClassFromName(const std::string& name)
{
    for (InstClass c : kAllInstClasses)
        if (instClassName(c) == name)
            return c;
    fatal("instClassFromName: unknown class " + name);
}

void
InstMix::add(InstClass c, InstCount n)
{
    counts_[static_cast<std::size_t>(c)] += n;
}

InstCount
InstMix::count(InstClass c) const
{
    return counts_[static_cast<std::size_t>(c)];
}

InstCount
InstMix::total() const
{
    InstCount t = 0;
    for (auto v : counts_)
        t += v;
    return t;
}

double
InstMix::percent(InstClass c) const
{
    return fraction(c) * 100.0;
}

double
InstMix::fraction(InstClass c) const
{
    const InstCount t = total();
    if (t == 0)
        return 0.0;
    return static_cast<double>(count(c)) / static_cast<double>(t);
}

double
InstMix::memFraction() const
{
    return fraction(InstClass::MemRead) + fraction(InstClass::MemWrite);
}

double
InstMix::computeFraction() const
{
    return fraction(InstClass::IntAlu) + fraction(InstClass::Simd);
}

InstMix&
InstMix::operator+=(const InstMix& rhs)
{
    for (std::size_t i = 0; i < kNumInstClasses; ++i)
        counts_[i] += rhs.counts_[i];
    return *this;
}

InstMix
InstMix::scaled(InstCount factor) const
{
    InstMix out;
    for (std::size_t i = 0; i < kNumInstClasses; ++i)
        out.counts_[i] = counts_[i] * factor;
    return out;
}

std::string
InstMix::toString() const
{
    std::ostringstream os;
    os << "total=" << total();
    for (InstClass c : kAllInstClasses) {
        os << ' ' << instClassName(c) << '=';
        os.precision(1);
        os << std::fixed << percent(c) << '%';
    }
    return os.str();
}

}  // namespace mapp::isa
