#include "isa/kernel_phase.h"

#include "common/log.h"

namespace mapp::isa {

double
KernelPhase::arithmeticIntensity() const
{
    const Bytes t = traffic();
    if (t == 0)
        return static_cast<double>(instructions());
    return static_cast<double>(instructions()) / static_cast<double>(t);
}

void
KernelPhase::validate() const
{
    if (parallelFraction < 0.0 || parallelFraction > 1.0)
        fatal("KernelPhase " + name + ": parallelFraction out of [0,1]");
    if (locality < 0.0 || locality > 1.0)
        fatal("KernelPhase " + name + ": locality out of [0,1]");
    if (branchDivergence < 0.0 || branchDivergence > 1.0)
        fatal("KernelPhase " + name + ": branchDivergence out of [0,1]");
    if (workItems == 0)
        fatal("KernelPhase " + name + ": zero work items");
    if (instructions() == 0)
        fatal("KernelPhase " + name + ": empty instruction mix");
}

}  // namespace mapp::isa
