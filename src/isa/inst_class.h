/**
 * @file
 * The instruction-class taxonomy used by the MICA-style profiler and by
 * both performance simulators.
 *
 * The classes mirror Table IV / Figure 12 of the paper: arithmetic (ALU),
 * floating point, SSE/SIMD, memory reads, memory writes, stack push/pop,
 * string operations, multiply/shift, and control/branch instructions.
 * Table IV's "MEM" feature is the sum of the read and write classes.
 */

#ifndef MAPP_ISA_INST_CLASS_H
#define MAPP_ISA_INST_CLASS_H

#include <array>
#include <cstddef>
#include <string>

namespace mapp::isa {

/** Dynamic-instruction classes (order matches Fig. 12's columns). */
enum class InstClass : std::size_t {
    MemRead = 0,  ///< loads
    MemWrite,     ///< stores
    Control,      ///< branches, calls, returns
    IntAlu,       ///< integer arithmetic/logic ("arith")
    FpAlu,        ///< scalar floating point
    Stack,        ///< push/pop and frame manipulation
    Shift,        ///< multiplies and shifts
    String,       ///< string/memcpy-style ops
    Simd,         ///< SSE/AVX vector instructions
    NumClasses
};

/** Number of instruction classes. */
inline constexpr std::size_t kNumInstClasses =
    static_cast<std::size_t>(InstClass::NumClasses);

/** Iterable list of all classes. */
inline constexpr std::array<InstClass, kNumInstClasses> kAllInstClasses = {
    InstClass::MemRead, InstClass::MemWrite, InstClass::Control,
    InstClass::IntAlu,  InstClass::FpAlu,    InstClass::Stack,
    InstClass::Shift,   InstClass::String,   InstClass::Simd,
};

/** Short machine-readable name (matches Fig. 12 column labels). */
std::string instClassName(InstClass c);

/** Parse an instClassName back to the enum. @throws FatalError if bad. */
InstClass instClassFromName(const std::string& name);

}  // namespace mapp::isa

#endif  // MAPP_ISA_INST_CLASS_H
