/**
 * @file
 * WorkloadTrace: an ordered sequence of KernelPhase records produced by
 * one profiled run of a vision benchmark on one input batch. This is the
 * MAPP analogue of the paper's PIN/MICA instrumentation output, and the
 * single input both the CPU and GPU simulators consume.
 */

#ifndef MAPP_ISA_TRACE_H
#define MAPP_ISA_TRACE_H

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/kernel_phase.h"

namespace mapp::isa {

/** A profiled run: workload identity plus its phase sequence. */
class WorkloadTrace
{
  public:
    WorkloadTrace() = default;

    /**
     * @param app benchmark name (e.g. "SIFT")
     * @param batch_size images in the input batch that produced the trace
     */
    WorkloadTrace(std::string app, int batch_size)
        : app_(std::move(app)), batchSize_(batch_size)
    {
    }

    const std::string& app() const { return app_; }
    int batchSize() const { return batchSize_; }

    /** Append one validated phase. */
    void append(KernelPhase phase);

    /** Append all phases of another trace (pipeline composition). */
    void append(const WorkloadTrace& other);

    const std::vector<KernelPhase>& phases() const { return phases_; }
    bool empty() const { return phases_.empty(); }
    std::size_t size() const { return phases_.size(); }

    /** Aggregate instruction mix over all phases. */
    InstMix totalMix() const;

    /** Total dynamic instructions. */
    InstCount totalInstructions() const;

    /** Total bytes read. */
    Bytes totalBytesRead() const;

    /** Total bytes written. */
    Bytes totalBytesWritten() const;

    /** Largest single-phase footprint (proxy for the working set). */
    Bytes peakFootprint() const;

    /** Instruction-weighted mean locality over phases. */
    double meanLocality() const;

    /** Instruction-weighted mean parallel fraction. */
    double meanParallelFraction() const;

    /** Instruction-weighted mean branch divergence. */
    double meanBranchDivergence() const;

    /** One-line summary for logging. */
    std::string summary() const;

  private:
    std::string app_;
    int batchSize_ = 0;
    std::vector<KernelPhase> phases_;
};

}  // namespace mapp::isa

#endif  // MAPP_ISA_TRACE_H
