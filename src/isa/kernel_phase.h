/**
 * @file
 * The phase descriptor that connects the instrumented vision workloads to
 * the performance simulators.
 *
 * A KernelPhase is the basic-block-aggregate record one instrumented
 * primitive (convolution, histogram, dot product, ...) emits: dynamic
 * instruction counts by class, memory traffic and footprint, and the
 * behavioural knobs the simulators need (parallelism, locality, branch
 * divergence). It plays the role the PIN/MICA trace plays in the paper.
 */

#ifndef MAPP_ISA_KERNEL_PHASE_H
#define MAPP_ISA_KERNEL_PHASE_H

#include <string>

#include "common/types.h"
#include "isa/inst_mix.h"

namespace mapp::isa {

/** One profiled execution phase of a workload. */
struct KernelPhase
{
    /** Primitive name, e.g. "convolve2d". */
    std::string name;

    /** Dynamic instruction counts by class. */
    InstMix mix;

    /** Bytes read from memory (traffic, not footprint). */
    Bytes bytesRead = 0;

    /** Bytes written to memory. */
    Bytes bytesWritten = 0;

    /** Distinct bytes touched (working set of the phase). */
    Bytes footprint = 0;

    /**
     * Fraction of the phase's work that is parallelizable (Amdahl's
     * fraction) when the CPU implementation uses OpenMP-style loops.
     */
    double parallelFraction = 1.0;

    /**
     * Number of independent work items (e.g. pixels, keypoints), used by
     * the GPU simulator to size the kernel grid.
     */
    std::uint64_t workItems = 1;

    /**
     * Temporal/spatial locality in [0, 1]; 1 means the phase re-touches a
     * small working set (cache friendly), 0 means streaming access.
     */
    double locality = 0.5;

    /**
     * Branch-divergence factor in [0, 1]; the fraction of control-flow
     * decisions that are data-dependent and would diverge within a warp.
     */
    double branchDivergence = 0.1;

    /**
     * Kernel launches this phase represents (grows when a sampled trace
     * is scaled to a full batch); drives per-launch GPU overheads.
     */
    std::uint64_t launches = 1;

    /**
     * True for host-staging phases (input copies): on the GPU these are
     * host-to-device transfers over PCIe rather than SM work; on the
     * CPU they are ordinary memcpys.
     */
    bool hostStaged = false;

    /** Total dynamic instructions. */
    InstCount instructions() const { return mix.total(); }

    /** Total memory traffic (reads + writes). */
    Bytes traffic() const { return bytesRead + bytesWritten; }

    /**
     * Arithmetic intensity: instructions per byte of traffic
     * (+inf-avoiding: returns instructions if traffic is zero).
     */
    double arithmeticIntensity() const;

    /**
     * Check invariants (fractions in range, non-zero work for non-empty
     * mixes). @throws FatalError describing the violated invariant.
     */
    void validate() const;
};

}  // namespace mapp::isa

#endif  // MAPP_ISA_KERNEL_PHASE_H
