/**
 * @file
 * Per-class dynamic-instruction counters and mix percentages.
 */

#ifndef MAPP_ISA_INST_MIX_H
#define MAPP_ISA_INST_MIX_H

#include <array>
#include <string>

#include "common/types.h"
#include "isa/inst_class.h"

namespace mapp::isa {

/**
 * A vector of per-class dynamic instruction counts, with helpers to turn
 * them into the MICA-style mix percentages used as predictor features.
 */
class InstMix
{
  public:
    /** All counters start at zero. */
    InstMix() { counts_.fill(0); }

    /** Add @p n instructions of class @p c. */
    void add(InstClass c, InstCount n = 1);

    /** Raw count for one class. */
    InstCount count(InstClass c) const;

    /** Total dynamic instructions across all classes. */
    InstCount total() const;

    /** Percentage (0-100) of the mix taken by class @p c; 0 if empty. */
    double percent(InstClass c) const;

    /** Fraction (0-1) of the mix taken by class @p c; 0 if empty. */
    double fraction(InstClass c) const;

    /** Combined memory fraction (reads + writes), Table IV's "MEM". */
    double memFraction() const;

    /** Combined compute fraction (IntAlu + Simd), used in Figs. 6-9. */
    double computeFraction() const;

    /** Element-wise accumulation. */
    InstMix& operator+=(const InstMix& rhs);

    /** Scale all counts by an integer factor (batch replication). */
    InstMix scaled(InstCount factor) const;

    /** Equality of all counters. */
    bool operator==(const InstMix& rhs) const = default;

    /** One-line human-readable mix summary. */
    std::string toString() const;

  private:
    std::array<InstCount, kNumInstClasses> counts_;
};

}  // namespace mapp::isa

#endif  // MAPP_ISA_INST_MIX_H
