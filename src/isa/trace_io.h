/**
 * @file
 * WorkloadTrace serialization: traces round-trip through a CSV format
 * (one row per phase) so profiled workloads can be cached on disk,
 * shipped between machines, or inspected with standard tools — the
 * moral equivalent of PIN trace files.
 */

#ifndef MAPP_ISA_TRACE_IO_H
#define MAPP_ISA_TRACE_IO_H

#include <string>

#include "isa/trace.h"

namespace mapp::isa {

/** Serialize a trace to CSV text (header + one row per phase). */
std::string traceToCsv(const WorkloadTrace& trace);

/**
 * Parse a trace back from CSV text produced by traceToCsv. Every cell
 * is parsed strictly (no trailing garbage, no NaN/Inf, no overflow).
 * @param source label for the text in error messages (e.g. its path)
 * @throws InputError locating the offending row/column on malformed
 *         input (missing columns, bad values, phases that fail
 *         validation).
 */
WorkloadTrace traceFromCsv(const std::string& text,
                           const std::string& source = "");

/** Write a trace to a file. @throws InputError on I/O failure. */
void writeTraceFile(const WorkloadTrace& trace, const std::string& path);

/** Read a trace from a file. @throws InputError on I/O or parse failure. */
WorkloadTrace readTraceFile(const std::string& path);

}  // namespace mapp::isa

#endif  // MAPP_ISA_TRACE_IO_H
