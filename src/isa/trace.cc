#include "isa/trace.h"

#include <algorithm>
#include <sstream>

namespace mapp::isa {

void
WorkloadTrace::append(KernelPhase phase)
{
    phase.validate();
    phases_.push_back(std::move(phase));
}

void
WorkloadTrace::append(const WorkloadTrace& other)
{
    phases_.insert(phases_.end(), other.phases_.begin(),
                   other.phases_.end());
}

InstMix
WorkloadTrace::totalMix() const
{
    InstMix mix;
    for (const auto& p : phases_)
        mix += p.mix;
    return mix;
}

InstCount
WorkloadTrace::totalInstructions() const
{
    InstCount t = 0;
    for (const auto& p : phases_)
        t += p.instructions();
    return t;
}

Bytes
WorkloadTrace::totalBytesRead() const
{
    Bytes t = 0;
    for (const auto& p : phases_)
        t += p.bytesRead;
    return t;
}

Bytes
WorkloadTrace::totalBytesWritten() const
{
    Bytes t = 0;
    for (const auto& p : phases_)
        t += p.bytesWritten;
    return t;
}

Bytes
WorkloadTrace::peakFootprint() const
{
    Bytes best = 0;
    for (const auto& p : phases_)
        best = std::max(best, p.footprint);
    return best;
}

namespace {

/** Instruction-weighted mean of a phase attribute. */
template <typename Getter>
double
weightedMean(const std::vector<KernelPhase>& phases, Getter get)
{
    double num = 0.0;
    double den = 0.0;
    for (const auto& p : phases) {
        const auto w = static_cast<double>(p.instructions());
        num += w * get(p);
        den += w;
    }
    return den > 0.0 ? num / den : 0.0;
}

}  // namespace

double
WorkloadTrace::meanLocality() const
{
    return weightedMean(phases_,
                        [](const KernelPhase& p) { return p.locality; });
}

double
WorkloadTrace::meanParallelFraction() const
{
    return weightedMean(
        phases_, [](const KernelPhase& p) { return p.parallelFraction; });
}

double
WorkloadTrace::meanBranchDivergence() const
{
    return weightedMean(
        phases_, [](const KernelPhase& p) { return p.branchDivergence; });
}

std::string
WorkloadTrace::summary() const
{
    std::ostringstream os;
    os << app_ << "(batch=" << batchSize_ << "): " << phases_.size()
       << " phases, " << totalInstructions() << " insts, "
       << (totalBytesRead() + totalBytesWritten()) / 1024 << " KiB traffic, "
       << "peak footprint " << peakFootprint() / 1024 << " KiB";
    return os.str();
}

}  // namespace mapp::isa
