/**
 * @file
 * WorkloadTrace binary serialization — the compact format the artifact
 * cache stores profiled traces in. Same information as the CSV
 * round-trip of trace_io.h, but a versioned binary frame (magic "MTRC",
 * little-endian POD fields, length-prefixed strings, trailing FNV
 * checksum) that loads one to two orders of magnitude faster than
 * strict CSV parsing. Loading re-validates every phase, so a corrupt
 * blob surfaces as a located mapp::InputError and the cache falls back
 * to re-profiling.
 */

#ifndef MAPP_ISA_TRACE_BINARY_H
#define MAPP_ISA_TRACE_BINARY_H

#include <string>

#include "isa/trace.h"

namespace mapp::isa {

/** Serialize a trace into a checksummed binary blob. */
std::string traceToBinary(const WorkloadTrace& trace);

/**
 * Parse a trace from a blob produced by traceToBinary.
 * @param source label for error messages (e.g. the blob's path)
 * @throws InputError on a short/garbled/wrong-magic/wrong-version blob
 *         or phases that fail validation.
 */
WorkloadTrace traceFromBinary(const std::string& blob,
                              const std::string& source = "");

/** Write a trace to a binary file. @throws InputError on I/O failure. */
void writeTraceBinaryFile(const WorkloadTrace& trace,
                          const std::string& path);

/** Read a binary trace file. @throws InputError on I/O or parse failure. */
WorkloadTrace readTraceBinaryFile(const std::string& path);

}  // namespace mapp::isa

#endif  // MAPP_ISA_TRACE_BINARY_H
