#include "serve/protocol.h"

#include <cmath>

#include "common/log.h"
#include "common/parse.h"
#include "obs/json_reader.h"
#include "obs/json_util.h"
#include "vision/registry.h"

namespace mapp::serve {

namespace {

Error
protoError(std::string message, const std::string& label,
           ErrorCode code = ErrorCode::Parse)
{
    SourceContext context;
    context.file = label;
    return Error(code, std::move(message), std::move(context));
}

Result<RequestOp>
parseOp(const std::string& name, const std::string& label)
{
    if (name == "ping")
        return RequestOp::Ping;
    if (name == "predict")
        return RequestOp::Predict;
    if (name == "predict_batch")
        return RequestOp::PredictBatch;
    if (name == "quality")
        return RequestOp::Quality;
    if (name == "stats")
        return RequestOp::Stats;
    if (name == "metrics")
        return RequestOp::Metrics;
    if (name == "reload")
        return RequestOp::Reload;
    if (name == "shutdown")
        return RequestOp::Shutdown;
    return protoError("unknown op '" + name + "'", label);
}

/** "SIFT@40" -> BagMember. */
Result<predictor::BagMember>
parseMemberRef(const std::string& text, const std::string& label)
{
    const auto at = text.find('@');
    if (at == std::string::npos)
        return protoError("member '" + text +
                              "' is not BENCH@BATCH",
                          label);
    predictor::BagMember member;
    try {
        member.id = vision::benchmarkFromName(text.substr(0, at));
    } catch (const FatalError& e) {
        return protoError(e.what(), label);
    }
    const auto batch =
        parseBoundedInt(text.substr(at + 1), 1, 1'000'000);
    if (!batch)
        return protoError("member '" + text + "': " +
                              batch.error().message(),
                          label);
    member.batchSize = batch.value();
    return member;
}

/** Raw per-app feature object -> AppFeatures. */
Result<predictor::AppFeatures>
parseRawApp(const obs::JsonValue& obj, const char* slot,
            const std::string& label)
{
    using namespace std::string_literals;
    if (!obj.isObject())
        return protoError(
            "query member '"s + slot +
                "' must be a BENCH@BATCH string or a feature object",
            label);
    predictor::AppFeatures features;
    if (const auto* app = obj.find("app");
        app != nullptr && app->kind() == obs::JsonValue::Kind::String)
        features.app = app->text();
    features.batchSize =
        static_cast<int>(obj.memberNumberOr("batch", 0.0));
    const auto requireNumber =
        [&](const char* key) -> Result<double> {
        const auto* v = obj.find(key);
        if (v == nullptr ||
            v->kind() != obs::JsonValue::Kind::Number ||
            !std::isfinite(v->number())) {
            return protoError("query member '"s + slot +
                                  "' needs a finite number '" + key +
                                  "'",
                              label);
        }
        return v->number();
    };
    auto cpu = requireNumber("cpu_time");
    if (!cpu)
        return cpu.error();
    features.cpuTime = cpu.value();
    auto gpu = requireNumber("gpu_time");
    if (!gpu)
        return gpu.error();
    features.gpuTime = gpu.value();
    const auto* mix = obj.find("mix");
    if (mix == nullptr || !mix->isArray() ||
        mix->items().size() != isa::kNumInstClasses) {
        return protoError(
            "query member '"s + slot + "' needs 'mix' with " +
                std::to_string(isa::kNumInstClasses) + " percentages",
            label);
    }
    for (std::size_t i = 0; i < isa::kNumInstClasses; ++i) {
        const auto& v = mix->items()[i];
        if (v.kind() != obs::JsonValue::Kind::Number ||
            !std::isfinite(v.number())) {
            return protoError("query member '"s + slot + "' mix[" +
                                  std::to_string(i) +
                                  "] is not a finite number",
                              label);
        }
        features.mixPercent[i] = v.number();
    }
    return features;
}

/** One query object ({"a":..,"b":..,"fairness":..}) -> QuerySpec. */
Result<QuerySpec>
parseQuerySpec(const obs::JsonValue& obj, const std::string& label)
{
    if (!obj.isObject())
        return protoError("query must be an object", label);
    const auto* a = obj.find("a");
    const auto* b = obj.find("b");
    if (a == nullptr || b == nullptr)
        return protoError("query needs members 'a' and 'b'", label);

    QuerySpec spec;
    const auto* fairness = obj.find("fairness");
    if (fairness != nullptr) {
        if (fairness->kind() != obs::JsonValue::Kind::Number ||
            !std::isfinite(fairness->number()))
            return protoError("'fairness' must be a finite number",
                              label);
        spec.raw.fairness = fairness->number();
        spec.fairnessProvided = true;
    }

    const bool aIsText = a->kind() == obs::JsonValue::Kind::String;
    const bool bIsText = b->kind() == obs::JsonValue::Kind::String;
    if (aIsText != bIsText)
        return protoError(
            "members 'a' and 'b' must both be BENCH@BATCH strings or "
            "both be feature objects",
            label);
    if (aIsText) {
        spec.byMembers = true;
        auto ma = parseMemberRef(a->text(), label);
        if (!ma)
            return ma.error();
        spec.a = ma.value();
        auto mb = parseMemberRef(b->text(), label);
        if (!mb)
            return mb.error();
        spec.b = mb.value();
        return spec;
    }
    auto fa = parseRawApp(*a, "a", label);
    if (!fa)
        return fa.error();
    auto fb = parseRawApp(*b, "b", label);
    if (!fb)
        return fb.error();
    if (!spec.fairnessProvided)
        return protoError(
            "raw-feature queries need a top-level 'fairness'", label);
    spec.raw.a = std::move(fa).value();
    spec.raw.b = std::move(fb).value();
    return spec;
}

}  // namespace

std::string_view
requestOpName(RequestOp op)
{
    switch (op) {
      case RequestOp::Ping:
        return "ping";
      case RequestOp::Predict:
        return "predict";
      case RequestOp::PredictBatch:
        return "predict_batch";
      case RequestOp::Quality:
        return "quality";
      case RequestOp::Stats:
        return "stats";
      case RequestOp::Metrics:
        return "metrics";
      case RequestOp::Reload:
        return "reload";
      case RequestOp::Shutdown:
        return "shutdown";
    }
    return "ping";
}

Result<Request>
parseRequest(std::string_view line, const std::string& source_label)
{
    auto doc = obs::parseJson(line, source_label);
    if (!doc)
        return doc.error();
    const obs::JsonValue& root = doc.value();
    if (!root.isObject())
        return protoError("request must be a JSON object",
                          source_label);

    Request request;
    if (const auto* id = root.find("id");
        id != nullptr && id->kind() == obs::JsonValue::Kind::String)
        request.id = id->text();

    const auto* op = root.find("op");
    if (op == nullptr || op->kind() != obs::JsonValue::Kind::String)
        return protoError("request needs a string 'op'", source_label);
    auto verb = parseOp(op->text(), source_label);
    if (!verb)
        return verb.error();
    request.op = verb.value();

    if (const auto* deadline = root.find("deadline_ms")) {
        const double ms = deadline->numberOr(-1.0);
        if (!(ms >= 0.0) || !std::isfinite(ms))
            return protoError(
                "'deadline_ms' must be a non-negative finite number",
                source_label);
        request.deadlineMs = ms;
    }

    if (request.op == RequestOp::Predict) {
        auto spec = parseQuerySpec(root, source_label);
        if (!spec)
            return spec.error();
        request.queries.push_back(std::move(spec).value());
    } else if (request.op == RequestOp::PredictBatch) {
        const auto* queries = root.find("queries");
        if (queries == nullptr || !queries->isArray() ||
            queries->items().empty())
            return protoError(
                "predict_batch needs a non-empty 'queries' array",
                source_label);
        request.queries.reserve(queries->items().size());
        for (const auto& item : queries->items()) {
            auto spec = parseQuerySpec(item, source_label);
            if (!spec)
                return spec.error();
            request.queries.push_back(std::move(spec).value());
        }
    }
    return request;
}

std::string
errorResponse(const std::string& id, std::string_view code,
              std::string_view message)
{
    std::string out = "{\"id\":";
    obs::appendJsonString(out, id);
    out += ",\"ok\":false,\"error\":";
    obs::appendJsonString(out, code);
    out += ",\"message\":";
    obs::appendJsonString(out, message);
    out += '}';
    return out;
}

std::string
ackResponse(const std::string& id, RequestOp op)
{
    return objectResponse(id, op, "");
}

std::string
predictResponse(const std::string& id, RequestOp op,
                std::span<const double> predictedSeconds,
                std::uint64_t epoch, double queueUs)
{
    std::string fields = "\"predicted_seconds\":";
    if (op == RequestOp::Predict) {
        obs::appendJsonNumber(fields, predictedSeconds.empty()
                                          ? 0.0
                                          : predictedSeconds.front());
    } else {
        fields += '[';
        for (std::size_t i = 0; i < predictedSeconds.size(); ++i) {
            if (i > 0)
                fields += ',';
            obs::appendJsonNumber(fields, predictedSeconds[i]);
        }
        fields += ']';
    }
    fields += ",\"epoch\":" + std::to_string(epoch);
    fields += ",\"queue_us\":";
    obs::appendJsonNumber(fields, queueUs);
    return objectResponse(id, op, fields);
}

std::string
reloadResponse(const std::string& id, std::uint64_t epoch)
{
    return objectResponse(id, RequestOp::Reload,
                          "\"epoch\":" + std::to_string(epoch));
}

std::string
objectResponse(const std::string& id, RequestOp op,
               const std::string& renderedFields)
{
    std::string out = "{\"id\":";
    obs::appendJsonString(out, id);
    out += ",\"ok\":true,\"op\":";
    obs::appendJsonString(out, std::string(requestOpName(op)));
    if (!renderedFields.empty()) {
        out += ',';
        out += renderedFields;
    }
    out += '}';
    return out;
}

}  // namespace mapp::serve
