#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/log.h"
#include "common/simd.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/json_util.h"
#include "predictor/quality.h"

namespace mapp::serve {

namespace {

/** Human message for a JobResult error code. */
std::string_view
jobErrorMessage(const std::string& code)
{
    if (code == "queue_full")
        return "request queue is full; retry later";
    if (code == "deadline_expired")
        return "deadline expired before the batch flushed";
    if (code == "shutting_down")
        return "service is draining";
    if (code == "bad_request")
        return "request carried no queries";
    return "prediction failed; see server log";
}

/** Protocol error code for a parse-boundary ErrorCode. */
std::string_view
requestErrorCode(ErrorCode code)
{
    return code == ErrorCode::Parse ? "parse" : "bad_request";
}

/**
 * Largest request line either transport buffers. A client that streams
 * this much without a newline is not speaking the protocol; the
 * transport answers one parse error and hangs up rather than growing
 * without bound.
 */
constexpr std::size_t kMaxLineBytes = 8u << 20;

}  // namespace

/** One accepted socket client: its fd, write lock and reader thread. */
struct Server::Connection
{
    int fd = -1;
    std::mutex writeMutex;  ///< serializes responses; guards fd close
    bool closed = false;    ///< under writeMutex
    std::thread reader;

    ~Connection()
    {
        if (fd >= 0)
            ::close(fd);
    }

    /**
     * Write one response line. Late micro-batch callbacks may land
     * after the client vanished; a closed connection swallows them
     * (the client cannot read the answer anyway).
     */
    void respond(std::string line)
    {
        line += '\n';
        std::lock_guard<std::mutex> lock(writeMutex);
        if (closed)
            return;
        std::size_t sent = 0;
        while (sent < line.size()) {
            // MSG_NOSIGNAL: a disconnected peer must be an EPIPE
            // error, not a process-killing SIGPIPE.
            const auto n =
                ::send(fd, line.data() + sent, line.size() - sent,
                       MSG_NOSIGNAL);
            if (n <= 0)
                return;
            sent += static_cast<std::size_t>(n);
        }
    }
};

Server::Server(PredictionService& service,
               predictor::DataCollector& collector)
    : service_(service), collector_(collector)
{
    if (::pipe(stopPipe_) != 0)
        fatal(std::string("serve: cannot create stop pipe: ") +
              std::strerror(errno));
}

Server::~Server()
{
    requestStop();
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        for (auto& connection : connections_)
            if (connection->reader.joinable())
                connection->reader.join();
        connections_.clear();
    }
    ::close(stopPipe_[0]);
    ::close(stopPipe_[1]);
}

void
Server::requestStop()
{
    if (stopRequested_.exchange(true))
        return;
    const char wake = 1;
    // Best effort: the pipe only exists to interrupt a blocked poll().
    [[maybe_unused]] const auto n = ::write(stopPipe_[1], &wake, 1);
}

Result<std::vector<predictor::BagQuery>>
Server::resolveQueries(const std::vector<QuerySpec>& specs)
{
    std::vector<predictor::BagQuery> rows;
    rows.reserve(specs.size());
    for (const auto& spec : specs) {
        if (!spec.byMembers) {
            rows.push_back(spec.raw);
            continue;
        }
        // Member form: resolve exactly like the one-shot CLI predict —
        // canonical bag order, collector-cached per-app features, and
        // the measured Equation-2 fairness unless the client overrode
        // it. This keeps serve answers bit-identical to cold predicts.
        const auto bag =
            predictor::BagSpec{spec.a, spec.b}.canonical();
        try {
            predictor::BagQuery query;
            query.a = collector_.appFeatures(bag.a);
            query.b = collector_.appFeatures(bag.b);
            query.fairness = spec.fairnessProvided
                                 ? spec.raw.fairness
                                 : collector_.measureFairness(bag);
            rows.push_back(std::move(query));
        } catch (const std::exception& e) {
            return Error(ErrorCode::InvalidArgument, e.what(),
                         {bag.label(), 0, ""});
        }
    }
    return rows;
}

std::string
Server::handleQuality(const Request& request)
{
    const auto snapshot = obs::defaultRegistry().snapshot();
    std::string fields = "\"mape_pct\":";
    const double* mape = snapshot.findGauge("predictor.quality.mape_pct");
    obs::appendJsonNumber(fields, mape != nullptr ? *mape : 0.0);
    fields += ",\"pairs\":" +
              std::to_string(
                  predictor::ModelQualityMonitor::global().pairsSeen());
    fields += ",\"drift\":[";
    bool first = true;
    for (const auto& flag :
         predictor::ModelQualityMonitor::global().driftFlags()) {
        if (!first)
            fields += ',';
        first = false;
        fields += "{\"feature\":";
        obs::appendJsonString(fields, flag.feature);
        fields += ",\"oor_frac\":";
        obs::appendJsonNumber(fields, flag.outOfRangeFraction);
        fields += ",\"rows\":" + std::to_string(flag.rowsSeen) + "}";
    }
    fields += ']';
    return objectResponse(request.id, RequestOp::Quality, fields);
}

std::string
Server::handleStats(const Request& request)
{
    const auto snapshot = obs::defaultRegistry().snapshot();
    const auto counter = [&snapshot](const char* name) {
        const auto* v = snapshot.findCounter(name);
        return v != nullptr ? *v : std::uint64_t{0};
    };
    std::string fields;
    fields += "\"epoch\":" + std::to_string(service_.epoch());
    fields += ",\"queued_rows\":" +
              std::to_string(service_.queuedRows());
    fields += ",\"requests\":" +
              std::to_string(counter("serve.requests"));
    fields += ",\"predictions\":" +
              std::to_string(counter("serve.predictions"));
    fields += ",\"batches\":" + std::to_string(counter("serve.batches"));
    fields += ",\"rejected_full\":" +
              std::to_string(counter("serve.rejected_full"));
    fields += ",\"deadline_expired\":" +
              std::to_string(counter("serve.deadline_expired"));
    fields += ",\"reloads\":" + std::to_string(counter("serve.reloads"));
    fields += ",\"simd_tier\":";
    obs::appendJsonString(fields, simd::tierName(simd::activeTier()));
    return objectResponse(request.id, RequestOp::Stats, fields);
}

std::string
Server::handleMetrics(const Request& request)
{
    std::string fields = "\"prometheus\":";
    obs::appendJsonString(
        fields, obs::writePrometheus(obs::defaultRegistry().snapshot()));
    return objectResponse(request.id, RequestOp::Metrics, fields);
}

std::string
Server::handleReload(const Request& request)
{
    try {
        return reloadResponse(request.id, service_.reload());
    } catch (const std::exception& e) {
        return errorResponse(request.id, "internal", e.what());
    }
}

void
Server::handleLine(std::string_view line,
                   const std::function<void(std::string)>& respond)
{
    auto parsed = parseRequest(line);
    if (!parsed) {
        respond(errorResponse("",
                              requestErrorCode(parsed.error().code()),
                              parsed.error().toString()));
        return;
    }
    Request request = std::move(parsed).value();
    switch (request.op) {
      case RequestOp::Ping:
        respond(ackResponse(request.id, request.op));
        return;
      case RequestOp::Quality:
        respond(handleQuality(request));
        return;
      case RequestOp::Stats:
        respond(handleStats(request));
        return;
      case RequestOp::Metrics:
        respond(handleMetrics(request));
        return;
      case RequestOp::Reload:
        respond(handleReload(request));
        return;
      case RequestOp::Shutdown:
        respond(ackResponse(request.id, request.op));
        sawShutdownOp_.store(true, std::memory_order_relaxed);
        requestStop();
        return;
      case RequestOp::Predict:
      case RequestOp::PredictBatch:
        break;
    }

    // Feature resolution may simulate unseen members; it runs on the
    // transport thread so a cold member never stalls the batch worker.
    auto rows = resolveQueries(request.queries);
    if (!rows) {
        respond(errorResponse(request.id, "bad_request",
                              rows.error().toString()));
        return;
    }
    const RequestOp op = request.op;
    const std::string id = request.id;
    service_.submit(
        std::move(rows).value(), request.deadlineMs,
        [respond, id, op](JobResult result) {
            if (result.ok)
                respond(predictResponse(id, op, result.predictedSeconds,
                                        result.epoch, result.queueUs));
            else
                respond(errorResponse(id, result.error,
                                      jobErrorMessage(result.error)));
        });
}

StopCause
Server::serveStdio()
{
    auto writeMutex = std::make_shared<std::mutex>();
    const std::function<void(std::string)> respond =
        [writeMutex](std::string line) {
            line += '\n';
            std::lock_guard<std::mutex> lock(*writeMutex);
            std::fwrite(line.data(), 1, line.size(), stdout);
            std::fflush(stdout);
        };

    std::string buffer;
    char chunk[4096];
    while (!stopRequested_.load(std::memory_order_relaxed)) {
        struct pollfd fds[2] = {
            {STDIN_FILENO, POLLIN, 0},
            {stopPipe_[0], POLLIN, 0},
        };
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn(std::string("serve: poll failed: ") +
                 std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break;  // requestStop() woke us
        const auto n = ::read(STDIN_FILENO, chunk, sizeof chunk);
        if (n <= 0)
            break;  // EOF (or a read error: treat the same)
        buffer.append(chunk, static_cast<std::size_t>(n));
        if (buffer.size() > kMaxLineBytes) {
            respond(errorResponse("", "parse",
                                  "request line exceeds the size cap"));
            break;
        }
        std::size_t pos = 0;
        while ((pos = buffer.find('\n')) != std::string::npos &&
               !stopRequested_.load(std::memory_order_relaxed)) {
            const std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            if (!line.empty())
                handleLine(line, respond);
        }
    }

    // Answer everything already admitted before the transport dies:
    // every pending callback fires inside drain(), and the respond
    // lambda keeps the write mutex alive via shared_ptr.
    service_.drain();
    if (sawShutdownOp_.load(std::memory_order_relaxed))
        return StopCause::Shutdown;
    return stopRequested_.load(std::memory_order_relaxed)
               ? StopCause::Signal
               : StopCause::Eof;
}

void
Server::connectionLoop(std::shared_ptr<Connection> connection)
{
    const std::function<void(std::string)> respond =
        [connection](std::string line) {
            connection->respond(std::move(line));
        };
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const auto n =
            ::recv(connection->fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            break;  // client closed, or stop path shut the socket down
        buffer.append(chunk, static_cast<std::size_t>(n));
        if (buffer.size() > kMaxLineBytes) {
            respond(errorResponse("", "parse",
                                  "request line exceeds the size cap"));
            break;
        }
        std::size_t pos = 0;
        while ((pos = buffer.find('\n')) != std::string::npos) {
            const std::string line = buffer.substr(0, pos);
            buffer.erase(0, pos + 1);
            if (!line.empty())
                handleLine(line, respond);
        }
    }
}

StopCause
Server::serveSocket(const std::string& path)
{
    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        fatal(std::string("serve: cannot create socket: ") +
              std::strerror(errno));

    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.size() >= sizeof(address.sun_path)) {
        ::close(listenFd);
        fatal("serve: socket path too long: " + path);
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(listenFd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd);
        fatal("serve: cannot bind " + path + ": " + why);
    }
    inform("serving on " + path);

    while (!stopRequested_.load(std::memory_order_relaxed)) {
        struct pollfd fds[2] = {
            {listenFd, POLLIN, 0},
            {stopPipe_[0], POLLIN, 0},
        };
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn(std::string("serve: poll failed: ") +
                 std::strerror(errno));
            break;
        }
        if ((fds[1].revents & POLLIN) != 0)
            break;
        const int clientFd = ::accept(listenFd, nullptr, nullptr);
        if (clientFd < 0)
            continue;
        auto connection = std::make_shared<Connection>();
        connection->fd = clientFd;
        {
            std::lock_guard<std::mutex> lock(connectionsMutex_);
            connections_.push_back(connection);
        }
        connection->reader = std::thread(
            [this, connection] { connectionLoop(connection); });
    }

    ::close(listenFd);
    // Wake blocked readers, join them, then drain so every admitted
    // job still answers on its (now read-closed) connection.
    std::vector<std::shared_ptr<Connection>> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections.swap(connections_);
    }
    for (auto& connection : connections)
        ::shutdown(connection->fd, SHUT_RD);
    for (auto& connection : connections)
        if (connection->reader.joinable())
            connection->reader.join();
    service_.drain();
    for (auto& connection : connections) {
        std::lock_guard<std::mutex> lock(connection->writeMutex);
        connection->closed = true;
        ::close(connection->fd);
        connection->fd = -1;
    }
    ::unlink(path.c_str());
    return sawShutdownOp_.load(std::memory_order_relaxed)
               ? StopCause::Shutdown
               : StopCause::Signal;
}

}  // namespace mapp::serve
