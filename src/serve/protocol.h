/**
 * @file
 * The wire protocol of the resident prediction service: newline
 * delimited JSON, one request object in, exactly one response object
 * out. Responses are NOT strictly ordered: predictions answer when
 * their micro-batch flushes, so a synchronous op (ping, stats) sent
 * after a predict may be answered first — clients correlate by "id".
 * The same codec serves the Unix-domain socket transport and the
 * stdin/stdout transport.
 *
 * Requests ({"op": ..., "id": ...}; id is echoed verbatim):
 *   ping           liveness probe
 *   predict        one bag query: members "a"/"b" either as
 *                  "BENCH@BATCH" strings (features resolved from the
 *                  server's collector; optional "fairness" override)
 *                  or as raw feature objects {"cpu_time", "gpu_time",
 *                  "mix": [...]} with a required top-level "fairness".
 *                  Optional "deadline_ms" bounds the queue wait.
 *   predict_batch  "queries": array of the predict shapes above,
 *                  answered as one coalesced prediction batch
 *   quality        model-quality snapshot (MAPE, pairs, drift flags)
 *   stats          serve counters + queue depth + model epoch
 *   metrics        Prometheus text exposition of the whole registry
 *   reload         rebuild the model from the artifact cache and swap
 *                  it in without blocking in-flight batches
 *   shutdown       acknowledge, then drain the service and exit
 *
 * Responses: {"id", "ok": true, "op", ...} on success;
 * {"id", "ok": false, "error": <code>, "message"} on failure with
 * error codes parse | bad_request | queue_full | deadline_expired |
 * shutting_down | internal.
 */

#ifndef MAPP_SERVE_PROTOCOL_H
#define MAPP_SERVE_PROTOCOL_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "predictor/data_collection.h"
#include "predictor/predictor.h"

namespace mapp::serve {

/** Request verbs of the serve protocol. */
enum class RequestOp {
    Ping,
    Predict,
    PredictBatch,
    Quality,
    Stats,
    Metrics,
    Reload,
    Shutdown,
};

/** The op verb as its wire spelling. */
std::string_view requestOpName(RequestOp op);

/**
 * One bag query as it arrived: either member references (resolved to
 * features by the server's collector) or a fully specified raw query.
 */
struct QuerySpec
{
    bool byMembers = false;

    /** Member form ("SIFT@40"); valid when byMembers. */
    predictor::BagMember a;
    predictor::BagMember b;

    /**
     * Raw form: features filled from the request when !byMembers; the
     * member form fills it at resolve time. raw.fairness is only
     * meaningful when fairnessProvided (member-form requests may omit
     * it and have the server measure Equation 2).
     */
    predictor::BagQuery raw;
    bool fairnessProvided = false;
};

/** One parsed request line. */
struct Request
{
    RequestOp op = RequestOp::Ping;
    std::string id;          ///< echoed verbatim; may be empty
    double deadlineMs = 0.0; ///< 0 = no per-request deadline
    std::vector<QuerySpec> queries;  ///< predict: 1, predict_batch: n
};

/**
 * Parse one request line. Malformed JSON, an unknown op, a bad member
 * spec or a raw query with missing/non-finite fields all return a
 * located ErrorCode::Parse/InvalidArgument error — the transport turns
 * it into an "ok": false response instead of dropping the connection.
 */
Result<Request> parseRequest(std::string_view line,
                             const std::string& source_label = "client");

/** {"id",...,"ok":false,"error":code,"message":...} (no newline). */
std::string errorResponse(const std::string& id, std::string_view code,
                          std::string_view message);

/** Success ack carrying only the op (ping, shutdown). */
std::string ackResponse(const std::string& id, RequestOp op);

/**
 * Predict success: scalar "predicted_seconds" for a single-query
 * predict, an array for predict_batch, plus the serving model's epoch
 * and the request's queue wait in microseconds.
 */
std::string predictResponse(const std::string& id, RequestOp op,
                            std::span<const double> predictedSeconds,
                            std::uint64_t epoch, double queueUs);

/** Reload success: the new model epoch. */
std::string reloadResponse(const std::string& id, std::uint64_t epoch);

/** A generic success response with pre-rendered JSON fields. */
std::string objectResponse(const std::string& id, RequestOp op,
                           const std::string& renderedFields);

}  // namespace mapp::serve

#endif  // MAPP_SERVE_PROTOCOL_H
