/**
 * @file
 * Transports and request dispatch for the resident prediction service.
 *
 * A Server owns a PredictionService and a DataCollector and speaks the
 * JSONL protocol (protocol.h) over one of two transports:
 *  - stdio: one client on stdin/stdout (`mapp_cli serve --stdin`);
 *    EOF or a shutdown request drains and returns.
 *  - Unix-domain socket: many concurrent clients (`--socket=PATH`);
 *    one reader thread per connection, responses serialized per
 *    connection by a write mutex (micro-batched answers complete out
 *    of order across connections, never within one).
 *
 * requestStop() is safe from any thread — including the async-signal
 * watcher installed by installShutdownHandler — and triggers the same
 * graceful drain as a shutdown request: stop accepting, answer every
 * queued job, flush, return.
 */

#ifndef MAPP_SERVE_SERVER_H
#define MAPP_SERVE_SERVER_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "predictor/data_collection.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace mapp::serve {

/** Why the serve loop returned. */
enum class StopCause {
    Eof,       ///< stdio client closed its end
    Shutdown,  ///< a client sent {"op":"shutdown"}
    Signal,    ///< requestStop() (SIGINT/SIGTERM watcher)
};

/** JSONL front-end over a PredictionService. */
class Server
{
  public:
    /**
     * @param service   the micro-batching service to expose (borrowed;
     *                  must outlive the server)
     * @param collector resolves member-form queries ("SIFT@40") to
     *                  features and measured fairness (borrowed)
     */
    Server(PredictionService& service,
           predictor::DataCollector& collector);

    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Serve one client on stdin/stdout until EOF, a shutdown request,
     * or requestStop(). Drains the service before returning.
     */
    StopCause serveStdio();

    /**
     * Bind @p path, accept clients until a shutdown request or
     * requestStop(), then close connections, drain and unlink the
     * socket. @throws FatalError when the socket cannot be bound.
     */
    StopCause serveSocket(const std::string& path);

    /**
     * Ask the serve loop to stop and drain. Callable from any thread;
     * returns immediately. Idempotent.
     */
    void requestStop();

    /**
     * Dispatch one request line and return the response line(s) via
     * @p respond (thread-safe callable; invoked once per response,
     * possibly from the batch worker thread after this returns).
     * Exposed for in-process tests and benchmarks.
     */
    void handleLine(std::string_view line,
                    const std::function<void(std::string)>& respond);

  private:
    struct Connection;

    /** Member-form specs -> concrete BagQuery rows. */
    Result<std::vector<predictor::BagQuery>> resolveQueries(
        const std::vector<QuerySpec>& specs);

    std::string handleQuality(const Request& request);
    std::string handleStats(const Request& request);
    std::string handleMetrics(const Request& request);
    std::string handleReload(const Request& request);

    void connectionLoop(std::shared_ptr<Connection> connection);

    PredictionService& service_;
    predictor::DataCollector& collector_;

    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> sawShutdownOp_{false};
    int stopPipe_[2] = {-1, -1};  ///< wakes poll() on requestStop()

    std::mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace mapp::serve

#endif  // MAPP_SERVE_SERVER_H
