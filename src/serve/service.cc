#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "common/parallel.h"
#include "predictor/quality.h"

namespace mapp::serve {

namespace {

obs::Registry&
serveRegistry()
{
    return obs::defaultRegistry();
}

}  // namespace

PredictionService::PredictionService(
    std::shared_ptr<const predictor::MultiAppPredictor> model,
    ModelFactory factory, ServiceOptions options)
    : options_([&options] {
          options.batchRows = std::max<std::size_t>(options.batchRows, 1);
          // queueCapacityRows may be smaller than batchRows: batches
          // then just max out at the capacity when the linger expires.
          options.queueCapacityRows =
              std::max<std::size_t>(options.queueCapacityRows, 1);
          options.lingerMs = std::max(options.lingerMs, 0.0);
          options.defaultDeadlineMs =
              std::max(options.defaultDeadlineMs, 0.0);
          return options;
      }()),
      factory_(std::move(factory)),
      model_(std::move(model)),
      requestsCounter_(serveRegistry().counter("serve.requests")),
      predictionsCounter_(serveRegistry().counter("serve.predictions")),
      batchesCounter_(serveRegistry().counter("serve.batches")),
      rejectedCounter_(serveRegistry().counter("serve.rejected_full")),
      expiredCounter_(serveRegistry().counter("serve.deadline_expired")),
      reloadsCounter_(serveRegistry().counter("serve.reloads")),
      queueRowsGauge_(serveRegistry().gauge("serve.queue_rows")),
      epochGauge_(serveRegistry().gauge("serve.model_epoch")),
      batchRowsHistogram_(serveRegistry().histogram(
          "serve.batch_rows",
          {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})),
      latencyHistogram_(serveRegistry().histogram("serve.latency")),
      queueWaitHistogram_(serveRegistry().histogram("serve.queue_wait"))
{
    if (!model_ || !model_->trained())
        fatal("prediction service needs a trained model");
    // Pin shutdown-sensitive singletons (quality monitor, thread pool,
    // obs stack) before the service exists anywhere: the batch worker
    // and drain path may touch them, and a service owned by a static or
    // destroyed late must not be the first to construct them.
    predictor::ModelQualityMonitor::global();
    parallel::globalPool();
    epochGauge_.set(1.0);
    queueRowsGauge_.set(0.0);
    worker_ = std::thread([this] { workerLoop(); });
}

PredictionService::~PredictionService()
{
    drain();
}

bool
PredictionService::submit(std::vector<predictor::BagQuery> queries,
                          double deadlineMs, JobCallback done)
{
    requestsCounter_.add(1);
    if (!done)
        fatal("prediction service: submit() needs a callback");
    const auto refuse = [&](const char* code) {
        JobResult result;
        result.ok = false;
        result.error = code;
        done(std::move(result));
        return false;
    };
    if (queries.empty())
        return refuse("bad_request");

    if (deadlineMs <= 0.0)
        deadlineMs = options_.defaultDeadlineMs;

    Job job;
    job.enqueued = Clock::now();
    job.deadline =
        deadlineMs > 0.0
            ? job.enqueued + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadlineMs))
            : Clock::time_point::max();
    const std::size_t rows = queries.size();
    job.queries = std::move(queries);
    job.done = std::move(done);

    bool rejected = false;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (draining_) {
            done = std::move(job.done);
        } else if (queuedRows_ + rows > options_.queueCapacityRows) {
            rejectedCounter_.add(1);
            done = std::move(job.done);
            rejected = true;
        } else {
            queue_.push_back(std::move(job));
            queuedRows_ += rows;
            queueRowsGauge_.set(static_cast<double>(queuedRows_));
            done = nullptr;
        }
    }
    // Refuse outside the lock: the callback may be arbitrary client
    // code (it can even resubmit).
    if (done)
        return refuse(rejected ? "queue_full" : "shutting_down");
    queueCv_.notify_one();
    return true;
}

std::uint64_t
PredictionService::reload()
{
    if (!factory_)
        fatal("prediction service: no reload factory configured");
    // Build outside every lock: training/cache-loading is the slow
    // part, and in-flight batches must keep predicting meanwhile.
    auto fresh = factory_();
    if (!fresh || !fresh->trained())
        fatal("prediction service: reload produced an untrained model");
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lock(modelMutex_);
        model_ = std::move(fresh);
        epoch = ++epoch_;
    }
    reloadsCounter_.add(1);
    epochGauge_.set(static_cast<double>(epoch));
    return epoch;
}

void
PredictionService::drain()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        draining_ = true;
    }
    queueCv_.notify_all();
    // Serialize the join: drain() may race between the destructor, the
    // transport's stop path and the shutdown watcher thread.
    std::lock_guard<std::mutex> joinLock(drainMutex_);
    if (worker_.joinable())
        worker_.join();
}

bool
PredictionService::draining() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    return draining_;
}

std::shared_ptr<const predictor::MultiAppPredictor>
PredictionService::model() const
{
    std::lock_guard<std::mutex> lock(modelMutex_);
    return model_;
}

std::uint64_t
PredictionService::epoch() const
{
    std::lock_guard<std::mutex> lock(modelMutex_);
    return epoch_;
}

std::size_t
PredictionService::queuedRows() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    return queuedRows_;
}

void
PredictionService::workerLoop()
{
    const auto linger = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(options_.lingerMs));
    for (;;) {
        std::vector<Job> batch;
        std::size_t batchedRows = 0;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return draining_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // draining_ and nothing left to answer

            // Linger window: wait for batch-mates until the oldest job
            // has waited lingerMs — but never past the earliest
            // deadline, and not at all once draining.
            const auto flushAt = queue_.front().enqueued + linger;
            while (!draining_ && batchedRows + queuedRows_ <
                                     options_.batchRows) {
                auto wakeAt = flushAt;
                for (const auto& job : queue_)
                    wakeAt = std::min(wakeAt, job.deadline);
                if (Clock::now() >= wakeAt)
                    break;
                if (queueCv_.wait_until(lock, wakeAt) ==
                    std::cv_status::timeout)
                    break;
            }

            // Scoop whole jobs until the batch reaches batchRows. A
            // single job larger than batchRows is taken whole — the
            // engine's lock-step kernel handles any row count and a
            // job is never split across predictBatch calls.
            while (!queue_.empty() &&
                   (batch.empty() || batchedRows < options_.batchRows)) {
                batchedRows += queue_.front().queries.size();
                queuedRows_ -= queue_.front().queries.size();
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            queueRowsGauge_.set(static_cast<double>(queuedRows_));
        }
        if (!batch.empty())
            processBatch(std::move(batch));
    }
}

void
PredictionService::processBatch(std::vector<Job> batch)
{
    const auto flushed = Clock::now();

    // Expire jobs whose deadline passed while they queued; answer them
    // before spending compute on the survivors.
    std::vector<Job> live;
    live.reserve(batch.size());
    for (auto& job : batch) {
        if (flushed >= job.deadline) {
            expiredCounter_.add(1);
            JobResult result;
            result.ok = false;
            result.error = "deadline_expired";
            job.done(std::move(result));
        } else {
            live.push_back(std::move(job));
        }
    }
    if (live.empty())
        return;

    std::vector<predictor::BagQuery> rows;
    std::size_t total = 0;
    for (const auto& job : live)
        total += job.queries.size();
    rows.reserve(total);
    for (auto& job : live)
        for (auto& query : job.queries)
            rows.push_back(std::move(query));

    // Pin the serving model: a concurrent reload() swaps the pointer
    // but this batch finishes on the epoch it started with.
    std::shared_ptr<const predictor::MultiAppPredictor> model;
    std::uint64_t epoch = 0;
    {
        std::lock_guard<std::mutex> lock(modelMutex_);
        model = model_;
        epoch = epoch_;
    }

    JobResult failure;
    std::vector<double> predicted;
    try {
        predicted = model->predictBatch(rows);
    } catch (const std::exception& e) {
        failure.ok = false;
        failure.error = "internal";
        warn(std::string("prediction service: batch failed: ") +
             e.what());
    }

    batchesCounter_.add(1);
    batchRowsHistogram_.observe(static_cast<double>(total));

    std::size_t offset = 0;
    for (auto& job : live) {
        const std::size_t n = job.queries.size();
        const auto waited =
            std::chrono::duration<double>(flushed - job.enqueued)
                .count();
        if (!predicted.empty()) {
            JobResult result;
            result.ok = true;
            result.epoch = epoch;
            result.queueUs = waited * 1e6;
            result.predictedSeconds.assign(
                predicted.begin() + static_cast<std::ptrdiff_t>(offset),
                predicted.begin() +
                    static_cast<std::ptrdiff_t>(offset + n));
            predictionsCounter_.add(n);
            job.done(std::move(result));
        } else {
            job.done(failure);
        }
        offset += n;
        queueWaitHistogram_.observe(waited);
        latencyHistogram_.observe(
            std::chrono::duration<double>(Clock::now() - job.enqueued)
                .count());
    }
}

}  // namespace mapp::serve
