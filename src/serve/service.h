/**
 * @file
 * The resident prediction service: a bounded MPMC request queue with
 * admission control in front of a micro-batching worker that feeds the
 * compiled inference engine.
 *
 * Design:
 *  - Backpressure by rejection, never by growth. submit() admits a job
 *    only while the queue holds fewer than queueCapacityRows rows;
 *    beyond that the job is refused synchronously with "queue_full"
 *    so memory stays bounded and clients get an immediate, actionable
 *    signal (retry, shed, or route elsewhere) instead of unbounded
 *    latency.
 *  - Micro-batching. The worker coalesces queued jobs until it holds
 *    at least batchRows rows (the compiled forest's lock-step kernel
 *    runs 32-row blocks) or the oldest job has lingered lingerMs,
 *    then answers the whole batch with ONE
 *    MultiAppPredictor::predictBatch call — bit-identical to per-row
 *    predict() by the engine's construction.
 *  - Deadlines. A job whose deadline passes while it queues is
 *    answered "deadline_expired" at flush time rather than predicted
 *    late; the linger window never exceeds the earliest deadline in
 *    the batch.
 *  - Hot reload. reload() builds a fresh model via the injected
 *    factory (typically a warm artifact-cache load) OUTSIDE any lock,
 *    then atomically swaps the served shared_ptr; in-flight batches
 *    finish on the epoch they started with.
 *  - Graceful drain. drain() stops admission, lets the worker answer
 *    everything already queued, and joins it. The destructor drains.
 *
 * Observability (default registry): counters serve.requests,
 * serve.predictions, serve.batches, serve.rejected_full,
 * serve.deadline_expired, serve.reloads; gauges serve.queue_rows,
 * serve.model_epoch; histograms serve.batch_rows (rows per flush),
 * serve.latency (submit-to-answer seconds) and serve.queue_wait
 * (submit-to-flush seconds). PredictionLog provenance sampling rides
 * the predictBatch audit hook unchanged.
 */

#ifndef MAPP_SERVE_SERVICE_H
#define MAPP_SERVE_SERVICE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "predictor/predictor.h"

namespace mapp::serve {

/** Tuning knobs of the micro-batching service. */
struct ServiceOptions
{
    /** Admission bound: queued rows beyond this are rejected. */
    std::size_t queueCapacityRows = 1024;

    /** Flush a batch once it holds at least this many rows. */
    std::size_t batchRows = 32;

    /** Max time the oldest queued job waits for batch-mates (ms). */
    double lingerMs = 2.0;

    /** Deadline applied to requests that carry none (0 = none). */
    double defaultDeadlineMs = 0.0;
};

/** Outcome of one submitted job, delivered to its callback. */
struct JobResult
{
    bool ok = false;
    /** "queue_full" | "deadline_expired" | "shutting_down" when !ok. */
    std::string error;
    /** One prediction per query row, in submit order. */
    std::vector<double> predictedSeconds;
    std::uint64_t epoch = 0;  ///< model epoch that answered the job
    double queueUs = 0.0;     ///< submit-to-flush wait
};

/** Invoked exactly once per submitted job (see submit()). */
using JobCallback = std::function<void(JobResult)>;

/** Builds a fresh model for reload() (e.g. from the artifact cache). */
using ModelFactory =
    std::function<std::shared_ptr<const predictor::MultiAppPredictor>()>;

/** The micro-batching prediction service. */
class PredictionService
{
  public:
    /**
     * @param model   trained predictor to serve (epoch 1)
     * @param factory optional rebuilder for reload(); reload() fails
     *                with FatalError when absent
     * @throws FatalError when @p model is null or untrained
     */
    PredictionService(
        std::shared_ptr<const predictor::MultiAppPredictor> model,
        ModelFactory factory = nullptr, ServiceOptions options = {});

    /** Drains and joins the worker. */
    ~PredictionService();

    PredictionService(const PredictionService&) = delete;
    PredictionService& operator=(const PredictionService&) = delete;

    /**
     * Submit one job of 1..n query rows. Thread-safe. The callback is
     * invoked exactly once: synchronously (on this thread) when the
     * job is rejected — queue full, empty job, or draining — else on
     * the batch worker after its batch flushes. @p deadlineMs of 0
     * applies options().defaultDeadlineMs.
     * @return true when the job was admitted to the queue.
     */
    bool submit(std::vector<predictor::BagQuery> queries,
                double deadlineMs, JobCallback done);

    /**
     * Build a fresh model via the factory and swap it in. In-flight
     * batches are never blocked: they finish on the model they
     * grabbed. @return the new epoch. @throws FatalError when no
     * factory was injected or it returns an untrained model.
     */
    std::uint64_t reload();

    /** Stop admission, answer everything queued, join the worker.
     *  Idempotent. */
    void drain();

    /** True once drain() began (new submissions are refused). */
    bool draining() const;

    /** The served model (the current epoch's). */
    std::shared_ptr<const predictor::MultiAppPredictor> model() const;

    /** Monotonic model version; starts at 1, bumped by reload(). */
    std::uint64_t epoch() const;

    /** Rows currently queued (diagnostic). */
    std::size_t queuedRows() const;

    const ServiceOptions& options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Job
    {
        std::vector<predictor::BagQuery> queries;
        JobCallback done;
        Clock::time_point enqueued;
        Clock::time_point deadline;  ///< Clock::time_point::max() = none
    };

    void workerLoop();

    /** Answer one coalesced batch (expiry, predict, callbacks). */
    void processBatch(std::vector<Job> batch);

    const ServiceOptions options_;
    const ModelFactory factory_;

    mutable std::mutex modelMutex_;
    std::shared_ptr<const predictor::MultiAppPredictor> model_;
    std::uint64_t epoch_ = 1;

    mutable std::mutex queueMutex_;
    std::mutex drainMutex_;  ///< serializes worker_.join() in drain()
    std::condition_variable queueCv_;
    std::deque<Job> queue_;
    std::size_t queuedRows_ = 0;
    bool draining_ = false;

    // Instruments resolved once (updates are lock-free atomics).
    obs::Counter& requestsCounter_;
    obs::Counter& predictionsCounter_;
    obs::Counter& batchesCounter_;
    obs::Counter& rejectedCounter_;
    obs::Counter& expiredCounter_;
    obs::Counter& reloadsCounter_;
    obs::Gauge& queueRowsGauge_;
    obs::Gauge& epochGauge_;
    obs::Histogram& batchRowsHistogram_;
    obs::Histogram& latencyHistogram_;
    obs::Histogram& queueWaitHistogram_;

    std::thread worker_;  ///< last member: joins before fields die
};

}  // namespace mapp::serve

#endif  // MAPP_SERVE_SERVICE_H
