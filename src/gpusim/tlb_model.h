/**
 * @file
 * The shared-TLB model. All MPS clients share the GPU's address
 * translation structures (Section II of the paper); the model converts
 * an app's footprint into TLB coverage pressure and inflates the miss
 * rate with the number of co-resident apps (context flushes and entry
 * competition).
 */

#ifndef MAPP_GPUSIM_TLB_MODEL_H
#define MAPP_GPUSIM_TLB_MODEL_H

#include "common/types.h"
#include "gpusim/gpu_config.h"

namespace mapp::gpusim {

/**
 * TLB miss rate for an app touching @p footprint bytes while @p num_apps
 * MPS clients are co-resident.
 */
double tlbMissRate(Bytes footprint, int num_apps, const GpuConfig& config);

/**
 * Unhidden TLB stall seconds for a phase. Misses happen on page
 * transitions, so the walk count is the phase's page touches (traffic /
 * page size) scaled by the miss rate; multi-app runs hide less because
 * flushes serialize page walks.
 */
Seconds tlbStallTime(double page_touches, double miss_rate, int num_apps,
                     const GpuConfig& config);

}  // namespace mapp::gpusim

#endif  // MAPP_GPUSIM_TLB_MODEL_H
