#include "gpusim/l2_model.h"

#include <algorithm>

namespace mapp::gpusim {

double
l2MissRate(Bytes footprint, Bytes l2_share, double locality, int num_apps,
           const L2ModelParams& params)
{
    if (l2_share == 0)
        return params.maxMissRate;

    const double pressure = static_cast<double>(footprint) /
                            static_cast<double>(l2_share);
    const double capacity = pressure / (pressure + params.capacityKnee);
    const double exposure = 1.0 - 0.7 * locality;

    double rate = params.baseMissRate +
                  (params.maxMissRate - params.baseMissRate) * capacity *
                      exposure;

    // Conflict misses from co-resident clients' interleaved traffic.
    rate += params.interferencePerApp *
            static_cast<double>(std::max(num_apps, 1) - 1);
    return std::clamp(rate, 0.0, 1.0);
}

}  // namespace mapp::gpusim
