#include "gpusim/mps_sim.h"

#include <algorithm>
#include <span>
#include <vector>

#include "common/log.h"
#include "common/sharing.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/corun_engine.h"

namespace mapp::gpusim {

MpsSim::MpsSim(GpuConfig config, L2ModelParams l2_params)
    : config_(config), l2Params_(l2_params)
{
}

namespace {

/**
 * The GPU side of the shared co-run engine: MPS clients get a spatial
 * SM partition and a capacity split of L2; row-buffer interference
 * shaves peak DRAM bandwidth per extra resident client.
 */
struct GpuCorunModel
{
    static constexpr const char* kName = "gpusim";
    static constexpr const char* kClientWord = "client";
    using Rate = GpuPhaseRate;

    struct Partition
    {
        int residents = 0;
        int smsEach = 1;
        Bytes l2Each = 0;
        double peakBw = 0.0;
    };

    const GpuConfig& config;
    const L2ModelParams& l2Params;

    Partition makePartition(int n) const
    {
        Partition p;
        p.residents = n;
        // Spatial partition of the SM array and capacity split of L2.
        p.smsEach = std::max(config.numSms / n, 1);
        p.l2Each = config.l2Size / static_cast<Bytes>(n);
        // Row-buffer interference shaves peak DRAM bandwidth per extra
        // resident client.
        p.peakBw = config.memBandwidth *
                   std::max(1.0 - config.dramInterferenceLoss *
                                      static_cast<double>(n - 1),
                            0.3);
        return p;
    }

    Rate phaseRate(std::size_t /*client*/, const isa::KernelPhase& phase,
                   const Partition& p) const
    {
        GpuAllocation a;
        a.sms = p.smsEach;
        a.l2Share = p.l2Each;
        a.residentApps = p.residents;
        return gpuPhaseRate(phase, a, config, l2Params);
    }

    double demand(const Rate& rate) const
    {
        return gpuPhaseDemandFromRate(rate);
    }

    double capacity(const Partition& p) const { return p.peakBw; }

    double queueFactor(double total_demand, const Partition& p) const
    {
        return queueingDelayFactor(
            std::min(total_demand / p.peakBw, 1.0));
    }

    Seconds finishTime(const Rate& rate, double bandwidth_share,
                       double queue) const
    {
        return timeGpuPhaseFromRate(rate, bandwidth_share, queue).time;
    }

    void tracePartition(obs::Tracer& tracer, const Partition& p,
                        Seconds clock, int track_pid) const
    {
        tracer.instantEvent(
            "re-partition", "gpusim.partition", clock * 1e6, track_pid,
            0,
            {obs::TraceArg::num("residents", p.residents),
             obs::TraceArg::num("sms_each", p.smsEach),
             obs::TraceArg::num("l2_bytes_each",
                                static_cast<double>(p.l2Each)),
             obs::TraceArg::num("peak_bw_gbps", p.peakBw / 1e9)});
    }
};

}  // namespace

BagGpuResult
MpsSim::runShared(
    const std::vector<const isa::WorkloadTrace*>& traces) const
{
    if (traces.empty())
        fatal("MpsSim::runShared: empty bag");
    for (const auto* trace : traces) {
        if (trace == nullptr || trace->empty())
            fatal("MpsSim::runShared: empty trace in bag");
    }

    const GpuCorunModel model{config_, l2Params_};
    thread_local std::vector<Seconds> finish;
    finish.resize(traces.size());
    const sim::CorunStats stats = sim::runCorun(
        model,
        std::span<const isa::WorkloadTrace* const>(traces.data(),
                                                   traces.size()),
        finish);

    // Flush the run's counters in one batch so the hot loop stays
    // atomics-free.
    {
        static auto& registry = obs::defaultRegistry();
        static auto& runs = registry.counter("gpusim.runs");
        static auto& simEvents = registry.counter("gpusim.sim_events");
        static auto& repartitions =
            registry.counter("gpusim.repartitions");
        static auto& phasesCompleted =
            registry.counter("gpusim.phases_completed");
        runs.add(1);
        simEvents.add(stats.events);
        repartitions.add(stats.repartitions);
        phasesCompleted.add(stats.phasesCompleted);
    }

    BagGpuResult result;
    result.apps.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        AppGpuResult r;
        r.app = traces[i]->app();
        r.time = finish[i];
        r.instructions = traces[i]->totalInstructions();
        r.ipc = finish[i] > 0.0
                    ? static_cast<double>(r.instructions) /
                          (finish[i] * config_.frequency)
                    : 0.0;
        result.makespan = std::max(result.makespan, r.time);
        result.apps.push_back(std::move(r));
    }
    return result;
}

AppGpuResult
MpsSim::runAlone(const isa::WorkloadTrace& trace) const
{
    const auto bag = runShared({&trace});
    return bag.apps.front();
}

std::vector<GpuPhaseTiming>
MpsSim::timeline(const isa::WorkloadTrace& trace) const
{
    GpuAllocation alloc;
    alloc.sms = config_.numSms;
    alloc.l2Share = config_.l2Size;
    alloc.bandwidthShare = config_.memBandwidth;
    alloc.residentApps = 1;
    alloc.memQueueFactor = 1.0;

    std::vector<GpuPhaseTiming> out;
    out.reserve(trace.size());
    for (const auto& phase : trace.phases())
        out.push_back(timeGpuPhase(phase, alloc, config_, l2Params_));
    return out;
}

}  // namespace mapp::gpusim
