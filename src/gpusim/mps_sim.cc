#include "gpusim/mps_sim.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "common/sharing.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mapp::gpusim {

MpsSim::MpsSim(GpuConfig config, L2ModelParams l2_params)
    : config_(config), l2Params_(l2_params)
{
}

namespace {

/** Mutable co-run state of one MPS client. */
struct ClientState
{
    const isa::WorkloadTrace* trace = nullptr;
    std::size_t phase = 0;
    double phaseFraction = 0.0;
    Seconds finishTime = -1.0;

    bool done() const { return phase >= trace->phases().size(); }
    const isa::KernelPhase& currentPhase() const
    {
        return trace->phases()[phase];
    }
};

}  // namespace

BagGpuResult
MpsSim::runShared(
    const std::vector<const isa::WorkloadTrace*>& traces) const
{
    if (traces.empty())
        fatal("MpsSim::runShared: empty bag");

    std::vector<ClientState> clients(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        if (traces[i] == nullptr || traces[i]->empty())
            fatal("MpsSim::runShared: empty trace in bag");
        clients[i].trace = traces[i];
    }

    Seconds clock = 0.0;
    const std::size_t maxEvents = 16 * 1024 * 1024;
    std::size_t events = 0;

    // Tracing costs one branch per simulator event when disabled; the
    // per-client track is only allocated when a trace is being taken.
    obs::Tracer& tracer = obs::tracer();
    const bool tracing = tracer.enabled();
    int trackPid = 0;
    std::vector<Seconds> phaseStart(clients.size(), 0.0);
    std::size_t lastResident = 0;
    std::size_t repartitions = 0;
    std::size_t phasesCompleted = 0;
    if (tracing) {
        std::string label = "gpusim bag:";
        for (const auto& client : clients)
            label += " " + client.trace->app();
        trackPid = tracer.beginTrack(label);
        for (std::size_t i = 0; i < clients.size(); ++i) {
            tracer.nameThread(trackPid, static_cast<int>(i),
                              "client " + std::to_string(i) + " (" +
                                  clients[i].trace->app() + ")");
        }
    }

    while (true) {
        std::vector<std::size_t> active;
        for (std::size_t i = 0; i < clients.size(); ++i)
            if (!clients[i].done())
                active.push_back(i);
        if (active.empty())
            break;
        if (++events > maxEvents)
            panic("MpsSim: event limit exceeded");

        const auto n = static_cast<int>(active.size());

        // Spatial partition of the SM array and capacity split of L2.
        const int smsEach = std::max(config_.numSms / n, 1);
        const Bytes l2Each = config_.l2Size / static_cast<Bytes>(n);

        // Row-buffer interference shaves peak DRAM bandwidth per extra
        // resident client.
        const double peakBw =
            config_.memBandwidth *
            std::max(1.0 - config_.dramInterferenceLoss *
                               static_cast<double>(n - 1),
                     0.3);

        // The resident set changed: MPS re-divides SMs, L2 and DRAM.
        if (active.size() != lastResident) {
            lastResident = active.size();
            ++repartitions;
            if (tracing) {
                tracer.instantEvent(
                    "re-partition", "gpusim.partition", clock * 1e6,
                    trackPid, 0,
                    {obs::TraceArg::num("residents", n),
                     obs::TraceArg::num("sms_each", smsEach),
                     obs::TraceArg::num("l2_bytes_each",
                                        static_cast<double>(l2Each)),
                     obs::TraceArg::num("peak_bw_gbps", peakBw / 1e9)});
            }
        }

        std::vector<GpuAllocation> allocs(active.size());
        std::vector<double> demands(active.size());
        for (std::size_t k = 0; k < active.size(); ++k) {
            auto& a = allocs[k];
            a.sms = smsEach;
            a.l2Share = l2Each;
            a.residentApps = n;
            demands[k] = gpuPhaseBandwidthDemand(
                clients[active[k]].currentPhase(), a, config_, l2Params_);
        }
        const auto granted = maxMinShare(demands, peakBw);
        double totalDemand = 0.0;
        for (double d : demands)
            totalDemand += d;
        const double queue =
            queueingDelayFactor(std::min(totalDemand / peakBw, 1.0));

        std::vector<Seconds> remaining(active.size());
        std::vector<Seconds> durations(active.size());
        Seconds dt = std::numeric_limits<Seconds>::infinity();
        for (std::size_t k = 0; k < active.size(); ++k) {
            allocs[k].bandwidthShare = std::max(granted[k], 1.0);
            allocs[k].memQueueFactor = queue;
            const GpuPhaseTiming t =
                timeGpuPhase(clients[active[k]].currentPhase(), allocs[k],
                             config_, l2Params_);
            durations[k] = std::max(t.time, 1e-15);
            remaining[k] =
                durations[k] * (1.0 - clients[active[k]].phaseFraction);
            dt = std::min(dt, remaining[k]);
        }

        clock += dt;
        for (std::size_t k = 0; k < active.size(); ++k) {
            ClientState& client = clients[active[k]];
            if (remaining[k] - dt <= durations[k] * 1e-12) {
                ++phasesCompleted;
                if (tracing) {
                    const std::size_t i = active[k];
                    tracer.completeEvent(
                        client.currentPhase().name, "gpusim.phase",
                        phaseStart[i] * 1e6,
                        (clock - phaseStart[i]) * 1e6, trackPid,
                        static_cast<int>(i),
                        {obs::TraceArg::str("app", client.trace->app()),
                         obs::TraceArg::num(
                             "phase_index",
                             static_cast<double>(client.phase))});
                    phaseStart[i] = clock;
                }
                client.phase += 1;
                client.phaseFraction = 0.0;
                if (client.done())
                    client.finishTime = clock;
            } else {
                client.phaseFraction += dt / durations[k];
            }
        }
    }

    // Flush the run's counters in one batch so the hot loop stays
    // atomics-free.
    {
        auto& registry = obs::defaultRegistry();
        registry.counter("gpusim.runs").add(1);
        registry.counter("gpusim.sim_events").add(events);
        registry.counter("gpusim.repartitions").add(repartitions);
        registry.counter("gpusim.phases_completed").add(phasesCompleted);
    }

    BagGpuResult result;
    result.apps.reserve(clients.size());
    for (const auto& client : clients) {
        AppGpuResult r;
        r.app = client.trace->app();
        r.time = client.finishTime;
        r.instructions = client.trace->totalInstructions();
        r.ipc = client.finishTime > 0.0
                    ? static_cast<double>(r.instructions) /
                          (client.finishTime * config_.frequency)
                    : 0.0;
        result.makespan = std::max(result.makespan, r.time);
        result.apps.push_back(std::move(r));
    }
    return result;
}

AppGpuResult
MpsSim::runAlone(const isa::WorkloadTrace& trace) const
{
    const auto bag = runShared({&trace});
    return bag.apps.front();
}

std::vector<GpuPhaseTiming>
MpsSim::timeline(const isa::WorkloadTrace& trace) const
{
    GpuAllocation alloc;
    alloc.sms = config_.numSms;
    alloc.l2Share = config_.l2Size;
    alloc.bandwidthShare = config_.memBandwidth;
    alloc.residentApps = 1;
    alloc.memQueueFactor = 1.0;

    std::vector<GpuPhaseTiming> out;
    out.reserve(trace.size());
    for (const auto& phase : trace.phases())
        out.push_back(timeGpuPhase(phase, alloc, config_, l2Params_));
    return out;
}

}  // namespace mapp::gpusim
