/**
 * @file
 * Configuration of the simulated GPU. Defaults model the paper's
 * baseline accelerator (Table III): an NVIDIA Tesla T4 (Turing) — 40
 * SMs x 64 CUDA cores = 2560 cores, ~1.59 GHz boost, 4 MiB shared L2,
 * ~320 GB/s GDDR6, with CUDA MPS spatial multiplexing.
 */

#ifndef MAPP_GPUSIM_GPU_CONFIG_H
#define MAPP_GPUSIM_GPU_CONFIG_H

#include <array>

#include "common/types.h"
#include "isa/inst_class.h"

namespace mapp::gpusim {

/** Simulated GPU parameters. */
struct GpuConfig
{
    /** Streaming multiprocessors. */
    int numSms = 40;

    /** CUDA cores per SM. */
    int coresPerSm = 64;

    /** SM clock. */
    Hertz frequency = 1.59e9;

    /** Warp width. */
    int warpSize = 32;

    /** Max resident threads per SM (occupancy ceiling). */
    int maxThreadsPerSm = 1024;

    /**
     * Per-class issue throughput per SM in instructions/cycle (lanes
     * usable for the class).
     */
    std::array<double, isa::kNumInstClasses> throughputPerSm = {
        16.0,  // mem_rd (LSU lanes)
        16.0,  // mem_wr
        32.0,  // ctrl
        64.0,  // arith
        64.0,  // fp
        16.0,  // stack (local memory traffic)
        32.0,  // shift
        8.0,   // string (byte-wise ops map poorly)
        64.0,  // sse (maps to full-width SIMT lanes)
    };

    /** Shared L2 cache size. */
    Bytes l2Size = 4ull << 20;

    /** Aggregate DRAM bandwidth. */
    BytesPerSecond memBandwidth = 320e9;

    /**
     * Throughput of the unparallelizable fraction (host-side sequential
     * work between kernels), in instructions/second-equivalent IPC at
     * the SM clock.
     */
    double serialIpc = 2.0;

    /** Kernel launch + driver overhead per launch. */
    Seconds launchOverhead = 2.5e-6;

    /**
     * Extra per-launch scheduling overhead for each co-resident MPS
     * client beyond the first (Section II's scheduling cost).
     */
    Seconds mpsSchedulingOverhead = 2.5e-6;

    /** Host-to-device transfer bandwidth (PCIe 3.0 x16 effective). */
    BytesPerSecond pcieBandwidth = 12e9;

    /** Fixed cost per host-staging transfer. */
    Seconds stagingLatency = 10e-6;

    /** Divergence cost: lane utilization lost per unit divergence. */
    double divergenceLoss = 0.6;

    /** Shared TLB entries (per-GPU, all MPS clients share them). */
    int tlbEntries = 48;

    /** Page size covered by one TLB entry. */
    Bytes pageSize = 64ull << 10;  // 64 KiB large pages

    /** TLB miss penalty (page-walk) in cycles. */
    double tlbMissPenaltyCycles = 600.0;

    /** Fraction of TLB-miss latency hidden by warp switching (alone). */
    double tlbHiding = 0.85;

    /**
     * Additional TLB pressure per co-resident app: flushes/competition
     * multiply the miss rate (Section II, issue 1-2).
     */
    double tlbMultiAppPressure = 1.5;

    /**
     * DRAM efficiency lost per additional MPS client (row-buffer
     * interference): effective bandwidth = peak x (1 - loss x (n-1)).
     */
    double dramInterferenceLoss = 0.08;
};

}  // namespace mapp::gpusim

#endif  // MAPP_GPUSIM_GPU_CONFIG_H
