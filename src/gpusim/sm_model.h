/**
 * @file
 * The SM-array timing model: converts one KernelPhase plus a GPU
 * resource allocation (SM partition, L2 share, bandwidth share, TLB
 * state) into kernel execution time on the simulated GPU.
 */

#ifndef MAPP_GPUSIM_SM_MODEL_H
#define MAPP_GPUSIM_SM_MODEL_H

#include "common/types.h"
#include "gpusim/gpu_config.h"
#include "gpusim/l2_model.h"
#include "isa/kernel_phase.h"

namespace mapp::gpusim {

/** The resources an MPS client holds while a kernel executes. */
struct GpuAllocation
{
    /** SMs in the client's spatial partition. */
    int sms = 1;

    /** Bytes of L2 effectively available. */
    Bytes l2Share = 0;

    /** DRAM bandwidth granted. */
    BytesPerSecond bandwidthShare = 0.0;

    /** Co-resident MPS clients (including this one). */
    int residentApps = 1;

    /** Queueing multiplier on memory latency (>= 1). */
    double memQueueFactor = 1.0;
};

/** Timing breakdown of one kernel phase on the GPU. */
struct GpuPhaseTiming
{
    Seconds time = 0.0;
    Seconds computeTime = 0.0;    ///< issue-bound SIMT time
    Seconds serialTime = 0.0;     ///< Amdahl serial-lane time
    Seconds memoryTime = 0.0;     ///< DRAM drain time
    Seconds tlbTime = 0.0;        ///< exposed page-walk stalls
    Seconds overheadTime = 0.0;   ///< launch + MPS scheduling
    double occupancy = 1.0;
    double l2MissRate = 0.0;
    double tlbMissRate = 0.0;
};

/**
 * Time one phase on the GPU under an allocation.
 *
 * The model: per-class issue throughput over the SM partition with
 * divergence-degraded lane utilization and occupancy-limited latency
 * hiding; an Amdahl serial-lane term for the unparallelizable fraction;
 * a DRAM drain term over post-L2 traffic (the larger of compute and
 * memory wins when occupancy is high enough to overlap them); exposed
 * TLB stalls; and per-launch driver/MPS overheads.
 */
GpuPhaseTiming timeGpuPhase(const isa::KernelPhase& phase,
                            const GpuAllocation& alloc,
                            const GpuConfig& config,
                            const L2ModelParams& l2_params = {});

/**
 * Occupancy of a phase on @p sms SMs: the fraction of resident-thread
 * capacity its work items can fill.
 */
double phaseOccupancy(const isa::KernelPhase& phase, int sms,
                      const GpuConfig& config);

/** Bandwidth demand (bytes/sec) of a phase if unconstrained. */
BytesPerSecond gpuPhaseBandwidthDemand(const isa::KernelPhase& phase,
                                       const GpuAllocation& alloc,
                                       const GpuConfig& config,
                                       const L2ModelParams& l2_params = {});

}  // namespace mapp::gpusim

#endif  // MAPP_GPUSIM_SM_MODEL_H
