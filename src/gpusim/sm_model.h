/**
 * @file
 * The SM-array timing model: converts one KernelPhase plus a GPU
 * resource allocation (SM partition, L2 share, bandwidth share, TLB
 * state) into kernel execution time on the simulated GPU.
 */

#ifndef MAPP_GPUSIM_SM_MODEL_H
#define MAPP_GPUSIM_SM_MODEL_H

#include <algorithm>

#include "common/types.h"
#include "gpusim/gpu_config.h"
#include "gpusim/l2_model.h"
#include "isa/kernel_phase.h"

namespace mapp::gpusim {

/** The resources an MPS client holds while a kernel executes. */
struct GpuAllocation
{
    /** SMs in the client's spatial partition. */
    int sms = 1;

    /** Bytes of L2 effectively available. */
    Bytes l2Share = 0;

    /** DRAM bandwidth granted. */
    BytesPerSecond bandwidthShare = 0.0;

    /** Co-resident MPS clients (including this one). */
    int residentApps = 1;

    /** Queueing multiplier on memory latency (>= 1). */
    double memQueueFactor = 1.0;
};

/** Timing breakdown of one kernel phase on the GPU. */
struct GpuPhaseTiming
{
    Seconds time = 0.0;
    Seconds computeTime = 0.0;    ///< issue-bound SIMT time
    Seconds serialTime = 0.0;     ///< Amdahl serial-lane time
    Seconds memoryTime = 0.0;     ///< DRAM drain time
    Seconds tlbTime = 0.0;        ///< exposed page-walk stalls
    Seconds overheadTime = 0.0;   ///< launch + MPS scheduling
    double occupancy = 1.0;
    double l2MissRate = 0.0;
    double tlbMissRate = 0.0;
};

/**
 * The partition-invariant timing terms of one phase: everything
 * timeGpuPhase() computes that depends only on the phase and the
 * spatial allocation (SM count, L2 share, resident-client count) — not
 * on the per-event bandwidth grant or queueing factor. The co-run
 * engine computes a rate once per phase entry (and again on residency
 * changes) and finishes per-event timing with timeGpuPhaseFromRate(),
 * which is a handful of flops instead of the full SM/L2/TLB model.
 */
struct GpuPhaseRate
{
    /** Zero-instruction phase: timing is identically zero. */
    bool empty = true;

    /** Host-staging transfer: time is fully partition-determined. */
    bool hostStaged = false;

    Seconds computeTime = 0.0;   ///< issue-bound SIMT time
    Seconds serialTime = 0.0;    ///< Amdahl serial-lane time
    Seconds tlbStallBase = 0.0;  ///< TLB stalls before queue inflation
    Seconds overheadTime = 0.0;  ///< launch + MPS scheduling
    double dramTraffic = 0.0;    ///< post-L2 bytes to drain
    double occupancy = 1.0;
    double l2MissRate = 0.0;
    double tlbMissRate = 0.0;

    /** Host-staged PCIe drain time (hostStaged only). */
    Seconds hostMemoryTime = 0.0;
};

/**
 * Precompute the partition-invariant rate terms of @p phase. Only
 * @p alloc's sms / l2Share / residentApps fields are read; the
 * bandwidth grant and queue factor are supplied per event to
 * timeGpuPhaseFromRate().
 */
GpuPhaseRate gpuPhaseRate(const isa::KernelPhase& phase,
                          const GpuAllocation& alloc,
                          const GpuConfig& config,
                          const L2ModelParams& l2_params = {});

/**
 * Finish one phase's timing from its precomputed rate under the given
 * bandwidth share and memory-queueing factor. Bit-identical to the
 * corresponding timeGpuPhase() call: the split performs exactly the
 * same floating-point operations in the same order. Inline — this is
 * the co-run engine's per-event hot path.
 */
inline GpuPhaseTiming
timeGpuPhaseFromRate(const GpuPhaseRate& rate,
                     BytesPerSecond bandwidth_share,
                     double mem_queue_factor)
{
    GpuPhaseTiming t;
    if (rate.empty)
        return t;

    if (rate.hostStaged) {
        t.memoryTime = rate.hostMemoryTime;
        t.overheadTime = rate.overheadTime;
        t.time = t.memoryTime + t.overheadTime;
        return t;
    }

    t.occupancy = rate.occupancy;
    t.l2MissRate = rate.l2MissRate;
    t.tlbMissRate = rate.tlbMissRate;
    t.computeTime = rate.computeTime;
    t.serialTime = rate.serialTime;
    t.overheadTime = rate.overheadTime;

    // Drain time over the granted share; contention is already in the
    // share, so no extra queueing multiplier here.
    t.memoryTime = bandwidth_share > 0.0
                       ? rate.dramTraffic / bandwidth_share
                       : 0.0;

    // Page walks are latency-bound, so memory-controller queueing
    // inflates them.
    t.tlbTime = rate.tlbStallBase * mem_queue_factor;

    // High occupancy overlaps compute with memory; low occupancy
    // exposes both. Interpolate between max() and sum().
    const double overlap = t.occupancy;
    const double busy =
        std::max(t.computeTime, t.memoryTime) * overlap +
        (t.computeTime + t.memoryTime) * (1.0 - overlap);

    t.time = busy + t.serialTime + t.tlbTime + t.overheadTime;
    return t;
}

/**
 * Unconstrained bandwidth demand derived from a precomputed rate —
 * the same value gpuPhaseBandwidthDemand() computes from scratch.
 */
inline BytesPerSecond
gpuPhaseDemandFromRate(const GpuPhaseRate& rate)
{
    const GpuPhaseTiming t = timeGpuPhaseFromRate(rate, 0.0, 1.0);
    if (t.time <= 0.0)
        return 0.0;
    return rate.dramTraffic / t.time;
}

/**
 * Time one phase on the GPU under an allocation.
 *
 * The model: per-class issue throughput over the SM partition with
 * divergence-degraded lane utilization and occupancy-limited latency
 * hiding; an Amdahl serial-lane term for the unparallelizable fraction;
 * a DRAM drain term over post-L2 traffic (the larger of compute and
 * memory wins when occupancy is high enough to overlap them); exposed
 * TLB stalls; and per-launch driver/MPS overheads.
 *
 * Implemented as gpuPhaseRate() + timeGpuPhaseFromRate().
 */
GpuPhaseTiming timeGpuPhase(const isa::KernelPhase& phase,
                            const GpuAllocation& alloc,
                            const GpuConfig& config,
                            const L2ModelParams& l2_params = {});

/**
 * Occupancy of a phase on @p sms SMs: the fraction of resident-thread
 * capacity its work items can fill.
 */
double phaseOccupancy(const isa::KernelPhase& phase, int sms,
                      const GpuConfig& config);

/** Bandwidth demand (bytes/sec) of a phase if unconstrained. */
BytesPerSecond gpuPhaseBandwidthDemand(const isa::KernelPhase& phase,
                                       const GpuAllocation& alloc,
                                       const GpuConfig& config,
                                       const L2ModelParams& l2_params = {});

}  // namespace mapp::gpusim

#endif  // MAPP_GPUSIM_SM_MODEL_H
