#include "gpusim/sm_model.h"

#include <algorithm>
#include <cmath>

#include "gpusim/tlb_model.h"

namespace mapp::gpusim {

double
phaseOccupancy(const isa::KernelPhase& phase, int sms,
               const GpuConfig& config)
{
    const double capacity = static_cast<double>(std::max(sms, 1)) *
                            static_cast<double>(config.maxThreadsPerSm);
    const double items = static_cast<double>(phase.workItems);
    return std::clamp(items / capacity, 0.05, 1.0);
}

GpuPhaseTiming
timeGpuPhase(const isa::KernelPhase& phase, const GpuAllocation& alloc,
             const GpuConfig& config, const L2ModelParams& l2_params)
{
    GpuPhaseTiming t;
    const auto insts = static_cast<double>(phase.instructions());
    if (insts == 0.0)
        return t;

    if (phase.hostStaged) {
        // Host-to-device transfer: PCIe drain plus a fixed per-transfer
        // driver cost; no SM/L2/TLB involvement. Co-residents contend
        // for the link via the granted bandwidth share scaled to PCIe.
        const auto launches = static_cast<double>(phase.launches);
        const double linkShare =
            config.pcieBandwidth /
            static_cast<double>(std::max(alloc.residentApps, 1));
        // Transfer volume is the device-side write size, not the
        // memcpy's combined read+write traffic.
        t.memoryTime =
            static_cast<double>(phase.bytesWritten) / linkShare;
        t.overheadTime = launches * config.stagingLatency;
        t.time = t.memoryTime + t.overheadTime;
        return t;
    }

    const int sms = std::max(alloc.sms, 1);
    t.occupancy = phaseOccupancy(phase, sms, config);

    // SIMT issue cycles: per-class lane throughput across the partition,
    // derated by divergence (idle lanes) and occupancy (idle warp slots).
    double issueCycles = 0.0;
    for (isa::InstClass c : isa::kAllInstClasses) {
        const double thr =
            config.throughputPerSm[static_cast<std::size_t>(c)] *
            static_cast<double>(sms);
        issueCycles += static_cast<double>(phase.mix.count(c)) / thr;
    }
    const double laneUtil =
        std::max(1.0 - config.divergenceLoss * phase.branchDivergence,
                 0.05);
    const double warpUtil = 0.25 + 0.75 * t.occupancy;
    issueCycles /= laneUtil * warpUtil;

    const double p = phase.parallelFraction;
    t.computeTime = issueCycles * p / config.frequency;
    // The serial fraction crawls along one lane.
    t.serialTime =
        insts * (1.0 - p) / (config.serialIpc * config.frequency);

    // Post-L2 DRAM drain.
    t.l2MissRate = l2MissRate(phase.footprint, alloc.l2Share,
                              phase.locality, alloc.residentApps,
                              l2_params);
    // Drain time over the granted share; contention is already in the
    // share, so no extra queueing multiplier here.
    const double dramTraffic =
        static_cast<double>(phase.traffic()) * t.l2MissRate;
    t.memoryTime = alloc.bandwidthShare > 0.0
                       ? dramTraffic / alloc.bandwidthShare
                       : 0.0;

    // TLB stalls (shared across MPS clients): one potential walk per
    // page transition of the phase's traffic.
    const double pageTouches =
        static_cast<double>(phase.traffic()) /
        static_cast<double>(config.pageSize);
    t.tlbMissRate =
        tlbMissRate(phase.footprint, alloc.residentApps, config);
    // Page walks are latency-bound, so memory-controller queueing
    // inflates them.
    t.tlbTime = tlbStallTime(pageTouches, t.tlbMissRate,
                             alloc.residentApps, config) *
                alloc.memQueueFactor;

    // Launch and MPS scheduling overheads per kernel launch.
    const auto launches = static_cast<double>(phase.launches);
    t.overheadTime =
        launches *
        (config.launchOverhead +
         config.mpsSchedulingOverhead *
             static_cast<double>(std::max(alloc.residentApps - 1, 0)));

    // High occupancy overlaps compute with memory; low occupancy
    // exposes both. Interpolate between max() and sum().
    const double overlap = t.occupancy;
    const double busy =
        std::max(t.computeTime, t.memoryTime) * overlap +
        (t.computeTime + t.memoryTime) * (1.0 - overlap);

    t.time = busy + t.serialTime + t.tlbTime + t.overheadTime;
    return t;
}

BytesPerSecond
gpuPhaseBandwidthDemand(const isa::KernelPhase& phase,
                        const GpuAllocation& alloc, const GpuConfig& config,
                        const L2ModelParams& l2_params)
{
    GpuAllocation unconstrained = alloc;
    unconstrained.bandwidthShare = 0.0;
    unconstrained.memQueueFactor = 1.0;
    const GpuPhaseTiming t =
        timeGpuPhase(phase, unconstrained, config, l2_params);
    if (t.time <= 0.0)
        return 0.0;
    const double dramTraffic =
        static_cast<double>(phase.traffic()) * t.l2MissRate;
    return dramTraffic / t.time;
}

}  // namespace mapp::gpusim
