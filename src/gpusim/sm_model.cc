#include "gpusim/sm_model.h"

#include <algorithm>
#include <cmath>

#include "gpusim/tlb_model.h"

namespace mapp::gpusim {

double
phaseOccupancy(const isa::KernelPhase& phase, int sms,
               const GpuConfig& config)
{
    const double capacity = static_cast<double>(std::max(sms, 1)) *
                            static_cast<double>(config.maxThreadsPerSm);
    const double items = static_cast<double>(phase.workItems);
    return std::clamp(items / capacity, 0.05, 1.0);
}

GpuPhaseRate
gpuPhaseRate(const isa::KernelPhase& phase, const GpuAllocation& alloc,
             const GpuConfig& config, const L2ModelParams& l2_params)
{
    GpuPhaseRate rate;
    const auto insts = static_cast<double>(phase.instructions());
    if (insts == 0.0)
        return rate;
    rate.empty = false;

    if (phase.hostStaged) {
        // Host-to-device transfer: PCIe drain plus a fixed per-transfer
        // driver cost; no SM/L2/TLB involvement. Co-residents contend
        // for the link via a per-resident split of PCIe, independent of
        // the DRAM grant and queue factor.
        rate.hostStaged = true;
        const auto launches = static_cast<double>(phase.launches);
        const double linkShare =
            config.pcieBandwidth /
            static_cast<double>(std::max(alloc.residentApps, 1));
        // Transfer volume is the device-side write size, not the
        // memcpy's combined read+write traffic.
        rate.hostMemoryTime =
            static_cast<double>(phase.bytesWritten) / linkShare;
        rate.overheadTime = launches * config.stagingLatency;
        return rate;
    }

    const int sms = std::max(alloc.sms, 1);
    rate.occupancy = phaseOccupancy(phase, sms, config);

    // SIMT issue cycles: per-class lane throughput across the partition,
    // derated by divergence (idle lanes) and occupancy (idle warp slots).
    double issueCycles = 0.0;
    for (isa::InstClass c : isa::kAllInstClasses) {
        const double thr =
            config.throughputPerSm[static_cast<std::size_t>(c)] *
            static_cast<double>(sms);
        issueCycles += static_cast<double>(phase.mix.count(c)) / thr;
    }
    const double laneUtil =
        std::max(1.0 - config.divergenceLoss * phase.branchDivergence,
                 0.05);
    const double warpUtil = 0.25 + 0.75 * rate.occupancy;
    issueCycles /= laneUtil * warpUtil;

    const double p = phase.parallelFraction;
    rate.computeTime = issueCycles * p / config.frequency;
    // The serial fraction crawls along one lane.
    rate.serialTime =
        insts * (1.0 - p) / (config.serialIpc * config.frequency);

    // Post-L2 DRAM traffic to drain through the per-event grant.
    rate.l2MissRate = l2MissRate(phase.footprint, alloc.l2Share,
                                 phase.locality, alloc.residentApps,
                                 l2_params);
    rate.dramTraffic =
        static_cast<double>(phase.traffic()) * rate.l2MissRate;

    // TLB stalls (shared across MPS clients): one potential walk per
    // page transition of the phase's traffic. The per-event queueing
    // multiplier is applied in timeGpuPhaseFromRate().
    const double pageTouches =
        static_cast<double>(phase.traffic()) /
        static_cast<double>(config.pageSize);
    rate.tlbMissRate =
        tlbMissRate(phase.footprint, alloc.residentApps, config);
    rate.tlbStallBase = tlbStallTime(pageTouches, rate.tlbMissRate,
                                     alloc.residentApps, config);

    // Launch and MPS scheduling overheads per kernel launch.
    const auto launches = static_cast<double>(phase.launches);
    rate.overheadTime =
        launches *
        (config.launchOverhead +
         config.mpsSchedulingOverhead *
             static_cast<double>(std::max(alloc.residentApps - 1, 0)));

    return rate;
}

GpuPhaseTiming
timeGpuPhase(const isa::KernelPhase& phase, const GpuAllocation& alloc,
             const GpuConfig& config, const L2ModelParams& l2_params)
{
    return timeGpuPhaseFromRate(
        gpuPhaseRate(phase, alloc, config, l2_params),
        alloc.bandwidthShare, alloc.memQueueFactor);
}

BytesPerSecond
gpuPhaseBandwidthDemand(const isa::KernelPhase& phase,
                        const GpuAllocation& alloc, const GpuConfig& config,
                        const L2ModelParams& l2_params)
{
    return gpuPhaseDemandFromRate(
        gpuPhaseRate(phase, alloc, config, l2_params));
}

}  // namespace mapp::gpusim
