#include "gpusim/tlb_model.h"

#include <algorithm>

namespace mapp::gpusim {

double
tlbMissRate(Bytes footprint, int num_apps, const GpuConfig& config)
{
    // Effective entries available to this app.
    const int apps = std::max(num_apps, 1);
    const double entries =
        static_cast<double>(config.tlbEntries) / static_cast<double>(apps);
    const double coverage = entries * static_cast<double>(config.pageSize);

    const double pages =
        static_cast<double>(footprint) /
        static_cast<double>(config.pageSize);
    if (pages <= 1.0)
        return 0.0;

    // Pressure: how far the working set exceeds the covered span.
    const double pressure = static_cast<double>(footprint) / coverage;
    double miss = pressure / (pressure + 1.0) * 0.2;

    // Multi-app flush pressure multiplies the rate.
    miss *= 1.0 + config.tlbMultiAppPressure *
                      static_cast<double>(apps - 1);
    return std::clamp(miss, 0.0, 0.9);
}

Seconds
tlbStallTime(double page_touches, double miss_rate, int num_apps,
             const GpuConfig& config)
{
    const int apps = std::max(num_apps, 1);
    // Warp switching hides most walk latency when alone; co-residents'
    // flushes serialize the walker and expose more of it.
    double hiding = config.tlbHiding;
    hiding /= 1.0 + 0.5 * static_cast<double>(apps - 1);

    const double walkCycles = page_touches * miss_rate *
                              config.tlbMissPenaltyCycles *
                              (1.0 - hiding);
    return walkCycles / config.frequency;
}

}  // namespace mapp::gpusim
