/**
 * @file
 * The MPS multi-application GPU simulator.
 *
 * Each MPS client is a queue of kernel phases. Co-resident clients get
 * a spatial partition of the SMs (CUDA MPS on Turing), share the L2
 * (capacity split + conflict interference), share the DRAM channels
 * (max-min over instantaneous demands, with row-buffer interference
 * shaving peak bandwidth per extra client) and share the TLB (flush
 * pressure inflates miss rates). The engine advances from kernel
 * completion to kernel completion, re-dividing resources whenever the
 * resident set changes. Single-client runs produce the paper's
 * "GPU time" feature; bag runs produce the prediction target.
 */

#ifndef MAPP_GPUSIM_MPS_SIM_H
#define MAPP_GPUSIM_MPS_SIM_H

#include <string>
#include <vector>

#include "common/types.h"
#include "gpusim/gpu_config.h"
#include "gpusim/l2_model.h"
#include "gpusim/sm_model.h"
#include "isa/trace.h"

namespace mapp::gpusim {

/** Result of one MPS client's (co-)run. */
struct AppGpuResult
{
    std::string app;       ///< benchmark name
    Seconds time = 0.0;    ///< completion time
    double ipc = 0.0;      ///< instructions / (time x SM clock)
    InstCount instructions = 0;
};

/** Result of a bag co-run under MPS. */
struct BagGpuResult
{
    std::vector<AppGpuResult> apps;
    Seconds makespan = 0.0;  ///< the bag's execution time (the target)
};

/** The GPU performance simulator. */
class MpsSim
{
  public:
    explicit MpsSim(GpuConfig config = {}, L2ModelParams l2_params = {});

    const GpuConfig& config() const { return config_; }

    /** Run one app alone on the whole GPU. */
    AppGpuResult runAlone(const isa::WorkloadTrace& trace) const;

    /** Co-run a bag of apps as MPS clients started together. */
    BagGpuResult runShared(
        const std::vector<const isa::WorkloadTrace*>& traces) const;

    /**
     * Per-phase timing breakdown of an alone run on the whole GPU —
     * where each phase's time goes (compute / serial / memory / TLB /
     * launch+staging overhead). Phases are in trace order.
     */
    std::vector<GpuPhaseTiming> timeline(
        const isa::WorkloadTrace& trace) const;

  private:
    GpuConfig config_;
    L2ModelParams l2Params_;
};

}  // namespace mapp::gpusim

#endif  // MAPP_GPUSIM_MPS_SIM_H
