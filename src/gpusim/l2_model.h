/**
 * @file
 * The GPU's shared L2 model: like the CPU's LLC model but tuned for the
 * much smaller cache and the streaming-heavy access patterns of GPU
 * kernels — capacity pressure bites sooner and co-runner interference
 * adds conflict misses on top of the capacity split (the L2 is shared by
 * all MPS clients; Jog et al. / MASK's observation cited in Section II).
 */

#ifndef MAPP_GPUSIM_L2_MODEL_H
#define MAPP_GPUSIM_L2_MODEL_H

#include "common/types.h"

namespace mapp::gpusim {

/** Parameters of the L2 miss model. */
struct L2ModelParams
{
    double baseMissRate = 0.05;   ///< floor (compulsory/streaming)
    double maxMissRate = 0.95;    ///< over-capacity ceiling
    double capacityKnee = 0.2;    ///< pressure at which capacity bites

    /** Extra miss rate per co-resident app (interleaving conflicts). */
    double interferencePerApp = 0.10;
};

/**
 * L2 miss rate for a phase.
 *
 * @param footprint bytes the phase re-touches
 * @param l2_share bytes of L2 effectively available to the app
 * @param locality phase temporal locality in [0, 1]
 * @param num_apps co-resident MPS clients (>= 1)
 */
double l2MissRate(Bytes footprint, Bytes l2_share, double locality,
                  int num_apps, const L2ModelParams& params = {});

}  // namespace mapp::gpusim

#endif  // MAPP_GPUSIM_L2_MODEL_H
