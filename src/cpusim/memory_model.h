/**
 * @file
 * The shared memory-bandwidth model: queueing delay grows as the sum of
 * co-runners' demands approaches the DRAM bandwidth (an M/M/1-style
 * utilization curve), and each app's achievable bandwidth is its
 * demand-proportional share.
 */

#ifndef MAPP_CPUSIM_MEMORY_MODEL_H
#define MAPP_CPUSIM_MEMORY_MODEL_H

#include <vector>

#include "common/sharing.h"
#include "common/types.h"

namespace mapp::cpusim {

/**
 * Bandwidth each demand receives when sharing a channel of capacity
 * @p total. Demands below their fair share keep what they ask for;
 * the surplus is split among the rest (max-min fairness).
 *
 * @param demands requested bytes/sec per app
 * @param total channel capacity in bytes/sec
 * @return granted bytes/sec per app, summing to <= total
 */
std::vector<BytesPerSecond> shareBandwidth(
    const std::vector<BytesPerSecond>& demands, BytesPerSecond total);

/**
 * Latency multiplier from channel utilization u in [0, 1): classic
 * 1 / (1 - u) queueing growth, clamped for stability.
 */
inline double
queueingFactor(double utilization)
{
    return queueingDelayFactor(utilization);
}

}  // namespace mapp::cpusim

#endif  // MAPP_CPUSIM_MEMORY_MODEL_H
