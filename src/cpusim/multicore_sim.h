/**
 * @file
 * The event-driven multicore co-run simulator.
 *
 * Each application is a queue of profiled phases. Active co-runners
 * split the logical cores and the LLC, negotiate memory bandwidth by
 * max-min fairness over their instantaneous demands, and suffer
 * queueing-inflated memory latency as channel utilization rises. The
 * engine advances the global clock from phase completion to phase
 * completion, re-dividing resources whenever the active set changes —
 * this is what produces alone vs. shared times and IPCs, and hence the
 * paper's fairness feature.
 */

#ifndef MAPP_CPUSIM_MULTICORE_SIM_H
#define MAPP_CPUSIM_MULTICORE_SIM_H

#include <string>
#include <vector>

#include "common/types.h"
#include "cpusim/core_model.h"
#include "isa/trace.h"

namespace mapp::cpusim {

/** Result of one application's (co-)run. */
struct AppCpuResult
{
    std::string app;          ///< benchmark name
    Seconds time = 0.0;       ///< completion time
    double ipc = 0.0;         ///< instructions / (time x frequency)
    InstCount instructions = 0;
};

/** Result of a bag co-run. */
struct BagCpuResult
{
    std::vector<AppCpuResult> apps;
    Seconds makespan = 0.0;  ///< completion of the last app
};

/** The multicore performance simulator. */
class MulticoreSim
{
  public:
    explicit MulticoreSim(CpuConfig config = {},
                          CacheModelParams cache_params = {});

    const CpuConfig& config() const { return config_; }

    /** Run one app alone with the given thread count. */
    AppCpuResult runAlone(const isa::WorkloadTrace& trace,
                          int threads) const;

    /**
     * Co-run a bag of apps, each with its own thread count. Apps start
     * together; resources re-divide as apps finish.
     */
    BagCpuResult runShared(
        const std::vector<const isa::WorkloadTrace*>& traces,
        const std::vector<int>& threads) const;

    /**
     * The thread count (from a power-of-two-ish candidate ladder capped
     * at the logical core count) minimizing the app's alone time — the
     * paper picks each app's best configuration the same way.
     */
    int bestThreadCount(const isa::WorkloadTrace& trace) const;

    /**
     * Per-phase timing breakdown of an alone run (whole machine, given
     * thread count): issue/branch/memory cycle decomposition per phase,
     * in trace order.
     */
    std::vector<PhaseTiming> timeline(const isa::WorkloadTrace& trace,
                                      int threads) const;

  private:
    CpuConfig config_;
    CacheModelParams cacheParams_;
};

}  // namespace mapp::cpusim

#endif  // MAPP_CPUSIM_MULTICORE_SIM_H
