#include "cpusim/core_model.h"

#include <algorithm>
#include <cmath>

namespace mapp::cpusim {

double
effectiveParallelism(int threads, int logical_cores, const CpuConfig& config)
{
    threads = std::max(threads, 1);
    logical_cores = std::max(logical_cores, 1);

    const int physical =
        std::min(threads, std::max(logical_cores / config.smtWays, 1));
    const int smtSiblings =
        std::min(std::max(threads - physical, 0),
                 std::max(logical_cores - physical, 0));
    const int oversubscribed =
        std::max(threads - physical - smtSiblings, 0);

    double eff = static_cast<double>(physical) +
                 config.smtYield * static_cast<double>(smtSiblings);
    // Oversubscribed threads add context-switch overhead, not speed.
    eff /= 1.0 + config.oversubscriptionPenalty *
                     static_cast<double>(oversubscribed);
    return std::max(eff, 0.25);
}

CpuPhaseRate
cpuPhaseRate(const isa::KernelPhase& phase, const CpuAllocation& alloc,
             const CpuConfig& config, const CacheModelParams& cache_params)
{
    CpuPhaseRate rate;
    const auto insts = static_cast<double>(phase.instructions());
    if (insts == 0.0)
        return rate;
    rate.empty = false;
    rate.frequency = config.frequency;

    // Issue cycles: class-weighted CPI.
    double issueCycles = 0.0;
    for (isa::InstClass c : isa::kAllInstClasses) {
        issueCycles += static_cast<double>(phase.mix.count(c)) *
                       config.cpi[static_cast<std::size_t>(c)];
    }
    rate.computeCycles = issueCycles;

    // Branch misprediction stalls.
    const auto branches =
        static_cast<double>(phase.mix.count(isa::InstClass::Control));
    const double mispredictRate =
        config.baseMispredictRate +
        config.divergenceMispredictRate * phase.branchDivergence;
    rate.branchCycles =
        branches * mispredictRate * config.branchPenaltyCycles;
    rate.issueBranchCycles = rate.computeCycles + rate.branchCycles;

    // LLC miss stalls, partially hidden by memory-level parallelism;
    // the per-event queueing multiplier lands in timePhaseFromRate().
    const auto accesses =
        static_cast<double>(phase.mix.count(isa::InstClass::MemRead) +
                            phase.mix.count(isa::InstClass::MemWrite));
    rate.llcMissRate = llcMissRate(phase.footprint, alloc.llcShare,
                                   phase.locality, cache_params);
    rate.memStallBase = accesses * rate.llcMissRate *
                        config.memLatencyCycles *
                        (1.0 - config.mlpOverlap);

    // Amdahl scaling terms over the effective thread-team parallelism.
    rate.parallelFraction = phase.parallelFraction;
    rate.serialFraction = 1.0 - phase.parallelFraction;
    rate.effectiveParallelism =
        effectiveParallelism(alloc.threads, alloc.logicalCores, config);
    rate.spawnCycles = config.threadSpawnCycles *
                       static_cast<double>(alloc.threads);

    // Traffic beyond the LLC that must drain through the granted share.
    rate.dramTraffic =
        static_cast<double>(phase.traffic()) * rate.llcMissRate;

    return rate;
}

PhaseTiming
timePhase(const isa::KernelPhase& phase, const CpuAllocation& alloc,
          const CpuConfig& config, const CacheModelParams& cache_params)
{
    return timePhaseFromRate(
        cpuPhaseRate(phase, alloc, config, cache_params),
        alloc.bandwidthShare, alloc.memQueueFactor);
}

BytesPerSecond
phaseBandwidthDemand(const isa::KernelPhase& phase,
                     const CpuAllocation& alloc, const CpuConfig& config,
                     const CacheModelParams& cache_params)
{
    // Demand = DRAM traffic / unconstrained core time.
    return phaseDemandFromRate(
        cpuPhaseRate(phase, alloc, config, cache_params));
}

}  // namespace mapp::cpusim
