#include "cpusim/core_model.h"

#include <algorithm>
#include <cmath>

namespace mapp::cpusim {

double
effectiveParallelism(int threads, int logical_cores, const CpuConfig& config)
{
    threads = std::max(threads, 1);
    logical_cores = std::max(logical_cores, 1);

    const int physical =
        std::min(threads, std::max(logical_cores / config.smtWays, 1));
    const int smtSiblings =
        std::min(std::max(threads - physical, 0),
                 std::max(logical_cores - physical, 0));
    const int oversubscribed =
        std::max(threads - physical - smtSiblings, 0);

    double eff = static_cast<double>(physical) +
                 config.smtYield * static_cast<double>(smtSiblings);
    // Oversubscribed threads add context-switch overhead, not speed.
    eff /= 1.0 + config.oversubscriptionPenalty *
                     static_cast<double>(oversubscribed);
    return std::max(eff, 0.25);
}

PhaseTiming
timePhase(const isa::KernelPhase& phase, const CpuAllocation& alloc,
          const CpuConfig& config, const CacheModelParams& cache_params)
{
    PhaseTiming t;
    const auto insts = static_cast<double>(phase.instructions());
    if (insts == 0.0)
        return t;

    // Issue cycles: class-weighted CPI.
    double issueCycles = 0.0;
    for (isa::InstClass c : isa::kAllInstClasses) {
        issueCycles += static_cast<double>(phase.mix.count(c)) *
                       config.cpi[static_cast<std::size_t>(c)];
    }
    t.computeCycles = issueCycles;

    // Branch misprediction stalls.
    const auto branches =
        static_cast<double>(phase.mix.count(isa::InstClass::Control));
    const double mispredictRate =
        config.baseMispredictRate +
        config.divergenceMispredictRate * phase.branchDivergence;
    t.branchCycles = branches * mispredictRate * config.branchPenaltyCycles;

    // LLC miss stalls, partially hidden by memory-level parallelism and
    // inflated by queueing at the memory controller.
    const auto accesses =
        static_cast<double>(phase.mix.count(isa::InstClass::MemRead) +
                            phase.mix.count(isa::InstClass::MemWrite));
    t.llcMissRate = llcMissRate(phase.footprint, alloc.llcShare,
                                phase.locality, cache_params);
    t.memoryCycles = accesses * t.llcMissRate * config.memLatencyCycles *
                     (1.0 - config.mlpOverlap) * alloc.memQueueFactor;

    const double totalCycles =
        t.computeCycles + t.branchCycles + t.memoryCycles;

    // Amdahl scaling over the effective thread-team parallelism.
    t.effectiveParallelism =
        effectiveParallelism(alloc.threads, alloc.logicalCores, config);
    const double scaledCycles =
        totalCycles * (1.0 - phase.parallelFraction) +
        totalCycles * phase.parallelFraction / t.effectiveParallelism +
        config.threadSpawnCycles * static_cast<double>(alloc.threads);

    const Seconds coreTime = scaledCycles / config.frequency;

    // Bandwidth lower bound: traffic beyond the LLC must drain through
    // the granted share.
    const double dramTraffic =
        static_cast<double>(phase.traffic()) * t.llcMissRate;
    t.bandwidthTime = alloc.bandwidthShare > 0.0
                          ? dramTraffic / alloc.bandwidthShare
                          : 0.0;

    t.time = std::max(coreTime, t.bandwidthTime);
    return t;
}

BytesPerSecond
phaseBandwidthDemand(const isa::KernelPhase& phase,
                     const CpuAllocation& alloc, const CpuConfig& config,
                     const CacheModelParams& cache_params)
{
    // Demand = DRAM traffic / unconstrained core time.
    CpuAllocation unconstrained = alloc;
    unconstrained.bandwidthShare = 0.0;
    unconstrained.memQueueFactor = 1.0;
    const PhaseTiming t =
        timePhase(phase, unconstrained, config, cache_params);
    if (t.time <= 0.0)
        return 0.0;
    const double dramTraffic =
        static_cast<double>(phase.traffic()) * t.llcMissRate;
    return dramTraffic / t.time;
}

}  // namespace mapp::cpusim
