/**
 * @file
 * Configuration of the simulated multicore server. Defaults model the
 * paper's baseline (Table III): a 2-socket Intel Xeon Gold 5118 — 24
 * physical cores, 48 logical with hyperthreading, 2.3 GHz, 128 GB of
 * main memory behind ~115 GB/s of aggregate bandwidth and ~33 MiB of
 * shared last-level cache.
 */

#ifndef MAPP_CPUSIM_CPU_CONFIG_H
#define MAPP_CPUSIM_CPU_CONFIG_H

#include <array>

#include "common/types.h"
#include "isa/inst_class.h"

namespace mapp::cpusim {

/** Simulated multicore CPU parameters. */
struct CpuConfig
{
    /** Physical cores across both sockets. */
    int physicalCores = 24;

    /** SMT ways per core (hyperthreading). */
    int smtWays = 2;

    /** Core clock. */
    Hertz frequency = 2.3e9;

    /**
     * Per-class effective CPI at L1-hit steady state (out-of-order issue
     * overlap already folded in).
     */
    std::array<double, isa::kNumInstClasses> cpi = {
        0.60,  // mem_rd (L1 latency partially hidden)
        0.55,  // mem_wr
        0.70,  // ctrl
        0.28,  // arith
        0.50,  // fp
        0.45,  // stack
        0.40,  // shift
        0.80,  // string
        0.55,  // sse
    };

    /** Shared last-level cache capacity (both sockets). */
    Bytes llcSize = 33ull << 20;

    /** Main-memory access latency (cycles, beyond the LLC). */
    double memLatencyCycles = 220.0;

    /** Fraction of memory latency hidden by out-of-order overlap / MLP. */
    double mlpOverlap = 0.72;

    /** Aggregate DRAM bandwidth. */
    BytesPerSecond memBandwidth = 115e9;

    /** Branch misprediction penalty in cycles. */
    double branchPenaltyCycles = 14.0;

    /** Baseline branch misprediction rate for non-divergent code. */
    double baseMispredictRate = 0.01;

    /** Extra misprediction rate per unit of branch divergence. */
    double divergenceMispredictRate = 0.10;

    /**
     * Throughput gain of the second SMT thread on a busy core (a second
     * hyperthread adds ~30%, not 100%).
     */
    double smtYield = 0.30;

    /**
     * Scheduling/migration overhead factor applied per additional
     * co-runner when logical cores are oversubscribed.
     */
    double oversubscriptionPenalty = 0.012;

    /**
     * Fork/join cost per thread per phase (OpenMP team spawn and
     * barrier) — this is what makes over-threading a serial phase a
     * loss, so the best thread count is workload-dependent.
     */
    double threadSpawnCycles = 1500.0;

    /** Total logical cores. */
    int logicalCores() const { return physicalCores * smtWays; }
};

}  // namespace mapp::cpusim

#endif  // MAPP_CPUSIM_CPU_CONFIG_H
