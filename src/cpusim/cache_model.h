/**
 * @file
 * The shared-LLC miss model: converts a phase's working-set footprint,
 * its temporal locality and its current share of the cache into an LLC
 * miss rate. Capacity pressure follows a smooth saturating curve (a
 * stack-distance-style approximation) so contention grows continuously
 * as co-runners shrink an application's share.
 */

#ifndef MAPP_CPUSIM_CACHE_MODEL_H
#define MAPP_CPUSIM_CACHE_MODEL_H

#include "common/types.h"

namespace mapp::cpusim {

/** Parameters of the LLC miss model. */
struct CacheModelParams
{
    /** Miss rate floor (compulsory misses). */
    double baseMissRate = 0.02;

    /** Miss rate ceiling for fully streaming, over-capacity phases. */
    double maxMissRate = 0.85;

    /**
     * Shape of the capacity curve: pressure p = footprint / share maps to
     * p / (p + knee).
     */
    double capacityKnee = 1.0;
};

/**
 * LLC miss rate for a phase.
 *
 * @param footprint bytes the phase re-touches
 * @param cache_share bytes of LLC currently available to the app
 * @param locality phase temporal locality in [0, 1]
 */
double llcMissRate(Bytes footprint, Bytes cache_share, double locality,
                   const CacheModelParams& params = {});

}  // namespace mapp::cpusim

#endif  // MAPP_CPUSIM_CACHE_MODEL_H
