#include "cpusim/cache_model.h"

#include <algorithm>

namespace mapp::cpusim {

double
llcMissRate(Bytes footprint, Bytes cache_share, double locality,
            const CacheModelParams& params)
{
    if (cache_share == 0)
        return params.maxMissRate;

    const double pressure = static_cast<double>(footprint) /
                            static_cast<double>(cache_share);
    // Saturating capacity curve: 0 when the working set fits easily,
    // approaching 1 when it vastly exceeds the share.
    const double capacity = pressure / (pressure + params.capacityKnee);

    // Strong temporal locality shields a phase from capacity pressure:
    // its reuse happens before eviction.
    const double exposure = 1.0 - 0.8 * locality;

    const double rate =
        params.baseMissRate +
        (params.maxMissRate - params.baseMissRate) * capacity * exposure;
    return std::clamp(rate, 0.0, 1.0);
}

}  // namespace mapp::cpusim
