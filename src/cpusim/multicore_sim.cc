#include "cpusim/multicore_sim.h"

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "common/log.h"
#include "cpusim/memory_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/corun_engine.h"

namespace mapp::cpusim {

MulticoreSim::MulticoreSim(CpuConfig config, CacheModelParams cache_params)
    : config_(config), cacheParams_(cache_params)
{
}

namespace {

/**
 * The CPU side of the shared co-run engine: active apps split the
 * logical cores and the LLC equally; the DRAM channel capacity is the
 * configured bandwidth, with M/M/1-style queueing as utilization rises.
 */
struct CpuCorunModel
{
    static constexpr const char* kName = "cpusim";
    static constexpr const char* kClientWord = "app";
    using Rate = CpuPhaseRate;

    struct Partition
    {
        int residents = 0;
        int coresEach = 1;
        Bytes llcEach = 0;
    };

    const CpuConfig& config;
    const CacheModelParams& cacheParams;
    std::span<const int> threads;

    Partition makePartition(int n) const
    {
        Partition p;
        p.residents = n;
        // Divide cores and LLC equally among active apps.
        p.coresEach = std::max(config.logicalCores() / n, 1);
        p.llcEach = config.llcSize / static_cast<Bytes>(n);
        return p;
    }

    Rate phaseRate(std::size_t client, const isa::KernelPhase& phase,
                   const Partition& p) const
    {
        CpuAllocation a;
        a.threads = std::max(threads[client], 1);
        a.logicalCores = p.coresEach;
        a.llcShare = p.llcEach;
        return cpuPhaseRate(phase, a, config, cacheParams);
    }

    double demand(const Rate& rate) const
    {
        return phaseDemandFromRate(rate);
    }

    double capacity(const Partition&) const
    {
        return config.memBandwidth;
    }

    double queueFactor(double total_demand, const Partition&) const
    {
        const double utilization =
            std::min(total_demand / config.memBandwidth, 1.0);
        return queueingFactor(utilization);
    }

    Seconds finishTime(const Rate& rate, double bandwidth_share,
                       double queue) const
    {
        return timePhaseFromRate(rate, bandwidth_share, queue).time;
    }

    void tracePartition(obs::Tracer& tracer, const Partition& p,
                        Seconds clock, int track_pid) const
    {
        tracer.instantEvent(
            "re-partition", "cpusim.partition", clock * 1e6, track_pid,
            0,
            {obs::TraceArg::num("residents", p.residents),
             obs::TraceArg::num("cores_each", p.coresEach),
             obs::TraceArg::num("llc_bytes_each",
                                static_cast<double>(p.llcEach))});
    }
};

}  // namespace

BagCpuResult
MulticoreSim::runShared(const std::vector<const isa::WorkloadTrace*>& traces,
                        const std::vector<int>& threads) const
{
    if (traces.empty())
        fatal("MulticoreSim::runShared: empty bag");
    if (traces.size() != threads.size())
        fatal("MulticoreSim::runShared: traces/threads size mismatch");
    for (const auto* trace : traces) {
        if (trace == nullptr || trace->empty())
            fatal("MulticoreSim::runShared: empty trace in bag");
    }

    const CpuCorunModel model{config_, cacheParams_, threads};
    thread_local std::vector<Seconds> finish;
    finish.resize(traces.size());
    const sim::CorunStats stats = sim::runCorun(
        model,
        std::span<const isa::WorkloadTrace* const>(traces.data(),
                                                   traces.size()),
        finish);

    // Flush the run's counters in one batch.
    {
        static auto& registry = obs::defaultRegistry();
        static auto& runs = registry.counter("cpusim.runs");
        static auto& simEvents = registry.counter("cpusim.sim_events");
        static auto& repartitions =
            registry.counter("cpusim.repartitions");
        static auto& phasesCompleted =
            registry.counter("cpusim.phases_completed");
        runs.add(1);
        simEvents.add(stats.events);
        repartitions.add(stats.repartitions);
        phasesCompleted.add(stats.phasesCompleted);
    }

    BagCpuResult result;
    result.apps.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        AppCpuResult r;
        r.app = traces[i]->app();
        r.time = finish[i];
        r.instructions = traces[i]->totalInstructions();
        r.ipc = finish[i] > 0.0
                    ? static_cast<double>(r.instructions) /
                          (finish[i] * config_.frequency)
                    : 0.0;
        result.makespan = std::max(result.makespan, r.time);
        result.apps.push_back(std::move(r));
    }
    return result;
}

AppCpuResult
MulticoreSim::runAlone(const isa::WorkloadTrace& trace, int threads) const
{
    const auto bag = runShared({&trace}, {threads});
    return bag.apps.front();
}

std::vector<PhaseTiming>
MulticoreSim::timeline(const isa::WorkloadTrace& trace,
                       int threads) const
{
    CpuAllocation alloc;
    alloc.threads = std::max(threads, 1);
    alloc.logicalCores = config_.logicalCores();
    alloc.llcShare = config_.llcSize;
    alloc.bandwidthShare = config_.memBandwidth;
    alloc.memQueueFactor = 1.0;

    std::vector<PhaseTiming> out;
    out.reserve(trace.size());
    for (const auto& phase : trace.phases())
        out.push_back(timePhase(phase, alloc, config_, cacheParams_));
    return out;
}

int
MulticoreSim::bestThreadCount(const isa::WorkloadTrace& trace) const
{
    static constexpr int kCandidates[] = {1, 2, 4, 8, 12, 16, 24, 32, 48};
    int best = 1;
    Seconds bestTime = std::numeric_limits<Seconds>::infinity();
    for (int t : kCandidates) {
        if (t > config_.logicalCores())
            break;
        const Seconds time = runAlone(trace, t).time;
        if (time < bestTime) {
            bestTime = time;
            best = t;
        }
    }
    return best;
}

}  // namespace mapp::cpusim
