#include "cpusim/multicore_sim.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "cpusim/memory_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mapp::cpusim {

MulticoreSim::MulticoreSim(CpuConfig config, CacheModelParams cache_params)
    : config_(config), cacheParams_(cache_params)
{
}

namespace {

/** Mutable co-run state of one app. */
struct AppState
{
    const isa::WorkloadTrace* trace = nullptr;
    int threads = 1;
    std::size_t phase = 0;
    double phaseFraction = 0.0;  ///< progress through the current phase
    Seconds finishTime = -1.0;

    bool done() const { return phase >= trace->phases().size(); }
    const isa::KernelPhase& currentPhase() const
    {
        return trace->phases()[phase];
    }
};

}  // namespace

BagCpuResult
MulticoreSim::runShared(const std::vector<const isa::WorkloadTrace*>& traces,
                        const std::vector<int>& threads) const
{
    if (traces.empty())
        fatal("MulticoreSim::runShared: empty bag");
    if (traces.size() != threads.size())
        fatal("MulticoreSim::runShared: traces/threads size mismatch");

    std::vector<AppState> apps(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        if (traces[i] == nullptr || traces[i]->empty())
            fatal("MulticoreSim::runShared: empty trace in bag");
        apps[i].trace = traces[i];
        apps[i].threads = std::max(threads[i], 1);
        if (traces[i]->phases().empty())
            apps[i].finishTime = 0.0;
    }

    Seconds clock = 0.0;
    // Guard against infinite loops from degenerate inputs.
    const std::size_t maxEvents = 16 * 1024 * 1024;
    std::size_t events = 0;

    // Tracing costs one branch per simulator event when disabled.
    obs::Tracer& tracer = obs::tracer();
    const bool tracing = tracer.enabled();
    int trackPid = 0;
    std::vector<Seconds> phaseStart(apps.size(), 0.0);
    std::size_t lastResident = 0;
    std::size_t repartitions = 0;
    std::size_t phasesCompleted = 0;
    if (tracing) {
        std::string label = "cpusim bag:";
        for (const auto& app : apps)
            label += " " + app.trace->app();
        trackPid = tracer.beginTrack(label);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            tracer.nameThread(trackPid, static_cast<int>(i),
                              "app " + std::to_string(i) + " (" +
                                  apps[i].trace->app() + ")");
        }
    }

    while (true) {
        // Collect the active set.
        std::vector<std::size_t> active;
        for (std::size_t i = 0; i < apps.size(); ++i)
            if (!apps[i].done())
                active.push_back(i);
        if (active.empty())
            break;
        if (++events > maxEvents)
            panic("MulticoreSim: event limit exceeded");

        // Divide cores and LLC equally among active apps.
        const auto n = static_cast<int>(active.size());
        const int coresEach =
            std::max(config_.logicalCores() / n, 1);
        const Bytes llcEach = config_.llcSize / static_cast<Bytes>(n);

        // The active set changed: cores and LLC are re-divided.
        if (active.size() != lastResident) {
            lastResident = active.size();
            ++repartitions;
            if (tracing) {
                tracer.instantEvent(
                    "re-partition", "cpusim.partition", clock * 1e6,
                    trackPid, 0,
                    {obs::TraceArg::num("residents", n),
                     obs::TraceArg::num("cores_each", coresEach),
                     obs::TraceArg::num("llc_bytes_each",
                                        static_cast<double>(llcEach))});
            }
        }

        // Bandwidth negotiation over the current phases' demands.
        std::vector<CpuAllocation> allocs(active.size());
        std::vector<BytesPerSecond> demands(active.size());
        for (std::size_t k = 0; k < active.size(); ++k) {
            auto& a = allocs[k];
            a.threads = apps[active[k]].threads;
            a.logicalCores = coresEach;
            a.llcShare = llcEach;
            demands[k] = phaseBandwidthDemand(
                apps[active[k]].currentPhase(), a, config_, cacheParams_);
        }
        const auto granted = shareBandwidth(demands, config_.memBandwidth);
        double totalDemand = 0.0;
        for (double d : demands)
            totalDemand += d;
        const double utilization =
            std::min(totalDemand / config_.memBandwidth, 1.0);
        const double queue = queueingFactor(utilization);

        // Phase durations under the current allocation.
        std::vector<Seconds> remaining(active.size());
        std::vector<Seconds> durations(active.size());
        Seconds dt = std::numeric_limits<Seconds>::infinity();
        for (std::size_t k = 0; k < active.size(); ++k) {
            allocs[k].bandwidthShare = std::max(granted[k], 1.0);
            allocs[k].memQueueFactor = queue;
            const PhaseTiming t =
                timePhase(apps[active[k]].currentPhase(), allocs[k],
                          config_, cacheParams_);
            durations[k] = std::max(t.time, 1e-15);
            remaining[k] =
                durations[k] * (1.0 - apps[active[k]].phaseFraction);
            dt = std::min(dt, remaining[k]);
        }

        // Advance to the earliest phase completion.
        clock += dt;
        for (std::size_t k = 0; k < active.size(); ++k) {
            AppState& app = apps[active[k]];
            if (remaining[k] - dt <= durations[k] * 1e-12) {
                ++phasesCompleted;
                if (tracing) {
                    const std::size_t i = active[k];
                    tracer.completeEvent(
                        app.currentPhase().name, "cpusim.phase",
                        phaseStart[i] * 1e6,
                        (clock - phaseStart[i]) * 1e6, trackPid,
                        static_cast<int>(i),
                        {obs::TraceArg::str("app", app.trace->app()),
                         obs::TraceArg::num(
                             "phase_index",
                             static_cast<double>(app.phase))});
                    phaseStart[i] = clock;
                }
                app.phase += 1;
                app.phaseFraction = 0.0;
                if (app.done())
                    app.finishTime = clock;
            } else {
                app.phaseFraction += dt / durations[k];
            }
        }
    }

    // Flush the run's counters in one batch.
    {
        auto& registry = obs::defaultRegistry();
        registry.counter("cpusim.runs").add(1);
        registry.counter("cpusim.sim_events").add(events);
        registry.counter("cpusim.repartitions").add(repartitions);
        registry.counter("cpusim.phases_completed").add(phasesCompleted);
    }

    BagCpuResult result;
    result.apps.reserve(apps.size());
    for (const auto& app : apps) {
        AppCpuResult r;
        r.app = app.trace->app();
        r.time = app.finishTime;
        r.instructions = app.trace->totalInstructions();
        r.ipc = app.finishTime > 0.0
                    ? static_cast<double>(r.instructions) /
                          (app.finishTime * config_.frequency)
                    : 0.0;
        result.makespan = std::max(result.makespan, r.time);
        result.apps.push_back(std::move(r));
    }
    return result;
}

AppCpuResult
MulticoreSim::runAlone(const isa::WorkloadTrace& trace, int threads) const
{
    const auto bag = runShared({&trace}, {threads});
    return bag.apps.front();
}

std::vector<PhaseTiming>
MulticoreSim::timeline(const isa::WorkloadTrace& trace,
                       int threads) const
{
    CpuAllocation alloc;
    alloc.threads = std::max(threads, 1);
    alloc.logicalCores = config_.logicalCores();
    alloc.llcShare = config_.llcSize;
    alloc.bandwidthShare = config_.memBandwidth;
    alloc.memQueueFactor = 1.0;

    std::vector<PhaseTiming> out;
    out.reserve(trace.size());
    for (const auto& phase : trace.phases())
        out.push_back(timePhase(phase, alloc, config_, cacheParams_));
    return out;
}

int
MulticoreSim::bestThreadCount(const isa::WorkloadTrace& trace) const
{
    static constexpr int kCandidates[] = {1, 2, 4, 8, 12, 16, 24, 32, 48};
    int best = 1;
    Seconds bestTime = std::numeric_limits<Seconds>::infinity();
    for (int t : kCandidates) {
        if (t > config_.logicalCores())
            break;
        const Seconds time = runAlone(trace, t).time;
        if (time < bestTime) {
            bestTime = time;
            best = t;
        }
    }
    return best;
}

}  // namespace mapp::cpusim
