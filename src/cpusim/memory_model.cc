#include "cpusim/memory_model.h"

#include "common/sharing.h"

namespace mapp::cpusim {

std::vector<BytesPerSecond>
shareBandwidth(const std::vector<BytesPerSecond>& demands,
               BytesPerSecond total)
{
    return maxMinShare(demands, total);
}

}  // namespace mapp::cpusim
