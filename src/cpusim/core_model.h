/**
 * @file
 * The per-phase core timing model: converts one KernelPhase plus a
 * resource allocation (threads, LLC share, bandwidth share) into
 * execution time on the simulated multicore.
 */

#ifndef MAPP_CPUSIM_CORE_MODEL_H
#define MAPP_CPUSIM_CORE_MODEL_H

#include <algorithm>

#include "common/types.h"
#include "cpusim/cache_model.h"
#include "cpusim/cpu_config.h"
#include "isa/kernel_phase.h"

namespace mapp::cpusim {

/** The resources an app holds while a phase executes. */
struct CpuAllocation
{
    /** Threads the app runs with (its OpenMP team size). */
    int threads = 1;

    /** Logical cores actually available to those threads. */
    int logicalCores = 1;

    /** Bytes of LLC available to the app. */
    Bytes llcShare = 0;

    /** Memory bandwidth granted to the app. */
    BytesPerSecond bandwidthShare = 0.0;

    /** Queueing multiplier on memory latency (>= 1). */
    double memQueueFactor = 1.0;
};

/** Timing breakdown of one phase under one allocation. */
struct PhaseTiming
{
    Seconds time = 0.0;          ///< wall-clock phase duration
    Cycles computeCycles = 0.0;  ///< issue-bound cycles (one thread lane)
    Cycles branchCycles = 0.0;   ///< misprediction stalls
    Cycles memoryCycles = 0.0;   ///< LLC-miss latency stalls
    Seconds bandwidthTime = 0.0; ///< bandwidth lower bound
    double llcMissRate = 0.0;
    double effectiveParallelism = 1.0;
};

/**
 * The partition-invariant timing terms of one phase: everything
 * timePhase() computes that depends only on the phase and the spatial
 * allocation (thread team, logical-core share, LLC share) — not on the
 * per-event bandwidth grant or queueing factor. The co-run engine
 * computes a rate once per phase entry (and again on residency
 * changes) and finishes per-event timing with timePhaseFromRate(),
 * which is a handful of flops instead of the full core/cache model.
 */
struct CpuPhaseRate
{
    /** Zero-instruction phase: timing is identically zero. */
    bool empty = true;

    Cycles computeCycles = 0.0;  ///< issue-bound cycles
    Cycles branchCycles = 0.0;   ///< misprediction stalls
    Cycles issueBranchCycles = 0.0;  ///< computeCycles + branchCycles
    /** LLC-miss stall cycles before the per-event queueing multiplier. */
    Cycles memStallBase = 0.0;
    double parallelFraction = 0.0;
    double serialFraction = 1.0;     ///< 1 - parallelFraction
    double effectiveParallelism = 1.0;
    Cycles spawnCycles = 0.0;        ///< thread-team spawn overhead
    double dramTraffic = 0.0;        ///< post-LLC bytes to drain
    double llcMissRate = 0.0;
    double frequency = 1.0;          ///< copied from the config
};

/**
 * Precompute the partition-invariant rate terms of @p phase. Only
 * @p alloc's threads / logicalCores / llcShare fields are read; the
 * bandwidth grant and queue factor are supplied per event to
 * timePhaseFromRate().
 */
CpuPhaseRate cpuPhaseRate(const isa::KernelPhase& phase,
                          const CpuAllocation& alloc,
                          const CpuConfig& config,
                          const CacheModelParams& cache_params = {});

/**
 * Finish one phase's timing from its precomputed rate under the given
 * bandwidth share and memory-queueing factor. Bit-identical to the
 * corresponding timePhase() call: the split performs exactly the same
 * floating-point operations in the same order. Inline — this is the
 * co-run engine's per-event hot path.
 */
inline PhaseTiming
timePhaseFromRate(const CpuPhaseRate& rate,
                  BytesPerSecond bandwidth_share, double mem_queue_factor)
{
    PhaseTiming t;
    if (rate.empty)
        return t;

    t.computeCycles = rate.computeCycles;
    t.branchCycles = rate.branchCycles;
    t.llcMissRate = rate.llcMissRate;
    t.effectiveParallelism = rate.effectiveParallelism;

    // Queueing at the memory controller inflates the LLC-miss stalls.
    t.memoryCycles = rate.memStallBase * mem_queue_factor;

    const double totalCycles = rate.issueBranchCycles + t.memoryCycles;

    // Amdahl scaling over the effective thread-team parallelism.
    const double scaledCycles =
        totalCycles * rate.serialFraction +
        totalCycles * rate.parallelFraction /
            rate.effectiveParallelism +
        rate.spawnCycles;

    const Seconds coreTime = scaledCycles / rate.frequency;

    // Bandwidth lower bound: traffic beyond the LLC must drain through
    // the granted share.
    t.bandwidthTime = bandwidth_share > 0.0
                          ? rate.dramTraffic / bandwidth_share
                          : 0.0;

    t.time = std::max(coreTime, t.bandwidthTime);
    return t;
}

/**
 * Unconstrained bandwidth demand derived from a precomputed rate —
 * the same value phaseBandwidthDemand() computes from scratch.
 */
inline BytesPerSecond
phaseDemandFromRate(const CpuPhaseRate& rate)
{
    const PhaseTiming t = timePhaseFromRate(rate, 0.0, 1.0);
    if (t.time <= 0.0)
        return 0.0;
    return rate.dramTraffic / t.time;
}

/**
 * Time one phase under an allocation.
 *
 * The model: class-weighted CPI for issue cycles, divergence-scaled
 * branch penalties, LLC-miss latency stalls shaped by the cache model
 * and partially hidden by MLP, Amdahl scaling over the effective
 * parallelism of the thread team (SMT threads yield less than physical
 * cores), and a bandwidth lower bound — the phase can never finish
 * faster than its traffic drains through its granted bandwidth.
 *
 * Implemented as cpuPhaseRate() + timePhaseFromRate().
 */
PhaseTiming timePhase(const isa::KernelPhase& phase,
                      const CpuAllocation& alloc, const CpuConfig& config,
                      const CacheModelParams& cache_params = {});

/**
 * The effective parallel throughput of @p threads on @p logical_cores
 * logical cores: physical cores count fully, SMT siblings add
 * config.smtYield, and oversubscribed threads add nothing but overhead.
 */
double effectiveParallelism(int threads, int logical_cores,
                            const CpuConfig& config);

/**
 * Bandwidth demand of a phase (bytes/sec) if it ran unconstrained —
 * used to negotiate shares among co-runners.
 */
BytesPerSecond phaseBandwidthDemand(const isa::KernelPhase& phase,
                                    const CpuAllocation& alloc,
                                    const CpuConfig& config,
                                    const CacheModelParams& cache_params = {});

}  // namespace mapp::cpusim

#endif  // MAPP_CPUSIM_CORE_MODEL_H
