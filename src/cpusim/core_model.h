/**
 * @file
 * The per-phase core timing model: converts one KernelPhase plus a
 * resource allocation (threads, LLC share, bandwidth share) into
 * execution time on the simulated multicore.
 */

#ifndef MAPP_CPUSIM_CORE_MODEL_H
#define MAPP_CPUSIM_CORE_MODEL_H

#include "common/types.h"
#include "cpusim/cache_model.h"
#include "cpusim/cpu_config.h"
#include "isa/kernel_phase.h"

namespace mapp::cpusim {

/** The resources an app holds while a phase executes. */
struct CpuAllocation
{
    /** Threads the app runs with (its OpenMP team size). */
    int threads = 1;

    /** Logical cores actually available to those threads. */
    int logicalCores = 1;

    /** Bytes of LLC available to the app. */
    Bytes llcShare = 0;

    /** Memory bandwidth granted to the app. */
    BytesPerSecond bandwidthShare = 0.0;

    /** Queueing multiplier on memory latency (>= 1). */
    double memQueueFactor = 1.0;
};

/** Timing breakdown of one phase under one allocation. */
struct PhaseTiming
{
    Seconds time = 0.0;          ///< wall-clock phase duration
    Cycles computeCycles = 0.0;  ///< issue-bound cycles (one thread lane)
    Cycles branchCycles = 0.0;   ///< misprediction stalls
    Cycles memoryCycles = 0.0;   ///< LLC-miss latency stalls
    Seconds bandwidthTime = 0.0; ///< bandwidth lower bound
    double llcMissRate = 0.0;
    double effectiveParallelism = 1.0;
};

/**
 * Time one phase under an allocation.
 *
 * The model: class-weighted CPI for issue cycles, divergence-scaled
 * branch penalties, LLC-miss latency stalls shaped by the cache model
 * and partially hidden by MLP, Amdahl scaling over the effective
 * parallelism of the thread team (SMT threads yield less than physical
 * cores), and a bandwidth lower bound — the phase can never finish
 * faster than its traffic drains through its granted bandwidth.
 */
PhaseTiming timePhase(const isa::KernelPhase& phase,
                      const CpuAllocation& alloc, const CpuConfig& config,
                      const CacheModelParams& cache_params = {});

/**
 * The effective parallel throughput of @p threads on @p logical_cores
 * logical cores: physical cores count fully, SMT siblings add
 * config.smtYield, and oversubscribed threads add nothing but overhead.
 */
double effectiveParallelism(int threads, int logical_cores,
                            const CpuConfig& config);

/**
 * Bandwidth demand of a phase (bytes/sec) if it ran unconstrained —
 * used to negotiate shares among co-runners.
 */
BytesPerSecond phaseBandwidthDemand(const isa::KernelPhase& phase,
                                    const CpuAllocation& alloc,
                                    const CpuConfig& config,
                                    const CacheModelParams& cache_params = {});

}  // namespace mapp::cpusim

#endif  // MAPP_CPUSIM_CORE_MODEL_H
