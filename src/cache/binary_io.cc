#include "cache/binary_io.h"

#include <bit>

#include "cache/hash.h"
#include "common/error.h"
#include "common/log.h"

namespace mapp::cache {

namespace {

/** Bytes of the trailing checksum. */
constexpr std::size_t kChecksumBytes = 8;

/** magic(4) + version(4). */
constexpr std::size_t kHeaderBytes = 8;

void
appendLe(std::string& buf, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint64_t
readLe(std::string_view buf, std::size_t pos, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(buf[pos + static_cast<
                     std::size_t>(i)]))
             << (8 * i);
    }
    return v;
}

}  // namespace

BinaryWriter::BinaryWriter(std::string_view magic, std::uint32_t version)
{
    if (magic.size() != 4)
        panic("BinaryWriter: format magic must be exactly 4 bytes");
    buf_.append(magic);
    appendLe(buf_, version, 4);
}

void
BinaryWriter::u8(std::uint8_t v)
{
    buf_.push_back(static_cast<char>(v));
}

void
BinaryWriter::u32(std::uint32_t v)
{
    appendLe(buf_, v, 4);
}

void
BinaryWriter::u64(std::uint64_t v)
{
    appendLe(buf_, v, 8);
}

void
BinaryWriter::i32(std::int32_t v)
{
    appendLe(buf_, static_cast<std::uint32_t>(v), 4);
}

void
BinaryWriter::f64(double v)
{
    appendLe(buf_, std::bit_cast<std::uint64_t>(v), 8);
}

void
BinaryWriter::str(std::string_view s)
{
    appendLe(buf_, s.size(), 8);
    buf_.append(s);
}

std::string
BinaryWriter::finish() &&
{
    appendLe(buf_, fnv1a(buf_), 8);
    return std::move(buf_);
}

BinaryReader::BinaryReader(std::string_view blob, std::string_view source,
                           std::string_view magic, std::uint32_t version)
    : blob_(blob), source_(source)
{
    if (magic.size() != 4)
        panic("BinaryReader: format magic must be exactly 4 bytes");
    if (blob_.size() < kHeaderBytes + kChecksumBytes)
        fail("blob too short for a header (" +
             std::to_string(blob_.size()) + " bytes)");
    if (blob_.substr(0, 4) != magic)
        fail("wrong format magic (expected '" + std::string(magic) +
             "', found '" + std::string(blob_.substr(0, 4)) + "')");
    const auto found =
        static_cast<std::uint32_t>(readLe(blob_, 4, 4));
    if (found != version)
        fail("format version mismatch (expected " +
             std::to_string(version) + ", found " +
             std::to_string(found) + ")");
    end_ = blob_.size() - kChecksumBytes;
    const std::uint64_t expected = readLe(blob_, end_, 8);
    const std::uint64_t actual = fnv1a(blob_.substr(0, end_));
    if (expected != actual)
        fail("checksum mismatch (blob truncated or corrupt)");
    pos_ = kHeaderBytes;
}

void
BinaryReader::fail(const std::string& what) const
{
    raise(Error(ErrorCode::Parse, what, SourceContext{source_, 0, {}}));
}

void
BinaryReader::need(std::size_t n) const
{
    if (end_ - pos_ < n)
        fail("unexpected end of payload at byte " +
             std::to_string(pos_) + " (need " + std::to_string(n) +
             ", have " + std::to_string(end_ - pos_) + ")");
}

std::uint8_t
BinaryReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(
        static_cast<unsigned char>(blob_[pos_++]));
}

std::uint32_t
BinaryReader::u32()
{
    need(4);
    const auto v = static_cast<std::uint32_t>(readLe(blob_, pos_, 4));
    pos_ += 4;
    return v;
}

std::uint64_t
BinaryReader::u64()
{
    need(8);
    const std::uint64_t v = readLe(blob_, pos_, 8);
    pos_ += 8;
    return v;
}

std::int32_t
BinaryReader::i32()
{
    return static_cast<std::int32_t>(u32());
}

double
BinaryReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
BinaryReader::str()
{
    const std::uint64_t n = u64();
    need(n);
    std::string s(blob_.substr(pos_, n));
    pos_ += n;
    return s;
}

void
BinaryReader::expectEnd() const
{
    if (pos_ != end_)
        fail(std::to_string(end_ - pos_) +
             " trailing payload bytes after the last field");
}

}  // namespace mapp::cache
