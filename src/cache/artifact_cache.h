/**
 * @file
 * The persistent content-addressed artifact cache.
 *
 * Expensive pipeline artifacts — profiled workload traces, simulator
 * alone/shared run results, collected campaigns, trained models — are
 * memoized on disk across processes. Every artifact is addressed by a
 * 64-bit key hashed over (artifact kind, identity fields, the full
 * producing configuration, and a code-version salt), so any config or
 * code-semantics change invalidates cleanly by landing on a new key;
 * stale entries are never read, only orphaned. Values are the compact
 * binary blobs of cache/binary_io.h; a corrupt, truncated or
 * version-mismatched entry is detected by the reader, evicted, and the
 * caller recomputes and rewrites — never a crash, never a stale hit.
 *
 * Layout: `<dir>/<kind>/<16-hex-digest>.bin`, one file per artifact.
 * The directory defaults to $MAPP_CACHE_DIR, else $XDG_CACHE_HOME/mapp,
 * else ~/.cache/mapp; `mapp_cli --cache-dir=`/`--no-cache` override it.
 * Stores write to a temp file and rename() into place, so concurrent
 * processes and threads never observe partial entries.
 *
 * Observability: cache.{hits,misses,bytes_read,bytes_written,evictions}
 * counters in the default metrics registry, and `cache-load` /
 * `cache-store` phases on the pipeline profiler.
 */

#ifndef MAPP_CACHE_ARTIFACT_CACHE_H
#define MAPP_CACHE_ARTIFACT_CACHE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/hash.h"
#include "common/log.h"

namespace mapp::cache {

/**
 * The code-version salt folded into every key by keyHasher(). Bump it
 * whenever a serialization format or the semantics of a cached
 * computation (profiler, simulators, collector, tree fit) change, so
 * old entries become unreachable instead of wrong. The MAPP_CACHE_SALT
 * env var appends to it (tests use this to force clean misses).
 */
inline constexpr std::string_view kCacheCodeSalt = "mapp-artifacts-v1";

/**
 * A Hasher seeded with the artifact kind and the code-version salt
 * (plus any MAPP_CACHE_SALT override). Call sites fold in their
 * identity and configuration fields and pass digest() as the key.
 */
Hasher keyHasher(std::string_view kind);

/** On-disk footprint of one artifact kind (for `mapp_cli cache stats`). */
struct KindStats
{
    std::string kind;
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
};

/** A content-addressed blob store rooted at one directory. */
class ArtifactCache
{
  public:
    /** Disabled until a directory is set. */
    ArtifactCache() = default;

    /** Rooted at @p dir (enabled if non-empty). */
    explicit ArtifactCache(std::string dir);

    /** Point at a new root; non-empty enables, empty disables. */
    void setDirectory(std::string dir);

    std::string directory() const;

    /** Master switch; load/store are no-ops while disabled. */
    void setEnabled(bool on);

    bool enabled() const;

    /** Path an entry would live at (whether or not it exists). */
    std::string entryPath(std::string_view kind, std::uint64_t key) const;

    /**
     * Store a finished blob under (kind, key): write-to-temp + atomic
     * rename. Counts cache.bytes_written. @return false when disabled
     * or on I/O failure (a cache store failure is never fatal — the
     * value was just computed and the caller proceeds with it).
     */
    bool store(std::string_view kind, std::uint64_t key,
               std::string_view blob);

    /**
     * Load-and-parse with corruption fallback. @p parse is invoked as
     * `parse(blob, path)` and must throw mapp::FatalError (typically
     * the binary reader's InputError) on any malformed input. Returns
     * the parsed artifact on a clean hit; nullopt when the cache is
     * disabled, the entry is absent (cache.misses), or the entry fails
     * to parse — in which case the corrupt file is evicted
     * (cache.evictions) so the caller's recompute-and-store leaves the
     * cache healthy.
     */
    template <typename Parser>
    auto loadAndParse(std::string_view kind, std::uint64_t key,
                      Parser&& parse)
        -> std::optional<decltype(parse(std::string(), std::string()))>
    {
        std::string path;
        const auto blob = readEntry(kind, key, path);
        if (!blob)
            return std::nullopt;
        try {
            auto value = parse(*blob, path);
            countHit(blob->size());
            return value;
        } catch (const FatalError& e) {
            evict(kind, key, e.what());
            return std::nullopt;
        }
    }

    /**
     * Raw entry read; fills @p path with the entry location. Counts a
     * miss when enabled and absent. No hit accounting (loadAndParse
     * counts a hit only after a successful parse).
     */
    std::optional<std::string> readEntry(std::string_view kind,
                                         std::uint64_t key,
                                         std::string& path) const;

    /** Remove one entry, counting cache.evictions. */
    void evict(std::string_view kind, std::uint64_t key,
               std::string_view reason = {});

    /** Per-kind entry counts and bytes on disk (kind-name sorted). */
    std::vector<KindStats> scan() const;

    /** Remove every entry; @return entries removed. */
    std::size_t clear();

  private:
    void countHit(std::size_t bytes) const;

    mutable std::mutex mutex_;  ///< guards dir_/enabled_ only
    std::string dir_;
    bool enabled_ = false;
};

/**
 * The process-wide cache used by the built-in memoization points
 * (vision::cachedTrace, DataCollector, MultiAppPredictor::train). Its
 * root is resolved from the environment on first use; resolving to no
 * usable directory leaves it disabled.
 */
ArtifactCache& defaultArtifactCache();

}  // namespace mapp::cache

#endif  // MAPP_CACHE_ARTIFACT_CACHE_H
