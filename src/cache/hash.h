/**
 * @file
 * The streaming FNV-1a content hasher behind every artifact-cache key.
 *
 * Cache keys are 64-bit FNV-1a digests over a typed field stream: each
 * add() folds a length- or width-delimited encoding of the value into
 * the running state, so two different field sequences can never collide
 * by concatenation ("ab" + "c" hashes differently from "a" + "bc").
 * Doubles are hashed by bit pattern, which is exactly the invalidation
 * granularity the cache wants: any config change that alters a value's
 * bits produces a new key, and bit-identical configs share one entry.
 */

#ifndef MAPP_CACHE_HASH_H
#define MAPP_CACHE_HASH_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mapp::cache {

/** Streaming 64-bit FNV-1a over typed fields. */
class Hasher
{
  public:
    /** Fold raw bytes into the digest. */
    Hasher& bytes(const void* data, std::size_t n)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001B3ull;
        }
        return *this;
    }

    /** Fold a string, length-prefixed so field boundaries matter. */
    Hasher& add(std::string_view s)
    {
        add(static_cast<std::uint64_t>(s.size()));
        return bytes(s.data(), s.size());
    }

    Hasher& add(std::uint64_t v)
    {
        unsigned char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(buf, sizeof(buf));
    }

    Hasher& add(std::int64_t v)
    {
        return add(static_cast<std::uint64_t>(v));
    }

    Hasher& add(int v) { return add(static_cast<std::int64_t>(v)); }

    Hasher& add(bool v)
    {
        return add(static_cast<std::uint64_t>(v ? 1 : 0));
    }

    /** Hash the bit pattern (no -0.0/0.0 or NaN canonicalization). */
    Hasher& add(double v)
    {
        return add(std::bit_cast<std::uint64_t>(v));
    }

    Hasher& add(std::span<const double> values)
    {
        add(static_cast<std::uint64_t>(values.size()));
        for (double v : values)
            add(v);
        return *this;
    }

    std::uint64_t digest() const { return hash_; }

    /** 16-digit lower-case hex rendering of digest(). */
    std::string hex() const;

  private:
    std::uint64_t hash_ = 0xCBF29CE484222325ull;  // FNV offset basis
};

/** FNV-1a digest of a whole buffer (the binary-format checksum). */
std::uint64_t fnv1a(std::string_view data);

}  // namespace mapp::cache

#endif  // MAPP_CACHE_HASH_H
