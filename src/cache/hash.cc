#include "cache/hash.h"

namespace mapp::cache {

std::string
Hasher::hex() const
{
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    std::uint64_t v = hash_;
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

std::uint64_t
fnv1a(std::string_view data)
{
    Hasher h;
    h.bytes(data.data(), data.size());
    return h.digest();
}

}  // namespace mapp::cache
