#include "cache/artifact_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/file_io.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace fs = std::filesystem;

namespace mapp::cache {

namespace {

/** Hex filename for a key: "<16 hex>.bin". */
std::string
entryFileName(std::uint64_t key)
{
    static const char* digits = "0123456789abcdef";
    std::string name(16, '0');
    std::uint64_t v = key;
    for (int i = 15; i >= 0; --i) {
        name[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return name + ".bin";
}

/** Resolve the default cache root from the environment. */
std::string
defaultCacheDir()
{
    if (const char* dir = std::getenv("MAPP_CACHE_DIR"))
        return dir;  // empty string explicitly disables
    if (const char* xdg = std::getenv("XDG_CACHE_HOME")) {
        if (*xdg != '\0')
            return std::string(xdg) + "/mapp";
    }
    if (const char* home = std::getenv("HOME")) {
        if (*home != '\0')
            return std::string(home) + "/.cache/mapp";
    }
    return {};
}

}  // namespace

Hasher
keyHasher(std::string_view kind)
{
    Hasher h;
    h.add(kCacheCodeSalt);
    if (const char* salt = std::getenv("MAPP_CACHE_SALT"))
        h.add(std::string_view(salt));
    else
        h.add(std::string_view(""));
    h.add(kind);
    return h;
}

ArtifactCache::ArtifactCache(std::string dir)
{
    setDirectory(std::move(dir));
}

void
ArtifactCache::setDirectory(std::string dir)
{
    std::lock_guard<std::mutex> lock(mutex_);
    dir_ = std::move(dir);
    enabled_ = !dir_.empty();
}

std::string
ArtifactCache::directory() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dir_;
}

void
ArtifactCache::setEnabled(bool on)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = on && !dir_.empty();
}

bool
ArtifactCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
}

std::string
ArtifactCache::entryPath(std::string_view kind, std::uint64_t key) const
{
    return directory() + "/" + std::string(kind) + "/" +
           entryFileName(key);
}

std::optional<std::string>
ArtifactCache::readEntry(std::string_view kind, std::uint64_t key,
                         std::string& path) const
{
    if (!enabled())
        return std::nullopt;
    const obs::ScopedPhase phase("cache-load");
    path = entryPath(kind, key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        obs::defaultRegistry().counter("cache.misses").add(1);
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
        obs::defaultRegistry().counter("cache.misses").add(1);
        return std::nullopt;
    }
    return std::move(buf).str();
}

void
ArtifactCache::countHit(std::size_t bytes) const
{
    auto& registry = obs::defaultRegistry();
    registry.counter("cache.hits").add(1);
    registry.counter("cache.bytes_read")
        .add(static_cast<std::uint64_t>(bytes));
}

bool
ArtifactCache::store(std::string_view kind, std::uint64_t key,
                     std::string_view blob)
{
    if (!enabled())
        return false;
    const obs::ScopedPhase phase("cache-store");
    const std::string path = entryPath(kind, key);

    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
    if (ec) {
        warn("artifact cache: cannot create " + path + ": " +
             ec.message());
        return false;
    }

    // Concurrent stores of the same key are safe: writeFileAtomic uses
    // a unique temp per writer and an atomic rename, so readers only
    // ever see complete blobs (last writer wins, and all writers of one
    // key carry identical content by construction).
    if (!writeFileAtomic(path, blob)) {
        warn("artifact cache: cannot write " + path);
        return false;
    }
    obs::defaultRegistry()
        .counter("cache.bytes_written")
        .add(static_cast<std::uint64_t>(blob.size()));
    return true;
}

void
ArtifactCache::evict(std::string_view kind, std::uint64_t key,
                     std::string_view reason)
{
    const std::string path = entryPath(kind, key);
    std::error_code ec;
    fs::remove(path, ec);
    obs::defaultRegistry().counter("cache.evictions").add(1);
    if (!reason.empty())
        warn("artifact cache: evicted corrupt entry " + path + " (" +
             std::string(reason) + ")");
}

std::vector<KindStats>
ArtifactCache::scan() const
{
    std::vector<KindStats> out;
    const std::string root = directory();
    if (root.empty())
        return out;
    std::error_code ec;
    for (const auto& kindDir : fs::directory_iterator(root, ec)) {
        if (!kindDir.is_directory())
            continue;
        KindStats stats;
        stats.kind = kindDir.path().filename().string();
        std::error_code inner;
        for (const auto& entry :
             fs::directory_iterator(kindDir.path(), inner)) {
            if (!entry.is_regular_file() ||
                entry.path().extension() != ".bin")
                continue;
            ++stats.entries;
            stats.bytes += entry.file_size(inner);
        }
        out.push_back(std::move(stats));
    }
    std::sort(out.begin(), out.end(),
              [](const KindStats& a, const KindStats& b) {
                  return a.kind < b.kind;
              });
    return out;
}

std::size_t
ArtifactCache::clear()
{
    std::size_t removed = 0;
    const std::string root = directory();
    if (root.empty())
        return removed;
    std::error_code ec;
    for (const auto& kindDir : fs::directory_iterator(root, ec)) {
        if (!kindDir.is_directory())
            continue;
        std::error_code inner;
        for (const auto& entry :
             fs::directory_iterator(kindDir.path(), inner)) {
            if (!entry.is_regular_file() ||
                entry.path().extension() != ".bin")
                continue;
            std::error_code rm;
            if (fs::remove(entry.path(), rm))
                ++removed;
        }
    }
    return removed;
}

ArtifactCache&
defaultArtifactCache()
{
    static ArtifactCache instance(defaultCacheDir());
    return instance;
}

}  // namespace mapp::cache
