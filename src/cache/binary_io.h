/**
 * @file
 * The compact binary container every cached artifact is serialized in:
 * a 4-byte format magic and a u32 format version up front, little-endian
 * POD fields and length-prefixed strings in the payload, and a trailing
 * FNV-1a checksum over everything before it.
 *
 * BinaryWriter builds the blob in memory; BinaryReader verifies the
 * frame (size, magic, version, checksum) before the first field read
 * and bounds-checks every subsequent read, so a truncated, garbled,
 * wrong-magic or wrong-version blob always surfaces as a located
 * mapp::InputError — never an out-of-bounds read, never a silently
 * wrong value. The artifact cache treats any such error as a corrupt
 * entry and falls back to recomputation.
 */

#ifndef MAPP_CACHE_BINARY_IO_H
#define MAPP_CACHE_BINARY_IO_H

#include <cstdint>
#include <string>
#include <string_view>

namespace mapp::cache {

/** Serializes one artifact blob: header, fields, trailing checksum. */
class BinaryWriter
{
  public:
    /**
     * Start a blob of the given format.
     * @param magic exactly 4 bytes naming the format (e.g. "MTRC")
     * @param version format version recorded in the header
     */
    BinaryWriter(std::string_view magic, std::uint32_t version);

    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v);
    /** Bit-exact double (round-trips NaN payloads and -0.0). */
    void f64(double v);
    /** Length-prefixed byte string (text or nested binary blob). */
    void str(std::string_view s);

    /** Append the checksum and return the finished blob. */
    std::string finish() &&;

  private:
    std::string buf_;
};

/** Parses one artifact blob, validating the frame up front. */
class BinaryReader
{
  public:
    /**
     * Bind to @p blob and validate the frame.
     * @param blob the full serialized artifact
     * @param source label for error messages (e.g. the file path)
     * @param magic the expected 4-byte format magic
     * @param version the expected format version
     * @throws mapp::InputError (located at @p source) when the blob is
     *         shorter than a frame, carries the wrong magic or version,
     *         or fails the checksum (truncation/corruption).
     */
    BinaryReader(std::string_view blob, std::string_view source,
                 std::string_view magic, std::uint32_t version);

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    double f64();
    std::string str();

    /** Bytes of payload not yet consumed. */
    std::size_t remaining() const { return end_ - pos_; }

    /**
     * Assert the payload was consumed exactly.
     * @throws mapp::InputError if trailing payload bytes remain.
     */
    void expectEnd() const;

  private:
    [[noreturn]] void fail(const std::string& what) const;
    void need(std::size_t n) const;

    std::string_view blob_;
    std::string source_;
    std::size_t pos_ = 0;  ///< next unread payload byte
    std::size_t end_ = 0;  ///< first byte of the trailing checksum
};

}  // namespace mapp::cache

#endif  // MAPP_CACHE_BINARY_IO_H
