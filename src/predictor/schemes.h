/**
 * @file
 * Feature schemes: named subsets of the bag feature vector used in the
 * paper's comparisons (Figure 5) and sensitivity studies (Figures 6-9).
 * A scheme is a combination of component groups — the full instruction
 * mix (or its memory-only / compute-only restrictions), the CPU time,
 * the GPU time, and fairness — expanded over both app slots.
 */

#ifndef MAPP_PREDICTOR_SCHEMES_H
#define MAPP_PREDICTOR_SCHEMES_H

#include <string>
#include <vector>

namespace mapp::predictor {

/** Component groups a scheme may include. */
struct FeatureScheme
{
    std::string name;        ///< display label
    bool insmix = false;     ///< all nine mix classes
    bool memOnly = false;    ///< only mem_rd + mem_wr
    bool computeOnly = false;///< only arith + sse
    bool cpuTime = false;
    bool gpuTime = false;
    bool fairness = false;

    /** Bag feature names (a0_/a1_ expanded) selected by this scheme. */
    std::vector<std::string> featureNames() const;

    /** Copy of this scheme with a component added (for Figs. 6-9). */
    FeatureScheme with(const std::string& component) const;
};

/** The four schemes of Figure 5, in bar order. */
std::vector<FeatureScheme> figure5Schemes();

/** Scheme: instruction mix only (Baldini et al.'s feature family). */
FeatureScheme insmixScheme();

/** Scheme: the full Table-IV feature vector. */
FeatureScheme fullScheme();

/**
 * The base combinations swept in the sensitivity figures. Each figure
 * takes these and reports error without/with one added component.
 */
std::vector<FeatureScheme> sensitivityBaseSchemes();

/** Look up a component group by name ("cpu", "gpu", "fairness",
 * "insmix"). @throws FatalError on unknown names. */
FeatureScheme addComponent(const FeatureScheme& base,
                           const std::string& component);

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_SCHEMES_H
