#include "predictor/schemes.h"

#include "common/log.h"
#include "predictor/features.h"

namespace mapp::predictor {

std::vector<std::string>
FeatureScheme::featureNames() const
{
    std::vector<std::string> bases;
    if (cpuTime)
        bases.push_back("cpu_time");
    if (gpuTime)
        bases.push_back("gpu_time");
    if (insmix) {
        for (isa::InstClass c : isa::kAllInstClasses)
            bases.push_back(isa::instClassName(c));
    } else {
        if (memOnly) {
            bases.push_back("mem_rd");
            bases.push_back("mem_wr");
        }
        if (computeOnly) {
            bases.push_back("arith");
            bases.push_back("sse");
        }
    }

    std::vector<std::string> out;
    for (int slot = 0; slot < kBagSize; ++slot)
        for (const auto& base : bases)
            out.push_back("a" + std::to_string(slot) + "_" + base);
    if (fairness)
        out.push_back("fairness");
    return out;
}

FeatureScheme
FeatureScheme::with(const std::string& component) const
{
    return addComponent(*this, component);
}

FeatureScheme
addComponent(const FeatureScheme& base, const std::string& component)
{
    FeatureScheme s = base;
    s.name = base.name.empty() ? component : base.name + "+" + component;
    if (component == "cpu")
        s.cpuTime = true;
    else if (component == "gpu")
        s.gpuTime = true;
    else if (component == "fairness")
        s.fairness = true;
    else if (component == "insmix")
        s.insmix = true;
    else if (component == "mem")
        s.memOnly = true;
    else if (component == "arith+sse")
        s.computeOnly = true;
    else
        fatal("addComponent: unknown component " + component);
    return s;
}

FeatureScheme
insmixScheme()
{
    FeatureScheme s;
    s.name = "insmix";
    s.insmix = true;
    return s;
}

FeatureScheme
fullScheme()
{
    FeatureScheme s;
    s.name = "insmix+cpu+fairness+gpu (full)";
    s.insmix = true;
    s.cpuTime = true;
    s.gpuTime = true;
    s.fairness = true;
    return s;
}

std::vector<FeatureScheme>
figure5Schemes()
{
    FeatureScheme a = insmixScheme();
    a.name = "Insmix (Baldini et al.)";

    FeatureScheme b = insmixScheme();
    b.cpuTime = true;
    b.name = "Insmix+CPUtime";

    FeatureScheme c = b;
    c.fairness = true;
    c.name = "Insmix+CPUtime+Fairness";

    FeatureScheme d = fullScheme();
    d.name = "Full";

    return {a, b, c, d};
}

std::vector<FeatureScheme>
sensitivityBaseSchemes()
{
    std::vector<FeatureScheme> out;

    {
        FeatureScheme s = insmixScheme();
        out.push_back(s);
    }
    {
        FeatureScheme s;
        s.name = "mem";
        s.memOnly = true;
        out.push_back(s);
    }
    {
        FeatureScheme s;
        s.name = "arith+sse";
        s.computeOnly = true;
        out.push_back(s);
    }
    {
        FeatureScheme s;
        s.name = "mem+fairness";
        s.memOnly = true;
        s.fairness = true;
        out.push_back(s);
    }
    {
        FeatureScheme s;
        s.name = "arith+sse+fairness";
        s.computeOnly = true;
        s.fairness = true;
        out.push_back(s);
    }
    {
        FeatureScheme s = insmixScheme();
        s.fairness = true;
        s.name = "insmix+fairness";
        out.push_back(s);
    }
    return out;
}

}  // namespace mapp::predictor
