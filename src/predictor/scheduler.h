/**
 * @file
 * Predictor-guided co-scheduling: the paper's motivating application.
 * Given a queue of offloaded jobs, a CoScheduler pairs them into 2-app
 * MPS bags so the predicted total GPU time is minimized — using only
 * quantities that are legitimate to know before running on the GPU
 * (single-instance features and the CPU-measured fairness), never the
 * measured bag time itself.
 */

#ifndef MAPP_PREDICTOR_SCHEDULER_H
#define MAPP_PREDICTOR_SCHEDULER_H

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "predictor/data_collection.h"
#include "predictor/predictor.h"

namespace mapp::predictor {

/** One scheduled bag with its predicted time. */
struct ScheduledBag
{
    BagSpec spec;
    double predictedSeconds = 0.0;
};

/** A complete pairing of the job queue. */
struct Schedule
{
    std::vector<ScheduledBag> bags;
    /** Unpaired trailing job for odd-sized queues (runs alone). */
    std::optional<BagMember> leftover;
    /** Sum of predicted bag times (+ leftover's single-instance time). */
    double predictedTotalSeconds = 0.0;
};

/** Pairing strategies. */
enum class PairingPolicy {
    Fifo,        ///< pair jobs in arrival order (the baseline)
    Greedy,      ///< head job + partner with the smallest predicted bag
    Exhaustive,  ///< best pairing over all perfect matchings (n <= 14)
};

/** Predictor-guided 2-app co-scheduler. */
class CoScheduler
{
  public:
    /**
     * @param model trained predictor (must outlive the scheduler)
     * @param collector measurement source for single-instance features
     *        and CPU fairness (must outlive the scheduler)
     */
    CoScheduler(const MultiAppPredictor& model, DataCollector& collector);

    /** Build a schedule for the queue under the given policy. */
    Schedule schedule(const std::vector<BagMember>& jobs,
                      PairingPolicy policy) const;

    /** Predicted GPU time of one bag (features + CPU fairness only). */
    double predictBag(const BagSpec& spec) const;

    /**
     * Measured total GPU time of executing a schedule's bags serially
     * (ground truth for evaluating a policy).
     */
    double measure(const Schedule& schedule) const;

  private:
    /**
     * Per-scheduling-round caches. Every distinct job's single-app
     * features are fetched from the collector exactly once per round
     * (instead of twice per candidate evaluation), and every scored
     * canonical pairing keeps its predicted time so the greedy loop,
     * the matching enumeration and finalize() never re-measure or
     * re-predict a pair.
     */
    struct Round
    {
        std::map<BagMember, const AppFeatures*> features;
        std::map<std::pair<BagMember, BagMember>, double> scores;
    };

    /** Prefetch each distinct member's features (in parallel). */
    Round makeRound(const std::vector<BagMember>& jobs) const;

    /**
     * Predicted time of every (canonical) candidate bag, scored in
     * one batch: fairness for uncached pairs is measured across
     * parallelFor lanes, then the model predicts all of them in a
     * single compiled-tree batch.
     */
    std::vector<double> scoreBags(const std::vector<BagSpec>& specs,
                                  Round& round) const;

    Schedule pairFifo(std::vector<BagMember> jobs, Round& round) const;
    Schedule pairGreedy(std::vector<BagMember> jobs, Round& round) const;
    Schedule pairExhaustive(std::vector<BagMember> jobs,
                            Round& round) const;
    void finalize(Schedule& schedule, Round& round) const;

    const MultiAppPredictor& model_;
    DataCollector& collector_;
};

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_SCHEDULER_H
