#include "predictor/scheduler.h"

#include "predictor/quality.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mapp::predictor {

namespace {

/** Record one pairing decision on the scheduler's trace track. */
void
tracePairing(const char* policy, const ScheduledBag& bag)
{
    obs::Tracer& tracer = obs::tracer();
    if (!tracer.enabled())
        return;
    tracer.instantEvent(
        "pair " + bag.spec.label(), "scheduler.pairing",
        tracer.wallTimeUs(), obs::kSchedulerTrackPid, 0,
        {obs::TraceArg::str("policy", policy),
         obs::TraceArg::num("predicted_seconds", bag.predictedSeconds)});
}

}  // namespace

CoScheduler::CoScheduler(const MultiAppPredictor& model,
                         DataCollector& collector)
    : model_(model), collector_(collector)
{
}

double
CoScheduler::predictBag(const BagSpec& raw_spec) const
{
    const BagSpec spec = raw_spec.canonical();
    const double fairness = collector_.measureFairness(spec);
    return model_.predict(collector_.appFeatures(spec.a),
                          collector_.appFeatures(spec.b), fairness);
}

CoScheduler::Round
CoScheduler::makeRound(const std::vector<BagMember>& jobs) const
{
    Round round;
    std::vector<BagMember> distinct;
    for (const auto& job : jobs) {
        if (round.features.emplace(job, nullptr).second)
            distinct.push_back(job);
    }
    // Warm each distinct member's collector entry concurrently; the
    // collector's cache hands back stable references, so the round
    // just keeps the pointers.
    parallel::parallelFor(distinct.size(), [&](std::size_t i) {
        collector_.appFeatures(distinct[i]);
    });
    for (auto& [member, features] : round.features)
        features = &collector_.appFeatures(member);
    return round;
}

std::vector<double>
CoScheduler::scoreBags(const std::vector<BagSpec>& specs,
                       Round& round) const
{
    // Specs must already be canonical (the cache key is the ordered
    // member pair). Collect the pairs this round has not scored yet.
    std::vector<std::pair<BagMember, BagMember>> fresh;
    for (const auto& spec : specs) {
        const auto key = std::make_pair(spec.a, spec.b);
        if (round.scores.emplace(key, 0.0).second)
            fresh.push_back(key);
    }
    if (!fresh.empty()) {
        // The CPU-side fairness measurement dominates a candidate's
        // cost; one collector batch fans the uncached pairs across
        // the pool lanes (GPU runs excluded — scoring is pre-GPU).
        std::vector<BagSpec> freshSpecs;
        freshSpecs.reserve(fresh.size());
        for (const auto& [a, b] : fresh)
            freshSpecs.push_back(BagSpec{a, b});
        const std::vector<double> fairness =
            collector_.measureFairnessBatch(freshSpecs);
        std::vector<BagQuery> queries;
        queries.reserve(fresh.size());
        for (std::size_t i = 0; i < fresh.size(); ++i)
            queries.push_back({*round.features.at(fresh[i].first),
                               *round.features.at(fresh[i].second),
                               fairness[i]});
        const auto predicted = model_.predictBatch(queries);
        for (std::size_t i = 0; i < fresh.size(); ++i)
            round.scores[fresh[i]] = predicted[i];
    }
    std::vector<double> out;
    out.reserve(specs.size());
    for (const auto& spec : specs)
        out.push_back(round.scores.at(std::make_pair(spec.a, spec.b)));
    return out;
}

void
CoScheduler::finalize(Schedule& schedule, Round& round) const
{
    std::vector<BagSpec> specs;
    specs.reserve(schedule.bags.size());
    for (const auto& bag : schedule.bags)
        specs.push_back(bag.spec.canonical());
    const auto scores = scoreBags(specs, round);

    schedule.predictedTotalSeconds = 0.0;
    for (std::size_t i = 0; i < schedule.bags.size(); ++i) {
        schedule.bags[i].predictedSeconds = scores[i];
        schedule.predictedTotalSeconds += scores[i];
    }
    if (schedule.leftover) {
        schedule.predictedTotalSeconds +=
            round.features.at(*schedule.leftover)->gpuTime;
    }
}

Schedule
CoScheduler::pairFifo(std::vector<BagMember> jobs, Round& round) const
{
    Schedule schedule;
    for (std::size_t i = 0; i + 1 < jobs.size(); i += 2)
        schedule.bags.push_back({BagSpec{jobs[i], jobs[i + 1]}, 0.0});
    if (jobs.size() % 2 == 1)
        schedule.leftover = jobs.back();
    finalize(schedule, round);
    return schedule;
}

Schedule
CoScheduler::pairGreedy(std::vector<BagMember> jobs, Round& round) const
{
    Schedule schedule;
    while (jobs.size() >= 2) {
        const BagMember head = jobs.front();
        jobs.erase(jobs.begin());
        // Score the head against every remaining partner in one
        // batch instead of one predict() per pair.
        std::vector<BagSpec> candidates;
        candidates.reserve(jobs.size());
        for (const auto& partner : jobs)
            candidates.push_back(BagSpec{head, partner}.canonical());
        const auto scores = scoreBags(candidates, round);

        std::size_t bestIdx = 0;
        double bestPred = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < scores.size(); ++i) {
            if (scores[i] < bestPred) {
                bestPred = scores[i];
                bestIdx = i;
            }
        }
        schedule.bags.push_back({candidates[bestIdx], bestPred});
        jobs.erase(jobs.begin() + static_cast<long>(bestIdx));
    }
    if (!jobs.empty())
        schedule.leftover = jobs.front();
    finalize(schedule, round);
    return schedule;
}

namespace {

/** Recursively enumerate perfect matchings, tracking the best total. */
void
bestMatching(std::vector<BagMember>& pool,
             std::vector<ScheduledBag>& current, double currentTotal,
             const std::function<double(const BagSpec&)>& cost,
             double& bestTotal, std::vector<ScheduledBag>& best)
{
    if (pool.size() < 2) {
        if (currentTotal < bestTotal) {
            bestTotal = currentTotal;
            best = current;
        }
        return;
    }
    if (currentTotal >= bestTotal)
        return;  // prune

    const BagMember head = pool.front();
    pool.erase(pool.begin());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const BagMember partner = pool[i];
        pool.erase(pool.begin() + static_cast<long>(i));

        const BagSpec spec = BagSpec{head, partner}.canonical();
        const double c = cost(spec);
        current.push_back({spec, c});
        bestMatching(pool, current, currentTotal + c, cost, bestTotal,
                     best);
        current.pop_back();

        pool.insert(pool.begin() + static_cast<long>(i), partner);
    }
    pool.insert(pool.begin(), head);
}

}  // namespace

Schedule
CoScheduler::pairExhaustive(std::vector<BagMember> jobs,
                            Round& round) const
{
    if (jobs.size() > 14)
        fatal("CoScheduler: exhaustive pairing limited to 14 jobs");

    Schedule schedule;
    if (jobs.size() % 2 == 1) {
        schedule.leftover = jobs.back();
        jobs.pop_back();
    }

    // Score every unordered pair up front in one batch; the matching
    // enumeration then reads predictions from the round cache.
    std::vector<BagSpec> pairs;
    pairs.reserve(jobs.size() * (jobs.size() + 1) / 2);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        for (std::size_t j = i + 1; j < jobs.size(); ++j)
            pairs.push_back(BagSpec{jobs[i], jobs[j]}.canonical());
    scoreBags(pairs, round);
    auto cost = [&round](const BagSpec& spec) {
        return round.scores.at(std::make_pair(spec.a, spec.b));
    };

    double bestTotal = std::numeric_limits<double>::infinity();
    std::vector<ScheduledBag> best;
    std::vector<ScheduledBag> current;
    bestMatching(jobs, current, 0.0, cost, bestTotal, best);
    schedule.bags = std::move(best);
    finalize(schedule, round);
    return schedule;
}

Schedule
CoScheduler::schedule(const std::vector<BagMember>& jobs,
                      PairingPolicy policy) const
{
    Round round = makeRound(jobs);
    const auto run = [&](const char* name, Schedule s) {
        obs::defaultRegistry().counter("scheduler.schedules").add(1);
        obs::defaultRegistry()
            .counter("scheduler.bags_paired")
            .add(s.bags.size());
        for (const auto& bag : s.bags)
            tracePairing(name, bag);
        return s;
    };
    switch (policy) {
      case PairingPolicy::Fifo:
        return run("fifo", pairFifo(jobs, round));
      case PairingPolicy::Greedy:
        return run("greedy", pairGreedy(jobs, round));
      case PairingPolicy::Exhaustive:
        return run("exhaustive", pairExhaustive(jobs, round));
    }
    panic("CoScheduler::schedule: invalid policy");
}

double
CoScheduler::measure(const Schedule& schedule) const
{
    // Fan the schedule's remaining bag measurements (the GPU runs;
    // the CPU side is warm from scoring) across the pool up front.
    std::vector<BagSpec> specs;
    specs.reserve(schedule.bags.size());
    for (const auto& bag : schedule.bags)
        specs.push_back(bag.spec);
    collector_.simulateBags(specs);

    double total = 0.0;
    std::vector<double> actual;
    std::vector<double> predicted;
    actual.reserve(schedule.bags.size());
    predicted.reserve(schedule.bags.size());
    for (const auto& bag : schedule.bags) {
        const double measured = collector_.collect(bag.spec).gpuBagTime;
        total += measured;
        actual.push_back(measured);
        predicted.push_back(bag.predictedSeconds);
    }
    if (schedule.leftover)
        total += collector_.appFeatures(*schedule.leftover).gpuTime;
    // Measuring a scored schedule is ground truth arriving for the
    // bag predictions — feed the online quality monitor.
    ModelQualityMonitor::global().observePairs(actual, predicted);
    return total;
}

}  // namespace mapp::predictor
