#include "predictor/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mapp::predictor {

namespace {

/** Record one pairing decision on the scheduler's trace track. */
void
tracePairing(const char* policy, const ScheduledBag& bag)
{
    obs::Tracer& tracer = obs::tracer();
    if (!tracer.enabled())
        return;
    tracer.instantEvent(
        "pair " + bag.spec.label(), "scheduler.pairing",
        tracer.wallTimeUs(), obs::kSchedulerTrackPid, 0,
        {obs::TraceArg::str("policy", policy),
         obs::TraceArg::num("predicted_seconds", bag.predictedSeconds)});
}

}  // namespace

CoScheduler::CoScheduler(const MultiAppPredictor& model,
                         DataCollector& collector)
    : model_(model), collector_(collector)
{
}

double
CoScheduler::predictBag(const BagSpec& raw_spec) const
{
    const BagSpec spec = raw_spec.canonical();
    const double fairness = collector_.measureFairness(spec);
    return model_.predict(collector_.appFeatures(spec.a),
                          collector_.appFeatures(spec.b), fairness);
}

void
CoScheduler::finalize(Schedule& schedule) const
{
    schedule.predictedTotalSeconds = 0.0;
    for (auto& bag : schedule.bags) {
        bag.predictedSeconds = predictBag(bag.spec);
        schedule.predictedTotalSeconds += bag.predictedSeconds;
    }
    if (schedule.leftover) {
        schedule.predictedTotalSeconds +=
            collector_.appFeatures(*schedule.leftover).gpuTime;
    }
}

Schedule
CoScheduler::pairFifo(std::vector<BagMember> jobs) const
{
    Schedule schedule;
    for (std::size_t i = 0; i + 1 < jobs.size(); i += 2)
        schedule.bags.push_back({BagSpec{jobs[i], jobs[i + 1]}, 0.0});
    if (jobs.size() % 2 == 1)
        schedule.leftover = jobs.back();
    finalize(schedule);
    return schedule;
}

Schedule
CoScheduler::pairGreedy(std::vector<BagMember> jobs) const
{
    Schedule schedule;
    while (jobs.size() >= 2) {
        const BagMember head = jobs.front();
        jobs.erase(jobs.begin());
        std::size_t bestIdx = 0;
        double bestPred = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const double pred = predictBag(BagSpec{head, jobs[i]});
            if (pred < bestPred) {
                bestPred = pred;
                bestIdx = i;
            }
        }
        schedule.bags.push_back(
            {BagSpec{head, jobs[bestIdx]}.canonical(), bestPred});
        jobs.erase(jobs.begin() + static_cast<long>(bestIdx));
    }
    if (!jobs.empty())
        schedule.leftover = jobs.front();
    finalize(schedule);
    return schedule;
}

namespace {

/** Recursively enumerate perfect matchings, tracking the best total. */
void
bestMatching(std::vector<BagMember>& pool,
             std::vector<ScheduledBag>& current, double currentTotal,
             const std::function<double(const BagSpec&)>& cost,
             double& bestTotal, std::vector<ScheduledBag>& best)
{
    if (pool.size() < 2) {
        if (currentTotal < bestTotal) {
            bestTotal = currentTotal;
            best = current;
        }
        return;
    }
    if (currentTotal >= bestTotal)
        return;  // prune

    const BagMember head = pool.front();
    pool.erase(pool.begin());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const BagMember partner = pool[i];
        pool.erase(pool.begin() + static_cast<long>(i));

        const BagSpec spec = BagSpec{head, partner}.canonical();
        const double c = cost(spec);
        current.push_back({spec, c});
        bestMatching(pool, current, currentTotal + c, cost, bestTotal,
                     best);
        current.pop_back();

        pool.insert(pool.begin() + static_cast<long>(i), partner);
    }
    pool.insert(pool.begin(), head);
}

}  // namespace

Schedule
CoScheduler::pairExhaustive(std::vector<BagMember> jobs) const
{
    if (jobs.size() > 14)
        fatal("CoScheduler: exhaustive pairing limited to 14 jobs");

    Schedule schedule;
    if (jobs.size() % 2 == 1) {
        schedule.leftover = jobs.back();
        jobs.pop_back();
    }

    // Memoize bag predictions: the matching enumeration revisits pairs.
    std::map<std::pair<BagMember, BagMember>, double> cache;
    auto cost = [&](const BagSpec& spec) {
        const auto key = std::make_pair(spec.a, spec.b);
        auto it = cache.find(key);
        if (it == cache.end())
            it = cache.emplace(key, predictBag(spec)).first;
        return it->second;
    };

    double bestTotal = std::numeric_limits<double>::infinity();
    std::vector<ScheduledBag> best;
    std::vector<ScheduledBag> current;
    bestMatching(jobs, current, 0.0, cost, bestTotal, best);
    schedule.bags = std::move(best);
    finalize(schedule);
    return schedule;
}

Schedule
CoScheduler::schedule(const std::vector<BagMember>& jobs,
                      PairingPolicy policy) const
{
    const auto run = [&](const char* name, Schedule s) {
        obs::defaultRegistry().counter("scheduler.schedules").add(1);
        obs::defaultRegistry()
            .counter("scheduler.bags_paired")
            .add(s.bags.size());
        for (const auto& bag : s.bags)
            tracePairing(name, bag);
        return s;
    };
    switch (policy) {
      case PairingPolicy::Fifo:
        return run("fifo", pairFifo(jobs));
      case PairingPolicy::Greedy:
        return run("greedy", pairGreedy(jobs));
      case PairingPolicy::Exhaustive:
        return run("exhaustive", pairExhaustive(jobs));
    }
    panic("CoScheduler::schedule: invalid policy");
}

double
CoScheduler::measure(const Schedule& schedule) const
{
    double total = 0.0;
    for (const auto& bag : schedule.bags)
        total += collector_.collect(bag.spec).gpuBagTime;
    if (schedule.leftover)
        total += collector_.appFeatures(*schedule.leftover).gpuTime;
    return total;
}

}  // namespace mapp::predictor
