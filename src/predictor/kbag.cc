#include "predictor/kbag.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "common/rng.h"
#include "vision/registry.h"

namespace mapp::predictor {

KBagSpec
KBagSpec::canonical() const
{
    KBagSpec out = *this;
    std::sort(out.members.begin(), out.members.end());
    return out;
}

std::string
KBagSpec::label() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (i)
            os << '+';
        os << vision::benchmarkName(members[i].id) << '@'
           << members[i].batchSize;
    }
    return os.str();
}

std::string
KBagSpec::groupLabel() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < members.size(); ++i) {
        if (i)
            os << '+';
        os << vision::benchmarkName(members[i].id);
    }
    return os.str();
}

std::vector<std::string>
kBagFeatureNames(int k)
{
    std::vector<std::string> names;
    for (int slot = 0; slot < k; ++slot)
        for (const auto& base : baseFeatureNames())
            names.push_back("a" + std::to_string(slot) + "_" + base);
    names.push_back("fairness");
    return names;
}

std::vector<double>
buildKBagVector(const KBagPoint& point)
{
    std::vector<double> out;
    out.reserve(point.apps.size() * baseFeatureNames().size() + 1);
    for (const auto& app : point.apps) {
        out.push_back(app.cpuTime);
        out.push_back(app.gpuTime);
        for (isa::InstClass c : isa::kAllInstClasses)
            out.push_back(app.mixPercent[static_cast<std::size_t>(c)]);
    }
    out.push_back(point.fairness);
    return out;
}

KBagPoint
KBagCollector::collect(const KBagSpec& raw_spec)
{
    const KBagSpec spec = raw_spec.canonical();
    if (spec.members.size() < 2)
        fatal("KBagCollector: bags need at least 2 members");

    KBagPoint point;
    point.spec = spec;

    std::vector<const isa::WorkloadTrace*> traces;
    std::vector<int> threads;
    std::vector<double> ipcAlone;
    for (const auto& member : spec.members) {
        point.apps.push_back(collector_.appFeatures(member));
        traces.push_back(
            &vision::cachedTrace(member.id, member.batchSize));
        threads.push_back(collector_.bestThreads(member));
        ipcAlone.push_back(collector_.ipcAlone(member));
    }

    const auto cpuBag = collector_.cpuSim().runShared(traces, threads);
    std::vector<double> ipcShared;
    for (const auto& app : cpuBag.apps)
        ipcShared.push_back(app.ipc);
    point.fairness = fairness(ipcShared, ipcAlone);

    point.gpuBagTime = collector_.gpuSim().runShared(traces).makespan;
    return point;
}

std::vector<KBagSpec>
KBagCollector::campaign(int k, int hetero_count,
                        std::uint64_t seed) const
{
    if (k < 2)
        fatal("KBagCollector::campaign: k must be >= 2");

    std::vector<KBagSpec> specs;
    // Homogeneous k-bags over all benchmarks at the standard batch.
    for (vision::BenchmarkId id : vision::kAllBenchmarks) {
        KBagSpec spec;
        spec.members.assign(static_cast<std::size_t>(k),
                            BagMember{id, 20});
        specs.push_back(spec);
    }
    // Seeded heterogeneous bags.
    Rng rng(seed * 1315423911ull + static_cast<std::uint64_t>(k));
    for (int i = 0; i < hetero_count; ++i) {
        KBagSpec spec;
        for (int slot = 0; slot < k; ++slot) {
            spec.members.push_back(
                {vision::kAllBenchmarks[static_cast<std::size_t>(
                     rng.uniformInt(0, 8))],
                 static_cast<int>(
                     vision::kBatchSizes[static_cast<std::size_t>(
                         rng.uniformInt(0, 2))])});
        }
        specs.push_back(spec.canonical());
    }
    return specs;
}

KBagPredictor::KBagPredictor(int k, ml::DecisionTreeParams tree)
    : k_(k), treeParams_(tree),
      timeMask_(RangeNormalizer::timeFeatureMask(kBagFeatureNames(k)))
{
    if (k < 2)
        fatal("KBagPredictor: k must be >= 2");
}

void
KBagPredictor::train(const std::vector<KBagPoint>& points)
{
    if (points.empty())
        fatal("KBagPredictor::train: empty training data");

    ml::Dataset raw(kBagFeatureNames(k_));
    for (const auto& point : points) {
        if (static_cast<int>(point.apps.size()) != k_)
            fatal("KBagPredictor::train: bag size mismatch");
        raw.addRow(buildKBagVector(point), point.gpuBagTime,
                   point.spec.groupLabel());
    }

    normalizer_ = RangeNormalizer();
    normalizer_.fit(raw);
    const auto prepared = normalizer_.apply(raw);
    tree_ = ml::DecisionTreeRegressor(treeParams_);
    tree_.fit(prepared);
    compiled_ = ml::CompiledTree(tree_);
}

double
KBagPredictor::predict(const KBagPoint& point) const
{
    if (!tree_.trained())
        fatal("KBagPredictor::predict: model not trained");
    if (static_cast<int>(point.apps.size()) != k_)
        fatal("KBagPredictor::predict: bag size mismatch");

    auto row = buildKBagVector(point);
    normalizer_.applyBatchInPlace(row, timeMask_);
    return normalizer_.denormalizeTarget(compiled_.predict(row));
}

std::vector<double>
KBagPredictor::predictBatch(const std::vector<KBagPoint>& points) const
{
    if (!tree_.trained())
        fatal("KBagPredictor::predictBatch: model not trained");
    const std::size_t nF = timeMask_.size();
    std::vector<double> flat;
    flat.reserve(points.size() * nF);
    for (const auto& point : points) {
        if (static_cast<int>(point.apps.size()) != k_)
            fatal("KBagPredictor::predictBatch: bag size mismatch");
        const auto row = buildKBagVector(point);
        flat.insert(flat.end(), row.begin(), row.end());
    }
    normalizer_.applyBatchInPlace(flat, timeMask_);
    std::vector<double> out(points.size());
    compiled_.predictBatch(flat, nF, out);
    normalizer_.denormalizeInPlace(out);
    return out;
}

}  // namespace mapp::predictor
