/**
 * @file
 * The data-collection pipeline of Section V-B/V-C: enumerate the bag
 * campaign (91 runs: homogeneous and heterogeneous bags over the five
 * batch sizes), measure every app's single-instance features (CPU time
 * at its best thread count, GPU time, instruction mix), measure each
 * bag's fairness on the multicore and its execution time on the GPU
 * under MPS (the target), and assemble everything into an ml::Dataset.
 */

#ifndef MAPP_PREDICTOR_DATA_COLLECTION_H
#define MAPP_PREDICTOR_DATA_COLLECTION_H

#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cpusim/multicore_sim.h"
#include "gpusim/mps_sim.h"
#include "ml/dataset.h"
#include "predictor/fairness.h"
#include "predictor/features.h"
#include "vision/registry.h"

namespace mapp::predictor {

/** One member of a bag: a benchmark at a batch size. */
struct BagMember
{
    vision::BenchmarkId id = vision::BenchmarkId::Fast;
    int batchSize = 20;

    bool operator<(const BagMember& rhs) const;
    bool operator==(const BagMember& rhs) const = default;
};

/** A two-app bag (the paper's concurrency level). */
struct BagSpec
{
    BagMember a;
    BagMember b;

    /** Same benchmark and batch in both slots? */
    bool homogeneous() const { return a == b; }

    /** Canonical ordering: sort the two members. */
    BagSpec canonical() const;

    /** "FAST@20+SIFT@80" style label. */
    std::string label() const;

    /** "FAST+SIFT" — the benchmarks only (the LOOCV group tokens). */
    std::string groupLabel() const;

    /** Lexicographic member order (keys the shared-run caches). */
    bool operator<(const BagSpec& rhs) const;

    bool operator==(const BagSpec& rhs) const = default;
};

/** A complete measured data point (input features + target). */
struct DataPoint
{
    BagSpec spec;
    AppFeatures a;       ///< features of spec.a (single instance)
    AppFeatures b;       ///< features of spec.b
    double fairness = 0.0;
    Seconds cpuSharedMakespan = 0.0;  ///< diagnostic, not a feature
    Seconds gpuBagTime = 0.0;         ///< the prediction target
};

/** Which co-run measurements a simulateBags() batch should warm. */
struct BagSimRequest
{
    bool cpu = true;  ///< shared-CPU co-runs (fairness inputs)
    bool gpu = true;  ///< GPU bag runs under MPS (the target)
};

/** Extra knobs of the collection pipeline. */
struct CollectorParams
{
    FairnessVariant fairnessVariant = FairnessVariant::MinOverPairs;

    /**
     * Force every app to this thread count instead of its best-alone
     * configuration (0 = auto, the paper's setup). Lets the
     * thread-count ablation probe the paper's second open problem.
     */
    int forcedThreads = 0;
};

/**
 * Runs the measurement pipeline over bags, caching per-app results.
 *
 * Thread-safety: the per-app caches (features, best thread count,
 * alone IPC) and the shared-CPU co-run cache are mutex-guarded, so
 * collect()/appFeatures()/bestThreads()/ipcAlone()/measureFairness()
 * may be called concurrently from pool workers. Cached values are
 * deterministic functions of the member (or canonical bag), so a rare
 * duplicate computation under a race is wasted work, never a wrong
 * answer — the first inserted value wins and references stay stable
 * (std::map nodes never move). collectAll() exploits this: it
 * pre-warms the per-app caches in parallel (one worker per distinct
 * member, no duplicated simulation in the common case), then measures
 * bags in parallel, writing each DataPoint into its spec's slot so the
 * output order is identical to the serial loop.
 *
 * Persistence: every measurement layer is additionally backed by the
 * process-wide artifact cache (cache::defaultArtifactCache()) —
 * per-member records ("member"), shared-CPU co-runs ("cpurun"), GPU bag
 * runs ("gpurun") and whole campaigns ("campaign") — keyed on the
 * workload identity plus every simulator config knob, so a warm second
 * process reloads binary records instead of simulating (and a config
 * change forces a clean recompute). Corrupt entries fall back to
 * simulation transparently.
 */
class DataCollector
{
  public:
    DataCollector(cpusim::CpuConfig cpu_config = {},
                  gpusim::GpuConfig gpu_config = {},
                  CollectorParams params = {});

    const cpusim::MulticoreSim& cpuSim() const { return cpu_; }
    const gpusim::MpsSim& gpuSim() const { return gpu_; }

    /**
     * Single-instance features of one app (cached): CPU time at the
     * best thread count, GPU time alone, MICA mix percentages.
     */
    const AppFeatures& appFeatures(const BagMember& member);

    /** The best-alone thread count chosen for the app (cached). */
    int bestThreads(const BagMember& member);

    /** Alone-run CPU IPC at the best thread count (cached). */
    double ipcAlone(const BagMember& member);

    /** Measure one bag end to end. */
    DataPoint collect(const BagSpec& spec);

    /**
     * Measure only the bag's CPU-side fairness (Equation 2) — the cheap
     * pre-GPU measurement a scheduler may use without running the bag
     * on the GPU.
     */
    double measureFairness(const BagSpec& spec);

    /**
     * Simulate every not-yet-cached bag co-run in @p specs in one
     * batch, fanning the uncached (bag, simulator) units across the
     * global thread pool. Duplicate and already-warm bags cost a cache
     * lookup only; after return, measureFairness()/collect() on any of
     * the specs is a pure cache hit. @p want narrows the batch to one
     * simulator (a scheduler scoring candidates only needs the CPU
     * side).
     */
    void simulateBags(std::span<const BagSpec> specs,
                      BagSimRequest want = {});

    /**
     * Fairness for every bag in @p specs, in order: one simulateBags()
     * batch over the uncached CPU co-runs, then cache-hit assembly.
     */
    std::vector<double> measureFairnessBatch(
        std::span<const BagSpec> specs);

    /**
     * Measure a whole campaign. Fans the member and bag simulations
     * across the global thread pool via simulateBags() when the
     * parallel layer is enabled; the returned points are in @p specs
     * order and bit-identical to a serial run.
     */
    std::vector<DataPoint> collectAll(const std::vector<BagSpec>& specs);

    /**
     * The paper's 91-run campaign: 45 homogeneous bags (9 benchmarks x
     * 5 batch sizes), 36 heterogeneous pairs at the standard batch, and
     * 10 heterogeneous pairs with mixed batch sizes.
     */
    static std::vector<BagSpec> campaign91();

    /**
     * Per-instance-count CPU times for a homogeneous bag of 1..max
     * instances (Figure 1's series; performance = 1 / time).
     */
    std::vector<Seconds> cpuHomogeneousScaling(const BagMember& member,
                                               int max_instances);

    /** Same on the GPU (Figure 2's series). */
    std::vector<Seconds> gpuHomogeneousScaling(const BagMember& member,
                                               int max_instances);

  private:
    /** Memoized result of one canonical bag's shared-CPU co-run. */
    struct SharedCpuRun
    {
        std::vector<double> ipcShared;  ///< per-app shared IPCs
        Seconds makespan = 0.0;
    };

    /**
     * Ensure every per-member cache (features, best threads, alone
     * IPC) holds @p member, loading the combined record from the
     * artifact cache or simulating (and storing) on a miss.
     */
    void ensureMember(const BagMember& member);

    /**
     * The bag's shared-CPU co-run, memoized per canonical spec (both
     * collect() and measureFairness() need it; satellite dedupe) and
     * disk-backed. @p spec must already be canonical.
     */
    const SharedCpuRun& sharedCpuRun(const BagSpec& spec);

    /**
     * The bag's GPU makespan under MPS, memoized per canonical spec
     * and disk-backed. @p spec must already be canonical.
     */
    Seconds gpuBagMakespan(const BagSpec& spec);

    cpusim::MulticoreSim cpu_;
    gpusim::MpsSim gpu_;
    CollectorParams params_;

    /**
     * Guards the caches below. Simulations run *outside* the lock
     * (they are const and touch no collector state); only the
     * lookup/insert critical sections hold it.
     */
    mutable std::mutex cacheMutex_;
    std::map<BagMember, AppFeatures> featureCache_;
    std::map<BagMember, int> threadCache_;
    std::map<BagMember, double> ipcCache_;
    std::map<BagSpec, SharedCpuRun> sharedCpuCache_;
    std::map<BagSpec, Seconds> gpuCache_;
};

/**
 * Assemble data points into a raw (unnormalized) dataset with the full
 * bag feature layout; group labels are the bags' benchmark tokens.
 */
ml::Dataset toDataset(const std::vector<DataPoint>& points);

/**
 * Group-aware LOOCV split helper: rows whose group contains @p benchmark
 * as a '+'-separated token go to the test set (the paper holds out all
 * data points that involve the benchmark).
 */
std::pair<ml::Dataset, ml::Dataset> splitOutBenchmark(
    const ml::Dataset& data, const std::string& benchmark);

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_DATA_COLLECTION_H
