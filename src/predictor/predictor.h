/**
 * @file
 * The public API of the paper's contribution: MultiAppPredictor trains a
 * decision-tree regressor on measured bag data points (under any feature
 * scheme, with the Section V-C range normalization) and predicts the GPU
 * execution time of unseen bags. Explainability hooks expose the tree,
 * feature importances and per-prediction decision paths.
 */

#ifndef MAPP_PREDICTOR_PREDICTOR_H
#define MAPP_PREDICTOR_PREDICTOR_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ml/compiled_tree.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "predictor/data_collection.h"
#include "predictor/features.h"
#include "predictor/schemes.h"

namespace mapp::predictor {

/** Predictor hyper-parameters. */
struct PredictorParams
{
    ml::DecisionTreeParams tree;
    FeatureScheme scheme;  ///< defaults to the full Table-IV vector

    PredictorParams() { scheme = fullScheme(); }
};

/** One what-if query for batched prediction: a candidate bag's two
 *  apps (canonical order) and its CPU-measured fairness. */
struct BagQuery
{
    AppFeatures a;
    AppFeatures b;
    double fairness = 0.0;
};

/** A prediction plus its explanation. */
struct Explanation
{
    double predictedSeconds = 0.0;
    /** Spread estimate: the landed leaf's training residual RMSE,
     *  denormalized to seconds. */
    double uncertaintySeconds = 0.0;
    std::vector<ml::DecisionStep> path;     ///< nodes on the decision path
    std::vector<std::string> featureNames;  ///< names for path features
    std::string pathSummary;  ///< rendered path, "f<=v -> g>w -> ..."
};

/** The multi-application GPU performance predictor. */
class MultiAppPredictor
{
  public:
    explicit MultiAppPredictor(PredictorParams params = PredictorParams());

    /** Train on measured data points. @throws FatalError if empty. */
    void train(const std::vector<DataPoint>& points);

    /** Train on a pre-built raw (unnormalized) dataset. */
    void train(const ml::Dataset& raw);

    /** Predict the GPU bag time (seconds) for a measured bag's inputs. */
    double predict(const DataPoint& point) const;

    /** Predict from per-app features + fairness directly. */
    double predict(const AppFeatures& a, const AppFeatures& b,
                   double fairness) const;

    /**
     * Predict a whole batch of what-if queries in one pass: one
     * projection + normalization over a contiguous row-major buffer,
     * then the compiled tree's batched traversal. Element i equals
     * predict(queries[i].a, queries[i].b, queries[i].fairness) bit
     * for bit.
     */
    std::vector<double> predictBatch(
        const std::vector<BagQuery>& queries) const;

    /**
     * Predict every row of a raw (unnormalized, full-layout) dataset:
     * project to the scheme, normalize the whole batch in place, run
     * the compiled tree, denormalize in place. Used by the
     * cross-validation fold evaluation and the figure benches.
     */
    std::vector<double> predictDataset(const ml::Dataset& raw_test) const;

    /** Predict with the decision path attached. */
    Explanation explain(const DataPoint& point) const;

    /**
     * Report ground truth for the most recent predictDataset() batch:
     * feeds the global ModelQualityMonitor (error histograms, feature
     * drift against the training normalization ranges) and, when the
     * prediction log is enabled, annotates the batch's audited
     * records with their actual times. @p predictedSeconds must be
     * the vector predictDataset(@p raw_test) returned.
     */
    void observeGroundTruth(
        const ml::Dataset& raw_test,
        std::span<const double> predictedSeconds) const;

    /** Per-feature min of the normalized training matrix (drift
     *  reference; scheme feature order). */
    const std::vector<double>& trainFeatureMin() const
    {
        return trainMin_;
    }

    /** Per-feature max of the normalized training matrix. */
    const std::vector<double>& trainFeatureMax() const
    {
        return trainMax_;
    }

    /** The compiled inference engine (rebuilt on every train()). */
    const ml::CompiledTree& compiledTree() const;

    /** The trained tree (for inspection). @throws if untrained. */
    const ml::DecisionTreeRegressor& tree() const;

    /** Importances keyed by the scheme's feature names. */
    std::vector<std::pair<std::string, double>> featureImportances() const;

    bool trained() const { return tree_.has_value() && tree_->trained(); }

    const PredictorParams& params() const { return params_; }

    /**
     * The paper's LOOCV (Figure 4): per left-out benchmark, train on
     * every bag not involving it and evaluate on the bags that do.
     * Normalization is re-fit on each fold's training split.
     */
    static ml::CrossValidationResult looBenchmarkCv(
        const ml::Dataset& raw, const PredictorParams& params,
        const std::vector<std::string>& benchmarks);

    /** An 80/20 shuffled split evaluation (Section V-D.2). */
    static double holdoutRelativeError(const ml::Dataset& raw,
                                       const PredictorParams& params,
                                       double test_fraction, Rng& rng);

  private:
    ml::Dataset projectAndNormalizeTrain(const ml::Dataset& raw);

    /** Build one projected + normalized query row (no Dataset, no
     *  string lookups — the single-query hot path). */
    std::vector<double> queryRow(const AppFeatures& a,
                                 const AppFeatures& b,
                                 double fairness) const;

    /**
     * Precompute per-leaf audit lookaside tables from the freshly
     * trained tree: the rendered root-to-leaf path summary and the
     * leaf's training residual RMSE (sqrt(sse/samples), denormalized
     * to seconds), plus the normalized training matrix's per-feature
     * min/max as the drift reference. Paying the string construction
     * once per train() keeps the per-record audit cost to a copy.
     */
    void buildAuditTables(const ml::Dataset& prepared);

    /**
     * Provenance hook shared by every predict path: no-op (one
     * relaxed load) unless the global PredictionLog is enabled, then
     * reserves sequence ids for the whole batch and records only the
     * sampled rows — a leaf walk plus table copies each. @return the
     * first reserved sequence id (0 when the log is disabled).
     */
    std::uint64_t auditRows(const char* model,
                            std::span<const double> flat,
                            std::size_t nFeatures,
                            std::span<const double> outSeconds) const;

    PredictorParams params_;
    std::optional<ml::DecisionTreeRegressor> tree_;
    ml::CompiledTree compiled_;  ///< SoA engine over *tree_
    RangeNormalizer normalizer_;
    ml::Dataset trainLayout_;  ///< empty dataset carrying feature names
    /** Scheme feature names, resolved once in the constructor. */
    std::vector<std::string> schemeNames_;
    /** Scheme feature -> index into the full bag vector. */
    std::vector<std::size_t> projection_;
    /** Per-scheme-feature time flags for batch normalization. */
    std::vector<char> timeMask_;
    /** Per-leaf rendered decision-path summaries (node-id indexed). */
    std::vector<std::string> leafSummary_;
    /** Per-leaf training residual RMSE in seconds (node-id indexed). */
    std::vector<double> leafRmseSeconds_;
    /** Normalized-training-matrix feature ranges (drift reference). */
    std::vector<double> trainMin_;
    std::vector<double> trainMax_;
    /** Sequence range of the last predictDataset() audit batch, so
     *  observeGroundTruth() can annotate it. One model instance is
     *  evaluated from one thread (folds each own a model). */
    mutable std::uint64_t lastAuditFirstSeq_ = 0;
    mutable std::size_t lastAuditRows_ = 0;
};

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_PREDICTOR_H
