/**
 * @file
 * The Table-IV feature schema and the feature-vector layout for bags.
 *
 * Per application the features are: CPU time, GPU time (both single
 * instance) and the nine instruction-mix percentages (Figure 12 splits
 * Table IV's "MEM" into mem_rd and mem_wr, which we keep). For a bag of
 * two, the per-app block is replicated — apps in canonical order — and
 * one bag-level fairness value is appended (Section V-A.1). Time
 * features are normalized by the (max - min) range of the CPU-time
 * feature over the *training* data, exactly as Section V-C specifies.
 */

#ifndef MAPP_PREDICTOR_FEATURES_H
#define MAPP_PREDICTOR_FEATURES_H

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "isa/inst_class.h"
#include "ml/dataset.h"

namespace mapp::predictor {

/** Per-application measured features (one app, single instance). */
struct AppFeatures
{
    std::string app;        ///< benchmark name
    int batchSize = 0;
    Seconds cpuTime = 0.0;  ///< alone on the multicore, best threads
    Seconds gpuTime = 0.0;  ///< alone on the GPU
    /** Instruction-mix percentages indexed by isa::InstClass. */
    std::array<double, isa::kNumInstClasses> mixPercent{};
};

/** Base (per-app) feature names, in canonical order. */
std::vector<std::string> baseFeatureNames();

/** Number of apps in a bag feature vector (the paper fixes two). */
inline constexpr int kBagSize = 2;

/** Full bag feature names: a0_*, a1_*, fairness. */
std::vector<std::string> bagFeatureNames();

/**
 * Strip the slot prefix: "a1_gpu_time" -> "gpu_time"; "fairness" maps to
 * itself. Used when aggregating decision-path statistics over slots.
 */
std::string baseNameOf(const std::string& bag_feature);

/**
 * Build the flat bag feature vector: the two apps' blocks (apps must
 * already be in canonical order) followed by fairness. Layout matches
 * bagFeatureNames().
 */
std::vector<double> buildBagVector(const AppFeatures& a,
                                   const AppFeatures& b, double fairness);

/**
 * The Section V-C normalizer: divides every time-typed feature (and the
 * regression target, also a time) by the max-min range of the CPU-time
 * feature columns observed in the training data.
 */
class RangeNormalizer
{
  public:
    /** Identity until fit() runs. */
    RangeNormalizer() = default;

    /** Learn the CPU-time range from a training dataset. */
    void fit(const ml::Dataset& train);

    /** The learned scale (max - min of CPU time; 1 if degenerate). */
    double scale() const { return scale_; }

    /** A copy of @p data with time features and targets scaled. */
    ml::Dataset apply(const ml::Dataset& data) const;

    /** Scale one raw feature vector laid out like the dataset. */
    std::vector<double> applyRow(const ml::Dataset& reference,
                                 std::vector<double> row) const;

    /**
     * Which features of a layout are time-typed (1 = scaled by the
     * normalizer). Computed once per layout so batch normalization
     * never re-parses feature names per row.
     */
    static std::vector<char> timeFeatureMask(
        const std::vector<std::string>& names);

    /**
     * Normalize a whole row-major batch in place: every row is laid
     * out like @p time_mask (one flag per feature) and its time-typed
     * entries are divided by the learned scale. No per-row
     * temporaries. @throws FatalError if the buffer is not a whole
     * number of rows.
     */
    void applyBatchInPlace(std::span<double> rowMajor,
                           const std::vector<char>& time_mask) const;

    /** Convert normalized predictions back to seconds, in place. */
    void denormalizeInPlace(std::span<double> values) const;

    /** Convert a normalized prediction back to seconds. */
    double denormalizeTarget(double value) const { return value * scale_; }

    /** Scale a target (seconds) into normalized units. */
    double normalizeTarget(double value) const { return value / scale_; }

  private:
    static bool isTimeFeature(const std::string& name);

    double scale_ = 1.0;
};

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_FEATURES_H
