/**
 * @file
 * K-app bags: the paper's Section-VII open problem ("the number of
 * applications is more than 3 or 4 is still open"), implemented as an
 * extension. The feature vector generalizes naturally: k replicated
 * per-app blocks (apps in canonical order) plus the bag-level fairness,
 * which Equation 2 already defines for any bag size. A KBagPredictor is
 * a decision tree over that k-block layout, trained on a k-bag campaign
 * measured with the same simulators.
 */

#ifndef MAPP_PREDICTOR_KBAG_H
#define MAPP_PREDICTOR_KBAG_H

#include <optional>
#include <string>
#include <vector>

#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "predictor/data_collection.h"

namespace mapp::predictor {

/** A bag of k >= 2 members (canonically sorted). */
struct KBagSpec
{
    std::vector<BagMember> members;

    /** Sorted copy (canonical feature order). */
    KBagSpec canonical() const;

    /** "FAST@20+HoG@20+SIFT@40" style label. */
    std::string label() const;

    /** "FAST+HoG+SIFT" group label. */
    std::string groupLabel() const;
};

/** A measured k-bag data point. */
struct KBagPoint
{
    KBagSpec spec;
    std::vector<AppFeatures> apps;  ///< canonical order
    double fairness = 0.0;
    Seconds gpuBagTime = 0.0;
};

/** Feature names for bags of size k: a0_*..a{k-1}_* + fairness. */
std::vector<std::string> kBagFeatureNames(int k);

/** Flat feature vector for a measured k-bag point. */
std::vector<double> buildKBagVector(const KBagPoint& point);

/** Measures k-bags on the simulated testbed via a DataCollector. */
class KBagCollector
{
  public:
    explicit KBagCollector(DataCollector& collector)
        : collector_(collector)
    {
    }

    /** Measure one k-bag (CPU fairness + GPU makespan). */
    KBagPoint collect(const KBagSpec& spec);

    /**
     * A deterministic k-bag campaign: all homogeneous k-bags over the
     * benchmarks at the standard batch, plus @p hetero_count seeded
     * random heterogeneous k-bags.
     */
    std::vector<KBagSpec> campaign(int k, int hetero_count,
                                   std::uint64_t seed = 0xBA65ull) const;

  private:
    DataCollector& collector_;
};

/** Decision-tree predictor over the k-block feature layout. */
class KBagPredictor
{
  public:
    explicit KBagPredictor(int k, ml::DecisionTreeParams tree = {});

    /** Bag size this model handles. */
    int k() const { return k_; }

    /** Train on measured k-bag points. @throws FatalError if empty or
     * any point's bag size differs from k. */
    void train(const std::vector<KBagPoint>& points);

    /** Predict the GPU makespan of a measured k-bag's inputs. */
    double predict(const KBagPoint& point) const;

    /**
     * Predict a batch of k-bags in one pass through the compiled
     * tree; element i equals predict(points[i]) bit for bit.
     */
    std::vector<double> predictBatch(
        const std::vector<KBagPoint>& points) const;

    bool trained() const { return tree_.trained(); }

  private:
    int k_;
    ml::DecisionTreeParams treeParams_;
    ml::DecisionTreeRegressor tree_;
    ml::CompiledTree compiled_;  ///< SoA engine over tree_
    RangeNormalizer normalizer_;
    std::vector<char> timeMask_;  ///< per-feature flags, fixed by k
};

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_KBAG_H
