#include "predictor/decision_analysis.h"

#include <algorithm>
#include <span>

#include "common/log.h"

namespace mapp::predictor {

DecisionPathStats
analyzeDecisionPaths(const ml::Dataset& raw, const PredictorParams& params,
                     const std::vector<std::string>& benchmarks)
{
    DecisionPathStats stats;

    // Base feature axis: cpu_time, gpu_time, the mix classes, fairness.
    stats.features = baseFeatureNames();
    stats.features.push_back("fairness");

    for (const auto& bench : benchmarks) {
        auto [train, test] = splitOutBenchmark(raw, bench);
        if (train.empty() || test.empty())
            continue;

        MultiAppPredictor model(params);
        model.train(train);

        const ml::Dataset projected =
            test.selectFeatures(params.scheme.featureNames());
        const auto& names = projected.featureNames();

        // Recreate the fold's normalization (same rule and data as the
        // model applied internally during train()), applied to the
        // whole fold in place instead of per-row temporaries.
        RangeNormalizer norm;
        norm.fit(train.selectFeatures(params.scheme.featureNames()));
        auto flat = projected.toRowMajor();
        norm.applyBatchInPlace(
            flat, RangeNormalizer::timeFeatureMask(names));
        const auto& tree = model.tree();

        const std::size_t nF = projected.numFeatures();
        for (std::size_t i = 0; i < projected.size(); ++i) {
            const std::span<const double> row(flat.data() + i * nF, nF);

            PathUsage usage;
            usage.pointLabel =
                test.group(i) + "#" + std::to_string(i);
            for (const auto& step : tree.decisionPath(row)) {
                const auto& name =
                    names[static_cast<std::size_t>(step.feature)];
                usage.counts[baseNameOf(name)] += 1;
            }
            stats.points.push_back(std::move(usage));
        }
    }

    // Aggregate presence and usage.
    const auto total = static_cast<double>(stats.points.size());
    for (const auto& feature : stats.features) {
        int present = 0;
        double sum = 0.0;
        int peak = 0;
        for (const auto& point : stats.points) {
            const auto it = point.counts.find(feature);
            const int count = it == point.counts.end() ? 0 : it->second;
            if (count > 0)
                ++present;
            sum += count;
            peak = std::max(peak, count);
        }
        stats.presencePercent[feature] =
            total > 0.0 ? 100.0 * static_cast<double>(present) / total
                        : 0.0;
        stats.meanUsage[feature] = total > 0.0 ? sum / total : 0.0;
        stats.maxUsage[feature] = peak;
    }
    return stats;
}

}  // namespace mapp::predictor
