#include "predictor/predictor.h"

#include <algorithm>

#include "common/log.h"
#include "common/parallel.h"
#include "ml/metrics.h"
#include "obs/timer.h"

namespace mapp::predictor {

MultiAppPredictor::MultiAppPredictor(PredictorParams params)
    : params_(std::move(params))
{
    // Resolve the scheme's projection once: feature name -> index in
    // the full bag vector, plus the time-feature flags batch
    // normalization needs. Every predict() after this is free of
    // string handling and Dataset temporaries.
    schemeNames_ = params_.scheme.featureNames();
    const auto bagNames = bagFeatureNames();
    projection_.reserve(schemeNames_.size());
    for (const auto& name : schemeNames_) {
        const auto it =
            std::find(bagNames.begin(), bagNames.end(), name);
        if (it == bagNames.end())
            fatal("MultiAppPredictor: scheme feature '" + name +
                  "' is not a bag feature");
        projection_.push_back(
            static_cast<std::size_t>(it - bagNames.begin()));
    }
    timeMask_ = RangeNormalizer::timeFeatureMask(schemeNames_);
}

ml::Dataset
MultiAppPredictor::projectAndNormalizeTrain(const ml::Dataset& raw)
{
    const ml::Dataset projected =
        raw.selectFeatures(params_.scheme.featureNames());
    normalizer_ = RangeNormalizer();
    normalizer_.fit(projected);
    return normalizer_.apply(projected);
}

void
MultiAppPredictor::train(const std::vector<DataPoint>& points)
{
    train(toDataset(points));
}

void
MultiAppPredictor::train(const ml::Dataset& raw)
{
    if (raw.empty())
        fatal("MultiAppPredictor::train: empty dataset");
    const obs::ScopedPhase phase("tree-training");
    const ml::Dataset prepared = projectAndNormalizeTrain(raw);
    trainLayout_ = ml::Dataset(prepared.featureNames());
    tree_.emplace(params_.tree);
    tree_->fit(prepared);
    compiled_ = ml::CompiledTree(*tree_);
}

std::vector<double>
MultiAppPredictor::queryRow(const AppFeatures& a, const AppFeatures& b,
                            double fairness) const
{
    const auto full = buildBagVector(a, b, fairness);
    std::vector<double> row(projection_.size());
    for (std::size_t k = 0; k < projection_.size(); ++k) {
        row[k] = full[projection_[k]];
        if (timeMask_[k])
            row[k] /= normalizer_.scale();
    }
    return row;
}

double
MultiAppPredictor::predict(const AppFeatures& a, const AppFeatures& b,
                           double fairness) const
{
    if (!trained())
        fatal("MultiAppPredictor::predict: model not trained");
    return normalizer_.denormalizeTarget(
        compiled_.predict(queryRow(a, b, fairness)));
}

std::vector<double>
MultiAppPredictor::predictBatch(const std::vector<BagQuery>& queries) const
{
    if (!trained())
        fatal("MultiAppPredictor::predictBatch: model not trained");
    const std::size_t nF = projection_.size();
    std::vector<double> flat(queries.size() * nF);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto full = buildBagVector(queries[q].a, queries[q].b,
                                         queries[q].fairness);
        for (std::size_t k = 0; k < nF; ++k)
            flat[q * nF + k] = full[projection_[k]];
    }
    normalizer_.applyBatchInPlace(flat, timeMask_);
    std::vector<double> out(queries.size());
    compiled_.predictBatch(flat, nF, out);
    normalizer_.denormalizeInPlace(out);
    return out;
}

std::vector<double>
MultiAppPredictor::predictDataset(const ml::Dataset& raw_test) const
{
    if (!trained())
        fatal("MultiAppPredictor::predictDataset: model not trained");
    const ml::Dataset projected = raw_test.selectFeatures(schemeNames_);
    auto flat = projected.toRowMajor();
    normalizer_.applyBatchInPlace(flat, timeMask_);
    std::vector<double> out(projected.size());
    compiled_.predictBatch(flat, projected.numFeatures(), out);
    normalizer_.denormalizeInPlace(out);
    return out;
}

double
MultiAppPredictor::predict(const DataPoint& point) const
{
    return predict(point.a, point.b, point.fairness);
}

Explanation
MultiAppPredictor::explain(const DataPoint& point) const
{
    if (!trained())
        fatal("MultiAppPredictor::explain: model not trained");

    const auto row = queryRow(point.a, point.b, point.fairness);

    Explanation e;
    e.predictedSeconds =
        normalizer_.denormalizeTarget(compiled_.predict(row));
    // The decision path stays on the node-walk oracle: the compiled
    // engine answers "what", the tree explains "why".
    e.path = tree_->decisionPath(row);
    e.featureNames = schemeNames_;
    return e;
}

const ml::CompiledTree&
MultiAppPredictor::compiledTree() const
{
    if (!trained())
        fatal("MultiAppPredictor::compiledTree: model not trained");
    return compiled_;
}

const ml::DecisionTreeRegressor&
MultiAppPredictor::tree() const
{
    if (!trained())
        fatal("MultiAppPredictor::tree: model not trained");
    return *tree_;
}

std::vector<std::pair<std::string, double>>
MultiAppPredictor::featureImportances() const
{
    const auto imp = tree().featureImportances();
    const auto& names = tree_->featureNames();
    std::vector<std::pair<std::string, double>> out;
    out.reserve(imp.size());
    for (std::size_t i = 0; i < imp.size(); ++i)
        out.emplace_back(names[i], imp[i]);
    return out;
}

ml::CrossValidationResult
MultiAppPredictor::looBenchmarkCv(const ml::Dataset& raw,
                                  const PredictorParams& params,
                                  const std::vector<std::string>& benchmarks)
{
    const obs::ScopedPhase phase("loocv");
    ml::CrossValidationResult result;
    result.folds.resize(benchmarks.size());
    // Every fold trains its own model on its own split, so folds run
    // concurrently; fold f only writes slot f, keeping the paper's
    // benchmark order.
    parallel::parallelFor(benchmarks.size(), [&](std::size_t f) {
        const auto& bench = benchmarks[f];
        auto [train, test] = splitOutBenchmark(raw, bench);
        ml::FoldResult fold;
        fold.label = bench;
        fold.testPoints = test.size();
        if (!train.empty() && !test.empty()) {
            MultiAppPredictor model(params);
            model.train(train);

            // Evaluate in raw target units (the normalizer
            // round-trips): one batched project + normalize +
            // compiled traversal over the whole fold.
            const auto predictions = model.predictDataset(test);
            fold.meanRelativeError = ml::meanRelativeErrorPercent(
                test.targets(), predictions);
            fold.mse =
                ml::meanSquaredError(test.targets(), predictions);
        }
        result.folds[f] = std::move(fold);
    });
    return result;
}

double
MultiAppPredictor::holdoutRelativeError(const ml::Dataset& raw,
                                        const PredictorParams& params,
                                        double test_fraction, Rng& rng)
{
    auto [train, test] = raw.trainTestSplit(test_fraction, rng);
    if (train.empty() || test.empty())
        fatal("holdoutRelativeError: degenerate split");

    MultiAppPredictor model(params);
    model.train(train);
    return ml::meanRelativeErrorPercent(test.targets(),
                                        model.predictDataset(test));
}

}  // namespace mapp::predictor
