#include "predictor/predictor.h"

#include "common/log.h"
#include "common/parallel.h"
#include "ml/metrics.h"
#include "obs/timer.h"

namespace mapp::predictor {

MultiAppPredictor::MultiAppPredictor(PredictorParams params)
    : params_(std::move(params))
{
}

ml::Dataset
MultiAppPredictor::projectAndNormalizeTrain(const ml::Dataset& raw)
{
    const ml::Dataset projected =
        raw.selectFeatures(params_.scheme.featureNames());
    normalizer_ = RangeNormalizer();
    normalizer_.fit(projected);
    return normalizer_.apply(projected);
}

void
MultiAppPredictor::train(const std::vector<DataPoint>& points)
{
    train(toDataset(points));
}

void
MultiAppPredictor::train(const ml::Dataset& raw)
{
    if (raw.empty())
        fatal("MultiAppPredictor::train: empty dataset");
    const obs::ScopedPhase phase("tree-training");
    const ml::Dataset prepared = projectAndNormalizeTrain(raw);
    trainLayout_ = ml::Dataset(prepared.featureNames());
    tree_.emplace(params_.tree);
    tree_->fit(prepared);
}

double
MultiAppPredictor::predict(const AppFeatures& a, const AppFeatures& b,
                           double fairness) const
{
    if (!trained())
        fatal("MultiAppPredictor::predict: model not trained");

    // Build the full bag vector, project to the scheme, normalize.
    ml::Dataset full(bagFeatureNames());
    full.addRow(buildBagVector(a, b, fairness), 0.0, "");
    const ml::Dataset projected =
        full.selectFeatures(params_.scheme.featureNames());
    const auto row =
        normalizer_.applyRow(projected, projected.row(0));
    return normalizer_.denormalizeTarget(tree_->predict(row));
}

double
MultiAppPredictor::predict(const DataPoint& point) const
{
    return predict(point.a, point.b, point.fairness);
}

Explanation
MultiAppPredictor::explain(const DataPoint& point) const
{
    if (!trained())
        fatal("MultiAppPredictor::explain: model not trained");

    ml::Dataset full(bagFeatureNames());
    full.addRow(buildBagVector(point.a, point.b, point.fairness), 0.0, "");
    const ml::Dataset projected =
        full.selectFeatures(params_.scheme.featureNames());
    const auto row = normalizer_.applyRow(projected, projected.row(0));

    Explanation e;
    e.predictedSeconds =
        normalizer_.denormalizeTarget(tree_->predict(row));
    e.path = tree_->decisionPath(row);
    e.featureNames = projected.featureNames();
    return e;
}

const ml::DecisionTreeRegressor&
MultiAppPredictor::tree() const
{
    if (!trained())
        fatal("MultiAppPredictor::tree: model not trained");
    return *tree_;
}

std::vector<std::pair<std::string, double>>
MultiAppPredictor::featureImportances() const
{
    const auto imp = tree().featureImportances();
    const auto& names = tree_->featureNames();
    std::vector<std::pair<std::string, double>> out;
    out.reserve(imp.size());
    for (std::size_t i = 0; i < imp.size(); ++i)
        out.emplace_back(names[i], imp[i]);
    return out;
}

ml::CrossValidationResult
MultiAppPredictor::looBenchmarkCv(const ml::Dataset& raw,
                                  const PredictorParams& params,
                                  const std::vector<std::string>& benchmarks)
{
    const obs::ScopedPhase phase("loocv");
    ml::CrossValidationResult result;
    result.folds.resize(benchmarks.size());
    // Every fold trains its own model on its own split, so folds run
    // concurrently; fold f only writes slot f, keeping the paper's
    // benchmark order.
    parallel::parallelFor(benchmarks.size(), [&](std::size_t f) {
        const auto& bench = benchmarks[f];
        auto [train, test] = splitOutBenchmark(raw, bench);
        ml::FoldResult fold;
        fold.label = bench;
        fold.testPoints = test.size();
        if (!train.empty() && !test.empty()) {
            MultiAppPredictor model(params);
            model.train(train);

            // Evaluate in raw target units (the normalizer round-trips).
            const ml::Dataset projected =
                test.selectFeatures(params.scheme.featureNames());
            std::vector<double> predictions;
            predictions.reserve(test.size());
            for (std::size_t i = 0; i < projected.size(); ++i) {
                const auto row = model.normalizer_.applyRow(
                    projected, projected.row(i));
                predictions.push_back(model.normalizer_.denormalizeTarget(
                    model.tree_->predict(row)));
            }
            fold.meanRelativeError = ml::meanRelativeErrorPercent(
                test.targets(), predictions);
            fold.mse =
                ml::meanSquaredError(test.targets(), predictions);
        }
        result.folds[f] = std::move(fold);
    });
    return result;
}

double
MultiAppPredictor::holdoutRelativeError(const ml::Dataset& raw,
                                        const PredictorParams& params,
                                        double test_fraction, Rng& rng)
{
    auto [train, test] = raw.trainTestSplit(test_fraction, rng);
    if (train.empty() || test.empty())
        fatal("holdoutRelativeError: degenerate split");

    MultiAppPredictor model(params);
    model.train(train);

    const ml::Dataset projected =
        test.selectFeatures(params.scheme.featureNames());
    std::vector<double> predictions;
    predictions.reserve(test.size());
    for (std::size_t i = 0; i < projected.size(); ++i) {
        const auto row =
            model.normalizer_.applyRow(projected, projected.row(i));
        predictions.push_back(model.normalizer_.denormalizeTarget(
            model.tree_->predict(row)));
    }
    return ml::meanRelativeErrorPercent(test.targets(), predictions);
}

}  // namespace mapp::predictor
