#include "predictor/predictor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "cache/artifact_cache.h"
#include "common/log.h"
#include "common/parallel.h"
#include "ml/dataset_binary.h"
#include "ml/metrics.h"
#include "ml/model_binary.h"
#include "obs/audit.h"
#include "obs/timer.h"
#include "obs/trace.h"
#include "predictor/quality.h"

namespace mapp::predictor {

namespace {

/**
 * Artifact key for a fitted tree: the exact training data (hashed row
 * by row), the tree hyper-parameters, and the feature scheme. Fitting
 * is deterministic in those inputs, so a hit reconstructs the same
 * tree bit for bit.
 */
std::uint64_t
modelKey(const ml::Dataset& raw, const ml::DecisionTreeParams& tree,
         const std::vector<std::string>& scheme_names)
{
    cache::Hasher h = cache::keyHasher("model");
    ml::hashDataset(h, raw);
    h.add(tree.maxDepth);
    h.add(tree.minSamplesSplit);
    h.add(tree.minSamplesLeaf);
    h.add(tree.minImpurityDecrease);
    h.add(static_cast<std::uint64_t>(scheme_names.size()));
    for (const auto& name : scheme_names)
        h.add(name);
    return h.digest();
}

}  // namespace

MultiAppPredictor::MultiAppPredictor(PredictorParams params)
    : params_(std::move(params))
{
    // Resolve the scheme's projection once: feature name -> index in
    // the full bag vector, plus the time-feature flags batch
    // normalization needs. Every predict() after this is free of
    // string handling and Dataset temporaries.
    schemeNames_ = params_.scheme.featureNames();
    const auto bagNames = bagFeatureNames();
    projection_.reserve(schemeNames_.size());
    for (const auto& name : schemeNames_) {
        const auto it =
            std::find(bagNames.begin(), bagNames.end(), name);
        if (it == bagNames.end())
            fatal("MultiAppPredictor: scheme feature '" + name +
                  "' is not a bag feature");
        projection_.push_back(
            static_cast<std::size_t>(it - bagNames.begin()));
    }
    timeMask_ = RangeNormalizer::timeFeatureMask(schemeNames_);
}

ml::Dataset
MultiAppPredictor::projectAndNormalizeTrain(const ml::Dataset& raw)
{
    const ml::Dataset projected =
        raw.selectFeatures(params_.scheme.featureNames());
    normalizer_ = RangeNormalizer();
    normalizer_.fit(projected);
    return normalizer_.apply(projected);
}

void
MultiAppPredictor::train(const std::vector<DataPoint>& points)
{
    train(toDataset(points));
}

void
MultiAppPredictor::train(const ml::Dataset& raw)
{
    if (raw.empty())
        fatal("MultiAppPredictor::train: empty dataset");
    const obs::ScopedPhase phase("tree-training");
    const ml::Dataset prepared = projectAndNormalizeTrain(raw);
    trainLayout_ = ml::Dataset(prepared.featureNames());

    // Model artifacts: a warm process reconstructs the fitted tree
    // from its binary record instead of refitting; the normalizer and
    // audit tables are cheap deterministic functions of `prepared`, so
    // they are rebuilt either way and match the fitted-from-scratch
    // state exactly.
    auto& artifacts = cache::defaultArtifactCache();
    const std::uint64_t key = modelKey(raw, params_.tree, schemeNames_);
    auto loaded = artifacts.loadAndParse(
        "model", key,
        [](const std::string& blob, const std::string& path) {
            return ml::treeFromBinary(blob, path);
        });
    if (loaded) {
        tree_ = std::move(*loaded);
    } else {
        tree_.emplace(params_.tree);
        tree_->fit(prepared);
        artifacts.store("model", key, ml::treeToBinary(*tree_));
    }
    compiled_ = ml::CompiledTree(*tree_);
    buildAuditTables(prepared);
}

void
MultiAppPredictor::buildAuditTables(const ml::Dataset& prepared)
{
    const std::size_t n = tree_->nodeCount();
    leafSummary_.assign(n, {});
    leafRmseSeconds_.assign(n, 0.0);
    const auto& names = tree_->featureNames();

    // DFS carrying the rendered path prefix down to each leaf.
    struct Frame
    {
        std::size_t node;
        std::string path;
    };
    std::vector<Frame> stack{{0, std::string()}};
    while (!stack.empty()) {
        Frame frame = std::move(stack.back());
        stack.pop_back();
        const auto v = tree_->nodeView(frame.node);
        if (v.leaf) {
            leafSummary_[frame.node] =
                frame.path.empty() ? "(root)" : std::move(frame.path);
            if (v.samples > 0) {
                leafRmseSeconds_[frame.node] =
                    std::sqrt(v.sse / static_cast<double>(v.samples)) *
                    normalizer_.scale();
            }
            continue;
        }
        char threshold[32];
        std::snprintf(threshold, sizeof(threshold), "%.4g",
                      v.threshold);
        const std::string& name =
            names[static_cast<std::size_t>(v.feature)];
        const char* joint = frame.path.empty() ? "" : " -> ";
        stack.push_back({static_cast<std::size_t>(v.right),
                         frame.path + joint + name + ">" + threshold});
        stack.push_back({static_cast<std::size_t>(v.left),
                         frame.path + joint + name + "<=" + threshold});
    }

    // Drift reference: per-feature range of the normalized training
    // matrix — predict-time rows outside it are extrapolations.
    const std::size_t nF = prepared.numFeatures();
    trainMin_.assign(nF, std::numeric_limits<double>::infinity());
    trainMax_.assign(nF, -std::numeric_limits<double>::infinity());
    for (const auto& row : prepared.rows()) {
        for (std::size_t k = 0; k < nF; ++k) {
            trainMin_[k] = std::min(trainMin_[k], row[k]);
            trainMax_[k] = std::max(trainMax_[k], row[k]);
        }
    }
}

std::uint64_t
MultiAppPredictor::auditRows(const char* model,
                             std::span<const double> flat,
                             std::size_t nFeatures,
                             std::span<const double> outSeconds) const
{
    obs::PredictionLog& log = obs::predictionLog();
    if (!log.enabled() || outSeconds.empty())
        return 0;
    const auto n = static_cast<std::uint64_t>(outSeconds.size());
    const std::uint64_t first = log.reserve(n);
    const std::uint64_t period = log.samplePeriod();
    // One timestamp per batch: rows of a batch land within
    // microseconds of each other, and it saves a clock read per
    // sampled record.
    const double nowUs = obs::tracer().wallTimeUs();
    const auto fill = [&](std::uint64_t i,
                          obs::PredictionRecord& record) {
        const auto row = flat.subspan(
            static_cast<std::size_t>(i) * nFeatures, nFeatures);
        const auto leaf =
            static_cast<std::size_t>(compiled_.predictLeaf(row));
        // In-place fill: the ring slot's buffers are reused, so a
        // steady-state audit record allocates nothing.
        record.seq = first + i;
        record.tsUs = nowUs;
        record.model.assign(model);
        record.features.assign(row.begin(), row.end());
        record.predictedSeconds = outSeconds[static_cast<std::size_t>(i)];
        record.uncertaintySeconds = leafRmseSeconds_[leaf];
        record.pathSummary.assign(leafSummary_[leaf]);
    };
    // The sampled sequence ids are first + i with (first + i) % period
    // == 0 — computed arithmetically so unsampled rows cost nothing.
    // Sampled rows are flushed in chunks so the log mutex is taken
    // once per chunk, not once per record.
    constexpr std::size_t kChunk = 64;
    std::uint64_t ids[kChunk];
    std::size_t m = 0;
    for (std::uint64_t i = (period - first % period) % period; i < n;
         i += period) {
        ids[m++] = i;
        if (m == kChunk) {
            log.recordChunkInPlace({ids, m}, fill);
            m = 0;
        }
    }
    log.recordChunkInPlace({ids, m}, fill);
    return first;
}

std::vector<double>
MultiAppPredictor::queryRow(const AppFeatures& a, const AppFeatures& b,
                            double fairness) const
{
    const auto full = buildBagVector(a, b, fairness);
    std::vector<double> row(projection_.size());
    for (std::size_t k = 0; k < projection_.size(); ++k) {
        row[k] = full[projection_[k]];
        if (timeMask_[k])
            row[k] /= normalizer_.scale();
    }
    return row;
}

double
MultiAppPredictor::predict(const AppFeatures& a, const AppFeatures& b,
                           double fairness) const
{
    if (!trained())
        fatal("MultiAppPredictor::predict: model not trained");
    const auto row = queryRow(a, b, fairness);
    const double out =
        normalizer_.denormalizeTarget(compiled_.predict(row));
    auditRows("single", row, row.size(), {&out, 1});
    return out;
}

std::vector<double>
MultiAppPredictor::predictBatch(const std::vector<BagQuery>& queries) const
{
    if (!trained())
        fatal("MultiAppPredictor::predictBatch: model not trained");
    const std::size_t nF = projection_.size();
    std::vector<double> flat(queries.size() * nF);
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto full = buildBagVector(queries[q].a, queries[q].b,
                                         queries[q].fairness);
        for (std::size_t k = 0; k < nF; ++k)
            flat[q * nF + k] = full[projection_[k]];
    }
    normalizer_.applyBatchInPlace(flat, timeMask_);
    std::vector<double> out(queries.size());
    compiled_.predictBatch(flat, nF, out);
    normalizer_.denormalizeInPlace(out);
    auditRows("batch", flat, nF, out);
    return out;
}

std::vector<double>
MultiAppPredictor::predictDataset(const ml::Dataset& raw_test) const
{
    if (!trained())
        fatal("MultiAppPredictor::predictDataset: model not trained");
    const ml::Dataset projected = raw_test.selectFeatures(schemeNames_);
    auto flat = projected.toRowMajor();
    normalizer_.applyBatchInPlace(flat, timeMask_);
    std::vector<double> out(projected.size());
    compiled_.predictBatch(flat, projected.numFeatures(), out);
    normalizer_.denormalizeInPlace(out);
    // Remember the audit range so observeGroundTruth() can annotate
    // this batch's records once the actual times are known.
    const bool audited = obs::predictionLog().enabled();
    lastAuditFirstSeq_ =
        auditRows("dataset", flat, projected.numFeatures(), out);
    lastAuditRows_ = audited ? out.size() : 0;
    return out;
}

void
MultiAppPredictor::observeGroundTruth(
    const ml::Dataset& raw_test,
    std::span<const double> predictedSeconds) const
{
    if (!trained())
        fatal("MultiAppPredictor::observeGroundTruth: model not "
              "trained");
    if (raw_test.size() != predictedSeconds.size())
        fatal("MultiAppPredictor::observeGroundTruth: prediction "
              "count does not match the dataset");
    if (raw_test.empty())
        return;
    ModelQualityMonitor& monitor = ModelQualityMonitor::global();
    monitor.observePairs(raw_test.targets(), predictedSeconds);

    // Drift check runs on the same projected + normalized rows the
    // model saw, against the training matrix's feature ranges.
    const ml::Dataset projected = raw_test.selectFeatures(schemeNames_);
    auto flat = projected.toRowMajor();
    normalizer_.applyBatchInPlace(flat, timeMask_);
    const std::size_t nF = projected.numFeatures();
    for (std::size_t r = 0; r < projected.size(); ++r) {
        monitor.observeFeatureRow(
            std::span<const double>(flat).subspan(r * nF, nF),
            trainMin_, trainMax_, schemeNames_);
    }

    if (lastAuditRows_ == predictedSeconds.size() &&
        lastAuditRows_ > 0) {
        obs::predictionLog().annotate(lastAuditFirstSeq_,
                                      raw_test.targets());
    }
}

double
MultiAppPredictor::predict(const DataPoint& point) const
{
    return predict(point.a, point.b, point.fairness);
}

Explanation
MultiAppPredictor::explain(const DataPoint& point) const
{
    if (!trained())
        fatal("MultiAppPredictor::explain: model not trained");

    const auto row = queryRow(point.a, point.b, point.fairness);

    Explanation e;
    e.predictedSeconds =
        normalizer_.denormalizeTarget(compiled_.predict(row));
    // The decision path stays on the node-walk oracle: the compiled
    // engine answers "what", the tree explains "why".
    e.path = tree_->decisionPath(row);
    e.featureNames = schemeNames_;
    const auto leaf =
        static_cast<std::size_t>(compiled_.predictLeaf(row));
    e.uncertaintySeconds = leafRmseSeconds_[leaf];
    e.pathSummary = leafSummary_[leaf];
    return e;
}

const ml::CompiledTree&
MultiAppPredictor::compiledTree() const
{
    if (!trained())
        fatal("MultiAppPredictor::compiledTree: model not trained");
    return compiled_;
}

const ml::DecisionTreeRegressor&
MultiAppPredictor::tree() const
{
    if (!trained())
        fatal("MultiAppPredictor::tree: model not trained");
    return *tree_;
}

std::vector<std::pair<std::string, double>>
MultiAppPredictor::featureImportances() const
{
    const auto imp = tree().featureImportances();
    const auto& names = tree_->featureNames();
    std::vector<std::pair<std::string, double>> out;
    out.reserve(imp.size());
    for (std::size_t i = 0; i < imp.size(); ++i)
        out.emplace_back(names[i], imp[i]);
    return out;
}

ml::CrossValidationResult
MultiAppPredictor::looBenchmarkCv(const ml::Dataset& raw,
                                  const PredictorParams& params,
                                  const std::vector<std::string>& benchmarks)
{
    const obs::ScopedPhase phase("loocv");
    ml::CrossValidationResult result;
    result.folds.resize(benchmarks.size());
    // Every fold trains its own model on its own split, so folds run
    // concurrently; fold f only writes slot f, keeping the paper's
    // benchmark order.
    parallel::parallelFor(benchmarks.size(), [&](std::size_t f) {
        const auto& bench = benchmarks[f];
        auto [train, test] = splitOutBenchmark(raw, bench);
        ml::FoldResult fold;
        fold.label = bench;
        fold.testPoints = test.size();
        if (!train.empty() && !test.empty()) {
            MultiAppPredictor model(params);
            model.train(train);

            // Evaluate in raw target units (the normalizer
            // round-trips): one batched project + normalize +
            // compiled traversal over the whole fold.
            const auto predictions = model.predictDataset(test);
            fold.meanRelativeError = ml::meanRelativeErrorPercent(
                test.targets(), predictions);
            fold.mse =
                ml::meanSquaredError(test.targets(), predictions);
            // The fold's held-out truth doubles as online quality
            // telemetry: error histograms + drift gauges.
            model.observeGroundTruth(test, predictions);
        }
        result.folds[f] = std::move(fold);
    });
    return result;
}

double
MultiAppPredictor::holdoutRelativeError(const ml::Dataset& raw,
                                        const PredictorParams& params,
                                        double test_fraction, Rng& rng)
{
    auto [train, test] = raw.trainTestSplit(test_fraction, rng);
    if (train.empty() || test.empty())
        fatal("holdoutRelativeError: degenerate split");

    MultiAppPredictor model(params);
    model.train(train);
    const auto predictions = model.predictDataset(test);
    model.observeGroundTruth(test, predictions);
    return ml::meanRelativeErrorPercent(test.targets(), predictions);
}

}  // namespace mapp::predictor
