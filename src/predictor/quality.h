/**
 * @file
 * Online model-quality telemetry: whenever ground truth arrives next
 * to a prediction — LOOCV fold evaluation, campaign evaluation, a
 * scheduler measuring the schedule it just scored — the pairs feed
 * rolling error histograms (absolute and signed percentage error) and
 * every evaluated feature row is checked against the training
 * normalization ranges (Section V-C), so feature drift shows up as
 * `predictor.drift.oor_frac.<feature>` gauges in the default registry
 * long before the error metrics decay.
 */

#ifndef MAPP_PREDICTOR_QUALITY_H
#define MAPP_PREDICTOR_QUALITY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mapp::predictor {

/** A feature flagged by the drift monitor. */
struct DriftFlag
{
    std::string feature;
    double outOfRangeFraction = 0.0;
    std::uint64_t rowsSeen = 0;
};

/**
 * Aggregates prediction-error and feature-drift telemetry into the
 * default metrics registry. All entry points are thread-safe (LOOCV
 * folds evaluate concurrently); every path here is an evaluation cold
 * path, so a mutex per call is fine.
 *
 * Published instruments:
 *  - histogram `predictor.error.abs_pct`    |pred-actual|/actual * 100
 *  - histogram `predictor.error.signed_pct` (pred-actual)/actual * 100
 *  - gauge     `predictor.quality.mape_pct` running mean of abs_pct
 *  - counter   `predictor.quality.pairs`    ground-truth pairs seen
 *  - gauge     `predictor.drift.oor_frac.<feature>` fraction of
 *              evaluated rows outside the training range
 */
class ModelQualityMonitor
{
  public:
    ModelQualityMonitor();

    ModelQualityMonitor(const ModelQualityMonitor&) = delete;
    ModelQualityMonitor& operator=(const ModelQualityMonitor&) = delete;

    /**
     * Observe ground-truth/prediction pairs (both in seconds).
     * Pairs with a non-positive or non-finite actual are skipped —
     * a zero-time bag has no meaningful relative error.
     */
    void observePairs(std::span<const double> actualSeconds,
                      std::span<const double> predictedSeconds);

    /**
     * Check one normalized feature row against the training ranges:
     * feature k drifted when row[k] lies outside
     * [trainMin[k], trainMax[k]] (with a small relative tolerance).
     * All spans must have names.size() entries.
     */
    void observeFeatureRow(std::span<const double> row,
                           std::span<const double> trainMin,
                           std::span<const double> trainMax,
                           const std::vector<std::string>& names);

    /** Ground-truth pairs accepted so far. */
    std::uint64_t pairsSeen() const;

    /**
     * Features whose out-of-range fraction exceeds @p threshold,
     * worst first.
     */
    std::vector<DriftFlag> driftFlags(double threshold = 0.01) const;

    /** Drop all rolling state (gauges keep their last value). */
    void reset();

    /** The process-wide monitor the predictor hooks feed. */
    static ModelQualityMonitor& global();

  private:
    struct FeatureStat
    {
        std::uint64_t seen = 0;
        std::uint64_t outOfRange = 0;
    };

    mutable std::mutex mutex_;
    std::map<std::string, FeatureStat> features_;
    std::uint64_t pairs_ = 0;
    double sumAbsPct_ = 0.0;
};

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_QUALITY_H
