#include "predictor/quality.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace mapp::predictor {

namespace {

/** Bucket bounds for |error| as a percentage of the actual time. */
std::vector<double>
absErrorBounds()
{
    return {1.0,  2.0,  5.0,  10.0, 15.0, 20.0,
            30.0, 50.0, 75.0, 100.0, 200.0};
}

/** Symmetric bounds for the signed percentage error. */
std::vector<double>
signedErrorBounds()
{
    const auto pos = absErrorBounds();
    std::vector<double> bounds;
    bounds.reserve(2 * pos.size() + 1);
    for (auto it = pos.rbegin(); it != pos.rend(); ++it)
        bounds.push_back(-*it);
    bounds.push_back(0.0);
    for (const double b : pos)
        bounds.push_back(b);
    return bounds;
}

obs::Histogram&
absErrorHistogram()
{
    static obs::Histogram& h = obs::defaultRegistry().histogram(
        "predictor.error.abs_pct", absErrorBounds());
    return h;
}

obs::Histogram&
signedErrorHistogram()
{
    static obs::Histogram& h = obs::defaultRegistry().histogram(
        "predictor.error.signed_pct", signedErrorBounds());
    return h;
}

/**
 * Relative slack before a value counts as out of range: training
 * normalization is exact, but evaluation rows re-normalized through
 * the same scale accumulate one or two ulps of rounding.
 */
constexpr double kRangeTolerance = 1e-9;

}  // namespace

ModelQualityMonitor::ModelQualityMonitor()
{
    // Touch the histograms so even an idle process exports the
    // instruments (empty histograms render as zero-count series).
    absErrorHistogram();
    signedErrorHistogram();
}

void
ModelQualityMonitor::observePairs(
    std::span<const double> actualSeconds,
    std::span<const double> predictedSeconds)
{
    if (actualSeconds.size() != predictedSeconds.size())
        fatal("ModelQualityMonitor::observePairs: size mismatch");
    obs::Histogram& abs = absErrorHistogram();
    obs::Histogram& sgn = signedErrorHistogram();
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t accepted = 0;
    for (std::size_t i = 0; i < actualSeconds.size(); ++i) {
        const double actual = actualSeconds[i];
        if (!std::isfinite(actual) || actual <= 0.0)
            continue;
        const double signedPct =
            (predictedSeconds[i] - actual) / actual * 100.0;
        const double absPct = std::abs(signedPct);
        abs.observe(absPct);
        sgn.observe(signedPct);
        sumAbsPct_ += absPct;
        ++accepted;
    }
    pairs_ += accepted;
    if (pairs_ > 0) {
        obs::defaultRegistry()
            .gauge("predictor.quality.mape_pct")
            .set(sumAbsPct_ / static_cast<double>(pairs_));
    }
    if (accepted > 0) {
        obs::defaultRegistry()
            .counter("predictor.quality.pairs")
            .add(accepted);
    }
}

void
ModelQualityMonitor::observeFeatureRow(
    std::span<const double> row, std::span<const double> trainMin,
    std::span<const double> trainMax,
    const std::vector<std::string>& names)
{
    if (row.size() != names.size() || trainMin.size() != names.size() ||
        trainMax.size() != names.size()) {
        fatal("ModelQualityMonitor::observeFeatureRow: size mismatch");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t k = 0; k < names.size(); ++k) {
        FeatureStat& stat = features_[names[k]];
        ++stat.seen;
        const double span = trainMax[k] - trainMin[k];
        const double slack =
            kRangeTolerance * std::max(1.0, std::abs(span));
        if (row[k] < trainMin[k] - slack ||
            row[k] > trainMax[k] + slack) {
            ++stat.outOfRange;
        }
        obs::defaultRegistry()
            .gauge("predictor.drift.oor_frac." + names[k])
            .set(static_cast<double>(stat.outOfRange) /
                 static_cast<double>(stat.seen));
    }
}

std::uint64_t
ModelQualityMonitor::pairsSeen() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return pairs_;
}

std::vector<DriftFlag>
ModelQualityMonitor::driftFlags(double threshold) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<DriftFlag> flags;
    for (const auto& [name, stat] : features_) {
        if (stat.seen == 0)
            continue;
        const double fraction = static_cast<double>(stat.outOfRange) /
                                static_cast<double>(stat.seen);
        if (fraction > threshold)
            flags.push_back(DriftFlag{name, fraction, stat.seen});
    }
    std::stable_sort(flags.begin(), flags.end(),
                     [](const DriftFlag& a, const DriftFlag& b) {
                         return a.outOfRangeFraction >
                                b.outOfRangeFraction;
                     });
    return flags;
}

void
ModelQualityMonitor::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    features_.clear();
    pairs_ = 0;
    sumAbsPct_ = 0.0;
}

ModelQualityMonitor&
ModelQualityMonitor::global()
{
    static ModelQualityMonitor instance;
    return instance;
}

}  // namespace mapp::predictor
