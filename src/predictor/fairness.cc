#include "predictor/fairness.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/log.h"

namespace mapp::predictor {

std::vector<double>
slowdowns(std::span<const double> ipc_shared,
          std::span<const double> ipc_alone)
{
    if (ipc_shared.size() != ipc_alone.size() || ipc_shared.empty())
        fatal("slowdowns: mismatched or empty IPC vectors");
    std::vector<double> out;
    out.reserve(ipc_shared.size());
    for (std::size_t i = 0; i < ipc_shared.size(); ++i) {
        if (ipc_alone[i] <= 0.0)
            fatal("slowdowns: non-positive alone IPC");
        out.push_back(ipc_shared[i] / ipc_alone[i]);
    }
    return out;
}

double
fairness(std::span<const double> ipc_shared,
         std::span<const double> ipc_alone, FairnessVariant variant)
{
    const auto s = slowdowns(ipc_shared, ipc_alone);
    switch (variant) {
      case FairnessVariant::MinOverPairs: {
        // min over pairs (i, j) of s_i / s_j == min(s) / max(s).
        double lo = std::numeric_limits<double>::infinity();
        double hi = 0.0;
        for (double v : s) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        return hi > 0.0 ? lo / hi : 0.0;
      }
      case FairnessVariant::MeanSlowdown: {
        double acc = 0.0;
        for (double v : s)
            acc += v;
        return acc / static_cast<double>(s.size());
      }
      case FairnessVariant::HarmonicMean: {
        double acc = 0.0;
        for (double v : s) {
            if (v <= 0.0)
                return 0.0;
            acc += 1.0 / v;
        }
        return static_cast<double>(s.size()) / acc;
      }
    }
    return 0.0;
}

}  // namespace mapp::predictor
