#include "predictor/features.h"

#include <algorithm>

#include "common/log.h"
#include "common/simd.h"

namespace mapp::predictor {

std::vector<std::string>
baseFeatureNames()
{
    std::vector<std::string> names{"cpu_time", "gpu_time"};
    for (isa::InstClass c : isa::kAllInstClasses)
        names.push_back(isa::instClassName(c));
    return names;
}

std::vector<std::string>
bagFeatureNames()
{
    std::vector<std::string> names;
    for (int slot = 0; slot < kBagSize; ++slot)
        for (const auto& base : baseFeatureNames())
            names.push_back("a" + std::to_string(slot) + "_" + base);
    names.push_back("fairness");
    return names;
}

std::string
baseNameOf(const std::string& bag_feature)
{
    if (bag_feature.size() > 3 && bag_feature[0] == 'a' &&
        bag_feature[2] == '_' && bag_feature[1] >= '0' &&
        bag_feature[1] <= '9') {
        return bag_feature.substr(3);
    }
    return bag_feature;
}

std::vector<double>
buildBagVector(const AppFeatures& a, const AppFeatures& b, double fairness)
{
    auto appendBlock = [](std::vector<double>& out, const AppFeatures& f) {
        out.push_back(f.cpuTime);
        out.push_back(f.gpuTime);
        for (isa::InstClass c : isa::kAllInstClasses)
            out.push_back(f.mixPercent[static_cast<std::size_t>(c)]);
    };
    std::vector<double> out;
    out.reserve(bagFeatureNames().size());
    appendBlock(out, a);
    appendBlock(out, b);
    out.push_back(fairness);
    return out;
}

bool
RangeNormalizer::isTimeFeature(const std::string& name)
{
    const std::string base = baseNameOf(name);
    return base == "cpu_time" || base == "gpu_time";
}

void
RangeNormalizer::fit(const ml::Dataset& train)
{
    double lo = 0.0;
    double hi = 0.0;
    bool seen = false;
    for (std::size_t f = 0; f < train.numFeatures(); ++f) {
        if (baseNameOf(train.featureNames()[f]) != "cpu_time")
            continue;
        for (double v : train.column(f)) {
            if (!seen) {
                lo = v;
                hi = v;
                seen = true;
            } else {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
        }
    }
    scale_ = (seen && hi > lo) ? hi - lo : 1.0;
}

ml::Dataset
RangeNormalizer::apply(const ml::Dataset& data) const
{
    ml::Dataset out(data.featureNames());
    for (std::size_t r = 0; r < data.size(); ++r) {
        std::vector<double> row = data.row(r);
        for (std::size_t f = 0; f < row.size(); ++f)
            if (isTimeFeature(data.featureNames()[f]))
                row[f] /= scale_;
        out.addRow(std::move(row), data.target(r) / scale_, data.group(r));
    }
    return out;
}

std::vector<char>
RangeNormalizer::timeFeatureMask(const std::vector<std::string>& names)
{
    std::vector<char> mask(names.size(), 0);
    for (std::size_t f = 0; f < names.size(); ++f)
        mask[f] = isTimeFeature(names[f]) ? 1 : 0;
    return mask;
}

void
RangeNormalizer::applyBatchInPlace(std::span<double> rowMajor,
                                   const std::vector<char>& time_mask) const
{
    const std::size_t nFeatures = time_mask.size();
    if (nFeatures == 0) {
        if (!rowMajor.empty())
            fatal("RangeNormalizer::applyBatchInPlace: non-empty batch "
                  "with an empty layout");
        return;
    }
    if (rowMajor.size() % nFeatures != 0)
        fatal("RangeNormalizer::applyBatchInPlace: buffer is not a "
              "whole number of rows");
    // Expand the mask into a per-feature divisor vector: `scale` for
    // time features, exactly 1.0 for the rest. IEEE division by 1.0 is
    // the identity, so the branch-free kernel divide matches the old
    // masked divide bit for bit — and vectorizes.
    std::vector<double> divisors(nFeatures, 1.0);
    for (std::size_t f = 0; f < nFeatures; ++f)
        if (time_mask[f])
            divisors[f] = scale_;
    simd::kernels().normalizeRows(rowMajor.data(),
                                  rowMajor.size() / nFeatures,
                                  divisors.data(), nFeatures);
}

void
RangeNormalizer::denormalizeInPlace(std::span<double> values) const
{
    simd::kernels().scaleValues(values.data(), values.size(), scale_);
}

std::vector<double>
RangeNormalizer::applyRow(const ml::Dataset& reference,
                          std::vector<double> row) const
{
    if (row.size() != reference.numFeatures())
        fatal("RangeNormalizer::applyRow: feature count mismatch");
    for (std::size_t f = 0; f < row.size(); ++f)
        if (isTimeFeature(reference.featureNames()[f]))
            row[f] /= scale_;
    return row;
}

}  // namespace mapp::predictor
