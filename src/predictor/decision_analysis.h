/**
 * @file
 * Decision-path analytics (Section VI-C): for every LOOCV test point,
 * which features its decision path tests and how many times. Slot
 * features (a0_gpu_time / a1_gpu_time) are aggregated to their base
 * names, matching the per-feature axes of Figures 10-12.
 */

#ifndef MAPP_PREDICTOR_DECISION_ANALYSIS_H
#define MAPP_PREDICTOR_DECISION_ANALYSIS_H

#include <map>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "predictor/predictor.h"

namespace mapp::predictor {

/** Per-test-point feature usage along its decision path. */
struct PathUsage
{
    std::string pointLabel;  ///< bag group + index
    /** base feature name -> times tested on the path */
    std::map<std::string, int> counts;
};

/** Aggregated decision-path statistics over a set of test points. */
struct DecisionPathStats
{
    /** Base feature names, canonical order. */
    std::vector<std::string> features;

    /** Per-test-point usage rows (Figure 12's heatmap). */
    std::vector<PathUsage> points;

    /** Percent of test points whose path uses the feature (Figure 10). */
    std::map<std::string, double> presencePercent;

    /** Mean number of times a feature is tested per point (Figure 11). */
    std::map<std::string, double> meanUsage;

    /** Max times any point tested the feature (Figure 11 rings). */
    std::map<std::string, int> maxUsage;
};

/**
 * Run the paper's LOOCV over the raw dataset, and for every held-out
 * test point record which base features its decision path uses in the
 * fold's trained tree.
 */
DecisionPathStats analyzeDecisionPaths(
    const ml::Dataset& raw, const PredictorParams& params,
    const std::vector<std::string>& benchmarks);

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_DECISION_ANALYSIS_H
