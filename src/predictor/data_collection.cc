#include "predictor/data_collection.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <span>
#include <sstream>

#include "cache/artifact_cache.h"
#include "cache/binary_io.h"
#include "common/error.h"
#include "common/log.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "profiler/mica.h"

namespace mapp::predictor {

bool
BagMember::operator<(const BagMember& rhs) const
{
    if (id != rhs.id)
        return static_cast<int>(id) < static_cast<int>(rhs.id);
    return batchSize < rhs.batchSize;
}

bool
BagSpec::operator<(const BagSpec& rhs) const
{
    if (a != rhs.a)
        return a < rhs.a;
    return b < rhs.b;
}

BagSpec
BagSpec::canonical() const
{
    BagSpec out = *this;
    if (out.b < out.a)
        std::swap(out.a, out.b);
    return out;
}

std::string
BagSpec::label() const
{
    std::ostringstream os;
    os << vision::benchmarkName(a.id) << '@' << a.batchSize << '+'
       << vision::benchmarkName(b.id) << '@' << b.batchSize;
    return os.str();
}

std::string
BagSpec::groupLabel() const
{
    return vision::benchmarkName(a.id) + "+" + vision::benchmarkName(b.id);
}

namespace {

// -------------------------------------------------------------------
// Artifact-cache keys. Every key folds in the workload identity plus
// every simulator knob the measurement depends on, so changing any
// config field (or the code salt) lands on a fresh key and a clean
// recompute — a stale hit is structurally impossible short of a hash
// collision.
// -------------------------------------------------------------------

constexpr std::string_view kMemberMagic = "MMBR";
constexpr std::string_view kCpuRunMagic = "MCPR";
constexpr std::string_view kGpuRunMagic = "MGPR";
constexpr std::string_view kCampaignMagic = "MCMP";
constexpr std::uint32_t kRecordVersion = 1;

void
hashConfig(cache::Hasher& h, const cpusim::CpuConfig& c)
{
    h.add(c.physicalCores);
    h.add(c.smtWays);
    h.add(c.frequency);
    h.add(std::span<const double>(c.cpi));
    h.add(c.llcSize);
    h.add(c.memLatencyCycles);
    h.add(c.mlpOverlap);
    h.add(c.memBandwidth);
    h.add(c.branchPenaltyCycles);
    h.add(c.baseMispredictRate);
    h.add(c.divergenceMispredictRate);
    h.add(c.smtYield);
    h.add(c.oversubscriptionPenalty);
    h.add(c.threadSpawnCycles);
}

void
hashConfig(cache::Hasher& h, const gpusim::GpuConfig& c)
{
    h.add(c.numSms);
    h.add(c.coresPerSm);
    h.add(c.frequency);
    h.add(c.warpSize);
    h.add(c.maxThreadsPerSm);
    h.add(std::span<const double>(c.throughputPerSm));
    h.add(c.l2Size);
    h.add(c.memBandwidth);
    h.add(c.serialIpc);
    h.add(c.launchOverhead);
    h.add(c.mpsSchedulingOverhead);
    h.add(c.pcieBandwidth);
    h.add(c.stagingLatency);
    h.add(c.divergenceLoss);
    h.add(c.tlbEntries);
    h.add(c.pageSize);
    h.add(c.tlbMissPenaltyCycles);
    h.add(c.tlbHiding);
    h.add(c.tlbMultiAppPressure);
    h.add(c.dramInterferenceLoss);
}

void
hashMember(cache::Hasher& h, const BagMember& m)
{
    h.add(vision::benchmarkName(m.id));
    h.add(m.batchSize);
}

std::uint64_t
memberKey(const BagMember& member, const cpusim::CpuConfig& cpu,
          const gpusim::GpuConfig& gpu, int forced_threads)
{
    cache::Hasher h = cache::keyHasher("member");
    hashMember(h, member);
    hashConfig(h, cpu);
    hashConfig(h, gpu);
    h.add(forced_threads);
    return h.digest();
}

std::uint64_t
cpuRunKey(const BagSpec& spec, const cpusim::CpuConfig& cpu,
          int forced_threads)
{
    cache::Hasher h = cache::keyHasher("cpurun");
    hashMember(h, spec.a);
    hashMember(h, spec.b);
    hashConfig(h, cpu);
    h.add(forced_threads);
    return h.digest();
}

std::uint64_t
gpuRunKey(const BagSpec& spec, const gpusim::GpuConfig& gpu)
{
    cache::Hasher h = cache::keyHasher("gpurun");
    hashMember(h, spec.a);
    hashMember(h, spec.b);
    hashConfig(h, gpu);
    return h.digest();
}

std::uint64_t
campaignKey(const std::vector<BagSpec>& specs,
            const cpusim::CpuConfig& cpu, const gpusim::GpuConfig& gpu,
            const CollectorParams& params)
{
    cache::Hasher h = cache::keyHasher("campaign");
    h.add(static_cast<std::uint64_t>(specs.size()));
    for (const auto& spec : specs) {
        const BagSpec canon = spec.canonical();
        hashMember(h, canon.a);
        hashMember(h, canon.b);
    }
    hashConfig(h, cpu);
    hashConfig(h, gpu);
    h.add(static_cast<int>(params.fairnessVariant));
    h.add(params.forcedThreads);
    return h.digest();
}

// -------------------------------------------------------------------
// Binary record formats. Readers re-validate semantic invariants after
// the frame checksum, so a corrupt-but-checksummed blob still cannot
// enter the pipeline — any violation raises and the artifact cache
// evicts the entry and recomputes.
// -------------------------------------------------------------------

void
writeAppFeatures(cache::BinaryWriter& w, const AppFeatures& f)
{
    w.str(f.app);
    w.i32(f.batchSize);
    w.f64(f.cpuTime);
    w.f64(f.gpuTime);
    w.u32(static_cast<std::uint32_t>(isa::kNumInstClasses));
    for (double v : f.mixPercent)
        w.f64(v);
}

AppFeatures
readAppFeatures(cache::BinaryReader& r, const std::string& source)
{
    AppFeatures f;
    f.app = r.str();
    f.batchSize = r.i32();
    f.cpuTime = r.f64();
    f.gpuTime = r.f64();
    const std::uint32_t classes = r.u32();
    if (classes != isa::kNumInstClasses)
        raise({ErrorCode::Schema,
               "instruction-class count mismatch (expected " +
                   std::to_string(isa::kNumInstClasses) + ", found " +
                   std::to_string(classes) + ")",
               {source, 0, ""}});
    for (double& v : f.mixPercent)
        v = r.f64();
    return f;
}

/** One member's complete measurement record ("member" artifacts). */
struct MemberRecord
{
    AppFeatures features;
    int threads = 1;
    double ipcAlone = 0.0;
};

std::string
memberToBinary(const MemberRecord& rec)
{
    cache::BinaryWriter w(kMemberMagic, kRecordVersion);
    writeAppFeatures(w, rec.features);
    w.i32(rec.threads);
    w.f64(rec.ipcAlone);
    return std::move(w).finish();
}

MemberRecord
memberFromBinary(const std::string& blob, const std::string& source)
{
    cache::BinaryReader r(blob, source, kMemberMagic, kRecordVersion);
    MemberRecord rec;
    rec.features = readAppFeatures(r, source);
    rec.threads = r.i32();
    rec.ipcAlone = r.f64();
    r.expectEnd();
    if (rec.threads < 1)
        raise({ErrorCode::Range, "thread count must be positive",
               {source, 0, ""}});
    return rec;
}

std::string
campaignToBinary(const std::vector<DataPoint>& points)
{
    cache::BinaryWriter w(kCampaignMagic, kRecordVersion);
    w.u64(points.size());
    for (const auto& p : points) {
        w.str(vision::benchmarkName(p.spec.a.id));
        w.i32(p.spec.a.batchSize);
        w.str(vision::benchmarkName(p.spec.b.id));
        w.i32(p.spec.b.batchSize);
        writeAppFeatures(w, p.a);
        writeAppFeatures(w, p.b);
        w.f64(p.fairness);
        w.f64(p.cpuSharedMakespan);
        w.f64(p.gpuBagTime);
    }
    return std::move(w).finish();
}

std::vector<DataPoint>
campaignFromBinary(const std::string& blob, const std::string& source)
{
    cache::BinaryReader r(blob, source, kCampaignMagic, kRecordVersion);
    const std::uint64_t n = r.u64();
    if (n > r.remaining())  // each point takes far more than one byte
        raise({ErrorCode::Schema, "campaign point count exceeds payload",
               {source, 0, ""}});
    std::vector<DataPoint> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        DataPoint p;
        // benchmarkFromName rejects unknown names (FatalError), which
        // the artifact cache maps to evict-and-recompute like any
        // other corruption.
        p.spec.a.id = vision::benchmarkFromName(r.str());
        p.spec.a.batchSize = r.i32();
        p.spec.b.id = vision::benchmarkFromName(r.str());
        p.spec.b.batchSize = r.i32();
        p.a = readAppFeatures(r, source);
        p.b = readAppFeatures(r, source);
        p.fairness = r.f64();
        p.cpuSharedMakespan = r.f64();
        p.gpuBagTime = r.f64();
        out.push_back(std::move(p));
    }
    r.expectEnd();
    return out;
}

}  // namespace

DataCollector::DataCollector(cpusim::CpuConfig cpu_config,
                             gpusim::GpuConfig gpu_config,
                             CollectorParams params)
    : cpu_(cpu_config), gpu_(gpu_config), params_(params)
{
}

void
DataCollector::ensureMember(const BagMember& member)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        if (featureCache_.count(member) != 0 &&
            threadCache_.count(member) != 0 &&
            ipcCache_.count(member) != 0)
            return;
    }

    auto& artifacts = cache::defaultArtifactCache();
    const std::uint64_t key = memberKey(member, cpu_.config(),
                                        gpu_.config(),
                                        params_.forcedThreads);
    auto loaded = artifacts.loadAndParse(
        "member", key,
        [](const std::string& blob, const std::string& path) {
            return memberFromBinary(blob, path);
        });

    MemberRecord rec;
    if (loaded) {
        rec = std::move(*loaded);
    } else {
        const obs::ScopedPhase phase("feature-extraction");
        const auto& trace =
            vision::cachedTrace(member.id, member.batchSize);
        rec.threads = params_.forcedThreads > 0
                          ? params_.forcedThreads
                          : cpu_.bestThreadCount(trace);
        // One alone run yields both the CPU-time feature and the
        // alone IPC the fairness metric divides by.
        const auto alone = cpu_.runAlone(trace, rec.threads);
        const auto mica = profiler::characterize(trace);
        rec.features.app = vision::benchmarkName(member.id);
        rec.features.batchSize = member.batchSize;
        rec.features.cpuTime = alone.time;
        rec.features.gpuTime = gpu_.runAlone(trace).time;
        rec.features.mixPercent = mica.mixPercent;
        rec.ipcAlone = alone.ipc;
        artifacts.store("member", key, memberToBinary(rec));
    }

    std::lock_guard<std::mutex> lock(cacheMutex_);
    featureCache_.emplace(member, std::move(rec.features));
    threadCache_.emplace(member, rec.threads);
    ipcCache_.emplace(member, rec.ipcAlone);
}

int
DataCollector::bestThreads(const BagMember& member)
{
    if (params_.forcedThreads > 0)
        return params_.forcedThreads;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = threadCache_.find(member);
        if (it != threadCache_.end())
            return it->second;
    }
    ensureMember(member);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return threadCache_.at(member);
}

double
DataCollector::ipcAlone(const BagMember& member)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = ipcCache_.find(member);
        if (it != ipcCache_.end())
            return it->second;
    }
    ensureMember(member);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return ipcCache_.at(member);
}

const AppFeatures&
DataCollector::appFeatures(const BagMember& member)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = featureCache_.find(member);
        if (it != featureCache_.end()) {
            obs::defaultRegistry()
                .counter("collector.feature_cache_hits")
                .add(1);
            return it->second;
        }
    }
    obs::defaultRegistry().counter("collector.feature_cache_misses").add(1);
    ensureMember(member);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return featureCache_.at(member);
}

const DataCollector::SharedCpuRun&
DataCollector::sharedCpuRun(const BagSpec& spec)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = sharedCpuCache_.find(spec);
        if (it != sharedCpuCache_.end()) {
            obs::defaultRegistry()
                .counter("collector.shared_cache_hits")
                .add(1);
            return it->second;
        }
    }
    obs::defaultRegistry().counter("collector.shared_cache_misses").add(1);

    auto& artifacts = cache::defaultArtifactCache();
    const std::uint64_t key =
        cpuRunKey(spec, cpu_.config(), params_.forcedThreads);
    auto loaded = artifacts.loadAndParse(
        "cpurun", key,
        [](const std::string& blob, const std::string& path) {
            cache::BinaryReader r(blob, path, kCpuRunMagic,
                                  kRecordVersion);
            SharedCpuRun run;
            const std::uint64_t apps = r.u64();
            if (apps != 2)
                raise({ErrorCode::Schema,
                       "shared-CPU record must hold two apps",
                       {path, 0, ""}});
            for (std::uint64_t i = 0; i < apps; ++i)
                run.ipcShared.push_back(r.f64());
            run.makespan = r.f64();
            r.expectEnd();
            return run;
        });

    SharedCpuRun run;
    if (loaded) {
        run = std::move(*loaded);
    } else {
        // Fairness input: the bag's CPU co-run IPCs (Equation 2).
        const obs::ScopedPhase phase("fairness-measurement");
        const auto& traceA =
            vision::cachedTrace(spec.a.id, spec.a.batchSize);
        const auto& traceB =
            vision::cachedTrace(spec.b.id, spec.b.batchSize);
        const auto cpuBag = cpu_.runShared(
            {&traceA, &traceB},
            {bestThreads(spec.a), bestThreads(spec.b)});
        run.ipcShared = {cpuBag.apps[0].ipc, cpuBag.apps[1].ipc};
        run.makespan = cpuBag.makespan;
        cache::BinaryWriter w(kCpuRunMagic, kRecordVersion);
        w.u64(run.ipcShared.size());
        for (double ipc : run.ipcShared)
            w.f64(ipc);
        w.f64(run.makespan);
        artifacts.store("cpurun", key, std::move(w).finish());
    }

    std::lock_guard<std::mutex> lock(cacheMutex_);
    return sharedCpuCache_.emplace(spec, std::move(run)).first->second;
}

Seconds
DataCollector::gpuBagMakespan(const BagSpec& spec)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = gpuCache_.find(spec);
        if (it != gpuCache_.end()) {
            obs::defaultRegistry()
                .counter("collector.gpu_cache_hits")
                .add(1);
            return it->second;
        }
    }
    obs::defaultRegistry().counter("collector.gpu_cache_misses").add(1);

    auto& artifacts = cache::defaultArtifactCache();
    const std::uint64_t key = gpuRunKey(spec, gpu_.config());
    auto loaded = artifacts.loadAndParse(
        "gpurun", key,
        [](const std::string& blob, const std::string& path) {
            cache::BinaryReader r(blob, path, kGpuRunMagic,
                                  kRecordVersion);
            const double makespan = r.f64();
            r.expectEnd();
            return makespan;
        });

    Seconds makespan = 0.0;
    if (loaded) {
        makespan = *loaded;
    } else {
        // The target: the bag's GPU execution time under MPS.
        const obs::ScopedPhase phase("gpu-bag-measurement");
        const auto& traceA =
            vision::cachedTrace(spec.a.id, spec.a.batchSize);
        const auto& traceB =
            vision::cachedTrace(spec.b.id, spec.b.batchSize);
        makespan = gpu_.runShared({&traceA, &traceB}).makespan;
        cache::BinaryWriter w(kGpuRunMagic, kRecordVersion);
        w.f64(makespan);
        artifacts.store("gpurun", key, std::move(w).finish());
    }

    std::lock_guard<std::mutex> lock(cacheMutex_);
    gpuCache_.emplace(spec, makespan);
    return makespan;
}

void
DataCollector::simulateBags(std::span<const BagSpec> specs,
                            BagSimRequest want)
{
    // Distinct canonical bags whose co-runs the in-process caches are
    // still missing; everything else is a lookup away already.
    std::set<BagSpec> cpuTodo;
    std::set<BagSpec> gpuTodo;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        for (const auto& raw : specs) {
            const BagSpec spec = raw.canonical();
            if (want.cpu && sharedCpuCache_.count(spec) == 0)
                cpuTodo.insert(spec);
            if (want.gpu && gpuCache_.count(spec) == 0)
                gpuTodo.insert(spec);
        }
    }
    if (cpuTodo.empty() && gpuTodo.empty())
        return;

    // CPU co-runs read each member's best-alone thread count; warm the
    // per-member caches first, one task per *distinct* member, so no
    // two bag workers redo the same alone-run ladder.
    if (!cpuTodo.empty()) {
        std::set<BagMember> memberSet;
        for (const auto& spec : cpuTodo) {
            memberSet.insert(spec.a);
            memberSet.insert(spec.b);
        }
        const std::vector<BagMember> members(memberSet.begin(),
                                             memberSet.end());
        parallel::parallelFor(members.size(), [&](std::size_t i) {
            ensureMember(members[i]);
        });
    }

    // One unit per uncached (bag, simulator) co-run, fanned across the
    // pool lanes in a single batch. CPU and GPU runs of the same bag
    // are independent, so they ride as separate units.
    struct Unit
    {
        BagSpec spec;
        bool gpu = false;
    };
    std::vector<Unit> units;
    units.reserve(cpuTodo.size() + gpuTodo.size());
    for (const auto& spec : cpuTodo)
        units.push_back({spec, false});
    for (const auto& spec : gpuTodo)
        units.push_back({spec, true});
    obs::defaultRegistry()
        .counter("collector.batch_units")
        .add(units.size());
    parallel::parallelFor(units.size(), [&](std::size_t i) {
        if (units[i].gpu)
            gpuBagMakespan(units[i].spec);
        else
            sharedCpuRun(units[i].spec);
    });
}

std::vector<double>
DataCollector::measureFairnessBatch(std::span<const BagSpec> specs)
{
    simulateBags(specs, {.cpu = true, .gpu = false});
    std::vector<double> out;
    out.reserve(specs.size());
    for (const auto& spec : specs)
        out.push_back(measureFairness(spec));
    return out;
}

double
DataCollector::measureFairness(const BagSpec& raw_spec)
{
    const BagSpec spec = raw_spec.canonical();
    const auto& shared = sharedCpuRun(spec);
    const std::vector<double> alone{ipcAlone(spec.a), ipcAlone(spec.b)};
    return fairness(shared.ipcShared, alone, params_.fairnessVariant);
}

DataPoint
DataCollector::collect(const BagSpec& raw_spec)
{
    const BagSpec spec = raw_spec.canonical();

    DataPoint point;
    point.spec = spec;
    point.a = appFeatures(spec.a);
    point.b = appFeatures(spec.b);

    const auto& shared = sharedCpuRun(spec);
    point.cpuSharedMakespan = shared.makespan;
    const std::vector<double> alone{ipcAlone(spec.a), ipcAlone(spec.b)};
    point.fairness =
        fairness(shared.ipcShared, alone, params_.fairnessVariant);

    point.gpuBagTime = gpuBagMakespan(spec);
    obs::defaultRegistry().counter("collector.bags_collected").add(1);
    return point;
}

std::vector<DataPoint>
DataCollector::collectAll(const std::vector<BagSpec>& specs)
{
    const obs::ScopedPhase phase("campaign-collection");

    // Whole-campaign artifact: a warm second process loads every
    // DataPoint from one binary record and runs zero simulation (and
    // zero profiling — traces are only fetched on the compute path).
    auto& artifacts = cache::defaultArtifactCache();
    const std::uint64_t key =
        campaignKey(specs, cpu_.config(), gpu_.config(), params_);
    auto loaded = artifacts.loadAndParse(
        "campaign", key,
        [](const std::string& blob, const std::string& path) {
            return campaignFromBinary(blob, path);
        });
    if (loaded)
        return std::move(*loaded);

    obs::defaultRegistry()
        .gauge("collector.parallel_threads")
        .set(static_cast<double>(parallel::maxThreads()));

    // One batch: simulateBags() warms the per-member caches (one task
    // per distinct member, so no two workers redo the same
    // single-instance simulations) and then fans every uncached bag
    // co-run — CPU fairness runs and GPU targets alike — across the
    // pool. Assembly below is then pure cache hits, so a serial loop
    // keeps the output order trivially identical to the serial path.
    simulateBags(specs);
    std::vector<DataPoint> out;
    out.reserve(specs.size());
    for (const auto& spec : specs)
        out.push_back(collect(spec));
    artifacts.store("campaign", key, campaignToBinary(out));
    return out;
}

std::vector<BagSpec>
DataCollector::campaign91()
{
    std::vector<BagSpec> specs;

    // 45 homogeneous bags: every benchmark at every batch size.
    for (vision::BenchmarkId id : vision::kAllBenchmarks) {
        for (int batch : vision::kBatchSizes) {
            BagMember m{id, batch};
            specs.push_back(BagSpec{m, m});
        }
    }

    // 36 heterogeneous pairs at the standard batch of 20.
    for (std::size_t i = 0; i < vision::kAllBenchmarks.size(); ++i) {
        for (std::size_t j = i + 1; j < vision::kAllBenchmarks.size();
             ++j) {
            specs.push_back(
                BagSpec{{vision::kAllBenchmarks[i], 20},
                        {vision::kAllBenchmarks[j], 20}});
        }
    }

    // 10 heterogeneous pairs with mixed batch sizes (deterministic
    // stride-3 pairing; the second lap uses larger batches).
    for (int k = 0; k < 10; ++k) {
        const auto i = static_cast<std::size_t>(k) % 9;
        const auto j = (i + 3) % 9;
        const int batchA = k < 9 ? 40 : 80;
        const int batchB = k < 9 ? 160 : 320;
        specs.push_back(BagSpec{{vision::kAllBenchmarks[i], batchA},
                                {vision::kAllBenchmarks[j], batchB}});
    }

    if (specs.size() != 91)
        panic("campaign91: expected 91 bags");
    return specs;
}

std::vector<Seconds>
DataCollector::cpuHomogeneousScaling(const BagMember& member,
                                     int max_instances)
{
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);
    const int threads = bestThreads(member);

    std::vector<Seconds> out;
    out.reserve(static_cast<std::size_t>(max_instances));
    for (int k = 1; k <= max_instances; ++k) {
        std::vector<const isa::WorkloadTrace*> traces(
            static_cast<std::size_t>(k), &trace);
        std::vector<int> teams(static_cast<std::size_t>(k), threads);
        out.push_back(cpu_.runShared(traces, teams).makespan);
    }
    return out;
}

std::vector<Seconds>
DataCollector::gpuHomogeneousScaling(const BagMember& member,
                                     int max_instances)
{
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);

    std::vector<Seconds> out;
    out.reserve(static_cast<std::size_t>(max_instances));
    for (int k = 1; k <= max_instances; ++k) {
        std::vector<const isa::WorkloadTrace*> traces(
            static_cast<std::size_t>(k), &trace);
        out.push_back(gpu_.runShared(traces).makespan);
    }
    return out;
}

ml::Dataset
toDataset(const std::vector<DataPoint>& points)
{
    ml::Dataset data(bagFeatureNames());
    for (const auto& p : points) {
        data.addRow(buildBagVector(p.a, p.b, p.fairness), p.gpuBagTime,
                    p.spec.groupLabel());
    }
    return data;
}

std::pair<ml::Dataset, ml::Dataset>
splitOutBenchmark(const ml::Dataset& data, const std::string& benchmark)
{
    auto containsToken = [&](const std::string& group) {
        std::size_t start = 0;
        while (start <= group.size()) {
            const std::size_t end = group.find('+', start);
            const std::string token =
                group.substr(start, end == std::string::npos
                                        ? std::string::npos
                                        : end - start);
            if (token == benchmark)
                return true;
            if (end == std::string::npos)
                break;
            start = end + 1;
        }
        return false;
    };

    std::vector<std::size_t> trainIdx;
    std::vector<std::size_t> testIdx;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (containsToken(data.group(i)))
            testIdx.push_back(i);
        else
            trainIdx.push_back(i);
    }
    return {data.subset(trainIdx), data.subset(testIdx)};
}

}  // namespace mapp::predictor
