#include "predictor/data_collection.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/log.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "profiler/mica.h"

namespace mapp::predictor {

bool
BagMember::operator<(const BagMember& rhs) const
{
    if (id != rhs.id)
        return static_cast<int>(id) < static_cast<int>(rhs.id);
    return batchSize < rhs.batchSize;
}

BagSpec
BagSpec::canonical() const
{
    BagSpec out = *this;
    if (out.b < out.a)
        std::swap(out.a, out.b);
    return out;
}

std::string
BagSpec::label() const
{
    std::ostringstream os;
    os << vision::benchmarkName(a.id) << '@' << a.batchSize << '+'
       << vision::benchmarkName(b.id) << '@' << b.batchSize;
    return os.str();
}

std::string
BagSpec::groupLabel() const
{
    return vision::benchmarkName(a.id) + "+" + vision::benchmarkName(b.id);
}

DataCollector::DataCollector(cpusim::CpuConfig cpu_config,
                             gpusim::GpuConfig gpu_config,
                             CollectorParams params)
    : cpu_(cpu_config), gpu_(gpu_config), params_(params)
{
}

int
DataCollector::bestThreads(const BagMember& member)
{
    if (params_.forcedThreads > 0)
        return params_.forcedThreads;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = threadCache_.find(member);
        if (it != threadCache_.end())
            return it->second;
    }
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);
    const int best = cpu_.bestThreadCount(trace);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return threadCache_.emplace(member, best).first->second;
}

double
DataCollector::ipcAlone(const BagMember& member)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = ipcCache_.find(member);
        if (it != ipcCache_.end())
            return it->second;
    }
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);
    const auto result = cpu_.runAlone(trace, bestThreads(member));
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return ipcCache_.emplace(member, result.ipc).first->second;
}

const AppFeatures&
DataCollector::appFeatures(const BagMember& member)
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = featureCache_.find(member);
        if (it != featureCache_.end()) {
            obs::defaultRegistry()
                .counter("collector.feature_cache_hits")
                .add(1);
            return it->second;
        }
    }

    const obs::ScopedPhase phase("feature-extraction");
    obs::defaultRegistry().counter("collector.feature_cache_misses").add(1);
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);
    const auto mica = profiler::characterize(trace);

    AppFeatures f;
    f.app = vision::benchmarkName(member.id);
    f.batchSize = member.batchSize;
    f.cpuTime = cpu_.runAlone(trace, bestThreads(member)).time;
    f.gpuTime = gpu_.runAlone(trace).time;
    f.mixPercent = mica.mixPercent;
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return featureCache_.emplace(member, std::move(f)).first->second;
}

double
DataCollector::measureFairness(const BagSpec& raw_spec)
{
    const obs::ScopedPhase phase("fairness-measurement");
    const BagSpec spec = raw_spec.canonical();
    const auto& traceA = vision::cachedTrace(spec.a.id, spec.a.batchSize);
    const auto& traceB = vision::cachedTrace(spec.b.id, spec.b.batchSize);
    const auto cpuBag = cpu_.runShared(
        {&traceA, &traceB}, {bestThreads(spec.a), bestThreads(spec.b)});
    const std::vector<double> ipcShared{cpuBag.apps[0].ipc,
                                        cpuBag.apps[1].ipc};
    const std::vector<double> alone{ipcAlone(spec.a), ipcAlone(spec.b)};
    return fairness(ipcShared, alone, params_.fairnessVariant);
}

DataPoint
DataCollector::collect(const BagSpec& raw_spec)
{
    const BagSpec spec = raw_spec.canonical();

    DataPoint point;
    point.spec = spec;
    point.a = appFeatures(spec.a);
    point.b = appFeatures(spec.b);

    const auto& traceA = vision::cachedTrace(spec.a.id, spec.a.batchSize);
    const auto& traceB = vision::cachedTrace(spec.b.id, spec.b.batchSize);

    // Fairness: the bag's CPU co-run vs. alone IPCs (Equation 2).
    {
        const obs::ScopedPhase phase("fairness-measurement");
        const auto cpuBag =
            cpu_.runShared({&traceA, &traceB},
                           {bestThreads(spec.a), bestThreads(spec.b)});
        point.cpuSharedMakespan = cpuBag.makespan;
        const std::vector<double> ipcShared{cpuBag.apps[0].ipc,
                                            cpuBag.apps[1].ipc};
        const std::vector<double> alone{ipcAlone(spec.a),
                                        ipcAlone(spec.b)};
        point.fairness =
            fairness(ipcShared, alone, params_.fairnessVariant);
    }

    // The target: the bag's GPU execution time under MPS.
    {
        const obs::ScopedPhase phase("gpu-bag-measurement");
        point.gpuBagTime = gpu_.runShared({&traceA, &traceB}).makespan;
    }
    obs::defaultRegistry().counter("collector.bags_collected").add(1);
    return point;
}

std::vector<DataPoint>
DataCollector::collectAll(const std::vector<BagSpec>& specs)
{
    const obs::ScopedPhase phase("campaign-collection");
    obs::defaultRegistry()
        .gauge("collector.parallel_threads")
        .set(static_cast<double>(parallel::maxThreads()));

    // Pre-warm the per-app caches: one task per *distinct* member so
    // no two workers redo the same single-instance simulations, and
    // the cache contents end up identical to a serial run's.
    std::set<BagMember> memberSet;
    for (const auto& spec : specs) {
        const BagSpec canon = spec.canonical();
        memberSet.insert(canon.a);
        memberSet.insert(canon.b);
    }
    const std::vector<BagMember> members(memberSet.begin(),
                                         memberSet.end());
    parallel::parallelFor(members.size(), [&](std::size_t i) {
        appFeatures(members[i]);
        ipcAlone(members[i]);
    });

    // Measure bags concurrently; slot i belongs to specs[i], so the
    // dataset row order (canonical bag order) matches the serial loop.
    std::vector<DataPoint> out(specs.size());
    parallel::parallelFor(specs.size(), [&](std::size_t i) {
        out[i] = collect(specs[i]);
    });
    return out;
}

std::vector<BagSpec>
DataCollector::campaign91()
{
    std::vector<BagSpec> specs;

    // 45 homogeneous bags: every benchmark at every batch size.
    for (vision::BenchmarkId id : vision::kAllBenchmarks) {
        for (int batch : vision::kBatchSizes) {
            BagMember m{id, batch};
            specs.push_back(BagSpec{m, m});
        }
    }

    // 36 heterogeneous pairs at the standard batch of 20.
    for (std::size_t i = 0; i < vision::kAllBenchmarks.size(); ++i) {
        for (std::size_t j = i + 1; j < vision::kAllBenchmarks.size();
             ++j) {
            specs.push_back(
                BagSpec{{vision::kAllBenchmarks[i], 20},
                        {vision::kAllBenchmarks[j], 20}});
        }
    }

    // 10 heterogeneous pairs with mixed batch sizes (deterministic
    // stride-3 pairing; the second lap uses larger batches).
    for (int k = 0; k < 10; ++k) {
        const auto i = static_cast<std::size_t>(k) % 9;
        const auto j = (i + 3) % 9;
        const int batchA = k < 9 ? 40 : 80;
        const int batchB = k < 9 ? 160 : 320;
        specs.push_back(BagSpec{{vision::kAllBenchmarks[i], batchA},
                                {vision::kAllBenchmarks[j], batchB}});
    }

    if (specs.size() != 91)
        panic("campaign91: expected 91 bags");
    return specs;
}

std::vector<Seconds>
DataCollector::cpuHomogeneousScaling(const BagMember& member,
                                     int max_instances)
{
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);
    const int threads = bestThreads(member);

    std::vector<Seconds> out;
    out.reserve(static_cast<std::size_t>(max_instances));
    for (int k = 1; k <= max_instances; ++k) {
        std::vector<const isa::WorkloadTrace*> traces(
            static_cast<std::size_t>(k), &trace);
        std::vector<int> teams(static_cast<std::size_t>(k), threads);
        out.push_back(cpu_.runShared(traces, teams).makespan);
    }
    return out;
}

std::vector<Seconds>
DataCollector::gpuHomogeneousScaling(const BagMember& member,
                                     int max_instances)
{
    const auto& trace = vision::cachedTrace(member.id, member.batchSize);

    std::vector<Seconds> out;
    out.reserve(static_cast<std::size_t>(max_instances));
    for (int k = 1; k <= max_instances; ++k) {
        std::vector<const isa::WorkloadTrace*> traces(
            static_cast<std::size_t>(k), &trace);
        out.push_back(gpu_.runShared(traces).makespan);
    }
    return out;
}

ml::Dataset
toDataset(const std::vector<DataPoint>& points)
{
    ml::Dataset data(bagFeatureNames());
    for (const auto& p : points) {
        data.addRow(buildBagVector(p.a, p.b, p.fairness), p.gpuBagTime,
                    p.spec.groupLabel());
    }
    return data;
}

std::pair<ml::Dataset, ml::Dataset>
splitOutBenchmark(const ml::Dataset& data, const std::string& benchmark)
{
    auto containsToken = [&](const std::string& group) {
        std::size_t start = 0;
        while (start <= group.size()) {
            const std::size_t end = group.find('+', start);
            const std::string token =
                group.substr(start, end == std::string::npos
                                        ? std::string::npos
                                        : end - start);
            if (token == benchmark)
                return true;
            if (end == std::string::npos)
                break;
            start = end + 1;
        }
        return false;
    };

    std::vector<std::size_t> trainIdx;
    std::vector<std::size_t> testIdx;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (containsToken(data.group(i)))
            testIdx.push_back(i);
        else
            trainIdx.push_back(i);
    }
    return {data.subset(trainIdx), data.subset(testIdx)};
}

}  // namespace mapp::predictor
