/**
 * @file
 * The paper's fairness feature (Equation 2): for a bag of tasks T, each
 * task's slowdown is IPC_shared / IPC_alone, and fairness is the
 * minimum over ordered task pairs of the ratio of their slowdowns —
 * equivalently min slowdown / max slowdown. It is measured on the
 * multicore CPU (Linux perf in the paper; the CPU simulator's IPCs
 * here) and quantifies contention in a shared environment.
 */

#ifndef MAPP_PREDICTOR_FAIRNESS_H
#define MAPP_PREDICTOR_FAIRNESS_H

#include <span>
#include <vector>

namespace mapp::predictor {

/** How the per-task slowdowns are folded into one number. */
enum class FairnessVariant {
    MinOverPairs,   ///< Equation 2: min slowdown / max slowdown
    MeanSlowdown,   ///< ablation: arithmetic mean of slowdowns
    HarmonicMean,   ///< ablation: harmonic mean of slowdowns
};

/**
 * Fairness of a bag given each task's shared and alone IPCs.
 *
 * @param ipc_shared per-task IPC when co-running
 * @param ipc_alone per-task IPC in isolation
 * @param variant folding rule (Equation 2 by default)
 * @return fairness in (0, 1] for MinOverPairs; 1 means no one is
 *         disproportionately slowed down
 */
double fairness(std::span<const double> ipc_shared,
                std::span<const double> ipc_alone,
                FairnessVariant variant = FairnessVariant::MinOverPairs);

/** Per-task slowdowns IPC_shared / IPC_alone. */
std::vector<double> slowdowns(std::span<const double> ipc_shared,
                              std::span<const double> ipc_alone);

}  // namespace mapp::predictor

#endif  // MAPP_PREDICTOR_FAIRNESS_H
