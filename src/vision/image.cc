#include "vision/image.h"

#include <algorithm>
#include <cmath>

namespace mapp::vision {

Image::Image(int w, int h, float fill)
    : w_(w), h_(h),
      data_(static_cast<std::size_t>(w) * static_cast<std::size_t>(h), fill)
{
}

float
Image::atClamped(int x, int y) const
{
    x = std::clamp(x, 0, w_ - 1);
    y = std::clamp(y, 0, h_ - 1);
    return at(x, y);
}

double
Image::mean() const
{
    if (data_.empty())
        return 0.0;
    double acc = 0.0;
    for (float v : data_)
        acc += v;
    return acc / static_cast<double>(data_.size());
}

IntegralImage::IntegralImage(const Image& img)
    : w_(img.width()), h_(img.height()),
      sums_(static_cast<std::size_t>(w_ + 1) *
                static_cast<std::size_t>(h_ + 1),
            0.0)
{
    const auto stride = static_cast<std::size_t>(w_ + 1);
    for (int y = 0; y < h_; ++y) {
        double rowSum = 0.0;
        for (int x = 0; x < w_; ++x) {
            rowSum += img.at(x, y);
            sums_[(static_cast<std::size_t>(y) + 1) * stride +
                  static_cast<std::size_t>(x) + 1] =
                sums_[static_cast<std::size_t>(y) * stride +
                      static_cast<std::size_t>(x) + 1] +
                rowSum;
        }
    }
}

double
IntegralImage::boxSum(int x0, int y0, int x1, int y1) const
{
    x0 = std::clamp(x0, 0, w_ - 1);
    y0 = std::clamp(y0, 0, h_ - 1);
    x1 = std::clamp(x1, 0, w_ - 1);
    y1 = std::clamp(y1, 0, h_ - 1);
    if (x1 < x0 || y1 < y0)
        return 0.0;
    const auto stride = static_cast<std::size_t>(w_ + 1);
    auto s = [&](int x, int y) {
        return sums_[static_cast<std::size_t>(y) * stride +
                     static_cast<std::size_t>(x)];
    };
    return s(x1 + 1, y1 + 1) - s(x0, y1 + 1) - s(x1 + 1, y0) + s(x0, y0);
}

namespace synth {

Image
texture(int w, int h, Rng& rng, int cell_size)
{
    // Random lattice values, bilinearly interpolated.
    const int gw = w / cell_size + 2;
    const int gh = h / cell_size + 2;
    std::vector<float> grid(static_cast<std::size_t>(gw) *
                            static_cast<std::size_t>(gh));
    for (auto& v : grid)
        v = static_cast<float>(rng.uniform(40.0, 210.0));

    Image img(w, h);
    for (int y = 0; y < h; ++y) {
        const int gy = y / cell_size;
        const float fy =
            static_cast<float>(y % cell_size) / static_cast<float>(cell_size);
        for (int x = 0; x < w; ++x) {
            const int gx = x / cell_size;
            const float fx = static_cast<float>(x % cell_size) /
                             static_cast<float>(cell_size);
            auto g = [&](int i, int j) {
                return grid[static_cast<std::size_t>(j) *
                                static_cast<std::size_t>(gw) +
                            static_cast<std::size_t>(i)];
            };
            const float top = g(gx, gy) * (1 - fx) + g(gx + 1, gy) * fx;
            const float bot =
                g(gx, gy + 1) * (1 - fx) + g(gx + 1, gy + 1) * fx;
            img.at(x, y) = top * (1 - fy) + bot * fy;
        }
    }
    return img;
}

void
drawRect(Image& img, int x0, int y0, int x1, int y1, float value)
{
    x0 = std::max(x0, 0);
    y0 = std::max(y0, 0);
    x1 = std::min(x1, img.width() - 1);
    y1 = std::min(y1, img.height() - 1);
    for (int y = y0; y <= y1; ++y)
        for (int x = x0; x <= x1; ++x)
            img.at(x, y) = value;
}

void
drawDisc(Image& img, int cx, int cy, int radius, float value)
{
    const int r2 = radius * radius;
    for (int y = std::max(cy - radius, 0);
         y <= std::min(cy + radius, img.height() - 1); ++y) {
        for (int x = std::max(cx - radius, 0);
             x <= std::min(cx + radius, img.width() - 1); ++x) {
            const int dx = x - cx;
            const int dy = y - cy;
            if (dx * dx + dy * dy <= r2)
                img.at(x, y) = value;
        }
    }
}

void
drawLine(Image& img, int x0, int y0, int x1, int y1, float value,
         int thickness)
{
    const int steps =
        std::max(std::abs(x1 - x0), std::abs(y1 - y0)) + 1;
    for (int i = 0; i < steps; ++i) {
        const float t =
            static_cast<float>(i) / static_cast<float>(std::max(steps - 1, 1));
        const int x =
            x0 + static_cast<int>(std::lround(t * static_cast<float>(x1 - x0)));
        const int y =
            y0 + static_cast<int>(std::lround(t * static_cast<float>(y1 - y0)));
        for (int dy = -thickness / 2; dy <= thickness / 2; ++dy)
            for (int dx = -thickness / 2; dx <= thickness / 2; ++dx)
                if (img.inside(x + dx, y + dy))
                    img.at(x + dx, y + dy) = value;
    }
}

Image
scene(int w, int h, Rng& rng)
{
    Image img = texture(w, h, rng);

    const int numRects = static_cast<int>(rng.uniformInt(3, 6));
    for (int i = 0; i < numRects; ++i) {
        const int x0 = static_cast<int>(rng.uniformInt(0, w - 12));
        const int y0 = static_cast<int>(rng.uniformInt(0, h - 12));
        const int rw = static_cast<int>(rng.uniformInt(8, w / 3));
        const int rh = static_cast<int>(rng.uniformInt(8, h / 3));
        drawRect(img, x0, y0, x0 + rw, y0 + rh,
                 static_cast<float>(rng.uniform(0.0, 255.0)));
    }
    const int numDiscs = static_cast<int>(rng.uniformInt(2, 4));
    for (int i = 0; i < numDiscs; ++i) {
        drawDisc(img, static_cast<int>(rng.uniformInt(8, w - 8)),
                 static_cast<int>(rng.uniformInt(8, h - 8)),
                 static_cast<int>(rng.uniformInt(4, h / 6)),
                 static_cast<float>(rng.uniform(0.0, 255.0)));
    }
    const int numLines = static_cast<int>(rng.uniformInt(2, 5));
    for (int i = 0; i < numLines; ++i) {
        drawLine(img, static_cast<int>(rng.uniformInt(0, w - 1)),
                 static_cast<int>(rng.uniformInt(0, h - 1)),
                 static_cast<int>(rng.uniformInt(0, w - 1)),
                 static_cast<int>(rng.uniformInt(0, h - 1)),
                 static_cast<float>(rng.uniform(0.0, 255.0)), 2);
    }
    return img;
}

void
stampFace(Image& img, int cx, int cy, int half_width)
{
    const int hw = half_width;
    const int hh = half_width * 5 / 4;
    // Bright face oval (approximated by a disc + forehead rect).
    drawDisc(img, cx, cy, hw, 200.0f);
    drawRect(img, cx - hw / 2, cy - hh, cx + hw / 2, cy, 200.0f);
    // Dark eye boxes in the upper half (floored so small faces keep
    // detectable eye contrast).
    const int eyeW = std::max(hw / 3, 4);
    const int eyeH = std::max(hw / 4, 3);
    const int eyeY = cy - hw / 3;
    drawRect(img, cx - hw / 2 - eyeW / 2, eyeY - eyeH / 2,
             cx - hw / 2 + eyeW / 2, eyeY + eyeH / 2, 60.0f);
    drawRect(img, cx + hw / 2 - eyeW / 2, eyeY - eyeH / 2,
             cx + hw / 2 + eyeW / 2, eyeY + eyeH / 2, 60.0f);
    // Dark mouth bar in the lower half.
    drawRect(img, cx - hw / 3, cy + hw / 2 - 1, cx + hw / 3, cy + hw / 2 + 1,
             70.0f);
}

Image
facesScene(int w, int h, Rng& rng, int num_faces)
{
    Image img = texture(w, h, rng);
    for (int i = 0; i < num_faces; ++i) {
        const int hw = static_cast<int>(rng.uniformInt(10, 15));
        const int cx = static_cast<int>(rng.uniformInt(hw + 2, w - hw - 3));
        const int cy = static_cast<int>(rng.uniformInt(hw + 2, h - hw - 3));
        stampFace(img, cx, cy, hw);
    }
    return img;
}

}  // namespace synth

}  // namespace mapp::vision
