/**
 * @file
 * Linear support vector machine trained by dual coordinate descent
 * (Hsieh et al. 2008) — the role ThunderSVM plays in the paper. The SVM
 * benchmark trains a classifier on descriptors extracted from the batch
 * and then predicts the batch, so its cost is superlinear in batch size
 * like real SVM training.
 */

#ifndef MAPP_VISION_SVM_H
#define MAPP_VISION_SVM_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** Linear SVM hyper-parameters. */
struct SvmParams
{
    double c = 1.0;      ///< regularization
    int epochs = 60;     ///< coordinate-descent sweeps
    double tol = 1e-6;   ///< projected-gradient stop tolerance
};

/** A trained linear SVM model: w . x + b. */
class LinearSvm
{
  public:
    /**
     * Train on rows of @p x with labels in {-1, +1} (instrumented phases
     * "svm_train_epoch" per sweep).
     */
    void train(const std::vector<Descriptor>& x,
               const std::vector<int>& y, const SvmParams& params = {});

    /** Signed decision value for a sample. */
    double decision(const Descriptor& x) const;

    /** Predicted label in {-1, +1}. */
    int predict(const Descriptor& x) const;

    /** Fraction of correctly classified samples. */
    double accuracy(const std::vector<Descriptor>& x,
                    const std::vector<int>& y) const;

    const std::vector<double>& weights() const { return w_; }
    double bias() const { return b_; }
    bool trained() const { return !w_.empty(); }

  private:
    std::vector<double> w_;
    double b_ = 0.0;
};

/**
 * Run the SVM benchmark: extract compact descriptors from the batch,
 * train a linear SVM, predict the batch back; returns correct count.
 */
std::size_t runSvmBenchmark(const std::vector<Image>& batch,
                            const SvmParams& params = {});

/**
 * Extract a compact 1024-d descriptor (32x32 bilinear thumbnail,
 * mean-centered) used by the SVM benchmark (instrumented).
 */
Descriptor thumbnailDescriptor(const Image& img);

}  // namespace mapp::vision

#endif  // MAPP_VISION_SVM_H
