#include "vision/ops.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "profiler/op_profiler.h"

namespace mapp::vision::ops {

PhaseBuilder::PhaseBuilder(std::string name)
{
    phase_.name = std::move(name);
}

PhaseBuilder&
PhaseBuilder::insts(isa::InstClass c, InstCount n)
{
    phase_.mix.add(c, n);
    return *this;
}

PhaseBuilder&
PhaseBuilder::read(Bytes b)
{
    phase_.bytesRead += b;
    return *this;
}

PhaseBuilder&
PhaseBuilder::write(Bytes b)
{
    phase_.bytesWritten += b;
    return *this;
}

PhaseBuilder&
PhaseBuilder::foot(Bytes b)
{
    phase_.footprint = b;
    return *this;
}

PhaseBuilder&
PhaseBuilder::par(double fraction)
{
    phase_.parallelFraction = fraction;
    return *this;
}

PhaseBuilder&
PhaseBuilder::staged(bool host_staged)
{
    phase_.hostStaged = host_staged;
    return *this;
}

PhaseBuilder&
PhaseBuilder::items(std::uint64_t n)
{
    phase_.workItems = std::max<std::uint64_t>(n, 1);
    return *this;
}

PhaseBuilder&
PhaseBuilder::loc(double locality)
{
    phase_.locality = locality;
    return *this;
}

PhaseBuilder&
PhaseBuilder::div(double divergence)
{
    phase_.branchDivergence = divergence;
    return *this;
}

void
PhaseBuilder::record()
{
    profiler::record(std::move(phase_));
}

namespace {

using isa::InstClass;

/** Bytes of a float. */
constexpr Bytes kF = sizeof(float);

}  // namespace

Image
convolve2d(const Image& img, std::span<const float> kernel, int k)
{
    const int r = k / 2;
    Image out(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            float acc = 0.0f;
            for (int j = 0; j < k; ++j)
                for (int i = 0; i < k; ++i)
                    acc += img.atClamped(x + i - r, y + j - r) *
                           kernel[static_cast<std::size_t>(j * k + i)];
            out.at(x, y) = acc;
        }
    }

    const auto px = static_cast<InstCount>(img.pixels());
    const auto taps = px * static_cast<InstCount>(k) *
                      static_cast<InstCount>(k);
    PhaseBuilder("convolve2d")
        .insts(InstClass::MemRead, taps)
        .insts(InstClass::FpAlu, taps)          // scalar tail mul-adds
        .insts(InstClass::Simd, taps / 2)       // vectorized portion
        .insts(InstClass::MemWrite, px)
        .insts(InstClass::IntAlu, px * 3)       // index arithmetic
        .insts(InstClass::Control, px + taps / 8)
        .insts(InstClass::Stack,
               static_cast<InstCount>(img.height()) * 2)
        .read(taps * kF)
        .write(px * kF)
        .foot(img.sizeBytes() + out.sizeBytes())
        .par(0.98)
        .items(px)
        .loc(0.8)
        .div(0.05)
        .record();
    return out;
}

Image
gaussianBlur(const Image& img, float sigma)
{
    const int r = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
    const int k = 2 * r + 1;
    std::vector<float> kernel(static_cast<std::size_t>(k));
    float sum = 0.0f;
    for (int i = 0; i < k; ++i) {
        const float d = static_cast<float>(i - r);
        kernel[static_cast<std::size_t>(i)] =
            std::exp(-d * d / (2.0f * sigma * sigma));
        sum += kernel[static_cast<std::size_t>(i)];
    }
    for (auto& v : kernel)
        v /= sum;

    // Horizontal then vertical pass.
    Image tmp(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x) {
            float acc = 0.0f;
            for (int i = 0; i < k; ++i)
                acc += img.atClamped(x + i - r, y) *
                       kernel[static_cast<std::size_t>(i)];
            tmp.at(x, y) = acc;
        }
    Image out(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y)
        for (int x = 0; x < img.width(); ++x) {
            float acc = 0.0f;
            for (int i = 0; i < k; ++i)
                acc += tmp.atClamped(x, y + i - r) *
                       kernel[static_cast<std::size_t>(i)];
            out.at(x, y) = acc;
        }

    const auto px = static_cast<InstCount>(img.pixels());
    const auto taps = 2 * px * static_cast<InstCount>(k);
    PhaseBuilder("gaussian_blur")
        .insts(InstClass::MemRead, taps)
        .insts(InstClass::FpAlu, taps)
        .insts(InstClass::Simd, taps * 3 / 4)  // separable filters vectorize
        .insts(InstClass::MemWrite, 2 * px)
        .insts(InstClass::IntAlu, 2 * px * 2)
        .insts(InstClass::Control, 2 * px + taps / 8)
        .insts(InstClass::Stack, static_cast<InstCount>(img.height()) * 4)
        .read(taps * kF)
        .write(2 * px * kF)
        .foot(img.sizeBytes() * 3)
        .par(0.98)
        .items(px)
        .loc(0.85)
        .div(0.03)
        .record();
    return out;
}

void
sobel(const Image& img, Image& gx, Image& gy)
{
    gx = Image(img.width(), img.height());
    gy = Image(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const float tl = img.atClamped(x - 1, y - 1);
            const float t = img.atClamped(x, y - 1);
            const float tr = img.atClamped(x + 1, y - 1);
            const float l = img.atClamped(x - 1, y);
            const float r = img.atClamped(x + 1, y);
            const float bl = img.atClamped(x - 1, y + 1);
            const float b = img.atClamped(x, y + 1);
            const float br = img.atClamped(x + 1, y + 1);
            gx.at(x, y) = (tr + 2 * r + br) - (tl + 2 * l + bl);
            gy.at(x, y) = (bl + 2 * b + br) - (tl + 2 * t + tr);
        }
    }
    const auto px = static_cast<InstCount>(img.pixels());
    PhaseBuilder("sobel")
        .insts(InstClass::MemRead, px * 8)
        .insts(InstClass::FpAlu, px * 10)
        .insts(InstClass::Simd, px * 4)
        .insts(InstClass::MemWrite, px * 2)
        .insts(InstClass::IntAlu, px * 3)
        .insts(InstClass::Control, px)
        .read(px * 8 * kF)
        .write(px * 2 * kF)
        .foot(img.sizeBytes() * 3)
        .par(0.98)
        .items(px)
        .loc(0.9)
        .div(0.03)
        .record();
}

void
gradientPolar(const Image& gx, const Image& gy, Image& mag, Image& orient)
{
    mag = Image(gx.width(), gx.height());
    orient = Image(gx.width(), gx.height());
    for (int y = 0; y < gx.height(); ++y) {
        for (int x = 0; x < gx.width(); ++x) {
            const float dx = gx.at(x, y);
            const float dy = gy.at(x, y);
            mag.at(x, y) = std::sqrt(dx * dx + dy * dy);
            orient.at(x, y) = std::atan2(dy, dx);
        }
    }
    const auto px = static_cast<InstCount>(gx.pixels());
    PhaseBuilder("gradient_polar")
        .insts(InstClass::MemRead, px * 2)
        .insts(InstClass::FpAlu, px * 14)  // sqrt + atan2 expansions
        .insts(InstClass::MemWrite, px * 2)
        .insts(InstClass::IntAlu, px * 2)
        .insts(InstClass::Control, px)
        .read(px * 2 * kF)
        .write(px * 2 * kF)
        .foot(gx.sizeBytes() * 4)
        .par(0.98)
        .items(px)
        .loc(0.9)
        .div(0.02)
        .record();
}

Image
downsample2x(const Image& img)
{
    const int w = std::max(img.width() / 2, 1);
    const int h = std::max(img.height() / 2, 1);
    Image out(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            out.at(x, y) =
                (img.atClamped(2 * x, 2 * y) +
                 img.atClamped(2 * x + 1, 2 * y) +
                 img.atClamped(2 * x, 2 * y + 1) +
                 img.atClamped(2 * x + 1, 2 * y + 1)) * 0.25f;

    const auto px = static_cast<InstCount>(out.pixels());
    PhaseBuilder("downsample2x")
        .insts(InstClass::MemRead, px * 4)
        .insts(InstClass::FpAlu, px * 4)
        .insts(InstClass::Simd, px)
        .insts(InstClass::MemWrite, px)
        .insts(InstClass::IntAlu, px * 4)
        .insts(InstClass::Shift, px * 2)  // index doubling
        .insts(InstClass::Control, px)
        .read(px * 4 * kF)
        .write(px * kF)
        .foot(img.sizeBytes() + out.sizeBytes())
        .par(0.98)
        .items(px)
        .loc(0.7)
        .div(0.02)
        .record();
    return out;
}

Image
resizeBilinear(const Image& img, int w, int h)
{
    Image out(w, h);
    const float sx =
        static_cast<float>(img.width()) / static_cast<float>(w);
    const float sy =
        static_cast<float>(img.height()) / static_cast<float>(h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
            const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
            const int x0 = static_cast<int>(std::floor(fx));
            const int y0 = static_cast<int>(std::floor(fy));
            const float ax = fx - static_cast<float>(x0);
            const float ay = fy - static_cast<float>(y0);
            const float top = img.atClamped(x0, y0) * (1 - ax) +
                              img.atClamped(x0 + 1, y0) * ax;
            const float bot = img.atClamped(x0, y0 + 1) * (1 - ax) +
                              img.atClamped(x0 + 1, y0 + 1) * ax;
            out.at(x, y) = top * (1 - ay) + bot * ay;
        }
    }
    const auto px = static_cast<InstCount>(out.pixels());
    PhaseBuilder("resize_bilinear")
        .insts(InstClass::MemRead, px * 4)
        .insts(InstClass::FpAlu, px * 10)
        .insts(InstClass::MemWrite, px)
        .insts(InstClass::IntAlu, px * 6)
        .insts(InstClass::Control, px)
        .read(px * 4 * kF)
        .write(px * kF)
        .foot(img.sizeBytes() + out.sizeBytes())
        .par(0.98)
        .items(px)
        .loc(0.6)
        .div(0.05)
        .record();
    return out;
}

IntegralImage
integral(const Image& img)
{
    IntegralImage ii(img);
    const auto px = static_cast<InstCount>(img.pixels());
    PhaseBuilder("integral_image")
        .insts(InstClass::MemRead, px * 2)
        .insts(InstClass::MemWrite, px)
        .insts(InstClass::IntAlu, px * 3)
        .insts(InstClass::FpAlu, px)
        .insts(InstClass::Control, px)
        .insts(InstClass::Stack, static_cast<InstCount>(img.height()))
        .read(px * 2 * kF)
        .write(px * static_cast<Bytes>(sizeof(double)))
        .foot(img.sizeBytes() + ii.sizeBytes())
        .par(0.6)  // prefix sums parallelize imperfectly
        .items(px)
        .loc(0.9)
        .div(0.02)
        .record();
    return ii;
}

std::vector<double>
histogram(std::span<const float> values, int bins, float lo, float hi)
{
    std::vector<double> out(static_cast<std::size_t>(bins), 0.0);
    const float width = (hi - lo) / static_cast<float>(bins);
    for (float v : values) {
        int b = static_cast<int>((v - lo) / width);
        b = std::clamp(b, 0, bins - 1);
        out[static_cast<std::size_t>(b)] += 1.0;
    }
    const auto n = static_cast<InstCount>(values.size());
    PhaseBuilder("histogram")
        .insts(InstClass::MemRead, n * 2)
        .insts(InstClass::MemWrite, n)
        .insts(InstClass::IntAlu, n * 3)
        .insts(InstClass::FpAlu, n * 2)
        .insts(InstClass::Control, n * 2)
        .read(n * kF)
        .write(n * static_cast<Bytes>(sizeof(double)) / 4)
        .foot(static_cast<Bytes>(values.size()) * kF)
        .par(0.7)  // bin updates contend
        .items(n)
        .loc(0.95)
        .div(0.3)
        .record();
    return out;
}

std::vector<std::pair<int, int>>
nonMaxSuppress(const Image& response, float threshold, int radius)
{
    std::vector<std::pair<int, int>> maxima;
    InstCount comparisons = 0;
    for (int y = 0; y < response.height(); ++y) {
        for (int x = 0; x < response.width(); ++x) {
            const float v = response.at(x, y);
            ++comparisons;
            if (v <= threshold)
                continue;
            bool isMax = true;
            for (int j = -radius; j <= radius && isMax; ++j) {
                for (int i = -radius; i <= radius; ++i) {
                    if (i == 0 && j == 0)
                        continue;
                    ++comparisons;
                    if (response.atClamped(x + i, y + j) > v) {
                        isMax = false;
                        break;
                    }
                }
            }
            if (isMax)
                maxima.emplace_back(x, y);
        }
    }
    const auto px = static_cast<InstCount>(response.pixels());
    PhaseBuilder("non_max_suppress")
        .insts(InstClass::MemRead, comparisons)
        .insts(InstClass::FpAlu, comparisons)
        .insts(InstClass::Control, comparisons + px)
        .insts(InstClass::IntAlu, px * 2)
        .insts(InstClass::MemWrite,
               static_cast<InstCount>(maxima.size()) * 2)
        .read(comparisons * kF)
        .write(static_cast<Bytes>(maxima.size()) * 2 *
               static_cast<Bytes>(sizeof(int)))
        .foot(response.sizeBytes())
        .par(0.95)
        .items(px)
        .loc(0.85)
        .div(0.6)  // data-dependent rejection
        .record();
    return maxima;
}

double
dot(std::span<const float> a, std::span<const float> b)
{
    const std::size_t n = std::min(a.size(), b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);

    const auto in = static_cast<InstCount>(n);
    PhaseBuilder("dot")
        .insts(InstClass::MemRead, in * 2)
        .insts(InstClass::Simd, in * 3 / 2)  // fused multiply-add lanes
        .insts(InstClass::FpAlu, in / 4)
        .insts(InstClass::IntAlu, in / 4)
        .insts(InstClass::Control, in / 8 + 1)
        .read(in * 2 * kF)
        .foot(static_cast<Bytes>(n) * 2 * kF)
        .par(0.9)
        .items(in)
        .loc(0.5)
        .div(0.02)
        .record();
    return acc;
}

std::vector<double>
distanceMatrix(const std::vector<Descriptor>& a,
               const std::vector<Descriptor>& b)
{
    const std::size_t dim = a.empty() ? 0 : a.front().size();
    std::vector<double> out(a.size() * b.size(), 0.0);
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = 0; j < b.size(); ++j) {
            double acc = 0.0;
            for (std::size_t d = 0; d < dim; ++d) {
                const double diff = static_cast<double>(a[i][d]) -
                                    static_cast<double>(b[j][d]);
                acc += diff * diff;
            }
            out[i * b.size() + j] = acc;
        }
    }
    const auto ops = static_cast<InstCount>(a.size()) *
                     static_cast<InstCount>(b.size()) *
                     static_cast<InstCount>(std::max<std::size_t>(dim, 1));
    const auto pairs = static_cast<InstCount>(a.size()) *
                       static_cast<InstCount>(b.size());
    PhaseBuilder("distance_matrix")
        .insts(InstClass::MemRead, ops * 2)
        .insts(InstClass::Simd, ops * 2)
        .insts(InstClass::FpAlu, ops / 2)
        .insts(InstClass::MemWrite, pairs)
        .insts(InstClass::IntAlu, pairs * 2)
        .insts(InstClass::Control, pairs + ops / 8)
        .read(ops * 2 * kF)
        .write(pairs * static_cast<Bytes>(sizeof(double)))
        .foot((static_cast<Bytes>(a.size()) + static_cast<Bytes>(b.size())) *
                  static_cast<Bytes>(dim) * kF +
              static_cast<Bytes>(out.size()) *
                  static_cast<Bytes>(sizeof(double)))
        .par(0.97)
        .items(pairs)
        .loc(0.3)  // streaming through both sets
        .div(0.02)
        .record();
    return out;
}

std::vector<int>
topKSmallest(std::span<const double> values, int k)
{
    std::vector<int> idx;
    std::vector<bool> used(values.size(), false);
    InstCount scans = 0;
    for (int sel = 0; sel < k && sel < static_cast<int>(values.size());
         ++sel) {
        double best = std::numeric_limits<double>::infinity();
        int bestIdx = -1;
        for (std::size_t i = 0; i < values.size(); ++i) {
            ++scans;
            if (!used[i] && values[i] < best) {
                best = values[i];
                bestIdx = static_cast<int>(i);
            }
        }
        if (bestIdx < 0)
            break;
        used[static_cast<std::size_t>(bestIdx)] = true;
        idx.push_back(bestIdx);
    }
    PhaseBuilder("top_k_select")
        .insts(InstClass::MemRead, scans)
        .insts(InstClass::FpAlu, scans)
        .insts(InstClass::Control, scans * 2)
        .insts(InstClass::IntAlu, scans)
        .insts(InstClass::MemWrite, static_cast<InstCount>(idx.size()))
        .read(scans * static_cast<Bytes>(sizeof(double)))
        .foot(static_cast<Bytes>(values.size()) *
              static_cast<Bytes>(sizeof(double)))
        .par(0.8)
        .items(static_cast<std::uint64_t>(values.size()))
        .loc(0.7)
        .div(0.5)
        .record();
    return idx;
}

int
hammingDistance(const BinaryDescriptor& a, const BinaryDescriptor& b)
{
    const std::size_t n = std::min(a.size(), b.size());
    int dist = 0;
    for (std::size_t i = 0; i < n; ++i)
        dist += std::popcount(
            static_cast<unsigned>(a[i] ^ b[i]));

    const auto in = static_cast<InstCount>(n);
    PhaseBuilder("hamming")
        .insts(InstClass::MemRead, in * 2)
        .insts(InstClass::IntAlu, in * 2)
        .insts(InstClass::Shift, in)
        .insts(InstClass::Control, in / 4 + 1)
        .read(in * 2)
        .foot(static_cast<Bytes>(n) * 2)
        .par(0.9)
        .items(in)
        .loc(0.6)
        .div(0.05)
        .record();
    return dist;
}

Image
copyImage(const Image& img)
{
    Image out = img;
    const auto px = static_cast<InstCount>(img.pixels());
    PhaseBuilder("image_copy")
        .insts(InstClass::String, px / 4)  // rep-movs style copy
        .insts(InstClass::MemRead, px / 8)
        .insts(InstClass::MemWrite, px / 8)
        .insts(InstClass::Stack, 8)
        .insts(InstClass::IntAlu, px / 16 + 1)
        .insts(InstClass::Control, px / 64 + 1)
        .read(img.sizeBytes())
        .write(img.sizeBytes())
        .foot(img.sizeBytes() * 2)
        .par(0.5)
        .items(px)
        .loc(0.2)
        .div(0.01)
        .staged()
        .record();
    return out;
}

}  // namespace mapp::vision::ops
