#include "vision/registry.h"

#include <map>
#include <memory>
#include <mutex>

#include "cache/artifact_cache.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/trace_binary.h"
#include "obs/metrics.h"
#include "profiler/op_profiler.h"
#include "vision/facedet.h"
#include "vision/fast.h"
#include "vision/hog.h"
#include "vision/knn.h"
#include "vision/objrec.h"
#include "vision/orb.h"
#include "vision/sift.h"
#include "vision/surf.h"
#include "vision/svm.h"

namespace mapp::vision {

std::string
benchmarkName(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Fast: return "FAST";
      case BenchmarkId::Hog: return "HoG";
      case BenchmarkId::Knn: return "KNN";
      case BenchmarkId::ObjRec: return "OBJREC";
      case BenchmarkId::Orb: return "ORB";
      case BenchmarkId::Sift: return "SIFT";
      case BenchmarkId::Surf: return "SURF";
      case BenchmarkId::Svm: return "SVM";
      case BenchmarkId::FaceDet: return "FACEDET";
      default: break;
    }
    panic("benchmarkName: invalid benchmark id");
}

BenchmarkId
benchmarkFromName(const std::string& name)
{
    for (BenchmarkId id : kAllBenchmarks)
        if (benchmarkName(id) == name)
            return id;
    fatal("benchmarkFromName: unknown benchmark " + name);
}

std::string
benchmarkDescription(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Fast:
        return "Extracts corners from an image (FAST-9 segment test).";
      case BenchmarkId::Hog:
        return "Histograms of oriented gradients with block "
               "normalization.";
      case BenchmarkId::Knn:
        return "Classifies features with brute-force nearest neighbors.";
      case BenchmarkId::ObjRec:
        return "Object recognition: HoG feature extraction + SVM "
               "classification.";
      case BenchmarkId::Orb:
        return "FAST detector + rotated BRIEF binary descriptors.";
      case BenchmarkId::Sift:
        return "Scale/rotation/illumination-invariant features via a "
               "DoG pyramid.";
      case BenchmarkId::Surf:
        return "Speeded-up robust features via integral-image box "
               "filters.";
      case BenchmarkId::Svm:
        return "Trains a support vector machine and predicts feature "
               "classes.";
      case BenchmarkId::FaceDet:
        return "Face detection with a Haar cascade classifier.";
      default: break;
    }
    panic("benchmarkDescription: invalid benchmark id");
}

std::vector<Image>
generateBatch(BenchmarkId id, int n, std::uint64_t seed)
{
    // Mix the benchmark id and seed so each (benchmark, batch) pair sees
    // distinct deterministic content.
    Rng rng(seed * 0x9E3779B97F4A7C15ull +
            static_cast<std::uint64_t>(id) * 0x100000001B3ull + 17);
    std::vector<Image> out;
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        if (id == BenchmarkId::FaceDet) {
            out.push_back(synth::facesScene(kImageSize, kImageSize, rng,
                                            2 + i % 3));
        } else {
            out.push_back(synth::scene(kImageSize, kImageSize, rng));
        }
    }
    return out;
}

std::size_t
runBenchmark(BenchmarkId id, const std::vector<Image>& batch)
{
    switch (id) {
      case BenchmarkId::Fast: return runFastBenchmark(batch);
      case BenchmarkId::Hog: return runHogBenchmark(batch);
      case BenchmarkId::Knn: return runKnnBenchmark(batch);
      case BenchmarkId::ObjRec: return runObjRecBenchmark(batch);
      case BenchmarkId::Orb: return runOrbBenchmark(batch);
      case BenchmarkId::Sift: return runSiftBenchmark(batch);
      case BenchmarkId::Surf: return runSurfBenchmark(batch);
      case BenchmarkId::Svm: return runSvmBenchmark(batch);
      case BenchmarkId::FaceDet: return runFaceDetBenchmark(batch);
      default: break;
    }
    panic("runBenchmark: invalid benchmark id");
}

namespace {

/** True for benchmarks whose cost is linear per image. */
bool
isPerImage(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Svm:
      case BenchmarkId::Knn:
      case BenchmarkId::ObjRec:
        return false;
      default:
        return true;
    }
}

/** Distinct images actually executed for per-image benchmarks. */
constexpr int kSampleImages = 4;

}  // namespace

isa::WorkloadTrace
scaleTrace(const isa::WorkloadTrace& trace, std::uint64_t factor)
{
    isa::WorkloadTrace out(trace.app(), trace.batchSize());
    for (const auto& phase : trace.phases()) {
        isa::KernelPhase p = phase;
        p.mix = phase.mix.scaled(factor);
        p.bytesRead = phase.bytesRead * factor;
        p.bytesWritten = phase.bytesWritten * factor;
        p.workItems = phase.workItems * factor;
        p.launches = phase.launches * factor;
        out.append(std::move(p));
    }
    return out;
}

isa::WorkloadTrace
profileWorkload(BenchmarkId id, int batch_size, std::uint64_t seed)
{
    if (batch_size <= 0)
        fatal("profileWorkload: batch size must be positive");

    const bool sampled =
        isPerImage(id) && batch_size > kSampleImages &&
        batch_size % kSampleImages == 0;
    const int executed = sampled ? kSampleImages : batch_size;

    // The seed folds in the batch size so every batch size sees its own
    // image content (a new data point in the paper's sense).
    const auto batch = generateBatch(
        id, executed, seed ^ static_cast<std::uint64_t>(batch_size) * 31ull);

    profiler::ProfilerSession session(benchmarkName(id), batch_size);
    runBenchmark(id, batch);
    isa::WorkloadTrace trace = session.take();

    if (sampled) {
        trace = scaleTrace(
            trace, static_cast<std::uint64_t>(batch_size / executed));
    }
    return trace;
}

namespace {

/** One memoized trace slot: profiled exactly once, even under races. */
struct TraceCacheEntry
{
    std::once_flag once;
    isa::WorkloadTrace trace;
};

/**
 * Artifact-cache key for one profiled trace: identity (benchmark,
 * batch) plus every knob the profile depends on — the synthetic image
 * size, the per-image sampling width, and the profiling seed — so a
 * change to any of them lands on a fresh key.
 */
std::uint64_t
traceCacheKey(BenchmarkId id, int batch_size)
{
    cache::Hasher h = cache::keyHasher("trace");
    h.add(benchmarkName(id));
    h.add(batch_size);
    h.add(kImageSize);
    h.add(kSampleImages);
    h.add(std::uint64_t{0});  // profileWorkload's default seed
    return h.digest();
}

}  // namespace

const isa::WorkloadTrace&
cachedTrace(BenchmarkId id, int batch_size)
{
    // The map mutex only guards slot lookup/creation; the expensive
    // profiling run happens outside it under a per-key once_flag, so
    // worker threads profiling *different* (benchmark, batch) keys
    // proceed concurrently while racers on the *same* key block until
    // the first finishes. Entries are shared_ptr so references survive
    // map rebalancing.
    static std::mutex mutex;
    static std::map<std::pair<int, int>,
                    std::shared_ptr<TraceCacheEntry>>
        cache;

    const std::pair<int, int> key{static_cast<int>(id), batch_size};
    std::shared_ptr<TraceCacheEntry> entry;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it == cache.end()) {
            it = cache
                     .emplace(key,
                              std::make_shared<TraceCacheEntry>())
                     .first;
        }
        entry = it->second;
    }
    // In-memory hit/miss accounting: the call that runs the once-body
    // is the miss; everyone else (including racers that waited on the
    // flag) found a profiled slot.
    bool missed = false;
    std::call_once(entry->once, [&] {
        missed = true;
        // Cross-process layer: a previously profiled trace loads from
        // the artifact cache in microseconds; a corrupt or
        // version-mismatched entry is evicted inside loadAndParse and
        // we re-profile and rewrite it.
        auto& artifacts = mapp::cache::defaultArtifactCache();
        const std::uint64_t diskKey = traceCacheKey(id, batch_size);
        auto loaded = artifacts.loadAndParse(
            "trace", diskKey,
            [](const std::string& blob, const std::string& path) {
                return isa::traceFromBinary(blob, path);
            });
        if (loaded) {
            entry->trace = std::move(*loaded);
        } else {
            entry->trace = profileWorkload(id, batch_size);
            artifacts.store("trace", diskKey,
                            isa::traceToBinary(entry->trace));
        }
    });
    obs::defaultRegistry()
        .counter(missed ? "registry.trace_cache_misses"
                        : "registry.trace_cache_hits")
        .add(1);
    return entry->trace;
}

}  // namespace mapp::vision
