#include "vision/knn.h"

#include <algorithm>
#include <limits>
#include <span>

#include "common/log.h"
#include "vision/ops.h"
#include "vision/svm.h"

namespace mapp::vision {

void
KnnClassifier::fit(std::vector<Descriptor> x, std::vector<int> y)
{
    if (x.size() != y.size())
        fatal("KnnClassifier::fit: mismatched reference data");
    x_ = std::move(x);
    y_ = std::move(y);
}

std::vector<int>
KnnClassifier::predict(const std::vector<Descriptor>& queries,
                       const KnnParams& params) const
{
    std::vector<int> out;
    if (queries.empty() || x_.empty())
        return out;

    const auto dists = ops::distanceMatrix(queries, x_);

    // Fused top-k selection over all queries (one kernel on a GPU, not
    // one launch per query), recorded as a single phase.
    InstCount scans = 0;
    out.reserve(queries.size());
    std::vector<bool> used(x_.size());
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const double* row = dists.data() + q * x_.size();
        std::fill(used.begin(), used.end(), false);
        int votes = 0;
        for (int sel = 0;
             sel < params.k && sel < static_cast<int>(x_.size()); ++sel) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t bestIdx = 0;
            bool found = false;
            for (std::size_t i = 0; i < x_.size(); ++i) {
                ++scans;
                if (!used[i] && row[i] < best) {
                    best = row[i];
                    bestIdx = i;
                    found = true;
                }
            }
            if (!found)
                break;
            used[bestIdx] = true;
            votes += y_[bestIdx];
        }
        out.push_back(votes >= 0 ? 1 : -1);
    }

    const auto q = static_cast<InstCount>(queries.size());
    ops::PhaseBuilder("knn_select")
        .insts(isa::InstClass::MemRead, scans)
        .insts(isa::InstClass::FpAlu, scans)
        .insts(isa::InstClass::Control, scans * 2)
        .insts(isa::InstClass::IntAlu, scans + q * 8)
        .insts(isa::InstClass::MemWrite, q)
        .read(scans * sizeof(double))
        .write(q * sizeof(int))
        .foot(static_cast<Bytes>(queries.size()) *
              static_cast<Bytes>(x_.size()) * sizeof(double))
        .par(0.95)
        .items(q)
        .loc(0.6)
        .div(0.5)
        .record();
    return out;
}

std::vector<Descriptor>
gridDescriptors(const Image& img, const KnnParams& params)
{
    std::vector<Descriptor> out;
    const int grid = std::max(params.patchGrid, 1);
    const int tileW = img.width() / grid;
    const int tileH = img.height() / grid;

    // All patches of an image are extracted and downsampled by one
    // fused pass (one kernel launch on a GPU), recorded as one phase.
    for (int gy = 0; gy < grid; ++gy) {
        for (int gx = 0; gx < grid; ++gx) {
            Descriptor d;
            d.reserve(static_cast<std::size_t>(params.patchDim) *
                      static_cast<std::size_t>(params.patchDim));
            const float sx = static_cast<float>(tileW) /
                             static_cast<float>(params.patchDim);
            const float sy = static_cast<float>(tileH) /
                             static_cast<float>(params.patchDim);
            double mean = 0.0;
            for (int y = 0; y < params.patchDim; ++y) {
                for (int x = 0; x < params.patchDim; ++x) {
                    const int px = gx * tileW +
                                   static_cast<int>(
                                       (static_cast<float>(x) + 0.5f) * sx);
                    const int py = gy * tileH +
                                   static_cast<int>(
                                       (static_cast<float>(y) + 0.5f) * sy);
                    const float v = img.atClamped(px, py);
                    d.push_back(v);
                    mean += v;
                }
            }
            mean /= static_cast<double>(d.size());
            for (auto& v : d)
                v = static_cast<float>(v - mean);
            out.push_back(std::move(d));
        }
    }

    const auto samples = static_cast<InstCount>(grid) *
                         static_cast<InstCount>(grid) *
                         static_cast<InstCount>(params.patchDim) *
                         static_cast<InstCount>(params.patchDim);
    ops::PhaseBuilder("patch_extract")
        .insts(isa::InstClass::MemRead, samples)
        .insts(isa::InstClass::FpAlu, samples * 6)
        .insts(isa::InstClass::IntAlu, samples * 6)
        .insts(isa::InstClass::MemWrite, samples * 2)
        .insts(isa::InstClass::Control, samples)
        .read(samples * sizeof(float))
        .write(samples * 2 * sizeof(float))
        .foot(img.sizeBytes())
        .par(0.97)
        .items(samples)
        .loc(0.6)
        .div(0.05)
        .record();
    return out;
}

std::size_t
runKnnBenchmark(const std::vector<Image>& batch, const KnnParams& params)
{
    if (batch.size() < 4)
        return 0;

    // Reference dictionary: descriptors from a fixed number of leading
    // images (a feature dictionary does not grow with the batch); every
    // remaining image contributes queries, so cost is linear in batch.
    const std::size_t dictImages = std::min<std::size_t>(16, batch.size() / 2);

    std::vector<Descriptor> all;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        auto descs = gridDescriptors(staged, params);
        all.insert(all.end(), std::make_move_iterator(descs.begin()),
                   std::make_move_iterator(descs.end()));
    }

    auto energy = [](const Descriptor& d) {
        double acc = 0.0;
        for (float v : d)
            acc += static_cast<double>(v) * static_cast<double>(v);
        return acc;
    };

    const std::size_t perImage =
        static_cast<std::size_t>(params.patchGrid) *
        static_cast<std::size_t>(params.patchGrid);
    const std::size_t refCount = dictImages * perImage;

    std::vector<double> refEnergy;
    refEnergy.reserve(refCount);
    for (std::size_t i = 0; i < refCount; ++i)
        refEnergy.push_back(energy(all[i]));
    std::vector<double> sorted = refEnergy;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];

    std::vector<Descriptor> refs(all.begin(),
                                 all.begin() + static_cast<long>(refCount));
    std::vector<int> refLabels;
    refLabels.reserve(refCount);
    for (std::size_t i = 0; i < refCount; ++i)
        refLabels.push_back(refEnergy[i] > median ? 1 : -1);

    std::vector<Descriptor> queries(
        all.begin() + static_cast<long>(refCount), all.end());

    KnnClassifier knn;
    knn.fit(std::move(refs), std::move(refLabels));
    const auto labels = knn.predict(queries, params);

    std::size_t positives = 0;
    for (int label : labels)
        if (label == 1)
            ++positives;
    return positives;
}

}  // namespace mapp::vision
