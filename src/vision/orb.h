/**
 * @file
 * ORB: FAST keypoints ranked by Harris response, oriented by the
 * intensity centroid, described with rotated BRIEF (256 binary tests).
 */

#ifndef MAPP_VISION_ORB_H
#define MAPP_VISION_ORB_H

#include <vector>

#include "vision/fast.h"
#include "vision/image.h"

namespace mapp::vision {

/** ORB parameters. */
struct OrbParams
{
    FastParams fast;
    int maxKeypoints = 200;   ///< keep the strongest N by Harris score
    int briefPairs = 256;     ///< binary tests per descriptor
    int patchRadius = 8;      ///< descriptor sampling patch
};

/** An ORB detection result for one image. */
struct OrbResult
{
    std::vector<Keypoint> keypoints;
    std::vector<BinaryDescriptor> descriptors;
};

/** Detect and describe ORB features (instrumented). */
OrbResult detectOrb(const Image& img, const OrbParams& params = {});

/**
 * Run the ORB benchmark over a batch; returns total descriptor bytes as a
 * checksum.
 */
std::size_t runOrbBenchmark(const std::vector<Image>& batch,
                            const OrbParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_ORB_H
