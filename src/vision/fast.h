/**
 * @file
 * FAST-9 corner detection (Rosten & Drummond segment test) with
 * instrumented phases. The segment test's early-exit behaviour is counted
 * from the actual tests performed, so textured images produce the
 * control-heavy, divergent mix the real detector has.
 */

#ifndef MAPP_VISION_FAST_H
#define MAPP_VISION_FAST_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** FAST detector parameters. */
struct FastParams
{
    float threshold = 20.0f;  ///< min |center - ring| contrast
    int arcLength = 9;        ///< contiguous ring pixels required
    int nmsRadius = 3;        ///< non-max suppression radius
};

/**
 * Detect FAST corners in @p img.
 *
 * Emits instrumented phases "fast_segment_test" and "non_max_suppress".
 */
std::vector<Keypoint> detectFast(const Image& img,
                                 const FastParams& params = {});

/**
 * Run the FAST benchmark over a batch: detect corners in every image and
 * return the total number of keypoints (checksum).
 */
std::size_t runFastBenchmark(const std::vector<Image>& batch,
                             const FastParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_FAST_H
