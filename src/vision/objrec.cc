#include "vision/objrec.h"

#include <algorithm>

#include "common/log.h"
#include "common/rng.h"
#include "vision/ops.h"

namespace mapp::vision {

namespace {

/** Generate a prototype scene for one synthetic object class. */
Image
classPrototype(int cls, int size, Rng& rng)
{
    switch (cls % 3) {
      case 0:
        return synth::texture(size, size, rng);
      case 1: {
        Image img = synth::texture(size, size, rng);
        synth::drawDisc(img, size / 2, size / 2, size / 4, 230.0f);
        synth::drawDisc(img, size / 2, size / 2, size / 8, 40.0f);
        return img;
      }
      default:
        return synth::facesScene(size, size, rng, 2);
    }
}

}  // namespace

void
ObjectRecognizer::train(int image_size, std::uint64_t seed,
                        const ObjRecParams& params)
{
    params_ = params;
    Rng rng(seed);

    // HoG descriptors of the prototypes.
    std::vector<Descriptor> xs;
    std::vector<int> classes;
    for (int cls = 0; cls < params.numClasses; ++cls) {
        for (int p = 0; p < params.prototypesPerClass; ++p) {
            const Image proto = classPrototype(cls, image_size, rng);
            xs.push_back(computeHog(proto, params.hog));
            classes.push_back(cls);
        }
    }

    // One-vs-rest linear SVMs.
    models_.clear();
    models_.resize(static_cast<std::size_t>(params.numClasses));
    for (int cls = 0; cls < params.numClasses; ++cls) {
        std::vector<int> labels;
        labels.reserve(classes.size());
        for (int c : classes)
            labels.push_back(c == cls ? 1 : -1);
        models_[static_cast<std::size_t>(cls)].train(xs, labels,
                                                     params.svm);
    }
}

int
ObjectRecognizer::classify(const Image& img) const
{
    if (models_.empty())
        fatal("ObjectRecognizer::classify: model not trained");
    const Descriptor hog = computeHog(img, params_.hog);
    int best = 0;
    double bestScore = -1e300;
    for (std::size_t cls = 0; cls < models_.size(); ++cls) {
        const double score = models_[cls].decision(hog);
        if (score > bestScore) {
            bestScore = score;
            best = static_cast<int>(cls);
        }
    }
    // Decision-stage phase: numClasses dot products over the descriptor.
    const auto dim = static_cast<InstCount>(hog.size());
    const auto nc = static_cast<InstCount>(models_.size());
    ops::PhaseBuilder("objrec_classify")
        .insts(isa::InstClass::MemRead, nc * dim * 2)
        .insts(isa::InstClass::Simd, nc * dim * 3 / 2)
        .insts(isa::InstClass::FpAlu, nc * dim / 4)
        .insts(isa::InstClass::IntAlu, nc * 6)
        .insts(isa::InstClass::Control, nc * 4)
        .insts(isa::InstClass::Stack, nc * 2)
        .read(nc * dim * sizeof(float))
        .foot(static_cast<Bytes>(dim) * sizeof(float) *
              static_cast<Bytes>(models_.size() + 1))
        .par(0.9)
        .items(nc)
        .loc(0.7)
        .div(0.05)
        .record();
    return best;
}

std::size_t
runObjRecBenchmark(const std::vector<Image>& batch,
                   const ObjRecParams& params)
{
    if (batch.empty())
        return 0;
    ObjectRecognizer rec;
    rec.train(batch.front().width(), 0xC1A55ull, params);

    std::size_t checksum = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        checksum += static_cast<std::size_t>(rec.classify(staged));
    }
    return checksum;
}

}  // namespace mapp::vision
