/**
 * @file
 * The benchmark registry: the paper's nine vision workloads (Table II)
 * behind one enum, plus the profiling batch runner that produces
 * WorkloadTraces (the analogue of running PIN+MICA over a benchmark on
 * one input batch) and a process-wide memoized trace cache.
 */

#ifndef MAPP_VISION_REGISTRY_H
#define MAPP_VISION_REGISTRY_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/trace.h"
#include "vision/image.h"

namespace mapp::vision {

/** The nine benchmarks of Table II. */
enum class BenchmarkId : int {
    Fast = 0,
    Hog,
    Knn,
    ObjRec,
    Orb,
    Sift,
    Surf,
    Svm,
    FaceDet,
    NumBenchmarks
};

/** Number of benchmarks. */
inline constexpr int kNumBenchmarks =
    static_cast<int>(BenchmarkId::NumBenchmarks);

/** All benchmarks in the paper's x-axis order. */
inline constexpr std::array<BenchmarkId, 9> kAllBenchmarks = {
    BenchmarkId::Fast, BenchmarkId::Hog,  BenchmarkId::Knn,
    BenchmarkId::ObjRec, BenchmarkId::Orb, BenchmarkId::Sift,
    BenchmarkId::Surf, BenchmarkId::Svm,  BenchmarkId::FaceDet,
};

/** The paper's batch sizes (Section V-B). */
inline constexpr std::array<int, 5> kBatchSizes = {20, 40, 80, 160, 320};

/** Display name matching the paper's figures (e.g. "OBJREC"). */
std::string benchmarkName(BenchmarkId id);

/** Parse a display name back to the id. @throws FatalError if unknown. */
BenchmarkId benchmarkFromName(const std::string& name);

/** One-line description from Table II. */
std::string benchmarkDescription(BenchmarkId id);

/** Side length of the synthetic input images. */
inline constexpr int kImageSize = 192;

/**
 * Generate the input batch a benchmark would be fed: face-bearing scenes
 * for FACEDET, cluttered scenes otherwise. Deterministic in (id, n,
 * seed).
 */
std::vector<Image> generateBatch(BenchmarkId id, int n, std::uint64_t seed);

/**
 * Execute one benchmark on a batch (no profiling); returns the
 * benchmark's checksum. Useful for functional tests.
 */
std::size_t runBenchmark(BenchmarkId id, const std::vector<Image>& batch);

/**
 * Profile one benchmark at the given batch size: run it under a profiler
 * session and return the trace.
 *
 * Per-image benchmarks are sampled on a few distinct images and the
 * trace is scaled to the full batch (their work is linear per image);
 * the training-style benchmarks (SVM, KNN, OBJREC) always run the full
 * batch since their cost is not linear in it.
 */
isa::WorkloadTrace profileWorkload(BenchmarkId id, int batch_size,
                                   std::uint64_t seed = 0);

/**
 * Memoized profileWorkload: one profile per (benchmark, batch size) per
 * process, backed by the persistent artifact cache so later processes
 * load the binary trace instead of re-profiling (corrupt entries fall
 * back to re-profiling transparently). In-memory hits and misses are
 * counted under `registry.trace_cache_{hits,misses}`; the disk layer
 * reports under `cache.*`. The returned reference stays valid for the
 * process lifetime.
 */
const isa::WorkloadTrace& cachedTrace(BenchmarkId id, int batch_size);

/** Scale a trace's counts/traffic/work items by an integer factor. */
isa::WorkloadTrace scaleTrace(const isa::WorkloadTrace& trace,
                              std::uint64_t factor);

}  // namespace mapp::vision

#endif  // MAPP_VISION_REGISTRY_H
