/**
 * @file
 * SIFT: Gaussian scale-space pyramid, difference-of-Gaussians extrema
 * detection, orientation assignment and 128-dimensional gradient
 * histogram descriptors (Lowe 2004, simplified but structurally faithful).
 */

#ifndef MAPP_VISION_SIFT_H
#define MAPP_VISION_SIFT_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** SIFT parameters. */
struct SiftParams
{
    int scalesPerOctave = 3;      ///< intervals s (s+3 blur levels built)
    float sigma0 = 1.6f;          ///< base blur
    float contrastThreshold = 3.0f;  ///< min |DoG| for a keypoint
    int maxOctaves = 4;
};

/** SIFT output for one image. */
struct SiftResult
{
    std::vector<Keypoint> keypoints;
    std::vector<Descriptor> descriptors;  ///< 128-d each
};

/** Detect and describe SIFT features (instrumented). */
SiftResult detectSift(const Image& img, const SiftParams& params = {});

/** Run the SIFT benchmark over a batch; returns total keypoints. */
std::size_t runSiftBenchmark(const std::vector<Image>& batch,
                             const SiftParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_SIFT_H
