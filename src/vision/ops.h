/**
 * @file
 * Instrumented image/linear-algebra primitives.
 *
 * Every function here performs its real computation on real data AND
 * tallies the dynamic instruction classes, memory traffic and behavioural
 * attributes of the work it just did, recording them as one KernelPhase
 * into the active profiler session (a no-op without a session). The
 * counts are derived from the actual loop trip counts of the executed
 * code, so data-dependent work (e.g. early-exit tests, detected
 * keypoints) shows up in the mix exactly as PIN would see it.
 */

#ifndef MAPP_VISION_OPS_H
#define MAPP_VISION_OPS_H

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "isa/kernel_phase.h"
#include "vision/image.h"

namespace mapp::vision::ops {

/**
 * Fluent builder used by instrumented primitives to assemble and record
 * a KernelPhase. All setters return *this for chaining; record() emits
 * the phase to the active profiler session.
 */
class PhaseBuilder
{
  public:
    explicit PhaseBuilder(std::string name);

    PhaseBuilder& insts(isa::InstClass c, InstCount n);
    PhaseBuilder& read(Bytes b);
    PhaseBuilder& write(Bytes b);
    PhaseBuilder& foot(Bytes b);
    PhaseBuilder& par(double fraction);
    PhaseBuilder& staged(bool host_staged = true);
    PhaseBuilder& items(std::uint64_t n);
    PhaseBuilder& loc(double locality);
    PhaseBuilder& div(double divergence);

    /** Validate and send the phase to the profiler. */
    void record();

  private:
    isa::KernelPhase phase_;
};

/** Dense 2-D convolution with a k x k kernel (border clamped). */
Image convolve2d(const Image& img, std::span<const float> kernel, int k);

/** Separable Gaussian blur with the given sigma (radius = ceil(3 sigma)). */
Image gaussianBlur(const Image& img, float sigma);

/** 3x3 Sobel gradients; writes gx and gy. */
void sobel(const Image& img, Image& gx, Image& gy);

/** Gradient magnitude and orientation (radians) from gx/gy. */
void gradientPolar(const Image& gx, const Image& gy, Image& mag,
                   Image& orient);

/** Halve both dimensions by 2x2 averaging. */
Image downsample2x(const Image& img);

/** Bilinear resize to (w, h). */
Image resizeBilinear(const Image& img, int w, int h);

/** Instrumented integral-image construction. */
IntegralImage integral(const Image& img);

/** Histogram of values into @p bins equal-width bins over [lo, hi). */
std::vector<double> histogram(std::span<const float> values, int bins,
                              float lo, float hi);

/**
 * 2-D non-maximum suppression on a response map: returns (x, y) of local
 * maxima above @p threshold within a (2r+1)^2 neighborhood.
 */
std::vector<std::pair<int, int>> nonMaxSuppress(const Image& response,
                                                float threshold, int radius);

/** Instrumented dot product (SSE-heavy mix, like a BLAS-1 kernel). */
double dot(std::span<const float> a, std::span<const float> b);

/**
 * All-pairs squared Euclidean distances between row sets; result is
 * a.size() x b.size(), row-major. Streaming, memory-bound mix.
 */
std::vector<double> distanceMatrix(
    const std::vector<Descriptor>& a, const std::vector<Descriptor>& b);

/**
 * Indices of the k smallest values in @p values (selection by repeated
 * scan; control-heavy mix akin to a GPU top-k).
 */
std::vector<int> topKSmallest(std::span<const double> values, int k);

/** Hamming distance between equal-length binary descriptors. */
int hammingDistance(const BinaryDescriptor& a, const BinaryDescriptor& b);

/**
 * Instrumented buffer copy (string-class mix): models the memcpy-style
 * staging every benchmark does when loading a batch.
 */
Image copyImage(const Image& img);

}  // namespace mapp::vision::ops

#endif  // MAPP_VISION_OPS_H
