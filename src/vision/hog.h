/**
 * @file
 * Histogram of Oriented Gradients (Dalal & Triggs): cell-level gradient
 * orientation histograms with overlapping-block L2 normalization.
 */

#ifndef MAPP_VISION_HOG_H
#define MAPP_VISION_HOG_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** HoG parameters. */
struct HogParams
{
    int cellSize = 8;    ///< pixels per cell side
    int blockSize = 2;   ///< cells per block side
    int bins = 9;        ///< orientation bins over [0, pi)
};

/** Compute the HoG descriptor of a whole image (instrumented). */
Descriptor computeHog(const Image& img, const HogParams& params = {});

/** Run the HoG benchmark over a batch; returns total descriptor floats. */
std::size_t runHogBenchmark(const std::vector<Image>& batch,
                            const HogParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_HOG_H
