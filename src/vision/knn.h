/**
 * @file
 * Brute-force k-nearest-neighbor classification (Garcia et al. 2010
 * style: full distance matrix + per-query top-k selection).
 */

#ifndef MAPP_VISION_KNN_H
#define MAPP_VISION_KNN_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** KNN parameters. */
struct KnnParams
{
    int k = 5;          ///< neighbors consulted per query
    int patchGrid = 5;  ///< patches per image side (5 -> 25 descriptors)
    int patchDim = 12;  ///< descriptor side (12 -> 144-d)
};

/**
 * Extract a grid of patch descriptors from an image: the image is cut
 * into patchGrid x patchGrid tiles, each resized to patchDim x patchDim
 * and mean-centered. KNN then matches descriptors, not whole images,
 * like the high-dimensional feature matching of Garcia et al.
 */
std::vector<Descriptor> gridDescriptors(const Image& img,
                                        const KnnParams& params = {});

/** A brute-force KNN classifier over float descriptors. */
class KnnClassifier
{
  public:
    /** Store the reference set (no training computation). */
    void fit(std::vector<Descriptor> x, std::vector<int> y);

    /**
     * Classify queries by majority vote among the k nearest references
     * (instrumented: "distance_matrix" + "top_k_select" phases).
     */
    std::vector<int> predict(const std::vector<Descriptor>& queries,
                             const KnnParams& params = {}) const;

    std::size_t referenceCount() const { return x_.size(); }

  private:
    std::vector<Descriptor> x_;
    std::vector<int> y_;
};

/**
 * Run the KNN benchmark: split the batch into references and queries,
 * classify the queries; returns the number classified into class 1.
 */
std::size_t runKnnBenchmark(const std::vector<Image>& batch,
                            const KnnParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_KNN_H
