#include "vision/fast.h"

#include <array>
#include <cmath>

#include "vision/ops.h"

namespace mapp::vision {

namespace {

/** Bresenham circle of radius 3: the 16 FAST ring offsets. */
constexpr std::array<std::pair<int, int>, 16> kRing = {{
    {0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0}, {3, 1}, {2, 2}, {1, 3},
    {0, 3}, {-1, 3}, {-2, 2}, {-3, 1}, {-3, 0}, {-3, -1}, {-2, -2},
    {-1, -3},
}};

/**
 * Segment test at (x, y): true if >= arc contiguous ring pixels are all
 * brighter or all darker than center +/- threshold. Counts every ring
 * access in @p tests.
 */
bool
segmentTest(const Image& img, int x, int y, float threshold, int arc,
            InstCount& tests, float& response)
{
    const float c = img.at(x, y);
    const float hi = c + threshold;
    const float lo = c - threshold;

    // Quick rejection: any 9-of-16 contiguous arc covers at least two
    // of the four compass points, so fewer than 2 agreeing compass
    // points rules a corner out (the FAST-9 short-circuit).
    int brighter = 0;
    int darker = 0;
    for (int probe : {0, 4, 8, 12}) {
        ++tests;
        const float v = img.at(x + kRing[static_cast<std::size_t>(probe)].first,
                               y + kRing[static_cast<std::size_t>(probe)].second);
        if (v > hi)
            ++brighter;
        else if (v < lo)
            ++darker;
    }
    if (brighter < 2 && darker < 2)
        return false;

    // Full contiguous-arc scan over 16 + arc wrapped positions.
    int runBright = 0;
    int runDark = 0;
    int bestBright = 0;
    int bestDark = 0;
    float score = 0.0f;
    for (int i = 0; i < 16 + arc; ++i) {
        ++tests;
        const auto& off = kRing[static_cast<std::size_t>(i % 16)];
        const float v = img.at(x + off.first, y + off.second);
        if (v > hi) {
            ++runBright;
            runDark = 0;
            score += v - hi;
        } else if (v < lo) {
            ++runDark;
            runBright = 0;
            score += lo - v;
        } else {
            runBright = 0;
            runDark = 0;
        }
        bestBright = std::max(bestBright, runBright);
        bestDark = std::max(bestDark, runDark);
    }
    response = score / 16.0f;
    return bestBright >= arc || bestDark >= arc;
}

}  // namespace

std::vector<Keypoint>
detectFast(const Image& img, const FastParams& params)
{
    Image response(img.width(), img.height(), 0.0f);
    InstCount tests = 0;
    InstCount candidates = 0;
    for (int y = 3; y < img.height() - 3; ++y) {
        for (int x = 3; x < img.width() - 3; ++x) {
            float r = 0.0f;
            if (segmentTest(img, x, y, params.threshold, params.arcLength,
                            tests, r)) {
                response.at(x, y) = r;
                ++candidates;
            }
        }
    }

    const auto px = static_cast<InstCount>(img.pixels());
    ops::PhaseBuilder("fast_segment_test")
        .insts(isa::InstClass::MemRead, tests + px)
        .insts(isa::InstClass::IntAlu, tests * 2 + px * 2)
        .insts(isa::InstClass::FpAlu, tests)
        .insts(isa::InstClass::Control, tests * 2 + px)
        .insts(isa::InstClass::MemWrite, candidates)
        .insts(isa::InstClass::Stack, static_cast<InstCount>(img.height()))
        .read((tests + px) * sizeof(float))
        .write(candidates * sizeof(float))
        .foot(img.sizeBytes() * 2)
        .par(0.97)
        .items(px)
        .loc(0.85)
        .div(0.65)  // heavy early-exit divergence
        .record();

    auto maxima = ops::nonMaxSuppress(response, 0.0f, params.nmsRadius);
    std::vector<Keypoint> kps;
    kps.reserve(maxima.size());
    for (auto [x, y] : maxima) {
        Keypoint kp;
        kp.x = static_cast<float>(x);
        kp.y = static_cast<float>(y);
        kp.response = response.at(x, y);
        kps.push_back(kp);
    }
    return kps;
}

std::size_t
runFastBenchmark(const std::vector<Image>& batch, const FastParams& params)
{
    std::size_t total = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        total += detectFast(staged, params).size();
    }
    return total;
}

}  // namespace mapp::vision
