#include "vision/sift.h"

#include <algorithm>
#include <cmath>

#include "vision/ops.h"

namespace mapp::vision {

namespace {

constexpr int kDescWidth = 4;   // 4x4 spatial cells
constexpr int kDescBins = 8;    // orientation bins per cell

/**
 * Scan a DoG triplet (below, center, above) for 3x3x3 extrema above the
 * contrast threshold; appends keypoints at the given octave scale.
 */
void
findExtrema(const Image& below, const Image& center, const Image& above,
            float contrast, float octaveScale, std::vector<Keypoint>& out,
            InstCount& comparisons)
{
    for (int y = 1; y < center.height() - 1; ++y) {
        for (int x = 1; x < center.width() - 1; ++x) {
            const float v = center.at(x, y);
            ++comparisons;
            if (std::abs(v) < contrast)
                continue;
            bool isMax = true;
            bool isMin = true;
            for (int j = -1; j <= 1 && (isMax || isMin); ++j) {
                for (int i = -1; i <= 1; ++i) {
                    for (const Image* level : {&below, &center, &above}) {
                        if (level == &center && i == 0 && j == 0)
                            continue;
                        ++comparisons;
                        const float n = level->at(x + i, y + j);
                        if (n >= v)
                            isMax = false;
                        if (n <= v)
                            isMin = false;
                    }
                }
            }
            if (isMax || isMin) {
                Keypoint kp;
                kp.x = static_cast<float>(x) * octaveScale;
                kp.y = static_cast<float>(y) * octaveScale;
                kp.scale = octaveScale;
                kp.response = std::abs(v);
                out.push_back(kp);
            }
        }
    }
}

/**
 * Build a 128-d descriptor from gradient magnitude/orientation around the
 * keypoint in octave coordinates.
 */
Descriptor
buildDescriptor(const Image& mag, const Image& orient, int cx, int cy)
{
    Descriptor desc(kDescWidth * kDescWidth * kDescBins, 0.0f);
    const int half = kDescWidth * 2;  // 8-pixel half-window
    for (int j = -half; j < half; ++j) {
        for (int i = -half; i < half; ++i) {
            const int x = cx + i;
            const int y = cy + j;
            const float m = mag.atClamped(x, y);
            float o = orient.atClamped(x, y);
            if (o < 0.0f)
                o += 2.0f * static_cast<float>(M_PI);
            const int cellX = (i + half) / kDescWidth;
            const int cellY = (j + half) / kDescWidth;
            int bin = static_cast<int>(o / (2.0f * static_cast<float>(M_PI)) *
                                       kDescBins);
            bin = std::clamp(bin, 0, kDescBins - 1);
            desc[static_cast<std::size_t>(
                (cellY * kDescWidth + cellX) * kDescBins + bin)] += m;
        }
    }
    // L2 normalize with clipping (Lowe's 0.2 clamp).
    double norm = 0.0;
    for (float v : desc)
        norm += static_cast<double>(v) * static_cast<double>(v);
    norm = std::sqrt(std::max(norm, 1e-12));
    for (auto& v : desc)
        v = std::min(static_cast<float>(v / norm), 0.2f);
    norm = 0.0;
    for (float v : desc)
        norm += static_cast<double>(v) * static_cast<double>(v);
    norm = std::sqrt(std::max(norm, 1e-12));
    for (auto& v : desc)
        v = static_cast<float>(v / norm);
    return desc;
}

}  // namespace

SiftResult
detectSift(const Image& img, const SiftParams& params)
{
    SiftResult result;
    const int levels = params.scalesPerOctave + 3;

    Image base = img;
    float octaveScale = 1.0f;
    for (int octave = 0; octave < params.maxOctaves; ++octave) {
        if (base.width() < 16 || base.height() < 16)
            break;

        // Gaussian levels for this octave.
        std::vector<Image> gauss;
        gauss.reserve(static_cast<std::size_t>(levels));
        for (int s = 0; s < levels; ++s) {
            const float sigma =
                params.sigma0 *
                std::pow(2.0f, static_cast<float>(s) /
                                   static_cast<float>(params.scalesPerOctave));
            gauss.push_back(ops::gaussianBlur(base, sigma));
        }

        // Difference of Gaussians.
        std::vector<Image> dog;
        dog.reserve(static_cast<std::size_t>(levels - 1));
        for (int s = 0; s + 1 < levels; ++s) {
            Image d(base.width(), base.height());
            for (int y = 0; y < base.height(); ++y)
                for (int x = 0; x < base.width(); ++x)
                    d.at(x, y) = gauss[static_cast<std::size_t>(s + 1)].at(x, y) -
                                 gauss[static_cast<std::size_t>(s)].at(x, y);
            dog.push_back(std::move(d));
        }
        {
            const auto px = static_cast<InstCount>(base.pixels()) *
                            static_cast<InstCount>(dog.size());
            ops::PhaseBuilder("dog_subtract")
                .insts(isa::InstClass::MemRead, px * 2)
                .insts(isa::InstClass::FpAlu, px)
                .insts(isa::InstClass::Simd, px)
                .insts(isa::InstClass::MemWrite, px)
                .insts(isa::InstClass::IntAlu, px)
                .insts(isa::InstClass::Control, px / 4)
                .read(px * 2 * sizeof(float))
                .write(px * sizeof(float))
                .foot(base.sizeBytes() * 3)
                .par(0.98)
                .items(px)
                .loc(0.85)
                .div(0.02)
                .record();
        }

        // Extrema over interior DoG triplets.
        std::vector<Keypoint> octaveKps;
        InstCount comparisons = 0;
        for (std::size_t s = 1; s + 1 < dog.size(); ++s)
            findExtrema(dog[s - 1], dog[s], dog[s + 1],
                        params.contrastThreshold, octaveScale, octaveKps,
                        comparisons);
        {
            ops::PhaseBuilder("dog_extrema")
                .insts(isa::InstClass::MemRead, comparisons)
                .insts(isa::InstClass::FpAlu, comparisons)
                .insts(isa::InstClass::Control, comparisons * 2)
                .insts(isa::InstClass::IntAlu, comparisons / 2)
                .insts(isa::InstClass::MemWrite,
                       static_cast<InstCount>(octaveKps.size()) * 4)
                .insts(isa::InstClass::Stack,
                       static_cast<InstCount>(octaveKps.size()))
                .read(comparisons * sizeof(float))
                .write(static_cast<Bytes>(octaveKps.size()) *
                       sizeof(Keypoint))
                .foot(base.sizeBytes() * 4)
                .par(0.95)
                .items(static_cast<std::uint64_t>(base.pixels()))
                .loc(0.8)
                .div(0.55)
                .record();
        }

        // Gradients of the representative Gaussian level for descriptors.
        Image gx, gy, mag, orient;
        ops::sobel(gauss[1], gx, gy);
        ops::gradientPolar(gx, gy, mag, orient);

        InstCount descWork = 0;
        for (const auto& kp : octaveKps) {
            const int cx = static_cast<int>(kp.x / octaveScale);
            const int cy = static_cast<int>(kp.y / octaveScale);
            result.descriptors.push_back(buildDescriptor(mag, orient, cx, cy));
            result.keypoints.push_back(kp);
            descWork += 256;  // 16x16 sample window
        }
        {
            if (descWork > 0) {
                ops::PhaseBuilder("sift_descriptor")
                    .insts(isa::InstClass::MemRead, descWork * 2)
                    .insts(isa::InstClass::FpAlu, descWork * 6)
                    .insts(isa::InstClass::Simd, descWork)
                    .insts(isa::InstClass::IntAlu, descWork * 3)
                    .insts(isa::InstClass::Control, descWork)
                    .insts(isa::InstClass::MemWrite, descWork / 2)
                    .insts(isa::InstClass::Stack,
                           static_cast<InstCount>(octaveKps.size()) * 4)
                    .read(descWork * 2 * sizeof(float))
                    .write(static_cast<Bytes>(octaveKps.size()) * 128 *
                           sizeof(float))
                    .foot(base.sizeBytes() * 2)
                    .par(0.95)
                    .items(static_cast<std::uint64_t>(
                        std::max<std::size_t>(octaveKps.size(), 1)))
                    .loc(0.75)
                    .div(0.15)
                    .record();
            }
        }

        base = ops::downsample2x(gauss[static_cast<std::size_t>(
            params.scalesPerOctave)]);
        octaveScale *= 2.0f;
    }
    return result;
}

std::size_t
runSiftBenchmark(const std::vector<Image>& batch, const SiftParams& params)
{
    std::size_t total = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        total += detectSift(staged, params).keypoints.size();
    }
    return total;
}

}  // namespace mapp::vision
