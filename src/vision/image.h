/**
 * @file
 * Grayscale images, keypoints and the synthetic scene generators that
 * stand in for the paper's image batches. The generators are seeded and
 * deterministic; they draw textured backgrounds with rectangles, discs
 * and lines (corner/edge content for the feature detectors) and optional
 * face-like patterns (for the Haar cascade).
 */

#ifndef MAPP_VISION_IMAGE_H
#define MAPP_VISION_IMAGE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace mapp::vision {

/** A dense single-channel float image, values nominally in [0, 255]. */
class Image
{
  public:
    Image() = default;

    /** A w x h image filled with @p fill. */
    Image(int w, int h, float fill = 0.0f);

    int width() const { return w_; }
    int height() const { return h_; }
    std::size_t pixels() const { return data_.size(); }

    /** Bytes occupied by the pixel data. */
    Bytes sizeBytes() const { return data_.size() * sizeof(float); }

    /** Unchecked access. */
    float& at(int x, int y) { return data_[idx(x, y)]; }
    float at(int x, int y) const { return data_[idx(x, y)]; }

    /** Access with coordinates clamped to the border. */
    float atClamped(int x, int y) const;

    /** True if (x, y) lies inside the image. */
    bool inside(int x, int y) const
    {
        return x >= 0 && y >= 0 && x < w_ && y < h_;
    }

    const std::vector<float>& data() const { return data_; }
    std::vector<float>& data() { return data_; }

    /** Mean pixel value (checksum aid). */
    double mean() const;

  private:
    std::size_t
    idx(int x, int y) const
    {
        return static_cast<std::size_t>(y) * static_cast<std::size_t>(w_) +
               static_cast<std::size_t>(x);
    }

    int w_ = 0;
    int h_ = 0;
    std::vector<float> data_;
};

/** A detected interest point. */
struct Keypoint
{
    float x = 0.0f;
    float y = 0.0f;
    float scale = 1.0f;     ///< detection scale (pyramid level, sigma)
    float angle = 0.0f;     ///< dominant orientation in radians
    float response = 0.0f;  ///< detector response (corner score etc.)
};

/** A float feature descriptor (SIFT: 128-d, SURF: 64-d, HoG: variable). */
using Descriptor = std::vector<float>;

/** A binary descriptor (ORB/BRIEF: 32 bytes = 256 bits). */
using BinaryDescriptor = std::vector<std::uint8_t>;

/** Summed-area table with (w+1) x (h+1) layout for O(1) box sums. */
class IntegralImage
{
  public:
    IntegralImage() = default;

    /** Build from an image (unrecorded; see ops::integral for the
     * instrumented variant). */
    explicit IntegralImage(const Image& img);

    int width() const { return w_; }
    int height() const { return h_; }

    /**
     * Inclusive box sum over [x0, x1] x [y0, y1]; coordinates are clamped
     * to the image.
     */
    double boxSum(int x0, int y0, int x1, int y1) const;

    Bytes sizeBytes() const { return sums_.size() * sizeof(double); }

  private:
    int w_ = 0;
    int h_ = 0;
    std::vector<double> sums_;  // (w_+1) x (h_+1)
};

namespace synth {

/** Smooth value-noise texture (cellSize-pixel lattice, bilinear). */
Image texture(int w, int h, Rng& rng, int cell_size = 8);

/** Draw an axis-aligned filled rectangle. */
void drawRect(Image& img, int x0, int y0, int x1, int y1, float value);

/** Draw a filled disc. */
void drawDisc(Image& img, int cx, int cy, int radius, float value);

/** Draw an anti-aliased-ish thick line. */
void drawLine(Image& img, int x0, int y0, int x1, int y1, float value,
              int thickness = 1);

/**
 * A cluttered scene: textured background plus random rectangles, discs
 * and lines — rich in corners and edges for the feature detectors.
 */
Image scene(int w, int h, Rng& rng);

/**
 * Stamp a face-like pattern (bright oval, two dark eye boxes, dark mouth
 * bar) centered at (cx, cy) with the given half-width.
 */
void stampFace(Image& img, int cx, int cy, int half_width);

/** A scene containing @p num_faces face-like patterns. */
Image facesScene(int w, int h, Rng& rng, int num_faces = 3);

}  // namespace synth

}  // namespace mapp::vision

#endif  // MAPP_VISION_IMAGE_H
