/**
 * @file
 * Object recognition: the classic feature-extraction + classification
 * pipeline (HoG descriptors fed to one-vs-rest linear SVMs), as Table II
 * describes ("uses both feature extraction and classification").
 */

#ifndef MAPP_VISION_OBJREC_H
#define MAPP_VISION_OBJREC_H

#include <vector>

#include "vision/hog.h"
#include "vision/image.h"
#include "vision/svm.h"

namespace mapp::vision {

/** ObjRec parameters. */
struct ObjRecParams
{
    /** Coarser HoG grid than the standalone benchmark keeps the
     * one-vs-rest SVMs small. */
    HogParams hog{.cellSize = 16, .blockSize = 2, .bins = 9};
    SvmParams svm{.c = 1.0, .epochs = 8, .tol = 1e-3};
    int numClasses = 3;
    int prototypesPerClass = 4;  ///< synthetic training scenes per class
};

/**
 * An object recognizer: trained on synthetic class prototypes (textures,
 * disc scenes, face scenes), then classifies images by HoG + SVM.
 */
class ObjectRecognizer
{
  public:
    /** Train the one-vs-rest models on generated prototypes. */
    void train(int image_size, std::uint64_t seed,
               const ObjRecParams& params = {});

    /** Classify one image; returns the class index. */
    int classify(const Image& img) const;

    bool trained() const { return !models_.empty(); }

  private:
    ObjRecParams params_;
    std::vector<LinearSvm> models_;
};

/**
 * Run the ObjRec benchmark: train on prototypes once, classify the whole
 * batch; returns the sum of predicted class indices (checksum).
 */
std::size_t runObjRecBenchmark(const std::vector<Image>& batch,
                               const ObjRecParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_OBJREC_H
