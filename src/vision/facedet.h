/**
 * @file
 * Viola-Jones style face detection: a Haar cascade of boosted stump
 * stages evaluated over a sliding window across scales, with early
 * rejection. The cascade weights are fixed (built-in model) and match
 * the face pattern synth::stampFace draws, so the detector genuinely
 * fires on faces and rejects texture.
 */

#ifndef MAPP_VISION_FACEDET_H
#define MAPP_VISION_FACEDET_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** Face detector parameters. */
struct FaceDetParams
{
    int baseWindow = 20;        ///< detection window at scale 1
    float scaleStep = 1.4f;     ///< multiplicative scale progression
    int maxScales = 4;
    int stride = 2;             ///< window step in pixels
};

/** A detection: window top-left corner and size. */
struct FaceBox
{
    int x = 0;
    int y = 0;
    int size = 0;
    float score = 0.0f;
};

/** Detect faces in an image (instrumented "haar_cascade" phases). */
std::vector<FaceBox> detectFaces(const Image& img,
                                 const FaceDetParams& params = {});

/** Run the FaceDet benchmark over a batch; returns total detections. */
std::size_t runFaceDetBenchmark(const std::vector<Image>& batch,
                                const FaceDetParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_FACEDET_H
