/**
 * @file
 * SURF: integral-image box-filter approximation of the Hessian
 * determinant across scales, non-max suppression, and Haar-wavelet
 * 64-dimensional descriptors (Bay et al. 2006, simplified).
 */

#ifndef MAPP_VISION_SURF_H
#define MAPP_VISION_SURF_H

#include <vector>

#include "vision/image.h"

namespace mapp::vision {

/** SURF parameters. */
struct SurfParams
{
    std::vector<int> filterSizes = {9, 15, 21, 27};  ///< box filter widths
    float hessianThreshold = 500.0f;
    int nmsRadius = 3;
};

/** SURF output for one image. */
struct SurfResult
{
    std::vector<Keypoint> keypoints;
    std::vector<Descriptor> descriptors;  ///< 64-d each
};

/** Detect and describe SURF features (instrumented). */
SurfResult detectSurf(const Image& img, const SurfParams& params = {});

/** Run the SURF benchmark over a batch; returns total keypoints. */
std::size_t runSurfBenchmark(const std::vector<Image>& batch,
                             const SurfParams& params = {});

}  // namespace mapp::vision

#endif  // MAPP_VISION_SURF_H
