#include "vision/hog.h"

#include <algorithm>
#include <cmath>

#include "vision/ops.h"

namespace mapp::vision {

Descriptor
computeHog(const Image& img, const HogParams& params)
{
    Image gx, gy, mag, orient;
    ops::sobel(img, gx, gy);
    ops::gradientPolar(gx, gy, mag, orient);

    const int cellsX = img.width() / params.cellSize;
    const int cellsY = img.height() / params.cellSize;
    const auto bins = static_cast<std::size_t>(params.bins);

    // Cell histograms (unsigned gradient: orientation folded into [0, pi)).
    std::vector<double> cells(
        static_cast<std::size_t>(cellsX) * static_cast<std::size_t>(cellsY) *
            bins,
        0.0);
    InstCount votes = 0;
    for (int y = 0; y < cellsY * params.cellSize; ++y) {
        for (int x = 0; x < cellsX * params.cellSize; ++x) {
            float o = orient.at(x, y);
            if (o < 0.0f)
                o += static_cast<float>(M_PI);
            if (o >= static_cast<float>(M_PI))
                o -= static_cast<float>(M_PI);
            int bin = static_cast<int>(o / static_cast<float>(M_PI) *
                                       static_cast<float>(params.bins));
            bin = std::clamp(bin, 0, params.bins - 1);
            const int cx = x / params.cellSize;
            const int cy = y / params.cellSize;
            cells[(static_cast<std::size_t>(cy) *
                       static_cast<std::size_t>(cellsX) +
                   static_cast<std::size_t>(cx)) *
                      bins +
                  static_cast<std::size_t>(bin)] += mag.at(x, y);
            ++votes;
        }
    }
    ops::PhaseBuilder("hog_cell_histograms")
        .insts(isa::InstClass::MemRead, votes * 3)
        .insts(isa::InstClass::FpAlu, votes * 5)
        .insts(isa::InstClass::IntAlu, votes * 6)
        .insts(isa::InstClass::MemWrite, votes)
        .insts(isa::InstClass::Control, votes * 2)
        .read(votes * 2 * sizeof(float))
        .write(votes * sizeof(double) / 2)
        .foot(img.sizeBytes() * 2 +
              static_cast<Bytes>(cells.size()) * sizeof(double))
        .par(0.97)  // GPU histograms vote via atomics, still parallel
        .items(votes)
        .loc(0.9)
        .div(0.2)
        .record();

    // Overlapping block normalization.
    Descriptor desc;
    const int bw = params.blockSize;
    InstCount normOps = 0;
    for (int by = 0; by + bw <= cellsY; ++by) {
        for (int bx = 0; bx + bw <= cellsX; ++bx) {
            const std::size_t start = desc.size();
            double norm = 0.0;
            for (int j = 0; j < bw; ++j) {
                for (int i = 0; i < bw; ++i) {
                    const auto* cell =
                        &cells[(static_cast<std::size_t>(by + j) *
                                    static_cast<std::size_t>(cellsX) +
                                static_cast<std::size_t>(bx + i)) *
                               bins];
                    for (std::size_t b = 0; b < bins; ++b) {
                        desc.push_back(static_cast<float>(cell[b]));
                        norm += cell[b] * cell[b];
                        ++normOps;
                    }
                }
            }
            norm = std::sqrt(norm + 1e-6);
            for (std::size_t i = start; i < desc.size(); ++i) {
                desc[i] = static_cast<float>(desc[i] / norm);
                ++normOps;
            }
        }
    }
    ops::PhaseBuilder("hog_block_normalize")
        .insts(isa::InstClass::MemRead, normOps * 2)
        .insts(isa::InstClass::FpAlu, normOps * 2)
        .insts(isa::InstClass::Simd, normOps)
        .insts(isa::InstClass::MemWrite, normOps)
        .insts(isa::InstClass::IntAlu, normOps)
        .insts(isa::InstClass::Control, normOps / 4)
        .insts(isa::InstClass::Stack,
               static_cast<InstCount>(cellsX) *
                   static_cast<InstCount>(cellsY))
        .read(normOps * sizeof(double))
        .write(normOps * sizeof(float))
        .foot(static_cast<Bytes>(cells.size()) * sizeof(double))
        .par(0.95)
        .items(static_cast<std::uint64_t>(cellsX) *
               static_cast<std::uint64_t>(cellsY))
        .loc(0.85)
        .div(0.05)
        .record();
    return desc;
}

std::size_t
runHogBenchmark(const std::vector<Image>& batch, const HogParams& params)
{
    std::size_t total = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        total += computeHog(staged, params).size();
    }
    return total;
}

}  // namespace mapp::vision
