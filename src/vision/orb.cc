#include "vision/orb.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "vision/ops.h"

namespace mapp::vision {

namespace {

/** Deterministic BRIEF sampling pattern (pair offsets within the patch). */
std::vector<std::array<int, 4>>
briefPattern(int pairs, int radius)
{
    Rng rng(0xB41EFull);  // fixed: the pattern is part of the algorithm
    std::vector<std::array<int, 4>> out;
    out.reserve(static_cast<std::size_t>(pairs));
    for (int i = 0; i < pairs; ++i) {
        out.push_back({static_cast<int>(rng.uniformInt(-radius, radius)),
                       static_cast<int>(rng.uniformInt(-radius, radius)),
                       static_cast<int>(rng.uniformInt(-radius, radius)),
                       static_cast<int>(rng.uniformInt(-radius, radius))});
    }
    return out;
}

/** Harris corner response at (x, y) over a 5x5 window of gradients. */
float
harrisResponse(const Image& gx, const Image& gy, int x, int y)
{
    float sxx = 0.0f, syy = 0.0f, sxy = 0.0f;
    for (int j = -2; j <= 2; ++j) {
        for (int i = -2; i <= 2; ++i) {
            const float dx = gx.atClamped(x + i, y + j);
            const float dy = gy.atClamped(x + i, y + j);
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
    }
    const float det = sxx * syy - sxy * sxy;
    const float trace = sxx + syy;
    return det - 0.04f * trace * trace;
}

}  // namespace

OrbResult
detectOrb(const Image& img, const OrbParams& params)
{
    OrbResult result;
    auto kps = detectFast(img, params.fast);
    if (kps.empty())
        return result;

    Image gx, gy;
    ops::sobel(img, gx, gy);

    // Harris ranking of the FAST candidates.
    for (auto& kp : kps)
        kp.response = harrisResponse(gx, gy, static_cast<int>(kp.x),
                                     static_cast<int>(kp.y));
    {
        const auto n = static_cast<InstCount>(kps.size());
        ops::PhaseBuilder("harris_ranking")
            .insts(isa::InstClass::MemRead, n * 50)
            .insts(isa::InstClass::FpAlu, n * 85)
            .insts(isa::InstClass::Simd, n * 20)
            .insts(isa::InstClass::IntAlu, n * 12)
            .insts(isa::InstClass::Control, n * 27)
            .insts(isa::InstClass::MemWrite, n)
            .read(n * 50 * sizeof(float))
            .write(n * sizeof(float))
            .foot(img.sizeBytes() * 2)
            .par(0.95)
            .items(n)
            .loc(0.75)
            .div(0.1)
            .record();
    }

    std::sort(kps.begin(), kps.end(),
              [](const Keypoint& a, const Keypoint& b) {
                  return a.response > b.response;
              });
    if (static_cast<int>(kps.size()) > params.maxKeypoints)
        kps.resize(static_cast<std::size_t>(params.maxKeypoints));

    // Orientation by intensity centroid over the patch.
    const int r = params.patchRadius;
    for (auto& kp : kps) {
        float m10 = 0.0f;
        float m01 = 0.0f;
        for (int j = -r; j <= r; ++j) {
            for (int i = -r; i <= r; ++i) {
                const float v = img.atClamped(static_cast<int>(kp.x) + i,
                                              static_cast<int>(kp.y) + j);
                m10 += static_cast<float>(i) * v;
                m01 += static_cast<float>(j) * v;
            }
        }
        kp.angle = std::atan2(m01, m10);
    }
    {
        const auto n = static_cast<InstCount>(kps.size());
        const auto patch = static_cast<InstCount>((2 * r + 1) * (2 * r + 1));
        ops::PhaseBuilder("orientation_centroid")
            .insts(isa::InstClass::MemRead, n * patch)
            .insts(isa::InstClass::FpAlu, n * (patch * 4 + 10))
            .insts(isa::InstClass::IntAlu, n * patch)
            .insts(isa::InstClass::Control, n * patch / 4)
            .insts(isa::InstClass::MemWrite, n)
            .read(n * patch * sizeof(float))
            .foot(img.sizeBytes())
            .par(0.95)
            .items(n)
            .loc(0.9)
            .div(0.05)
            .record();
    }

    // Rotated BRIEF descriptors, packed into bytes.
    static const auto pattern =
        briefPattern(params.briefPairs, params.patchRadius);
    InstCount tests = 0;
    for (const auto& kp : kps) {
        BinaryDescriptor desc(
            static_cast<std::size_t>(params.briefPairs) / 8, 0);
        const float ca = std::cos(kp.angle);
        const float sa = std::sin(kp.angle);
        for (int p = 0; p < params.briefPairs; ++p) {
            const auto& [ax, ay, bx, by] = pattern[static_cast<std::size_t>(p)];
            auto rot = [&](int ox, int oy) {
                const float rx = ca * static_cast<float>(ox) -
                                 sa * static_cast<float>(oy);
                const float ry = sa * static_cast<float>(ox) +
                                 ca * static_cast<float>(oy);
                return img.atClamped(
                    static_cast<int>(kp.x) + static_cast<int>(std::lround(rx)),
                    static_cast<int>(kp.y) + static_cast<int>(std::lround(ry)));
            };
            ++tests;
            if (rot(ax, ay) < rot(bx, by))
                desc[static_cast<std::size_t>(p / 8)] |=
                    static_cast<std::uint8_t>(1u << (p % 8));
        }
        result.descriptors.push_back(std::move(desc));
    }
    {
        const auto n = static_cast<InstCount>(kps.size());
        ops::PhaseBuilder("brief_descriptor")
            .insts(isa::InstClass::MemRead, tests * 2)
            .insts(isa::InstClass::FpAlu, tests * 8)
            .insts(isa::InstClass::IntAlu, tests * 3)
            .insts(isa::InstClass::Shift, tests * 2)     // bit packing
            .insts(isa::InstClass::String, n * 8)        // descriptor stores
            .insts(isa::InstClass::Control, tests)
            .insts(isa::InstClass::MemWrite, n * 4)
            .insts(isa::InstClass::Stack, n * 2)
            .read(tests * 2 * sizeof(float))
            .write(n * static_cast<Bytes>(params.briefPairs) / 8)
            .foot(img.sizeBytes())
            .par(0.95)
            .items(n)
            .loc(0.8)
            .div(0.25)
            .record();
    }

    result.keypoints = std::move(kps);
    return result;
}

std::size_t
runOrbBenchmark(const std::vector<Image>& batch, const OrbParams& params)
{
    std::size_t bytes = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        const auto res = detectOrb(staged, params);
        for (const auto& d : res.descriptors)
            bytes += d.size();
    }
    return bytes;
}

}  // namespace mapp::vision
