#include "vision/facedet.h"

#include <algorithm>
#include <cmath>

#include "vision/ops.h"

namespace mapp::vision {

namespace {

/**
 * One Haar-like contrast feature in base-window (20x20) coordinates:
 * mean(boxA) - mean(boxB), compared against a threshold.
 */
struct HaarStump
{
    // Box corners in base-window units.
    int ax0, ay0, ax1, ay1;
    int bx0, by0, bx1, by1;
    float threshold;  ///< vote +1 if (meanA - meanB) > threshold
    float weight;
};

/** One cascade stage: weighted stump votes vs. a stage threshold. */
struct CascadeStage
{
    std::vector<HaarStump> stumps;
    float stageThreshold;
};

/**
 * The built-in cascade, tuned for the synthetic face pattern: a bright
 * face region with dark eye boxes in the upper half and a dark mouth bar
 * below the center. Early stages are cheap and reject most texture.
 */
const std::vector<CascadeStage>&
builtinCascade()
{
    static const std::vector<CascadeStage> cascade = {
        // Stage 0: midface brighter than the eye row (2 stumps).
        {{
             {4, 10, 16, 14, 4, 4, 16, 8, 30.0f, 1.0f},    // midface vs eyes
             {2, 2, 18, 18, 0, 0, 20, 2, 15.0f, 0.6f},     // center vs top strip
         },
         1.0f},
        // Stage 1: eye boxes dark vs the between-eyes bridge (4 stumps).
        {{
             {8, 4, 12, 8, 3, 4, 7, 8, 40.0f, 1.0f},      // bridge vs left eye
             {8, 4, 12, 8, 13, 4, 17, 8, 40.0f, 1.0f},    // bridge vs right eye
             {4, 10, 16, 13, 6, 14, 14, 17, 30.0f, 0.7f},  // cheeks vs mouth
             {6, 8, 14, 13, 0, 0, 20, 3, 15.0f, 0.5f},     // midface vs brow strip
         },
         1.6f},
        // Stage 2: fine structure (6 stumps).
        {{
             {6, 9, 14, 12, 6, 14, 14, 16, 30.0f, 1.0f},   // cheeks vs mouth bar
             {3, 9, 7, 12, 3, 4, 7, 8, 30.0f, 0.8f},       // left cheek vs eye
             {13, 9, 17, 12, 13, 4, 17, 8, 30.0f, 0.8f},   // right cheek vs eye
             {6, 8, 14, 14, 0, 0, 4, 4, 15.0f, 0.5f},      // center vs corner
             {8, 0, 12, 20, 0, 0, 4, 20, 15.0f, 0.4f},     // center vs left border
             {8, 0, 12, 20, 16, 0, 20, 20, 15.0f, 0.4f},   // center vs right border
         },
         2.0f},
    };
    return cascade;
}

/** Mean intensity of a base-window box scaled into the image. */
double
boxMean(const IntegralImage& ii, int wx, int wy, float scale, int x0,
        int y0, int x1, int y1)
{
    const int px0 = wx + static_cast<int>(static_cast<float>(x0) * scale);
    const int py0 = wy + static_cast<int>(static_cast<float>(y0) * scale);
    const int px1 = wx + static_cast<int>(static_cast<float>(x1) * scale) - 1;
    const int py1 = wy + static_cast<int>(static_cast<float>(y1) * scale) - 1;
    const double area =
        std::max(1.0, static_cast<double>((px1 - px0 + 1)) *
                          static_cast<double>((py1 - py0 + 1)));
    return ii.boxSum(px0, py0, px1, py1) / area;
}

}  // namespace

std::vector<FaceBox>
detectFaces(const Image& img, const FaceDetParams& params)
{
    const IntegralImage ii = ops::integral(img);
    const auto& cascade = builtinCascade();

    std::vector<FaceBox> found;
    InstCount windows = 0;
    InstCount stumpEvals = 0;

    float scale = 1.0f;
    for (int s = 0; s < params.maxScales; ++s, scale *= params.scaleStep) {
        const int win =
            static_cast<int>(static_cast<float>(params.baseWindow) * scale);
        if (win >= img.width() || win >= img.height())
            break;
        for (int y = 0; y + win < img.height(); y += params.stride) {
            for (int x = 0; x + win < img.width(); x += params.stride) {
                ++windows;
                bool rejected = false;
                float totalScore = 0.0f;
                for (const auto& stage : cascade) {
                    float stageScore = 0.0f;
                    for (const auto& st : stage.stumps) {
                        ++stumpEvals;
                        const double diff =
                            boxMean(ii, x, y, scale, st.ax0, st.ay0, st.ax1,
                                    st.ay1) -
                            boxMean(ii, x, y, scale, st.bx0, st.by0, st.bx1,
                                    st.by1);
                        if (static_cast<float>(diff) > st.threshold)
                            stageScore += st.weight;
                    }
                    if (stageScore < stage.stageThreshold) {
                        rejected = true;
                        break;
                    }
                    totalScore += stageScore;
                }
                if (!rejected)
                    found.push_back({x, y, win, totalScore});
            }
        }
    }

    // Greedy overlap suppression: keep the best-scoring box per cluster.
    std::sort(found.begin(), found.end(),
              [](const FaceBox& a, const FaceBox& b) {
                  return a.score > b.score;
              });
    std::vector<FaceBox> kept;
    for (const auto& box : found) {
        bool overlaps = false;
        for (const auto& k : kept) {
            const int dx = (box.x + box.size / 2) - (k.x + k.size / 2);
            const int dy = (box.y + box.size / 2) - (k.y + k.size / 2);
            const int limit = (box.size + k.size) / 3;
            if (dx * dx + dy * dy < limit * limit) {
                overlaps = true;
                break;
            }
        }
        if (!overlaps)
            kept.push_back(box);
    }

    // Cascade phase: 8 integral reads + ~14 int ops per stump, a call
    // frame per window, and early exits that diverge hard.
    ops::PhaseBuilder("haar_cascade")
        .insts(isa::InstClass::MemRead, stumpEvals * 8)
        .insts(isa::InstClass::IntAlu, stumpEvals * 10)
        .insts(isa::InstClass::FpAlu, stumpEvals * 6)
        .insts(isa::InstClass::Shift, stumpEvals * 2)
        .insts(isa::InstClass::Control, stumpEvals * 3 + windows * 2)
        .insts(isa::InstClass::Stack, windows * 4)
        .insts(isa::InstClass::MemWrite,
               static_cast<InstCount>(found.size()) * 4)
        .read(stumpEvals * 8 * sizeof(double))
        .write(static_cast<Bytes>(found.size()) * sizeof(FaceBox))
        .foot(ii.sizeBytes() + img.sizeBytes())
        .par(0.96)
        .items(windows)
        .loc(0.85)
        .div(0.75)  // per-window early rejection
        .record();
    return kept;
}

std::size_t
runFaceDetBenchmark(const std::vector<Image>& batch,
                    const FaceDetParams& params)
{
    std::size_t total = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        total += detectFaces(staged, params).size();
    }
    return total;
}

}  // namespace mapp::vision
