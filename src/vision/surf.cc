#include "vision/surf.h"

#include <algorithm>
#include <cmath>

#include "vision/ops.h"

namespace mapp::vision {

namespace {

/**
 * Approximate Hessian determinant response at (x, y) for a box-filter of
 * width @p size, using integral-image box sums for Dxx, Dyy, Dxy.
 */
float
hessianResponse(const IntegralImage& ii, int x, int y, int size)
{
    const int l = size / 3;       // lobe size
    const int hl = l / 2;
    const int hs = size / 2;

    // Dyy: three stacked horizontal lobes (white, black x2 weight, white).
    const double dyy =
        ii.boxSum(x - hl, y - hs, x + hl, y - hs + l - 1) -
        2.0 * ii.boxSum(x - hl, y - hl, x + hl, y + hl) +
        ii.boxSum(x - hl, y + hs - l + 1, x + hl, y + hs);

    // Dxx: transposed.
    const double dxx =
        ii.boxSum(x - hs, y - hl, x - hs + l - 1, y + hl) -
        2.0 * ii.boxSum(x - hl, y - hl, x + hl, y + hl) +
        ii.boxSum(x + hs - l + 1, y - hl, x + hs, y + hl);

    // Dxy: four diagonal quadrant lobes.
    const double dxy = ii.boxSum(x - l, y - l, x - 1, y - 1) +
                       ii.boxSum(x + 1, y + 1, x + l, y + l) -
                       ii.boxSum(x + 1, y - l, x + l, y - 1) -
                       ii.boxSum(x - l, y + 1, x - 1, y + l);

    const auto norm = static_cast<double>(size) * static_cast<double>(size);
    const double nxx = dxx / norm;
    const double nyy = dyy / norm;
    const double nxy = dxy / norm;
    return static_cast<float>(nxx * nyy - 0.81 * nxy * nxy);
}

}  // namespace

SurfResult
detectSurf(const Image& img, const SurfParams& params)
{
    SurfResult result;
    const IntegralImage ii = ops::integral(img);

    for (int size : params.filterSizes) {
        Image response(img.width(), img.height(), 0.0f);
        const int border = size / 2 + 1;
        InstCount evals = 0;
        for (int y = border; y < img.height() - border; ++y) {
            for (int x = border; x < img.width() - border; ++x) {
                response.at(x, y) = hessianResponse(ii, x, y, size);
                ++evals;
            }
        }
        {
            // 10 box sums x 4 integral reads each, plus weighting math.
            ops::PhaseBuilder("surf_hessian")
                .insts(isa::InstClass::MemRead, evals * 40)
                .insts(isa::InstClass::IntAlu, evals * 44)
                .insts(isa::InstClass::Shift, evals * 12)  // index scaling
                .insts(isa::InstClass::FpAlu, evals * 10)
                .insts(isa::InstClass::Simd, evals * 6)
                .insts(isa::InstClass::MemWrite, evals)
                .insts(isa::InstClass::Control, evals * 3)
                .read(evals * 40 * sizeof(double))
                .write(evals * sizeof(float))
                .foot(ii.sizeBytes() + img.sizeBytes())
                .par(0.98)
                .items(evals)
                .loc(0.88)  // integral image reused across windows
                .div(0.05)
                .record();
        }

        auto maxima =
            ops::nonMaxSuppress(response, params.hessianThreshold,
                                params.nmsRadius);
        for (auto [x, y] : maxima) {
            Keypoint kp;
            kp.x = static_cast<float>(x);
            kp.y = static_cast<float>(y);
            kp.scale = static_cast<float>(size) / 9.0f;
            kp.response = response.at(x, y);
            result.keypoints.push_back(kp);
        }
    }

    // Haar-wavelet 64-d descriptors: 4x4 cells x (sum dx, sum |dx|,
    // sum dy, sum |dy|).
    InstCount haarOps = 0;
    for (const auto& kp : result.keypoints) {
        Descriptor desc(64, 0.0f);
        const int step = std::max(1, static_cast<int>(kp.scale * 2.0f));
        int cell = 0;
        for (int cy = -2; cy < 2; ++cy) {
            for (int cx = -2; cx < 2; ++cx, ++cell) {
                double sdx = 0.0, sadx = 0.0, sdy = 0.0, sady = 0.0;
                for (int j = 0; j < 5; ++j) {
                    for (int i = 0; i < 5; ++i) {
                        const int px = static_cast<int>(kp.x) +
                                       (cx * 5 + i) * step;
                        const int py = static_cast<int>(kp.y) +
                                       (cy * 5 + j) * step;
                        const double dx =
                            ii.boxSum(px, py - step, px + step, py + step) -
                            ii.boxSum(px - step, py - step, px, py + step);
                        const double dy =
                            ii.boxSum(px - step, py, px + step, py + step) -
                            ii.boxSum(px - step, py - step, px + step, py);
                        sdx += dx;
                        sadx += std::abs(dx);
                        sdy += dy;
                        sady += std::abs(dy);
                        haarOps += 16;  // 4 box sums x 4 reads
                    }
                }
                desc[static_cast<std::size_t>(cell * 4 + 0)] =
                    static_cast<float>(sdx);
                desc[static_cast<std::size_t>(cell * 4 + 1)] =
                    static_cast<float>(sadx);
                desc[static_cast<std::size_t>(cell * 4 + 2)] =
                    static_cast<float>(sdy);
                desc[static_cast<std::size_t>(cell * 4 + 3)] =
                    static_cast<float>(sady);
            }
        }
        // Normalize.
        double norm = 0.0;
        for (float v : desc)
            norm += static_cast<double>(v) * static_cast<double>(v);
        norm = std::sqrt(std::max(norm, 1e-12));
        for (auto& v : desc)
            v = static_cast<float>(v / norm);
        result.descriptors.push_back(std::move(desc));
    }
    if (haarOps > 0) {
        const auto n = static_cast<InstCount>(result.keypoints.size());
        ops::PhaseBuilder("surf_descriptor")
            .insts(isa::InstClass::MemRead, haarOps)
            .insts(isa::InstClass::IntAlu, haarOps)
            .insts(isa::InstClass::FpAlu, haarOps / 2)
            .insts(isa::InstClass::Shift, haarOps / 4)
            .insts(isa::InstClass::MemWrite, n * 64)
            .insts(isa::InstClass::Control, haarOps / 4)
            .insts(isa::InstClass::Stack, n * 2)
            .read(haarOps * sizeof(double))
            .write(n * 64 * sizeof(float))
            .foot(ii.sizeBytes())
            .par(0.95)
            .items(std::max<std::uint64_t>(n, 1))
            .loc(0.8)
            .div(0.1)
            .record();
    }
    return result;
}

std::size_t
runSurfBenchmark(const std::vector<Image>& batch, const SurfParams& params)
{
    std::size_t total = 0;
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        total += detectSurf(staged, params).keypoints.size();
    }
    return total;
}

}  // namespace mapp::vision
