#include "vision/svm.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "vision/ops.h"

namespace mapp::vision {

Descriptor
thumbnailDescriptor(const Image& img)
{
    const Image thumb = ops::resizeBilinear(img, 32, 32);
    Descriptor d(thumb.data().begin(), thumb.data().end());
    double mean = 0.0;
    for (float v : d)
        mean += v;
    mean /= static_cast<double>(d.size());
    for (auto& v : d)
        v = static_cast<float>(v - mean);
    return d;
}

void
LinearSvm::train(const std::vector<Descriptor>& x, const std::vector<int>& y,
                 const SvmParams& params)
{
    if (x.empty() || x.size() != y.size())
        fatal("LinearSvm::train: empty or mismatched training data");
    const std::size_t n = x.size();
    const std::size_t dim = x.front().size();

    w_.assign(dim, 0.0);
    b_ = 0.0;
    std::vector<double> alpha(n, 0.0);

    // Precompute squared norms (the Q_ii diagonal).
    std::vector<double> qii(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 1.0;  // +1 models the bias as an extra feature
        for (float v : x[i])
            acc += static_cast<double>(v) * static_cast<double>(v);
        qii[i] = acc;
    }

    for (int epoch = 0; epoch < params.epochs; ++epoch) {
        double maxViolation = 0.0;
        InstCount flops = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const auto yi = static_cast<double>(y[i]);
            // G = y_i * (w.x_i + b) - 1
            double wx = b_;
            for (std::size_t d = 0; d < dim; ++d)
                wx += w_[d] * static_cast<double>(x[i][d]);
            flops += dim * 2;
            const double g = yi * wx - 1.0;

            // Projected gradient for the box constraint 0 <= a <= C.
            double pg = g;
            if (alpha[i] <= 0.0)
                pg = std::min(g, 0.0);
            else if (alpha[i] >= params.c)
                pg = std::max(g, 0.0);
            maxViolation = std::max(maxViolation, std::abs(pg));

            if (std::abs(pg) > 1e-12) {
                const double old = alpha[i];
                alpha[i] = std::clamp(old - g / qii[i], 0.0, params.c);
                const double delta = (alpha[i] - old) * yi;
                for (std::size_t d = 0; d < dim; ++d)
                    w_[d] += delta * static_cast<double>(x[i][d]);
                b_ += delta;
                flops += dim * 2;
            }
        }

        const auto samples = static_cast<InstCount>(n);
        ops::PhaseBuilder("svm_train_epoch")
            .insts(isa::InstClass::MemRead, flops)
            .insts(isa::InstClass::Simd, flops * 3 / 2)
            .insts(isa::InstClass::FpAlu, flops / 3 + samples * 8)
            .insts(isa::InstClass::IntAlu, samples * 6)
            .insts(isa::InstClass::Control, samples * 5)
            .insts(isa::InstClass::MemWrite, flops / 4)
            .insts(isa::InstClass::Stack, samples)
            .read(flops * sizeof(float))
            .write(flops / 4 * sizeof(double))
            .foot(static_cast<Bytes>(n) * static_cast<Bytes>(dim) *
                      sizeof(float) +
                  static_cast<Bytes>(dim) * sizeof(double))
            .par(0.45)  // coordinate updates serialize on w
            .items(samples)
            .loc(0.65)
            .div(0.15)
            .record();

        if (maxViolation < params.tol)
            break;
    }
}

double
LinearSvm::decision(const Descriptor& x) const
{
    double acc = b_;
    const std::size_t dim = std::min(w_.size(), x.size());
    for (std::size_t d = 0; d < dim; ++d)
        acc += w_[d] * static_cast<double>(x[d]);
    return acc;
}

int
LinearSvm::predict(const Descriptor& x) const
{
    return decision(x) >= 0.0 ? 1 : -1;
}

double
LinearSvm::accuracy(const std::vector<Descriptor>& x,
                    const std::vector<int>& y) const
{
    if (x.empty())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < x.size(); ++i)
        if (predict(x[i]) == y[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(x.size());
}

std::size_t
runSvmBenchmark(const std::vector<Image>& batch, const SvmParams& params)
{
    if (batch.empty())
        return 0;

    // Extract descriptors; label images by whether their mean intensity
    // exceeds the batch median (a deterministic, learnable split).
    std::vector<Descriptor> xs;
    std::vector<double> means;
    xs.reserve(batch.size());
    for (const auto& img : batch) {
        const Image staged = ops::copyImage(img);
        xs.push_back(thumbnailDescriptor(staged));
        means.push_back(staged.mean());
    }
    std::vector<double> sorted = means;
    std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                     sorted.end());
    const double median = sorted[sorted.size() / 2];
    std::vector<int> ys;
    ys.reserve(batch.size());
    for (double m : means)
        ys.push_back(m > median ? 1 : -1);

    LinearSvm svm;
    svm.train(xs, ys, params);

    // Prediction pass over the batch.
    std::size_t correct = 0;
    const auto dim = static_cast<InstCount>(xs.front().size());
    for (std::size_t i = 0; i < xs.size(); ++i)
        if (svm.predict(xs[i]) == ys[i])
            ++correct;
    const auto n = static_cast<InstCount>(xs.size());
    ops::PhaseBuilder("svm_predict")
        .insts(isa::InstClass::MemRead, n * dim)
        .insts(isa::InstClass::Simd, n * dim * 3 / 2)
        .insts(isa::InstClass::FpAlu, n * dim / 4)
        .insts(isa::InstClass::IntAlu, n * 4)
        .insts(isa::InstClass::Control, n * 3)
        .read(n * dim * sizeof(float))
        .foot(static_cast<Bytes>(n) * static_cast<Bytes>(dim) *
              sizeof(float))
        .par(0.95)
        .items(n)
        .loc(0.6)
        .div(0.05)
        .record();
    return correct;
}

}  // namespace mapp::vision
