/**
 * @file
 * Prometheus text exposition (version 0.0.4) of a RegistrySnapshot,
 * alongside the JSON sidecar: counters, gauges, and histograms with
 * cumulative `le` buckets plus `_sum`/`_count`. Metric names are
 * mangled into the Prometheus charset (`ml.tree.fits` →
 * `mapp_ml_tree_fits`) under a `mapp_` namespace prefix.
 */

#ifndef MAPP_OBS_PROMETHEUS_H
#define MAPP_OBS_PROMETHEUS_H

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace mapp::obs {

/** `mapp_` + @p name with every non-[a-zA-Z0-9_:] mapped to '_'. */
std::string prometheusName(std::string_view name);

/** The snapshot in Prometheus text exposition format. */
std::string writePrometheus(const RegistrySnapshot& snapshot);

/** Write writePrometheus() to @p path. @return false on I/O failure. */
bool writePrometheusFile(const RegistrySnapshot& snapshot,
                         const std::string& path);

}  // namespace mapp::obs

#endif  // MAPP_OBS_PROMETHEUS_H
