/**
 * @file
 * The run-report generator behind `mapp_cli report`: consumes the
 * sidecar files a run leaves behind — the metrics registry JSON
 * (`--metrics-out`), the prediction provenance JSONL
 * (`--predictions-out`) and the Chrome trace (`--trace-out`) — and
 * renders one self-contained markdown document: the pipeline phase
 * tree, latency percentiles (p50/p95/p99 from histogram snapshots),
 * the prediction-error distribution, the highest-error predictions
 * with their provenance, and any feature-drift flags.
 */

#ifndef MAPP_OBS_REPORT_H
#define MAPP_OBS_REPORT_H

#include <string>

#include "common/error.h"
#include "obs/metrics.h"

namespace mapp::obs {

/** Sidecar paths feeding one report; empty = section omitted. */
struct RunReportInputs
{
    std::string metricsPath;      ///< registry JSON (required)
    std::string predictionsPath;  ///< prediction JSONL (optional)
    std::string tracePath;        ///< Chrome-trace JSON (optional)
};

/**
 * Rebuild a RegistrySnapshot from its toJson() document. @return a
 * located Parse/Schema error when the document is not a metrics
 * sidecar.
 */
Result<RegistrySnapshot> snapshotFromJson(const std::string& text,
                                          const std::string& label);

/**
 * Render the markdown run report. Fails with a located error when the
 * metrics sidecar is missing or malformed; the optional sidecars
 * degrade to a note in their section instead.
 */
Result<std::string> renderRunReport(const RunReportInputs& inputs);

}  // namespace mapp::obs

#endif  // MAPP_OBS_REPORT_H
