#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/json_reader.h"
#include "obs/trace.h"

namespace mapp::obs {

namespace {

/** Gauge-name prefix the drift monitor publishes fractions under. */
constexpr std::string_view kDriftFracPrefix =
    "predictor.drift.oor_frac.";

/** Out-of-range fraction above which a feature is flagged as drifted. */
constexpr double kDriftFlagFraction = 0.01;

Result<std::string>
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        SourceContext context;
        context.file = path;
        return Result<std::string>(Error(
            ErrorCode::Io, "cannot open file", std::move(context)));
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string
fmt(double v, const char* spec = "%.4g")
{
    if (!std::isfinite(v))
        return "n/a";
    char buf[64];
    std::snprintf(buf, sizeof(buf), spec, v);
    return buf;
}

std::string
fmtMs(double seconds)
{
    return fmt(seconds * 1e3, "%.3f") + " ms";
}

Error
schemaError(const std::string& label, const std::string& message)
{
    SourceContext context;
    context.file = label;
    return Error(ErrorCode::Schema, message, std::move(context));
}

// ---------------------------------------------------------------------
// Metrics sidecar -> RegistrySnapshot

Result<HistogramSnapshot>
histogramFromJson(const std::string& name, const JsonValue& value,
                  const std::string& label)
{
    if (!value.isObject())
        return Result<HistogramSnapshot>(schemaError(
            label, "histogram '" + name + "' is not an object"));
    HistogramSnapshot h;
    h.name = name;
    h.count = static_cast<std::uint64_t>(
        value.memberNumberOr("count", 0.0));
    h.sum = value.memberNumberOr("sum", 0.0);
    const JsonValue* bounds = value.find("bounds");
    const JsonValue* buckets = value.find("buckets");
    if (bounds == nullptr || !bounds->isArray() || buckets == nullptr ||
        !buckets->isArray()) {
        return Result<HistogramSnapshot>(schemaError(
            label,
            "histogram '" + name + "' lacks bounds/buckets arrays"));
    }
    for (const auto& b : bounds->items())
        h.bounds.push_back(b.numberOr(
            std::numeric_limits<double>::quiet_NaN()));
    for (const auto& c : buckets->items())
        h.counts.push_back(
            static_cast<std::uint64_t>(c.numberOr(0.0)));
    if (h.counts.size() != h.bounds.size() + 1)
        return Result<HistogramSnapshot>(schemaError(
            label, "histogram '" + name +
                       "' has mismatched bounds/buckets sizes"));
    return h;
}

}  // namespace

Result<RegistrySnapshot>
snapshotFromJson(const std::string& text, const std::string& label)
{
    auto doc = parseJson(text, label);
    if (!doc.ok())
        return Result<RegistrySnapshot>(doc.error());
    const JsonValue root = std::move(doc).value();
    if (!root.isObject())
        return Result<RegistrySnapshot>(
            schemaError(label, "metrics sidecar is not a JSON object"));

    RegistrySnapshot snap;
    if (const JsonValue* counters = root.find("counters");
        counters != nullptr && counters->isObject()) {
        for (const auto& [name, value] : counters->members())
            snap.counters.emplace_back(
                name,
                static_cast<std::uint64_t>(value.numberOr(0.0)));
    }
    if (const JsonValue* gauges = root.find("gauges");
        gauges != nullptr && gauges->isObject()) {
        for (const auto& [name, value] : gauges->members())
            snap.gauges.emplace_back(
                name, value.numberOr(
                          std::numeric_limits<double>::quiet_NaN()));
    }
    if (const JsonValue* histograms = root.find("histograms");
        histograms != nullptr && histograms->isObject()) {
        for (const auto& [name, value] : histograms->members()) {
            auto h = histogramFromJson(name, value, label);
            if (!h.ok())
                return Result<RegistrySnapshot>(h.error());
            snap.histograms.push_back(std::move(h).value());
        }
    }
    if (snap.counters.empty() && snap.gauges.empty() &&
        snap.histograms.empty()) {
        return Result<RegistrySnapshot>(schemaError(
            label, "document has no counters/gauges/histograms — not "
                   "a metrics sidecar"));
    }
    return snap;
}

namespace {

// ---------------------------------------------------------------------
// Phase tree from the Chrome-trace sidecar

struct PhaseNode
{
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
    std::vector<PhaseNode> children;
};

PhaseNode&
childOf(PhaseNode& parent, const std::string& name)
{
    for (auto& child : parent.children)
        if (child.name == name)
            return child;
    parent.children.push_back(PhaseNode{name, 0.0, 0, {}});
    return parent.children.back();
}

/**
 * Reconstruct the pipeline phase tree from the trace's pid-1 Complete
 * spans: sort by start time and nest by interval containment. Spans
 * recorded concurrently from pool workers overlap instead of nesting;
 * containment simply roots them at the top level, matching how the
 * live PhaseProfiler treats worker phases.
 */
PhaseNode
phaseTreeFromTrace(const JsonValue& doc)
{
    struct Span
    {
        std::string name;
        double ts = 0.0;
        double end = 0.0;
    };
    std::vector<Span> spans;
    if (const JsonValue* events = doc.find("traceEvents");
        events != nullptr && events->isArray()) {
        for (const auto& e : events->items()) {
            if (!e.isObject())
                continue;
            const JsonValue* ph = e.find("ph");
            if (ph == nullptr || ph->text() != "X")
                continue;
            if (static_cast<int>(e.memberNumberOr("pid", -1.0)) !=
                kPipelineTrackPid)
                continue;
            Span span;
            if (const JsonValue* name = e.find("name"))
                span.name = name->text();
            span.ts = e.memberNumberOr("ts", 0.0);
            span.end = span.ts + e.memberNumberOr("dur", 0.0);
            spans.push_back(std::move(span));
        }
    }
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                         return a.ts < b.ts;
                     });

    PhaseNode root;
    struct Open
    {
        PhaseNode* node;
        double ts;
        double end;
    };
    std::vector<Open> stack;
    constexpr double kEpsUs = 0.5;
    for (const Span& span : spans) {
        while (!stack.empty() &&
               !(span.ts + kEpsUs >= stack.back().ts &&
                 span.end <= stack.back().end + kEpsUs)) {
            stack.pop_back();
        }
        PhaseNode& parent =
            stack.empty() ? root : *stack.back().node;
        PhaseNode& node = childOf(parent, span.name);
        node.seconds += (span.end - span.ts) / 1e6;
        node.count += 1;
        stack.push_back(Open{&node, span.ts, span.end});
    }
    return root;
}

void
renderPhaseNode(std::string& out, const PhaseNode& node, int depth)
{
    for (int i = 0; i < depth; ++i)
        out += "  ";
    out += "- `" + node.name + "` — " + fmtMs(node.seconds) + " ×" +
           std::to_string(node.count) + "\n";
    for (const auto& child : node.children)
        renderPhaseNode(out, child, depth + 1);
}

// ---------------------------------------------------------------------
// Prediction provenance from the JSONL sidecar

struct PredictionRow
{
    std::uint64_t seq = 0;
    std::string model;
    double predicted = 0.0;
    double uncertainty = 0.0;
    double actual = std::numeric_limits<double>::quiet_NaN();
    std::string path;
};

struct PredictionsSummary
{
    std::vector<PredictionRow> rows;
    std::size_t total = 0;
    std::size_t withTruth = 0;
    std::size_t malformed = 0;
};

PredictionsSummary
parsePredictions(const std::string& text, const std::string& label)
{
    PredictionsSummary summary;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        auto doc = parseJson(line, label);
        if (!doc.ok() || !doc.value().isObject()) {
            ++summary.malformed;
            continue;
        }
        const JsonValue record = std::move(doc).value();
        PredictionRow row;
        row.seq = static_cast<std::uint64_t>(
            record.memberNumberOr("seq", 0.0));
        if (const JsonValue* model = record.find("model"))
            row.model = model->text();
        row.predicted = record.memberNumberOr("predicted_s", 0.0);
        row.uncertainty = record.memberNumberOr("uncertainty_s", 0.0);
        row.actual = record.memberNumberOr(
            "actual_s", std::numeric_limits<double>::quiet_NaN());
        if (const JsonValue* path = record.find("path"))
            row.path = path->text();
        ++summary.total;
        if (std::isfinite(row.actual))
            ++summary.withTruth;
        summary.rows.push_back(std::move(row));
    }
    return summary;
}

double
absErrorPercent(const PredictionRow& row)
{
    if (!std::isfinite(row.actual) || row.actual <= 0.0)
        return -1.0;
    return std::abs(row.predicted - row.actual) / row.actual * 100.0;
}

// ---------------------------------------------------------------------
// Section renderers

void
renderLatencySection(std::string& out, const RegistrySnapshot& snap)
{
    out += "## Latency percentiles\n\n";
    // The error-percentage histograms have their own section below;
    // repeating them here as "latency" would only mislead.
    std::vector<const HistogramSnapshot*> shown;
    for (const auto& h : snap.histograms)
        if (h.name.rfind("predictor.error.", 0) != 0)
            shown.push_back(&h);
    if (shown.empty()) {
        out += "(no histograms in the metrics sidecar)\n\n";
        return;
    }
    out += "| histogram | count | mean | p50 | p95 | p99 |\n";
    out += "|---|---|---|---|---|---|\n";
    for (const auto* h : shown) {
        out += "| `" + h->name + "` | " + std::to_string(h->count) +
               " | " + fmt(h->mean()) + " | " +
               fmt(h->quantile(0.50)) + " | " + fmt(h->quantile(0.95)) +
               " | " + fmt(h->quantile(0.99)) + " |\n";
    }
    out += "\n";
}

void
renderQualitySection(std::string& out, const RegistrySnapshot& snap)
{
    out += "## Prediction quality\n\n";
    const HistogramSnapshot* abs =
        snap.findHistogram("predictor.error.abs_pct");
    if (abs == nullptr || abs->count == 0) {
        out += "(no ground-truth errors recorded — the error "
               "histograms are empty)\n\n";
        return;
    }
    const HistogramSnapshot* sgn =
        snap.findHistogram("predictor.error.signed_pct");
    out += "- ground-truth pairs: " + std::to_string(abs->count) +
           "\n";
    out += "- MAPE: " + fmt(abs->mean(), "%.2f") + "%";
    if (sgn != nullptr && sgn->count > 0)
        out += " | mean signed error: " + fmt(sgn->mean(), "%.2f") +
               "% (negative = under-prediction)";
    out += "\n";
    out += "- absolute error percentiles: p50 " +
           fmt(abs->quantile(0.50), "%.1f") + "% · p95 " +
           fmt(abs->quantile(0.95), "%.1f") + "% · p99 " +
           fmt(abs->quantile(0.99), "%.1f") + "%\n\n";

    out += "| abs error bucket | predictions |\n|---|---|\n";
    for (std::size_t i = 0; i < abs->counts.size(); ++i) {
        const std::string label =
            i < abs->bounds.size()
                ? "<= " + fmt(abs->bounds[i], "%.4g") + "%"
                : "> " + fmt(abs->bounds.back(), "%.4g") + "%";
        out += "| " + label + " | " +
               std::to_string(abs->counts[i]) + " |\n";
    }
    out += "\n";
}

void
renderTopErrorSection(std::string& out,
                      const PredictionsSummary& summary,
                      bool have_predictions)
{
    out += "## Top-error predictions\n\n";
    if (!have_predictions) {
        out += "(no predictions sidecar given — rerun with "
               "`--predictions-out=<file>`)\n\n";
        return;
    }
    std::vector<const PredictionRow*> scored;
    for (const auto& row : summary.rows)
        if (absErrorPercent(row) >= 0.0)
            scored.push_back(&row);
    if (scored.empty()) {
        out += "(no audited prediction carries ground truth)\n\n";
        return;
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const PredictionRow* a,
                        const PredictionRow* b) {
                         return absErrorPercent(*a) >
                                absErrorPercent(*b);
                     });
    const std::size_t top = std::min<std::size_t>(scored.size(), 10);
    out += "| seq | model | predicted s | actual s | error % | "
           "uncertainty s | decision path |\n";
    out += "|---|---|---|---|---|---|---|\n";
    for (std::size_t i = 0; i < top; ++i) {
        const PredictionRow& row = *scored[i];
        out += "| " + std::to_string(row.seq) + " | " + row.model +
               " | " + fmt(row.predicted, "%.6f") + " | " +
               fmt(row.actual, "%.6f") + " | " +
               fmt(absErrorPercent(row), "%.1f") + " | " +
               fmt(row.uncertainty, "%.4g") + " | `" + row.path +
               "` |\n";
    }
    out += "\n";
}

void
renderDriftSection(std::string& out, const RegistrySnapshot& snap)
{
    out += "## Drift flags\n\n";
    struct Flag
    {
        std::string feature;
        double fraction;
    };
    std::vector<Flag> flags;
    bool sawDriftGauges = false;
    for (const auto& [name, value] : snap.gauges) {
        if (name.rfind(kDriftFracPrefix, 0) != 0)
            continue;
        sawDriftGauges = true;
        if (std::isfinite(value) && value > kDriftFlagFraction)
            flags.push_back(
                Flag{name.substr(kDriftFracPrefix.size()), value});
    }
    if (!sawDriftGauges) {
        out += "(no drift gauges in the metrics sidecar — no ground "
               "truth was evaluated)\n\n";
        return;
    }
    if (flags.empty()) {
        out += "none — every evaluated feature stayed within its "
               "training normalization range (threshold " +
               fmt(kDriftFlagFraction * 100.0, "%.0f") + "%).\n\n";
        return;
    }
    std::stable_sort(flags.begin(), flags.end(),
                     [](const Flag& a, const Flag& b) {
                         return a.fraction > b.fraction;
                     });
    for (const auto& flag : flags) {
        out += "- ⚠ `" + flag.feature + "`: " +
               fmt(flag.fraction * 100.0, "%.1f") +
               "% of evaluated rows fell outside the training range\n";
    }
    out += "\n";
}

void
renderCountersSection(std::string& out, const RegistrySnapshot& snap)
{
    out += "## Counters\n\n";
    if (snap.counters.empty()) {
        out += "(none)\n\n";
        return;
    }
    out += "| counter | value |\n|---|---|\n";
    for (const auto& [name, value] : snap.counters)
        out += "| `" + name + "` | " + std::to_string(value) + " |\n";
    out += "\n";
}

}  // namespace

Result<std::string>
renderRunReport(const RunReportInputs& inputs)
{
    if (inputs.metricsPath.empty())
        return Result<std::string>(
            Error(ErrorCode::InvalidArgument,
                  "report: a metrics sidecar path is required"));
    auto metricsText = readFile(inputs.metricsPath);
    if (!metricsText.ok())
        return Result<std::string>(metricsText.error());
    auto snapResult =
        snapshotFromJson(metricsText.value(), inputs.metricsPath);
    if (!snapResult.ok())
        return Result<std::string>(snapResult.error());
    const RegistrySnapshot snap = std::move(snapResult).value();

    std::string out = "# MAPP run report\n\n";
    out += "- metrics: `" + inputs.metricsPath + "`\n";

    PredictionsSummary predictions;
    bool havePredictions = false;
    if (!inputs.predictionsPath.empty()) {
        auto text = readFile(inputs.predictionsPath);
        if (!text.ok())
            return Result<std::string>(text.error());
        predictions =
            parsePredictions(text.value(), inputs.predictionsPath);
        havePredictions = true;
        out += "- predictions: `" + inputs.predictionsPath + "` — " +
               std::to_string(predictions.total) + " records, " +
               std::to_string(predictions.withTruth) +
               " with ground truth";
        if (predictions.malformed > 0)
            out += ", " + std::to_string(predictions.malformed) +
                   " malformed lines skipped";
        out += "\n";
    }

    bool haveTrace = false;
    PhaseNode phaseRoot;
    if (!inputs.tracePath.empty()) {
        auto text = readFile(inputs.tracePath);
        if (!text.ok())
            return Result<std::string>(text.error());
        auto doc = parseJson(text.value(), inputs.tracePath);
        if (!doc.ok())
            return Result<std::string>(doc.error());
        phaseRoot = phaseTreeFromTrace(doc.value());
        haveTrace = true;
        out += "- trace: `" + inputs.tracePath + "`\n";
    }
    out += "\n";

    out += "## Phase tree\n\n";
    if (!haveTrace) {
        out += "(no trace sidecar given — rerun with "
               "`--trace-out=<file>`)\n\n";
    } else if (phaseRoot.children.empty()) {
        out += "(the trace has no pipeline spans)\n\n";
    } else {
        for (const auto& child : phaseRoot.children)
            renderPhaseNode(out, child, 0);
        out += "\n";
    }

    renderLatencySection(out, snap);
    renderQualitySection(out, snap);
    renderTopErrorSection(out, predictions, havePredictions);
    renderDriftSection(out, snap);
    renderCountersSection(out, snap);
    return out;
}

}  // namespace mapp::obs
