#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/file_io.h"

namespace mapp::obs {

namespace {

/**
 * A Prometheus sample value. Unlike JSON, the exposition format has
 * literals for the non-finite values, so they pass through instead of
 * becoming gaps.
 */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

std::string
prometheusName(std::string_view name)
{
    std::string out = "mapp_";
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
writePrometheus(const RegistrySnapshot& snapshot)
{
    std::string out;
    // Registry names are free-form ("bench.cache.hits", "serve-queue")
    // and sanitize many-to-one; a duplicate metric name (or a second
    // TYPE line for one name) makes the whole exposition invalid to a
    // 0.0.4 scraper, so only the first instrument mapping to a
    // sanitized name is emitted and later collisions become comments.
    std::set<std::string> emitted;
    const auto claim = [&](const std::string& prom,
                           std::string_view original) {
        if (emitted.insert(prom).second)
            return true;
        out += "# mapp: skipped '" + std::string(original) +
               "': sanitized name " + prom + " already emitted\n";
        return false;
    };
    for (const auto& [name, value] : snapshot.counters) {
        const std::string prom = prometheusName(name);
        if (!claim(prom, name))
            continue;
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string prom = prometheusName(name);
        if (!claim(prom, name))
            continue;
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + promNumber(value) + "\n";
    }
    for (const auto& h : snapshot.histograms) {
        const std::string prom = prometheusName(h.name);
        if (!claim(prom, h.name))
            continue;
        out += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cumulative += h.counts[i];
            const std::string le = i < h.bounds.size()
                                       ? promNumber(h.bounds[i])
                                       : "+Inf";
            out += prom + "_bucket{le=\"" + le + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += prom + "_sum " + promNumber(h.sum) + "\n";
        out += prom + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

bool
writePrometheusFile(const RegistrySnapshot& snapshot,
                    const std::string& path)
{
    return writeFileAtomic(path, writePrometheus(snapshot));
}

}  // namespace mapp::obs
