#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace mapp::obs {

namespace {

/**
 * A Prometheus sample value. Unlike JSON, the exposition format has
 * literals for the non-finite values, so they pass through instead of
 * becoming gaps.
 */
std::string
promNumber(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

std::string
prometheusName(std::string_view name)
{
    std::string out = "mapp_";
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

std::string
writePrometheus(const RegistrySnapshot& snapshot)
{
    std::string out;
    for (const auto& [name, value] : snapshot.counters) {
        const std::string prom = prometheusName(name);
        out += "# TYPE " + prom + " counter\n";
        out += prom + " " + std::to_string(value) + "\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string prom = prometheusName(name);
        out += "# TYPE " + prom + " gauge\n";
        out += prom + " " + promNumber(value) + "\n";
    }
    for (const auto& h : snapshot.histograms) {
        const std::string prom = prometheusName(h.name);
        out += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            cumulative += h.counts[i];
            const std::string le = i < h.bounds.size()
                                       ? promNumber(h.bounds[i])
                                       : "+Inf";
            out += prom + "_bucket{le=\"" + le + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        out += prom + "_sum " + promNumber(h.sum) + "\n";
        out += prom + "_count " + std::to_string(h.count) + "\n";
    }
    return out;
}

bool
writePrometheusFile(const RegistrySnapshot& snapshot,
                    const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << writePrometheus(snapshot);
    return static_cast<bool>(out);
}

}  // namespace mapp::obs
