/**
 * @file
 * Prediction provenance: a thread-safe, sampling-controlled ring
 * buffer of per-prediction audit records. Every serving-path
 * prediction draws a sequence id; sampled ids get a full record —
 * normalized feature vector, predicted seconds, an uncertainty
 * estimate (forest vote spread or leaf residual RMSE) and the
 * dominant decision-path summary — so a run's predictions can be
 * audited after the fact (`mapp_cli --predictions-out`) and the run
 * report can show the provenance of its highest-error predictions.
 *
 * The log is disabled by default: hot paths gate on one relaxed
 * atomic load. When enabled, a batch of n predictions costs one
 * fetch_add for the whole batch (reserve(n)) plus record construction
 * only for the sampled rows, so audit overhead scales with the sample
 * period, not the batch size. record() takes a mutex — only sampled
 * rows ever reach it.
 */

#ifndef MAPP_OBS_AUDIT_H
#define MAPP_OBS_AUDIT_H

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace mapp::obs {

/** One audited prediction: provenance + outcome. */
struct PredictionRecord
{
    std::uint64_t seq = 0;  ///< global prediction sequence id
    double tsUs = 0.0;      ///< tracer wall clock at record time
    std::string model;      ///< which predict path produced it
    std::vector<double> features;  ///< normalized model-input vector
    double predictedSeconds = 0.0;
    /** Spread estimate: forest per-tree vote stddev, or the leaf's
     *  training residual RMSE for a single tree. */
    double uncertaintySeconds = 0.0;
    std::string pathSummary;  ///< dominant decision path, "f<=v -> ..."
    /** Ground truth in seconds; NaN until/unless it is known. */
    double actualSeconds = std::numeric_limits<double>::quiet_NaN();

    bool hasActual() const;
};

/** Default ring capacity (records kept, oldest evicted first). */
inline constexpr std::size_t kDefaultPredictionLogCapacity = 1024;

/** Sampling-controlled ring buffer of prediction audit records. */
class PredictionLog
{
  public:
    explicit PredictionLog(
        std::size_t capacity = kDefaultPredictionLogCapacity);

    PredictionLog(const PredictionLog&) = delete;
    PredictionLog& operator=(const PredictionLog&) = delete;

    /** Cheap gate for instrumentation sites (one relaxed load). */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /**
     * Record every @p period-th prediction (1 = all, 100 = 1%).
     * @throws FatalError on 0.
     */
    void setSamplePeriod(std::uint64_t period);

    std::uint64_t samplePeriod() const
    {
        return period_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return capacity_; }

    /**
     * Reserve @p n consecutive sequence ids for a prediction batch and
     * return the first; the batch's row i has id reserve(n) + i. One
     * atomic add regardless of batch size.
     */
    std::uint64_t reserve(std::uint64_t n)
    {
        return nextSeq_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Should the prediction with sequence id @p seq be recorded? */
    bool sampled(std::uint64_t seq) const
    {
        return seq % samplePeriod() == 0;
    }

    /** Append a record (overwrites the oldest once full). */
    void record(PredictionRecord record);

    /**
     * Append by filling the slot in place: @p fill runs under the log
     * mutex on a slot whose string/vector buffers are REUSED across
     * evictions, so a steady-state record performs no allocation —
     * this is what keeps 1%-sampled auditing inside the serving
     * path's overhead budget. The slot arrives reset to a default
     * record (seq 0, NaN actual, buffers cleared but capacity kept);
     * @p fill must set every field it cares about via assign()-style
     * writes.
     */
    template <typename Fill>
    void recordInPlace(Fill&& fill)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        PredictionRecord& slot = nextSlotLocked();
        resetSlot(slot);
        fill(slot);
        written_.fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Record a chunk of sampled rows under ONE lock acquisition:
     * @p fill(id, slot) is invoked once per id in @p ids with the same
     * in-place slot-reuse guarantee as recordInPlace(). Batch audit
     * paths use this so the mutex is taken once per chunk rather than
     * once per sampled row.
     */
    template <typename Fill>
    void recordChunkInPlace(std::span<const std::uint64_t> ids,
                            Fill&& fill)
    {
        if (ids.empty())
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        for (const std::uint64_t id : ids) {
            PredictionRecord& slot = nextSlotLocked();
            resetSlot(slot);
            fill(id, slot);
        }
        written_.fetch_add(ids.size(), std::memory_order_relaxed);
    }

    /**
     * Attach ground truth to a reserved batch after the fact: the
     * retained record with sequence id first_seq + i (if any survived
     * sampling and eviction) gets actualSeconds = actual_seconds[i].
     * Linear scan under the mutex — evaluation paths only.
     */
    void annotate(std::uint64_t first_seq,
                  std::span<const double> actual_seconds);

    /** Sequence ids handed out so far. */
    std::uint64_t totalSeen() const
    {
        return nextSeq_.load(std::memory_order_relaxed);
    }

    /** Records ever written (>= snapshot().size()). */
    std::uint64_t totalRecorded() const
    {
        return written_.load(std::memory_order_relaxed);
    }

    /** Copy of the retained records, oldest first. */
    std::vector<PredictionRecord> snapshot() const;

    /** Drop all records and reset the sequence counter. */
    void clear();

    /** The retained records as JSON Lines (one object per line). */
    std::string toJsonl() const;

    /** Write toJsonl() to @p path. @return false on I/O failure. */
    bool writeJsonl(const std::string& path) const;

  private:
    /** Scalar reset that keeps the slot's buffer capacities. */
    static void resetSlot(PredictionRecord& slot);

    /** Next slot to write (grows until full, then wraps). Caller must
     *  hold mutex_. */
    PredictionRecord& nextSlotLocked()
    {
        if (ring_.size() < capacity_) {
            ring_.emplace_back();
            return ring_.back();
        }
        PredictionRecord& slot = ring_[head_];
        head_ = (head_ + 1) % capacity_;
        return slot;
    }

    std::size_t capacity_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> period_{1};
    std::atomic<std::uint64_t> nextSeq_{0};
    std::atomic<std::uint64_t> written_{0};
    mutable std::mutex mutex_;
    std::vector<PredictionRecord> ring_;  ///< arrival order, wraps
    std::size_t head_ = 0;  ///< next slot once the ring is full
};

/** The process-wide prediction log used by the predictor hooks. */
PredictionLog& predictionLog();

}  // namespace mapp::obs

#endif  // MAPP_OBS_AUDIT_H
