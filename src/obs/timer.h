/**
 * @file
 * Wall-clock timing instruments built on the metrics registry.
 *
 * ScopedTimer is an RAII stopwatch feeding a Histogram; ScopedPhase
 * additionally pushes a named phase onto a hierarchical PhaseProfiler,
 * so nested scopes reconstruct the pipeline's phase tree (feature
 * extraction → fairness measurement → tree training → LOOCV) with
 * per-phase call counts and accumulated time. When the global tracer
 * is enabled, ScopedPhase also records its span on the pipeline track.
 */

#ifndef MAPP_OBS_TIMER_H
#define MAPP_OBS_TIMER_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mapp::obs {

/** RAII stopwatch: observes its lifetime (seconds) into a histogram. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram& histogram) : histogram_(&histogram) {}

    /** Convenience: find-or-create the histogram in @p registry. */
    ScopedTimer(Registry& registry, std::string_view name)
        : histogram_(&registry.histogram(name))
    {
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer()
    {
        if (histogram_ != nullptr)
            histogram_->observe(elapsedSeconds());
    }

    /** Seconds since construction. */
    double elapsedSeconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Detach: the destructor will not record. */
    void cancel() { histogram_ = nullptr; }

  private:
    Histogram* histogram_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * A hierarchical wall-time profile: a tree of named phases where each
 * node accumulates total seconds and entry count. enter()/exit() keep
 * a *per-thread* cursor into the shared tree; identical phase names
 * under the same parent merge. Thread-safe via one mutex — phases are
 * coarse (pipeline stages, not per-event), so contention is
 * negligible. A worker thread's first enter() roots its phase stack at
 * the top level, so phases recorded from pool workers (parallel
 * campaign collection, LOOCV folds) appear as their own top-level
 * subtrees rather than corrupting the calling thread's stack.
 */
class PhaseProfiler
{
  public:
    /** Immutable copy of one profile subtree. */
    struct PhaseReport
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t count = 0;
        std::vector<PhaseReport> children;
    };

    /** Push @p name as the current phase (created if new). */
    void enter(std::string_view name);

    /** Pop the current phase, crediting it @p seconds. */
    void exit(double seconds);

    /** Copy of the whole tree (root is the unnamed top level). */
    PhaseReport report() const;

    /** Indented text rendering of report() with times and counts. */
    std::string toText() const;

    /** Drop all phases and reset the cursor. */
    void reset();

  private:
    struct Node
    {
        std::string name;
        double seconds = 0.0;
        std::uint64_t count = 0;
        Node* parent = nullptr;
        std::map<std::string, std::unique_ptr<Node>, std::less<>>
            children;
    };

    static void copyTree(const Node& from, PhaseReport& to);

    /** This thread's cursor (created at root on first use); locked. */
    Node*& cursorLocked();

    mutable std::mutex mutex_;
    Node root_;
    std::map<std::thread::id, Node*> cursors_;
};

/** The process-wide profiler of the predictor pipeline. */
PhaseProfiler& pipelineProfiler();

/**
 * RAII phase scope: enters @p name on @p profiler, exits with the
 * measured wall time, and mirrors the span onto the tracer's pipeline
 * track when tracing is enabled.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(std::string_view name)
        : ScopedPhase(pipelineProfiler(), name)
    {
    }

    ScopedPhase(PhaseProfiler& profiler, std::string_view name);

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

    ~ScopedPhase();

  private:
    PhaseProfiler& profiler_;
    std::string name_;
    double startUs_ = 0.0;  ///< tracer wall clock at entry
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

}  // namespace mapp::obs

#endif  // MAPP_OBS_TIMER_H
