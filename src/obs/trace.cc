#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/file_io.h"
#include "obs/json_util.h"

namespace mapp::obs {

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::size_t
Tracer::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

int
Tracer::beginTrack(const std::string& name)
{
    const int pid = nextPid_.fetch_add(1, std::memory_order_relaxed);
    TraceEvent e;
    e.name = "process_name";
    e.kind = TraceEventKind::Metadata;
    e.pid = pid;
    e.args.push_back(TraceArg::str("name", name));
    record(std::move(e));
    return pid;
}

void
Tracer::nameThread(int pid, int tid, const std::string& name)
{
    TraceEvent e;
    e.name = "thread_name";
    e.kind = TraceEventKind::Metadata;
    e.pid = pid;
    e.tid = tid;
    e.args.push_back(TraceArg::str("name", name));
    record(std::move(e));
}

void
Tracer::completeEvent(std::string name, std::string category,
                      double ts_us, double dur_us, int pid, int tid,
                      std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.kind = TraceEventKind::Complete;
    e.tsUs = ts_us;
    e.durUs = dur_us;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::instantEvent(std::string name, std::string category,
                     double ts_us, int pid, int tid,
                     std::vector<TraceArg> args)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.category = std::move(category);
    e.kind = TraceEventKind::Instant;
    e.tsUs = ts_us;
    e.pid = pid;
    e.tid = tid;
    e.args = std::move(args);
    record(std::move(e));
}

void
Tracer::counterEvent(std::string name, double ts_us, int pid,
                     std::vector<TraceArg> values)
{
    if (!enabled())
        return;
    TraceEvent e;
    e.name = std::move(name);
    e.kind = TraceEventKind::Counter;
    e.tsUs = ts_us;
    e.pid = pid;
    e.args = std::move(values);
    record(std::move(e));
}

void
Tracer::record(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

double
Tracer::wallTimeUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

namespace {

char
phaseLetter(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Complete:
        return 'X';
      case TraceEventKind::Instant:
        return 'i';
      case TraceEventKind::Counter:
        return 'C';
      case TraceEventKind::Metadata:
        return 'M';
    }
    return 'i';
}

void
appendArgs(std::string& out, const std::vector<TraceArg>& args)
{
    out += "\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0)
            out += ',';
        appendJsonString(out, args[i].key);
        out += ':';
        if (args[i].numeric)
            appendJsonNumber(out, args[i].number);
        else
            appendJsonString(out, args[i].text);
    }
    out += '}';
}

}  // namespace

std::string
Tracer::chromeTraceJson() const
{
    const auto events = snapshot();
    std::string out;
    out.reserve(events.size() * 96 + 64);
    out += "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        if (i > 0)
            out += ',';
        out += "\n{\"name\":";
        appendJsonString(out, e.name);
        if (!e.category.empty()) {
            out += ",\"cat\":";
            appendJsonString(out, e.category);
        }
        out += ",\"ph\":\"";
        out += phaseLetter(e.kind);
        out += '"';
        if (e.kind != TraceEventKind::Metadata) {
            out += ",\"ts\":";
            appendJsonNumber(out, e.tsUs);
        }
        if (e.kind == TraceEventKind::Complete) {
            out += ",\"dur\":";
            appendJsonNumber(out, e.durUs);
        }
        if (e.kind == TraceEventKind::Instant)
            out += ",\"s\":\"t\"";
        out += ",\"pid\":" + std::to_string(e.pid);
        out += ",\"tid\":" + std::to_string(e.tid);
        out += ',';
        appendArgs(out, e.args);
        out += '}';
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

std::string
Tracer::textTimeline() const
{
    auto events = snapshot();
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.tsUs < b.tsUs;
                     });

    std::string out;
    for (const TraceEvent& e : events) {
        if (e.kind == TraceEventKind::Metadata)
            continue;
        char head[96];
        std::snprintf(head, sizeof(head), "[%12.3f us] %d/%d ",
                      e.tsUs, e.pid, e.tid);
        out += head;
        switch (e.kind) {
          case TraceEventKind::Complete: {
            char dur[48];
            std::snprintf(dur, sizeof(dur), " (%.3f us)", e.durUs);
            out += "span    " + e.name + dur;
            break;
          }
          case TraceEventKind::Instant:
            out += "instant " + e.name;
            break;
          case TraceEventKind::Counter:
            out += "counter " + e.name;
            break;
          case TraceEventKind::Metadata:
            break;
        }
        if (!e.args.empty()) {
            out += " {";
            for (std::size_t i = 0; i < e.args.size(); ++i) {
                if (i > 0)
                    out += ", ";
                out += e.args[i].key + '=';
                if (e.args[i].numeric) {
                    char num[32];
                    std::snprintf(num, sizeof(num), "%g",
                                  e.args[i].number);
                    out += num;
                } else {
                    out += e.args[i].text;
                }
            }
            out += '}';
        }
        out += '\n';
    }
    return out;
}

bool
Tracer::writeChromeTrace(const std::string& path) const
{
    return writeFileAtomic(path, chromeTraceJson());
}

bool
Tracer::writeTextTimeline(const std::string& path) const
{
    return writeFileAtomic(path, textTimeline());
}

Tracer&
tracer()
{
    static Tracer instance;
    return instance;
}

}  // namespace mapp::obs
