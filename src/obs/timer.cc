#include "obs/timer.h"

#include <cstdio>

#include "common/log.h"
#include "obs/trace.h"

namespace mapp::obs {

PhaseProfiler::Node*&
PhaseProfiler::cursorLocked()
{
    const auto id = std::this_thread::get_id();
    auto it = cursors_.find(id);
    if (it == cursors_.end())
        it = cursors_.emplace(id, &root_).first;
    return it->second;
}

void
PhaseProfiler::enter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Node*& current = cursorLocked();
    auto it = current->children.find(name);
    if (it == current->children.end()) {
        auto node = std::make_unique<Node>();
        node->name = std::string(name);
        node->parent = current;
        it = current->children.emplace(node->name, std::move(node))
                 .first;
    }
    current = it->second.get();
}

void
PhaseProfiler::exit(double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Node*& current = cursorLocked();
    if (current == &root_)
        panic("PhaseProfiler::exit: no phase entered");
    current->seconds += seconds;
    current->count += 1;
    current = current->parent;
}

void
PhaseProfiler::copyTree(const Node& from, PhaseReport& to)
{
    to.name = from.name;
    to.seconds = from.seconds;
    to.count = from.count;
    to.children.reserve(from.children.size());
    for (const auto& [name, child] : from.children) {
        to.children.emplace_back();
        copyTree(*child, to.children.back());
    }
}

PhaseProfiler::PhaseReport
PhaseProfiler::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PhaseReport out;
    copyTree(root_, out);
    return out;
}

namespace {

void
renderReport(const PhaseProfiler::PhaseReport& node, int depth,
             std::string& out)
{
    if (depth >= 0) {  // skip the unnamed root
        char line[160];
        std::snprintf(line, sizeof(line), "%*s%-32s %12.6f s  x%llu\n",
                      depth * 2, "", node.name.c_str(), node.seconds,
                      static_cast<unsigned long long>(node.count));
        out += line;
    }
    for (const auto& child : node.children)
        renderReport(child, depth + 1, out);
}

}  // namespace

std::string
PhaseProfiler::toText() const
{
    std::string out;
    renderReport(report(), -1, out);
    return out;
}

void
PhaseProfiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    root_.children.clear();
    root_.seconds = 0.0;
    root_.count = 0;
    cursors_.clear();
}

PhaseProfiler&
pipelineProfiler()
{
    static PhaseProfiler instance;
    return instance;
}

ScopedPhase::ScopedPhase(PhaseProfiler& profiler, std::string_view name)
    : profiler_(profiler), name_(name)
{
    profiler_.enter(name_);
    if (tracer().enabled())
        startUs_ = tracer().wallTimeUs();
}

ScopedPhase::~ScopedPhase()
{
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    profiler_.exit(seconds);
    Tracer& tr = tracer();
    if (tr.enabled()) {
        tr.completeEvent(name_, "pipeline", startUs_, seconds * 1e6,
                         kPipelineTrackPid, 0);
    }
}

}  // namespace mapp::obs
