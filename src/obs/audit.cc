#include "obs/audit.h"

#include <cmath>
#include <fstream>

#include "common/file_io.h"
#include "common/log.h"
#include "obs/json_util.h"

namespace mapp::obs {

bool
PredictionRecord::hasActual() const
{
    return std::isfinite(actualSeconds);
}

PredictionLog::PredictionLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_);
}

void
PredictionLog::setSamplePeriod(std::uint64_t period)
{
    if (period == 0)
        fatal("PredictionLog: sample period must be >= 1");
    period_.store(period, std::memory_order_relaxed);
}

void
PredictionLog::resetSlot(PredictionRecord& slot)
{
    slot.seq = 0;
    slot.tsUs = 0.0;
    slot.model.clear();
    slot.features.clear();
    slot.predictedSeconds = 0.0;
    slot.uncertaintySeconds = 0.0;
    slot.pathSummary.clear();
    slot.actualSeconds = std::numeric_limits<double>::quiet_NaN();
}

void
PredictionLog::record(PredictionRecord record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(record));
    } else {
        // Moving into the slot frees the evicted record's buffers; the
        // ring itself never reallocates after warm-up.
        ring_[head_] = std::move(record);
        head_ = (head_ + 1) % capacity_;
    }
    written_.fetch_add(1, std::memory_order_relaxed);
}

void
PredictionLog::annotate(std::uint64_t first_seq,
                        std::span<const double> actual_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& record : ring_) {
        if (record.seq < first_seq ||
            record.seq >= first_seq + actual_seconds.size())
            continue;
        record.actualSeconds =
            actual_seconds[static_cast<std::size_t>(record.seq -
                                                    first_seq)];
    }
}

std::vector<PredictionRecord>
PredictionLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<PredictionRecord> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

void
PredictionLog::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    head_ = 0;
    nextSeq_.store(0, std::memory_order_relaxed);
    written_.store(0, std::memory_order_relaxed);
}

namespace {

void
appendRecordJson(std::string& out, const PredictionRecord& r)
{
    out += "{\"seq\": " + std::to_string(r.seq);
    out += ", \"ts_us\": ";
    appendJsonNumber(out, r.tsUs);
    out += ", \"model\": ";
    appendJsonString(out, r.model);
    out += ", \"predicted_s\": ";
    appendJsonNumber(out, r.predictedSeconds);
    out += ", \"uncertainty_s\": ";
    appendJsonNumber(out, r.uncertaintySeconds);
    out += ", \"actual_s\": ";
    appendJsonNumber(out, r.actualSeconds);  // null when unknown
    out += ", \"path\": ";
    appendJsonString(out, r.pathSummary);
    out += ", \"features\": [";
    for (std::size_t i = 0; i < r.features.size(); ++i) {
        if (i > 0)
            out += ", ";
        appendJsonNumber(out, r.features[i]);
    }
    out += "]}";
}

}  // namespace

std::string
PredictionLog::toJsonl() const
{
    const auto records = snapshot();
    std::string out;
    out.reserve(records.size() * 256);
    for (const auto& r : records) {
        appendRecordJson(out, r);
        out += '\n';
    }
    return out;
}

bool
PredictionLog::writeJsonl(const std::string& path) const
{
    return writeFileAtomic(path, toJsonl());
}

PredictionLog&
predictionLog()
{
    static PredictionLog instance;
    return instance;
}

}  // namespace mapp::obs
