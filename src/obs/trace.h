/**
 * @file
 * Event tracing for the simulators and the predictor pipeline.
 *
 * A Tracer records timestamped events — duration spans (a client's
 * kernel phase on the simulated GPU, a pipeline stage), instant events
 * (a resource re-partition, a scheduler pairing decision) and counter
 * samples — and exports them as Chrome-trace JSON (loadable in
 * chrome://tracing or https://ui.perfetto.dev) or a plain-text
 * timeline.
 *
 * The tracer is disabled by default; every record call checks one
 * atomic flag first, so instrumentation left in hot paths costs a
 * single predictable branch when tracing is off. Timestamps are
 * caller-provided microseconds: the simulators pass *simulated* time,
 * the pipeline passes wall time (wallTimeUs()). Tracks are keyed by
 * (pid, tid) like in Chrome: beginTrack() allocates a fresh pid per
 * simulated run so concurrent/consecutive runs stay separable.
 */

#ifndef MAPP_OBS_TRACE_H
#define MAPP_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mapp::obs {

/** One key/value annotation on a trace event. */
struct TraceArg
{
    std::string key;
    std::string text;      ///< used when !numeric
    double number = 0.0;   ///< used when numeric
    bool numeric = false;

    static TraceArg str(std::string k, std::string v)
    {
        TraceArg a;
        a.key = std::move(k);
        a.text = std::move(v);
        return a;
    }

    static TraceArg num(std::string k, double v)
    {
        TraceArg a;
        a.key = std::move(k);
        a.number = v;
        a.numeric = true;
        return a;
    }
};

/** Chrome-trace event kinds the tracer records. */
enum class TraceEventKind {
    Complete,  ///< a span: "ph":"X" with ts + dur
    Instant,   ///< a point: "ph":"i"
    Counter,   ///< a sampled value: "ph":"C"
    Metadata,  ///< process/thread naming: "ph":"M"
};

/** One recorded event. */
struct TraceEvent
{
    std::string name;
    std::string category;
    TraceEventKind kind = TraceEventKind::Instant;
    double tsUs = 0.0;   ///< start timestamp, microseconds
    double durUs = 0.0;  ///< span duration (Complete only)
    int pid = 0;
    int tid = 0;
    std::vector<TraceArg> args;
};

/** Well-known pids for the fixed (non per-run) tracks. */
inline constexpr int kPipelineTrackPid = 1;
inline constexpr int kSchedulerTrackPid = 2;

/** Thread-safe append-only event recorder. */
class Tracer
{
  public:
    /** Cheap gate for instrumentation sites (one relaxed load). */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Drop all recorded events (the enabled flag is untouched). */
    void clear();

    /** Number of recorded events. */
    std::size_t size() const;

    /**
     * Allocate a fresh pid and name its track (emits a process_name
     * metadata event). Use one track per simulated run.
     */
    int beginTrack(const std::string& name);

    /** Name one tid within a track (thread_name metadata event). */
    void nameThread(int pid, int tid, const std::string& name);

    /** Record a duration span. No-op while disabled. */
    void completeEvent(std::string name, std::string category,
                       double ts_us, double dur_us, int pid, int tid,
                       std::vector<TraceArg> args = {});

    /** Record an instant event. No-op while disabled. */
    void instantEvent(std::string name, std::string category,
                      double ts_us, int pid, int tid,
                      std::vector<TraceArg> args = {});

    /** Record a counter sample. No-op while disabled. */
    void counterEvent(std::string name, double ts_us, int pid,
                      std::vector<TraceArg> values);

    /** Copy of every recorded event, in record order. */
    std::vector<TraceEvent> snapshot() const;

    /** Microseconds of wall time since this tracer was constructed. */
    double wallTimeUs() const;

    /** The full Chrome-trace JSON document. */
    std::string chromeTraceJson() const;

    /** A human-readable timeline, sorted by timestamp. */
    std::string textTimeline() const;

    /** Write chromeTraceJson() to @p path. @return false on I/O error. */
    bool writeChromeTrace(const std::string& path) const;

    /** Write textTimeline() to @p path. @return false on I/O error. */
    bool writeTextTimeline(const std::string& path) const;

  private:
    void record(TraceEvent event);

    std::atomic<bool> enabled_{false};
    std::atomic<int> nextPid_{16};  // per-run tracks; fixed pids below
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
};

/** The process-wide tracer used by the built-in instrumentation. */
Tracer& tracer();

}  // namespace mapp::obs

#endif  // MAPP_OBS_TRACE_H
