/**
 * @file
 * The MAPP metrics registry: named counters, gauges and fixed-bucket
 * histograms with cheap thread-safe updates.
 *
 * Instruments register metrics by name in a Registry (usually the
 * process-wide defaultRegistry()) and hold the returned reference;
 * lookups take a mutex but updates are lock-free atomics, so hot paths
 * should resolve their instrument once and increment the reference.
 * snapshot()/reset() give tests and exporters a consistent view without
 * stopping writers.
 *
 * Thread-safety contract (relied on by the parallel execution layer):
 * every operation on Registry, Counter, Gauge and Histogram is safe to
 * call concurrently from any thread. Instrument references returned by
 * counter()/gauge()/histogram() are stable for the registry's lifetime
 * and may be updated from pool workers without external locking —
 * collectors and simulators increment them freely from parallelFor
 * bodies. Updates use relaxed atomics: totals are exact once threads
 * join (parallelFor joins before returning), but a snapshot taken
 * mid-flight may interleave with concurrent updates.
 */

#ifndef MAPP_OBS_METRICS_H
#define MAPP_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mapp::obs {

/** A monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** A last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A fixed-bucket histogram: bucket i counts observations v with
 * v <= bounds[i] (and greater than the previous bound); one implicit
 * overflow bucket catches everything above the last bound. Bounds are
 * fixed at construction so observe() is a branch-light atomic
 * increment.
 */
class Histogram
{
  public:
    /**
     * @param upper_bounds strictly ascending, finite bucket bounds
     * @param name instrument name used to locate validation errors
     * @throws mapp::InputError (a FatalError) when bounds are empty,
     *         unsorted, duplicated or non-finite — a malformed bound
     *         list would silently miscount every observation.
     */
    explicit Histogram(std::vector<double> upper_bounds,
                       std::string_view name = "");

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void observe(double v);

    /** Upper bounds, ascending (the overflow bucket is implicit). */
    const std::vector<double>& bucketBounds() const { return bounds_; }

    /** Per-bucket counts; size is bucketBounds().size() + 1. */
    std::vector<std::uint64_t> bucketCounts() const;

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    double mean() const
    {
        const auto n = count();
        return n > 0 ? sum() / static_cast<double>(n) : 0.0;
    }

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/** Point-in-time copy of one histogram (bounds + counts + moments). */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
    std::uint64_t count = 0;
    double sum = 0.0;

    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Estimate the @p q quantile (q in [0,1], clamped) from the bucket
     * counts, interpolating linearly inside the bucket holding rank
     * q*count. The first bucket's lower edge is min(0, bounds[0]) —
     * time histograms start at 0, signed-error histograms extend below
     * it — and mass in the overflow bucket clamps to the last bound
     * (the snapshot carries no upper edge for it). NaN when empty.
     */
    double quantile(double q) const;
};

/** Point-in-time copy of a whole registry. */
struct RegistrySnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** The named histogram, or nullptr. */
    const HistogramSnapshot* findHistogram(std::string_view name) const;

    /** Pointer to the named gauge's value, or nullptr. */
    const double* findGauge(std::string_view name) const;

    /** Pointer to the named counter's value, or nullptr. */
    const std::uint64_t* findCounter(std::string_view name) const;

    /** The snapshot as a stable JSON document. */
    std::string toJson() const;
};

/**
 * Default histogram bucket bounds for durations in seconds: powers of
 * four from 1 µs to ~67 s (13 buckets + overflow).
 */
std::vector<double> defaultTimeBucketBounds();

/** A named collection of metrics instruments. */
class Registry
{
  public:
    /** Find or create the named counter (reference stays valid). */
    Counter& counter(std::string_view name);

    /** Find or create the named gauge. */
    Gauge& gauge(std::string_view name);

    /**
     * Find or create the named histogram. @p upper_bounds is only used
     * on first creation (empty = defaultTimeBucketBounds()); it must be
     * strictly ascending and finite. @throws mapp::InputError (a
     * FatalError) naming the instrument on malformed bounds.
     */
    Histogram& histogram(std::string_view name,
                         std::vector<double> upper_bounds = {});

    /** Consistent point-in-time copy of every instrument. */
    RegistrySnapshot snapshot() const;

    /** Zero every instrument (instruments stay registered). */
    void reset();

    /** snapshot().toJson(). */
    std::string toJson() const;

    /** Write toJson() to @p path. @return false on I/O failure. */
    bool writeJson(const std::string& path) const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/** The process-wide registry used by the built-in instrumentation. */
Registry& defaultRegistry();

}  // namespace mapp::obs

#endif  // MAPP_OBS_METRICS_H
