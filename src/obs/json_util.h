/**
 * @file
 * Minimal JSON string/number formatting shared by the metrics and trace
 * exporters. Writing only — the observability layer emits JSON for
 * external viewers (Perfetto, dashboards) but never parses it.
 */

#ifndef MAPP_OBS_JSON_UTIL_H
#define MAPP_OBS_JSON_UTIL_H

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace mapp::obs {

/** Append @p text as a quoted, escaped JSON string. */
inline void
appendJsonString(std::string& out, std::string_view text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Append @p v as a JSON number. JSON has no NaN/Inf literal; emitting 0
 * instead would fabricate a data point in dashboards, so non-finite
 * values become `null` and downstream viewers show a gap.
 */
inline void
appendJsonNumber(std::string& out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

}  // namespace mapp::obs

#endif  // MAPP_OBS_JSON_UTIL_H
