#include "obs/json_reader.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace mapp::obs {

double
JsonValue::number() const
{
    return kind_ == Kind::Number
               ? number_
               : std::numeric_limits<double>::quiet_NaN();
}

double
JsonValue::numberOr(double fallback) const
{
    return kind_ == Kind::Number ? number_ : fallback;
}

const JsonValue*
JsonValue::find(std::string_view key) const
{
    for (const auto& [name, value] : members_)
        if (name == key)
            return &value;
    return nullptr;
}

double
JsonValue::memberNumberOr(std::string_view key, double fallback) const
{
    const JsonValue* v = find(key);
    return v != nullptr ? v->numberOr(fallback) : fallback;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.boolean_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.text_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

namespace {

/** Deepest value nesting accepted (our sidecars use < 10). */
constexpr int kMaxDepth = 128;

/** Recursive-descent parser over one document. */
class Parser
{
  public:
    Parser(std::string_view text, const std::string& label)
        : text_(text), label_(label)
    {
    }

    Result<JsonValue> parse()
    {
        auto value = parseValue(0);
        if (!value.ok())
            return value;
        skipWhitespace();
        if (pos_ != text_.size())
            return fail("trailing content after the JSON document");
        return value;
    }

  private:
    Error locate(const std::string& message) const
    {
        SourceContext context;
        context.file = label_;
        context.row = line_;
        return Error(ErrorCode::Parse, message, std::move(context));
    }

    Result<JsonValue> fail(const std::string& message) const
    {
        return Result<JsonValue>(locate(message));
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            if (c == '\n')
                ++line_;
            ++pos_;
        }
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    /** Append @p codepoint to @p out as UTF-8. */
    static void appendUtf8(std::string& out, unsigned codepoint)
    {
        if (codepoint < 0x80) {
            out += static_cast<char>(codepoint);
        } else if (codepoint < 0x800) {
            out += static_cast<char>(0xC0 | (codepoint >> 6));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (codepoint >> 12));
            out += static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (codepoint & 0x3F));
        }
    }

    Result<std::string> parseString()
    {
        // Caller consumed the opening quote.
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\n')
                return Result<std::string>(
                    locate("unterminated string (newline inside)"));
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return Result<std::string>(
                        locate("truncated \\u escape"));
                unsigned codepoint = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    codepoint <<= 4;
                    if (h >= '0' && h <= '9')
                        codepoint |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        codepoint |=
                            static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        codepoint |=
                            static_cast<unsigned>(h - 'A' + 10);
                    else
                        return Result<std::string>(
                            locate("bad hex digit in \\u escape"));
                }
                appendUtf8(out, codepoint);
                break;
              }
              default:
                return Result<std::string>(locate(
                    std::string("unknown escape '\\") + esc + "'"));
            }
        }
        return Result<std::string>(locate("unterminated string"));
    }

    Result<JsonValue> parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            const bool numeric =
                (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-';
            if (!numeric)
                break;
            ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (token.empty() || token == "-")
            return fail("expected a number");
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("bad number '" + token + "'");
        if (!std::isfinite(v))
            return fail("number '" + token +
                        "' is out of double range");
        return Result<JsonValue>(JsonValue::makeNumber(v));
    }

    Result<JsonValue> parseValue(int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting deeper than " +
                        std::to_string(kMaxDepth) + " levels");
        skipWhitespace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            std::vector<std::pair<std::string, JsonValue>> members;
            skipWhitespace();
            if (consume('}'))
                return Result<JsonValue>(
                    JsonValue::makeObject(std::move(members)));
            while (true) {
                skipWhitespace();
                if (!consume('"'))
                    return fail("expected a member name string");
                auto name = parseString();
                if (!name.ok())
                    return Result<JsonValue>(name.error());
                skipWhitespace();
                if (!consume(':'))
                    return fail("expected ':' after member name");
                auto value = parseValue(depth + 1);
                if (!value.ok())
                    return value;
                members.emplace_back(std::move(name).value(),
                                     std::move(value).value());
                skipWhitespace();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return Result<JsonValue>(
                        JsonValue::makeObject(std::move(members)));
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            std::vector<JsonValue> items;
            skipWhitespace();
            if (consume(']'))
                return Result<JsonValue>(
                    JsonValue::makeArray(std::move(items)));
            while (true) {
                auto value = parseValue(depth + 1);
                if (!value.ok())
                    return value;
                items.push_back(std::move(value).value());
                skipWhitespace();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return Result<JsonValue>(
                        JsonValue::makeArray(std::move(items)));
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            ++pos_;
            auto text = parseString();
            if (!text.ok())
                return Result<JsonValue>(text.error());
            return Result<JsonValue>(
                JsonValue::makeString(std::move(text).value()));
        }
        if (consumeWord("true"))
            return Result<JsonValue>(JsonValue::makeBool(true));
        if (consumeWord("false"))
            return Result<JsonValue>(JsonValue::makeBool(false));
        if (consumeWord("null"))
            return Result<JsonValue>(JsonValue::makeNull());
        return parseNumber();
    }

    std::string_view text_;
    const std::string& label_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

}  // namespace

Result<JsonValue>
parseJson(std::string_view text, const std::string& source_label)
{
    Parser parser(text, source_label);
    return parser.parse();
}

}  // namespace mapp::obs
