/**
 * @file
 * A minimal JSON reader for the observability sidecars. The obs layer
 * historically only *wrote* JSON; the `mapp_cli report` subcommand
 * closes the loop by reading a run's metrics/predictions/trace files
 * back, so this parser covers exactly the documents our own exporters
 * emit (objects, arrays, strings with escapes, numbers, bools, null)
 * and reports malformed input as a located mapp::Error instead of
 * crashing or silently mis-reading.
 */

#ifndef MAPP_OBS_JSON_READER_H
#define MAPP_OBS_JSON_READER_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"

namespace mapp::obs {

/** One parsed JSON value (a small recursive variant). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** NaN unless this is a number. */
    double number() const;

    /** @p fallback unless this is a number. */
    double numberOr(double fallback) const;

    bool boolean() const { return boolean_; }

    /** Empty unless this is a string. */
    const std::string& text() const { return text_; }

    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue>& items() const { return items_; }

    /** Object members in document order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>>& members() const
    {
        return members_;
    }

    /** Member value by key (objects only), or nullptr. */
    const JsonValue* find(std::string_view key) const;

    /** find() chained: the @p key member's @p inner member, etc. */
    double memberNumberOr(std::string_view key, double fallback) const;

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(
        std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string text_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one JSON document. Trailing non-whitespace, unterminated
 * strings, bad escapes, non-finite number spellings and nesting deeper
 * than an internal bound all fail with an ErrorCode::Parse error
 * located at @p source_label and the offending line.
 */
Result<JsonValue> parseJson(std::string_view text,
                            const std::string& source_label = "");

}  // namespace mapp::obs

#endif  // MAPP_OBS_JSON_READER_H
