#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "common/error.h"
#include "common/file_io.h"
#include "common/log.h"
#include "obs/json_util.h"

namespace mapp::obs {

namespace {

/** Lock-free add for pre-C++20-hardware atomic doubles. */
void
atomicAdd(std::atomic<double>& target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
}

/** Raise an InvalidArgument located at the offending instrument. */
[[noreturn]] void
rejectBounds(std::string_view name, const std::string& why)
{
    SourceContext context;
    context.column = std::string(name);
    raise(Error(ErrorCode::InvalidArgument, "Histogram: " + why,
                std::move(context)));
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds,
                     std::string_view name)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1)
{
    if (bounds_.empty())
        rejectBounds(name, "at least one bucket bound required");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (!std::isfinite(bounds_[i])) {
            rejectBounds(name, "bucket bound " + std::to_string(i) +
                                   " is not finite");
        }
        if (i > 0 && !(bounds_[i - 1] < bounds_[i])) {
            rejectBounds(
                name, "bucket bounds must be strictly ascending "
                      "(bound " +
                          std::to_string(i) + " = " +
                          std::to_string(bounds_[i]) +
                          " does not exceed its predecessor " +
                          std::to_string(bounds_[i - 1]) + ")");
        }
    }
}

void
Histogram::observe(double v)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(counts_.size());
    for (const auto& c : counts_)
        out.push_back(c.load(std::memory_order_relaxed));
    return out;
}

void
Histogram::reset()
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0 || counts.empty() || bounds.empty())
        return std::numeric_limits<double>::quiet_NaN();
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const auto c = static_cast<double>(counts[i]);
        if (c == 0.0)
            continue;  // cum is unchanged; skip degenerate brackets
        const double next = cum + c;
        if (next >= target) {
            if (i >= bounds.size())
                return bounds.back();  // overflow: no upper edge
            const double upper = bounds[i];
            const double lower =
                i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
            const double frac =
                std::clamp((target - cum) / c, 0.0, 1.0);
            return lower + frac * (upper - lower);
        }
        cum = next;
    }
    return bounds.back();  // floating-point slack on the last rank
}

const HistogramSnapshot*
RegistrySnapshot::findHistogram(std::string_view name) const
{
    for (const auto& h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

const double*
RegistrySnapshot::findGauge(std::string_view name) const
{
    for (const auto& [key, value] : gauges)
        if (key == name)
            return &value;
    return nullptr;
}

const std::uint64_t*
RegistrySnapshot::findCounter(std::string_view name) const
{
    for (const auto& [key, value] : counters)
        if (key == name)
            return &value;
    return nullptr;
}

std::vector<double>
defaultTimeBucketBounds()
{
    // Powers of four from 1 µs to ~67 s: wide enough for both
    // microsecond kernel phases and minute-long campaigns.
    std::vector<double> bounds;
    double b = 1e-6;
    for (int i = 0; i < 13; ++i) {
        bounds.push_back(b);
        b *= 4.0;
    }
    return bounds;
}

Counter&
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge&
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram&
Registry::histogram(std::string_view name,
                    std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        if (upper_bounds.empty())
            upper_bounds = defaultTimeBucketBounds();
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(
                              std::move(upper_bounds), name))
                 .first;
    }
    return *it->second;
}

RegistrySnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.bounds = h->bucketBounds();
        hs.counts = h->bucketCounts();
        hs.count = h->count();
        hs.sum = h->sum();
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, g] : gauges_)
        g->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

std::string
RegistrySnapshot::toJson() const
{
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        out += std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& h : histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, h.name);
        out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
        appendJsonNumber(out, h.sum);
        out += ", \"mean\": ";
        appendJsonNumber(out, h.mean());
        out += ", \"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0)
                out += ", ";
            appendJsonNumber(out, h.bounds[i]);
        }
        out += "], \"buckets\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(h.counts[i]);
        }
        out += "]}";
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    return out;
}

std::string
Registry::toJson() const
{
    return snapshot().toJson();
}

bool
Registry::writeJson(const std::string& path) const
{
    return writeFileAtomic(path, toJson());
}

Registry&
defaultRegistry()
{
    static Registry instance;
    return instance;
}

}  // namespace mapp::obs
