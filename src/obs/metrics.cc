#include "obs/metrics.h"

#include <algorithm>
#include <fstream>

#include "common/log.h"
#include "obs/json_util.h"

namespace mapp::obs {

namespace {

/** Lock-free add for pre-C++20-hardware atomic doubles. */
void
atomicAdd(std::atomic<double>& target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1)
{
    if (bounds_.empty())
        fatal("Histogram: at least one bucket bound required");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) !=
            bounds_.end()) {
        fatal("Histogram: bucket bounds must be strictly ascending");
    }
}

void
Histogram::observe(double v)
{
    const auto it =
        std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const auto idx =
        static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out;
    out.reserve(counts_.size());
    for (const auto& c : counts_)
        out.push_back(c.load(std::memory_order_relaxed));
    return out;
}

void
Histogram::reset()
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double>
defaultTimeBucketBounds()
{
    // Powers of four from 1 µs to ~67 s: wide enough for both
    // microsecond kernel phases and minute-long campaigns.
    std::vector<double> bounds;
    double b = 1e-6;
    for (int i = 0; i < 13; ++i) {
        bounds.push_back(b);
        b *= 4.0;
    }
    return bounds;
}

Counter&
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge&
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram&
Registry::histogram(std::string_view name,
                    std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        if (upper_bounds.empty())
            upper_bounds = defaultTimeBucketBounds();
        it = histograms_
                 .emplace(std::string(name), std::make_unique<Histogram>(
                                                 std::move(upper_bounds)))
                 .first;
    }
    return *it->second;
}

RegistrySnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RegistrySnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        HistogramSnapshot hs;
        hs.name = name;
        hs.bounds = h->bucketBounds();
        hs.counts = h->bucketCounts();
        hs.count = h->count();
        hs.sum = h->sum();
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_)
        c->reset();
    for (auto& [name, g] : gauges_)
        g->reset();
    for (auto& [name, h] : histograms_)
        h->reset();
}

std::string
RegistrySnapshot::toJson() const
{
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        out += std::to_string(value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& h : histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, h.name);
        out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
        appendJsonNumber(out, h.sum);
        out += ", \"mean\": ";
        appendJsonNumber(out, h.mean());
        out += ", \"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0)
                out += ", ";
            appendJsonNumber(out, h.bounds[i]);
        }
        out += "], \"buckets\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(h.counts[i]);
        }
        out += "]}";
    }
    out += first ? "}\n}\n" : "\n  }\n}\n";
    return out;
}

std::string
Registry::toJson() const
{
    return snapshot().toJson();
}

bool
Registry::writeJson(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

Registry&
defaultRegistry()
{
    static Registry instance;
    return instance;
}

}  // namespace mapp::obs
