#include "common/rng.h"

#include <cmath>

namespace mapp {

namespace {

/** splitmix64 step used to expand the user seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
    // Avoid the all-zero state, which is a fixed point of xoshiro.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range requested
        return static_cast<std::int64_t>(next());
    // Rejection-free modulo is fine here: span is tiny vs 2^64, the bias
    // is immeasurable for simulation purposes.
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    // Box-Muller; u must be > 0 for the log.
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    const double v = uniform();
    const double r = std::sqrt(-2.0 * std::log(u));
    const double theta = 2.0 * M_PI * v;
    spareNormal_ = r * std::sin(theta);
    hasSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double rate)
{
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xD2B74407B1CE6E93ull);
}

}  // namespace mapp
