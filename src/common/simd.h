/**
 * @file
 * The runtime-dispatched SIMD kernel layer for the inference hot path.
 *
 * The serving stack funnels every prediction through three loop
 * families: the compiled lock-step tree traversal
 * (`ml/compiled_tree.cc`), the batch in-place range normalizer
 * (`predictor/features.cc`), and the error-reduction kernels behind
 * quality monitoring (`ml/metrics.cc`, `common/stats.cc`). Each family
 * has one kernel per CPU tier (scalar, SSE2, AVX2), compiled in its
 * own translation unit with explicit `-msse2` / `-mavx2` flags, and the
 * process resolves ONE function-pointer table at startup from a cpuid
 * probe — so a single portable binary runs the widest vectors the
 * machine actually has, replacing the old non-portable per-file
 * `-march=native` build.
 *
 * Tier selection:
 *  1. `mapp_cli --simd={auto,avx2,sse2,scalar}` (maps to setTier()),
 *  2. the `MAPP_SIMD` environment variable (same values; an unknown
 *     value warns and falls back to auto, an unsupported tier warns
 *     and clamps to the best the CPU has),
 *  3. `auto`: the widest tier the CPU reports (AVX2 > SSE2 > scalar).
 * The resolved tier is exported as the `simd.active_tier` gauge
 * (0 = scalar, 1 = sse2, 2 = avx2) in the default metrics registry.
 *
 * WALK CALIBRATION. The tree walk is the one kernel where "widest
 * vectors" is not automatically fastest: the AVX2 walk is built on
 * vpgather, and on several common microarchitectures (Skylake-class
 * servers included) a gather decodes into the SAME per-lane load uops
 * a scalar walk issues, plus index-arithmetic overhead — so it loses
 * to the unrolled scalar walk, which already saturates both load
 * ports. Because every tier is bit-identical, the walk choice is
 * purely a performance decision, so `auto` settles it empirically: at
 * resolution time the dispatcher times the tier's vector walk against
 * the scalar walk on a small synthetic tree (~100 microseconds, once
 * per process) and keeps whichever is faster. An EXPLICIT tier
 * request (env, --simd=, setTier()) skips calibration and gets
 * exactly that tier's kernels — the escape hatch for benchmarks and
 * tests. The chosen walk is exported as the `simd.walk_tier` gauge
 * (0 = scalar walk, else the tier whose vector walk won).
 *
 * BIT-IDENTITY CONTRACT. Every tier produces bit-identical results to
 * the scalar kernels, pinned by tests/test_simd.cc:
 *  - the tree walk only ever compares `x <= threshold` on the same
 *    doubles (comparisons are exact; no arithmetic is performed);
 *  - the normalizer divides each element by a per-feature divisor
 *    (`scale` for time features, exactly `1.0` otherwise — and IEEE
 *    division by 1.0 is the identity), one rounding per element in
 *    every tier;
 *  - the reductions vectorize only the ELEMENTWISE part (sub, mul,
 *    abs, div — each exact or one-rounding-per-element in all tiers)
 *    and then fold the lanes into the accumulator IN ELEMENT ORDER
 *    with scalar adds, preserving the scalar summation sequence.
 *    (This caps the reduction speedup — the dependent add chain stays
 *    serial by contract — but the divisions and multiplies leave the
 *    critical path.)
 */

#ifndef MAPP_COMMON_SIMD_H
#define MAPP_COMMON_SIMD_H

#include <cstdint>
#include <string>
#include <vector>

namespace mapp::simd {

/** CPU capability tiers, widest last. Values are the gauge encoding. */
enum class Tier : int
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/**
 * Rows a lock-step walk block holds in flight. The chunk drivers in
 * ml/compiled_tree.cc never pass walk() more than this many rows.
 */
constexpr std::size_t kWalkBlockRows = 32;

/**
 * Steps the fixed-step walk runs between "is every row at a leaf?"
 * probes. Most rows exit well before the tree's depth bound; probing
 * every few steps recovers that slack for the price of one
 * well-predicted branch per probe. Every tier honors the same cadence
 * (the probe can only ever skip no-op steps, so it never changes
 * results).
 */
constexpr int kWalkStepsPerProbe = 3;

/**
 * One flattened tree node, packed into 16 bytes for the GATHER-based
 * walk kernels: the split threshold (or, at a leaf, the LEAF VALUE —
 * the self-loop sentinel encoding of ml/compiled_tree.h) plus one
 * 64-bit word holding `feature << 50 | right << 25 | left`.
 *
 * The packing exists for the vector walk's gather budget: with the
 * structure-of-arrays layout (feature[], threshold[], interleaved
 * kids[]) a vectorized level costs FOUR gathers per row group
 * (feature id, feature value, threshold, taken child); with the
 * packed record it costs THREE — threshold and the feature/children
 * word live in one 16-byte slot, and the child select becomes a
 * shift/mask of the gathered word instead of a fourth gather.
 *
 * The SCALAR walk deliberately does NOT use this layout. Measured on
 * the real fitted forests this project serves (shallow, imbalanced
 * trees whose rows exit early), the SoA walk's indexed child load
 * `kids[2n + go]` — one cheap load-port uop — beats the packed
 * record's variable-shift select `word >> (25*go)`, which adds a
 * multiply and a 3-uop variable shift to every level's dependency
 * chain (~1.5x slower end to end). The packed walk only wins when
 * every row walks a perfect tree to full depth — a workload the
 * serving path never produces. Both layouts therefore coexist in
 * TreeNodes and each kernel reads the one it is fastest on; see
 * EXPERIMENTS.md for the measurements.
 *
 * Capacity: 25-bit child indices (kMaxNodes = 2^25 ≈ 33.5M nodes per
 * compiled tree/forest) and 14-bit feature ids (kMaxFeatures =
 * 16384). ml/compiled_tree.cc validates both at compile time and
 * fails fast — the limits are ~1000x beyond anything this project's
 * forests reach, but exceeding them must be an error, never silent
 * index truncation.
 */
struct PackedNode
{
    static constexpr int kChildBits = 25;
    static constexpr int kFeatureShift = 2 * kChildBits;
    static constexpr std::uint64_t kChildMask =
        (std::uint64_t{1} << kChildBits) - 1;
    static constexpr std::size_t kMaxNodes = std::size_t{1}
                                             << kChildBits;
    static constexpr std::size_t kMaxFeatures =
        std::size_t{1} << (64 - kFeatureShift);

    double threshold;    ///< split threshold, or leaf value at a leaf
    std::uint64_t word;  ///< feature << 50 | right << 25 | left

    static PackedNode pack(double threshold, std::uint32_t feature,
                           std::uint32_t left, std::uint32_t right)
    {
        return PackedNode{
            threshold,
            (static_cast<std::uint64_t>(feature) << kFeatureShift) |
                (static_cast<std::uint64_t>(right) << kChildBits) |
                static_cast<std::uint64_t>(left)};
    }

    std::uint32_t feature() const
    {
        return static_cast<std::uint32_t>(word >> kFeatureShift);
    }
    std::uint32_t left() const
    {
        return static_cast<std::uint32_t>(word & kChildMask);
    }
    std::uint32_t right() const
    {
        return static_cast<std::uint32_t>((word >> kChildBits) &
                                          kChildMask);
    }
};

static_assert(sizeof(PackedNode) == 16,
              "walk kernels index node records at 16-byte stride");

/**
 * The walk kernels' view of one compiled tree/forest's node storage:
 * the SAME nodes in two layouts, because the fastest layout differs
 * by kernel (see PackedNode). The scalar walk reads the SoA arrays;
 * gather-based vector walks read the packed records. A leaf self-loops
 * in both layouts (kids[2i] == kids[2i+1] == i) and stores its value
 * in the threshold slot. ml/compiled_tree.cc keeps both populated.
 */
struct TreeNodes
{
    const std::int32_t* feature;  ///< split feature id per node
    const double* threshold;      ///< split threshold / leaf value
    const std::int32_t* kids;     ///< interleaved [left,right] pairs
    const PackedNode* packed;     ///< same nodes as 16-byte records
};

/**
 * One tier's kernel table. All pointers are non-null in every table
 * (a tier reuses the scalar kernel where vectorization cannot help,
 * e.g. the SSE2 tree walk — two-lane gathers cost more than they
 * save).
 */
struct Kernels
{
    Tier tier;
    const char* name;  ///< "scalar" / "sse2" / "avx2"

    /**
     * Advance @p row_count (1..kWalkBlockRows) rows through one
     * flattened tree for a fixed @p steps comparisons and write (or,
     * with @p accumulate, add) each row's final leaf value to
     * @p out[i]. The node encoding is ml/compiled_tree.h's: a leaf
     * stores its value in the threshold slot and self-loops (left ==
     * right == node), so the walk needs no per-step termination
     * branch and the final threshold load IS the prediction; the
     * split decision is a SETcc-fed child select (an indexed load in
     * the scalar walk, a word blend in the vector walks), never a
     * data-dependent branch. NaN features route right in every tier
     * (NaN fails `<=`).
     */
    void (*walk)(const TreeNodes& nodes, std::int32_t root, int steps,
                 const double* rows, std::size_t n_features,
                 std::size_t row_count, double* out, bool accumulate);

    /**
     * Elementwise in-place divide of a row-major batch by a repeating
     * per-feature divisor vector: row_major[r*n_features + f] /=
     * divisors[f] for every row r. The normalizer passes `scale` for
     * time features and exactly 1.0 for the rest; division by 1.0 is
     * the IEEE identity, so this equals the old masked divide bit for
     * bit while staying branch-free and vectorizable.
     */
    void (*normalizeRows)(double* row_major, std::size_t n_rows,
                          const double* divisors,
                          std::size_t n_features);

    /** values[i] *= factor (denormalization back to seconds). */
    void (*scaleValues)(double* values, std::size_t n, double factor);

    /** Sum of (a[i]-b[i])^2, accumulated in element order. */
    double (*sumSquaredDiff)(const double* a, const double* b,
                             std::size_t n);

    /** Sum of (x[i]-center)^2, accumulated in element order. */
    double (*sumSquaredDev)(const double* x, std::size_t n,
                            double center);

    /**
     * Sum of |t[i]-p[i]| / max(|t[i]|, 1e-300) * 100, accumulated in
     * element order — the mean-relative-error-percent numerator.
     * Inputs must be finite (callers validate first).
     */
    double (*sumAbsRelErrPct)(const double* truth, const double* pred,
                              std::size_t n);
};

/** Display name for a tier ("scalar", "sse2", "avx2"). */
const char* tierName(Tier tier);

/** The widest tier this CPU supports (cpuid probe, cached). */
Tier detectBestTier();

/** Supported tiers, narrowest first (always starts with Scalar). */
std::vector<Tier> availableTiers();

/** The currently resolved tier (resolving on first use). */
Tier activeTier();

/**
 * Force the active tier — EXACTLY that tier's kernel table, walk
 * calibration skipped (the benchmark/test escape hatch). Unsupported
 * tiers warn and clamp to the best available (honoring an AVX2
 * request on a non-AVX2 CPU would be an illegal-instruction crash).
 * Updates the `simd.active_tier` and `simd.walk_tier` gauges.
 * Thread-safe; in-flight batches finish on the table they started
 * with (all tables agree bit for bit, so results cannot change).
 */
void setTier(Tier tier);

/**
 * Parse a tier name ("auto", "avx2", "sse2", "scalar") and set it;
 * "auto" re-resolves from the CPU probe (ignoring MAPP_SIMD) and
 * applies walk calibration, explicit names behave like setTier().
 * @return false (with no state change) for an unknown name.
 */
bool setTierFromName(const std::string& name);

/**
 * The active kernel table. First use resolves the tier from MAPP_SIMD
 * (or the cpuid probe) and publishes the `simd.active_tier` gauge;
 * after that it is one atomic load. Hot loops should call this once
 * per batch/chunk, not per block.
 */
const Kernels& kernels();

/** A specific tier's table (for tests and the bench tier sweep).
 *  @return nullptr when the tier is not supported on this CPU. */
const Kernels* kernelsFor(Tier tier);

namespace detail {

/** The scalar lock-step walk (shared tail/fallback for all tiers). */
void walkScalar(const TreeNodes& nodes, std::int32_t root, int steps,
                const double* rows, std::size_t n_features,
                std::size_t row_count, double* out, bool accumulate);

/** Per-tier tables defined in their own TUs (nullptr = not built or
 *  not supported at compile time for this architecture). */
const Kernels* scalarKernels();
const Kernels* sse2Kernels();
const Kernels* avx2Kernels();

}  // namespace detail

}  // namespace mapp::simd

#endif  // MAPP_COMMON_SIMD_H
