#include "common/shutdown.h"

#include <atomic>
#include <csignal>
#include <mutex>
#include <thread>
#include <unistd.h>

namespace mapp {

namespace {

int gPipe[2] = {-1, -1};
std::atomic<int> gSignal{0};
std::atomic<int> gDeliveries{0};
std::atomic<bool> gInstalled{false};
std::mutex gCallbackMutex;
ShutdownCallback gCallback;  // guarded by gCallbackMutex

/** Async-signal-safe: one write() to the self-pipe, nothing else. */
void
signalHandler(int signo)
{
    if (gDeliveries.fetch_add(1, std::memory_order_relaxed) > 0)
        ::_exit(128 + signo);  // second signal: bail out immediately
    gSignal.store(signo, std::memory_order_relaxed);
    const unsigned char byte = static_cast<unsigned char>(signo);
    [[maybe_unused]] const ssize_t n = ::write(gPipe[1], &byte, 1);
}

void
watcherLoop()
{
    unsigned char byte = 0;
    for (;;) {
        const ssize_t n = ::read(gPipe[0], &byte, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return;  // pipe closed: process is exiting
        ShutdownCallback callback;
        {
            std::lock_guard<std::mutex> lock(gCallbackMutex);
            callback = gCallback;
        }
        if (callback)
            callback(static_cast<int>(byte));
        // Loop on: a synthetic requestShutdown() followed by a real
        // signal exits in the handler, so at most one more byte can
        // ever arrive; blocking here parks the thread until exit.
    }
}

}  // namespace

void
installShutdownHandler(ShutdownCallback callback)
{
    {
        std::lock_guard<std::mutex> lock(gCallbackMutex);
        gCallback = std::move(callback);
    }
    bool expected = false;
    if (!gInstalled.compare_exchange_strong(expected, true))
        return;  // handlers + watcher already live; callback swapped
    if (::pipe(gPipe) != 0) {
        gInstalled.store(false);
        return;
    }
    std::thread(watcherLoop).detach();
    struct sigaction sa = {};
    sa.sa_handler = signalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

bool
shutdownRequested()
{
    return gDeliveries.load(std::memory_order_relaxed) > 0;
}

int
shutdownSignal()
{
    return gSignal.load(std::memory_order_relaxed);
}

void
requestShutdown(int signo)
{
    if (!gInstalled.load(std::memory_order_relaxed))
        return;
    int expected = 0;
    if (!gDeliveries.compare_exchange_strong(expected, 1))
        return;  // a real signal (or earlier request) won the race
    gSignal.store(signo, std::memory_order_relaxed);
    const unsigned char byte = static_cast<unsigned char>(signo);
    [[maybe_unused]] const ssize_t n = ::write(gPipe[1], &byte, 1);
}

}  // namespace mapp
