#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mapp {

namespace {

/** Startup level: $MAPP_LOG_LEVEL if set and valid, else Normal. */
LogLevel
initialLogLevel()
{
    const char* env = std::getenv("MAPP_LOG_LEVEL");
    if (env == nullptr)
        return LogLevel::Normal;
    return parseLogLevel(env).value_or(LogLevel::Normal);
}

std::atomic<LogLevel>&
globalLevel()
{
    static std::atomic<LogLevel> level{initialLogLevel()};
    return level;
}

/**
 * Emit one fully formatted line with a single stdio write so messages
 * from concurrent threads never interleave (POSIX stdio locks the
 * stream per call).
 */
void
writeLine(const char* prefix, const std::string& msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel().load(std::memory_order_relaxed);
}

std::optional<LogLevel>
parseLogLevel(std::string_view name)
{
    std::string lowered;
    lowered.reserve(name.size());
    for (const char c : name)
        lowered += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lowered == "quiet")
        return LogLevel::Quiet;
    if (lowered == "normal")
        return LogLevel::Normal;
    if (lowered == "verbose")
        return LogLevel::Verbose;
    if (lowered == "debug")
        return LogLevel::Debug;
    return std::nullopt;
}

void
inform(const std::string& msg)
{
    if (logLevel() >= LogLevel::Normal)
        writeLine("info: ", msg);
}

void
verbose(const std::string& msg)
{
    if (logLevel() >= LogLevel::Verbose)
        writeLine("debug: ", msg);
}

void
debug(const std::string& msg)
{
    if (logLevel() >= LogLevel::Debug)
        writeLine("debug: ", msg);
}

void
warn(const std::string& msg)
{
    writeLine("warn: ", msg);
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    writeLine("panic: ", msg);
    std::abort();
}

}  // namespace mapp

