#include "common/log.h"

#include <cstdlib>
#include <iostream>

namespace mapp {

namespace {
LogLevel gLevel = LogLevel::Normal;
}  // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
inform(const std::string& msg)
{
    if (gLevel != LogLevel::Quiet)
        std::cerr << "info: " << msg << '\n';
}

void
verbose(const std::string& msg)
{
    if (gLevel == LogLevel::Verbose)
        std::cerr << "debug: " << msg << '\n';
}

void
warn(const std::string& msg)
{
    std::cerr << "warn: " << msg << '\n';
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    std::cerr << "panic: " << msg << '\n';
    std::abort();
}

}  // namespace mapp
