/**
 * @file
 * Process shutdown signal handling (SIGINT/SIGTERM) shared by the CLI
 * and the resident prediction service.
 *
 * Without a handler, Ctrl-C kills the process mid-pipeline and every
 * buffered observability artifact — trace events, the prediction
 * provenance ring, the metrics registry — is silently dropped. The
 * handler here is async-signal-safe: the sigaction callback only
 * write()s the signal number to a self-pipe; a dedicated watcher
 * thread reads the pipe and runs the registered (arbitrary, non
 * signal-safe) callback, which may flush sidecars and _exit(128+sig),
 * or — in serve mode — begin a graceful drain and let the serve loop
 * exit normally.
 *
 * A second delivery of a fatal signal bypasses the callback and
 * _exit()s immediately, so a hung flush can always be interrupted.
 */

#ifndef MAPP_COMMON_SHUTDOWN_H
#define MAPP_COMMON_SHUTDOWN_H

#include <functional>

namespace mapp {

/** Runs on the watcher thread after the first SIGINT/SIGTERM. */
using ShutdownCallback = std::function<void(int signo)>;

/**
 * Install (or replace) the shutdown callback and, on first call, the
 * SIGINT/SIGTERM sigaction handlers plus the watcher thread. The
 * callback runs once, on the watcher thread, after the first signal;
 * a second signal _exit(128+sig)s immediately. Replacing the callback
 * after a signal already fired has no effect.
 */
void installShutdownHandler(ShutdownCallback callback);

/** True once a shutdown signal has been delivered. */
bool shutdownRequested();

/** The delivered signal number (0 until shutdownRequested()). */
int shutdownSignal();

/**
 * Deliver a synthetic shutdown to the installed handler as if @p signo
 * had arrived (tests; also lets EOF-driven paths reuse the drain
 * callback). No-op when no handler is installed.
 */
void requestShutdown(int signo);

}  // namespace mapp

#endif  // MAPP_COMMON_SHUTDOWN_H
