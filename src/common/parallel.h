/**
 * @file
 * The MAPP parallel execution layer: a fixed-size ThreadPool with clean
 * shutdown plus parallelFor/parallelMap helpers that drive the
 * pipeline's embarrassingly parallel loops (per-bag campaign
 * collection, LOOCV folds, per-tree forest fits).
 *
 * Design rules:
 *  - Determinism first. parallelFor hands each index its own output
 *    slot and nothing else, so results are bit-identical to the serial
 *    loop regardless of scheduling. Anything stochastic must derive its
 *    stream from the index, never from execution order.
 *  - One process-wide pool (globalPool()), sized from MAPP_THREADS (or
 *    the hardware concurrency when unset), shared by every subsystem so
 *    nested parallel sections cannot oversubscribe the machine: inner
 *    parallelFor calls that cannot get the pool run inline on the
 *    calling thread.
 *  - The calling thread always participates in its own parallelFor, so
 *    a pool of W workers yields W+1 lanes and a 1-thread configuration
 *    degenerates to the plain serial loop (no pool touched at all).
 *  - Exceptions thrown by a body are captured, the remaining iterations
 *    are drained, and the first captured exception is rethrown on the
 *    calling thread.
 *
 * Built with -DMAPP_PARALLEL=OFF every helper runs inline and no thread
 * is ever spawned.
 */

#ifndef MAPP_COMMON_PARALLEL_H
#define MAPP_COMMON_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mapp::parallel {

/**
 * A fixed-size worker pool over one FIFO task queue. Tasks must not
 * throw (parallelFor wraps bodies so they never do). The destructor
 * drains the queue, then joins every worker: submitted work always
 * completes before shutdown finishes.
 */
class ThreadPool
{
  public:
    /** Spawn @p workers threads (clamped to >= 0; 0 = inline pool). */
    explicit ThreadPool(int workers);

    /** Drains remaining tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueue one task. With zero workers (or after shutdown began) the
     * task runs inline on the calling thread instead, so submit() never
     * loses work.
     */
    void submit(std::function<void()> task);

    int workerCount() const { return static_cast<int>(workers_.size()); }

    /** Tasks fully executed so far (workers + inline fallbacks). */
    std::size_t tasksRun() const;

    /** Tasks currently waiting in the queue. */
    std::size_t queueDepth() const;

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t tasksRun_ = 0;
    bool stopping_ = false;
};

/**
 * The lane budget for parallel sections: MAPP_THREADS when set to a
 * positive integer, otherwise std::thread::hardware_concurrency(),
 * otherwise 1; always >= 1. A setMaxThreads() override wins over both.
 */
int maxThreads();

/**
 * Override maxThreads() at runtime (tests, CLI --threads). Pass 0 to
 * restore the environment/hardware default. Workers already spawned are
 * kept; a lower value simply stops handing them work.
 */
void setMaxThreads(int threads);

/** True when built with MAPP_PARALLEL and maxThreads() > 1. */
bool enabled();

/**
 * The process-wide pool, lazily constructed with maxThreads()-1 workers
 * on first use. Never touched while maxThreads() is 1.
 */
ThreadPool& globalPool();

/**
 * Run body(0..n-1), possibly concurrently, and return when every
 * iteration finished. Iterations are claimed from one atomic counter,
 * so the order is unspecified — bodies must only touch per-index state.
 * The first exception thrown by any body is rethrown here after all
 * iterations drain.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)>& body);

/**
 * Map fn over items with parallelFor; out[i] = fn(items[i]) with the
 * exact ordering of the serial loop. R must be default-constructible.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T>& items, Fn&& fn)
    -> std::vector<decltype(fn(items.front()))>
{
    std::vector<decltype(fn(items.front()))> out(items.size());
    parallelFor(items.size(),
                [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
}

}  // namespace mapp::parallel

#endif  // MAPP_COMMON_PARALLEL_H
