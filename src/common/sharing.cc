#include "common/sharing.h"

#include <algorithm>
#include <numeric>

namespace mapp {

std::vector<double>
maxMinShare(const std::vector<double>& demands, double total)
{
    std::vector<double> granted(demands.size(), 0.0);
    if (demands.empty() || total <= 0.0)
        return granted;

    std::vector<std::size_t> hungry(demands.size());
    std::iota(hungry.begin(), hungry.end(), std::size_t{0});
    double remaining = total;

    while (!hungry.empty()) {
        const double fair = remaining / static_cast<double>(hungry.size());
        bool anySatisfied = false;
        for (auto it = hungry.begin(); it != hungry.end();) {
            if (demands[*it] <= fair) {
                granted[*it] = demands[*it];
                remaining -= demands[*it];
                it = hungry.erase(it);
                anySatisfied = true;
            } else {
                ++it;
            }
        }
        if (!anySatisfied) {
            for (std::size_t idx : hungry)
                granted[idx] = fair;
            break;
        }
    }
    return granted;
}

double
queueingDelayFactor(double utilization)
{
    const double u = std::clamp(utilization, 0.0, 0.95);
    return 1.0 / (1.0 - u);
}

}  // namespace mapp
