#include "common/sharing.h"

namespace mapp {

std::vector<double>
maxMinShare(const std::vector<double>& demands, double total)
{
    std::vector<double> granted(demands.size(), 0.0);
    std::vector<std::size_t> hungry;
    maxMinShareInto(demands, total, granted, hungry);
    return granted;
}

}  // namespace mapp
