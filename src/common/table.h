/**
 * @file
 * ASCII rendering of tables and bar charts. The bench binaries use these
 * to print the paper's figures as text: each figure becomes either a table
 * of series values or a horizontal bar chart, so the trends (who wins, by
 * what factor) are visible directly in terminal output.
 */

#ifndef MAPP_COMMON_TABLE_H
#define MAPP_COMMON_TABLE_H

#include <string>
#include <vector>

namespace mapp {

/** A printable table with a title, column headers and string cells. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the column headers (defines the column count). */
    void setHeader(std::vector<std::string> header);

    /** Append one row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a row where trailing cells are formatted numbers. */
    void addRow(const std::string& label, const std::vector<double>& values,
                int precision = 3);

    /** Render with box-drawing separators. */
    std::string render() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** One labeled bar in a bar chart. */
struct Bar
{
    std::string label;
    double value = 0.0;
};

/**
 * Render a horizontal ASCII bar chart.
 *
 * @param title chart title line
 * @param bars labeled values (non-negative)
 * @param width maximum bar width in characters
 * @param unit suffix printed after each value (e.g. "%")
 */
std::string renderBarChart(const std::string& title,
                           const std::vector<Bar>& bars, int width = 50,
                           const std::string& unit = "");

/**
 * Render grouped bars (e.g. per-benchmark series over instance counts).
 * Each group shares a label; each series member gets a tick name.
 */
std::string renderGroupedBars(const std::string& title,
                              const std::vector<std::string>& groupLabels,
                              const std::vector<std::string>& seriesLabels,
                              const std::vector<std::vector<double>>& values,
                              int width = 40, const std::string& unit = "");

/** Format a double with fixed precision. */
std::string formatDouble(double v, int precision = 3);

}  // namespace mapp

#endif  // MAPP_COMMON_TABLE_H
