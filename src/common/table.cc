#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace mapp {

std::string
formatDouble(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TextTable::addRow(const std::string& label,
                  const std::vector<double>& values, int precision)
{
    std::vector<std::string> row;
    row.reserve(values.size() + 1);
    row.push_back(label);
    for (double v : values)
        row.push_back(formatDouble(v, precision));
    addRow(std::move(row));
}

std::string
TextTable::render() const
{
    // Determine column widths.
    std::size_t ncols = header_.size();
    for (const auto& r : rows_)
        ncols = std::max(ncols, r.size());
    std::vector<std::size_t> widths(ncols, 0);
    auto widen = [&](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& r : rows_)
        widen(r);

    std::ostringstream os;
    auto rule = [&] {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& row) {
        os << '|';
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ')
               << '|';
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto& r : rows_)
        emit(r);
    rule();
    return os.str();
}

std::string
renderBarChart(const std::string& title, const std::vector<Bar>& bars,
               int width, const std::string& unit)
{
    double maxVal = 0.0;
    std::size_t maxLabel = 0;
    for (const auto& b : bars) {
        maxVal = std::max(maxVal, b.value);
        maxLabel = std::max(maxLabel, b.label.size());
    }
    if (maxVal <= 0.0)
        maxVal = 1.0;

    std::ostringstream os;
    if (!title.empty())
        os << title << '\n';
    for (const auto& b : bars) {
        const int len = static_cast<int>(
            std::lround(b.value / maxVal * width));
        os << "  " << b.label
           << std::string(maxLabel - b.label.size() + 1, ' ') << '|'
           << std::string(static_cast<std::size_t>(std::max(len, 0)), '#')
           << ' ' << formatDouble(b.value, 2) << unit << '\n';
    }
    return os.str();
}

std::string
renderGroupedBars(const std::string& title,
                  const std::vector<std::string>& groupLabels,
                  const std::vector<std::string>& seriesLabels,
                  const std::vector<std::vector<double>>& values, int width,
                  const std::string& unit)
{
    double maxVal = 0.0;
    for (const auto& group : values)
        for (double v : group)
            maxVal = std::max(maxVal, v);
    if (maxVal <= 0.0)
        maxVal = 1.0;

    std::size_t maxTick = 0;
    for (const auto& s : seriesLabels)
        maxTick = std::max(maxTick, s.size());

    std::ostringstream os;
    if (!title.empty())
        os << title << '\n';
    for (std::size_t g = 0; g < groupLabels.size() && g < values.size();
         ++g) {
        os << groupLabels[g] << '\n';
        for (std::size_t s = 0;
             s < seriesLabels.size() && s < values[g].size(); ++s) {
            const double v = values[g][s];
            const int len =
                static_cast<int>(std::lround(v / maxVal * width));
            os << "  " << seriesLabels[s]
               << std::string(maxTick - seriesLabels[s].size() + 1, ' ')
               << '|'
               << std::string(static_cast<std::size_t>(std::max(len, 0)),
                              '#')
               << ' ' << formatDouble(v, 3) << unit << '\n';
        }
    }
    return os.str();
}

}  // namespace mapp
