/**
 * @file
 * Tiny leveled logging with gem5-style fatal/panic semantics:
 *  - panic()  — internal invariant broken (a MAPP bug); aborts.
 *  - fatal()  — user/configuration error; throws so callers and tests can
 *               observe it without killing the process.
 *  - warn()/inform()/verbose()/debug() — advisory messages on stderr.
 *
 * Verbosity tiers order Quiet < Normal < Verbose < Debug; a message
 * prints when the global level is at least its tier (warnings always
 * print). The startup level can be set without recompiling via the
 * MAPP_LOG_LEVEL environment variable ("quiet", "normal", "verbose" or
 * "debug"), read once at first use; setLogLevel() overrides it.
 *
 * All message functions are safe under concurrent callers: each call
 * emits its fully formatted line in a single write, so lines from
 * different threads never interleave.
 */

#ifndef MAPP_COMMON_LOG_H
#define MAPP_COMMON_LOG_H

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mapp {

/** Error thrown by fatal(): a user-correctable misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Log verbosity control; warnings always print. */
enum class LogLevel { Quiet, Normal, Verbose, Debug };

/** Set the global log level (default Normal, or $MAPP_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/** Get the global log level. */
LogLevel logLevel();

/** Parse "quiet"/"normal"/"verbose"/"debug" (case-insensitive). */
std::optional<LogLevel> parseLogLevel(std::string_view name);

/** Print an informational message (suppressed when Quiet). */
void inform(const std::string& msg);

/** Print a verbose diagnostic (only when Verbose or Debug). */
void verbose(const std::string& msg);

/** Print a fine-grained diagnostic (only when Debug). */
void debug(const std::string& msg);

/** Print a warning to stderr. */
void warn(const std::string& msg);

/** Throw FatalError for a user/configuration error. */
[[noreturn]] void fatal(const std::string& msg);

/** Abort for an internal invariant violation (a MAPP bug). */
[[noreturn]] void panic(const std::string& msg);

}  // namespace mapp

#endif  // MAPP_COMMON_LOG_H
