/**
 * @file
 * Tiny leveled logging with gem5-style fatal/panic semantics:
 *  - panic()  — internal invariant broken (a MAPP bug); aborts.
 *  - fatal()  — user/configuration error; throws so callers and tests can
 *               observe it without killing the process.
 *  - warn()/inform() — advisory messages on stderr.
 */

#ifndef MAPP_COMMON_LOG_H
#define MAPP_COMMON_LOG_H

#include <stdexcept>
#include <string>

namespace mapp {

/** Error thrown by fatal(): a user-correctable misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Log verbosity control for inform(); warnings always print. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Set the global log level (default Normal). */
void setLogLevel(LogLevel level);

/** Get the global log level. */
LogLevel logLevel();

/** Print an informational message (suppressed when Quiet). */
void inform(const std::string& msg);

/** Print a verbose diagnostic (only when Verbose). */
void verbose(const std::string& msg);

/** Print a warning to stderr. */
void warn(const std::string& msg);

/** Throw FatalError for a user/configuration error. */
[[noreturn]] void fatal(const std::string& msg);

/** Abort for an internal invariant violation (a MAPP bug). */
[[noreturn]] void panic(const std::string& msg);

}  // namespace mapp

#endif  // MAPP_COMMON_LOG_H
