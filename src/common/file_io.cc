#include "common/file_io.h"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace fs = std::filesystem;

namespace mapp {

bool
writeFileAtomic(const std::string& path, std::string_view contents)
{
    if (path.empty())
        return false;

    // Unique temp name per writer so concurrent writers of one target
    // never clobber each other's partial file; the pid guards against
    // two processes sharing a sequence counter.
    static std::atomic<std::uint64_t> tempSeq{0};
    const std::string temp =
        path + ".tmp." +
        std::to_string(tempSeq.fetch_add(1, std::memory_order_relaxed)) +
        "." + std::to_string(::getpid());

    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.close();
        if (!out.good()) {
            std::error_code ec;
            fs::remove(temp, ec);
            return false;
        }
    }

    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        return false;
    }
    return true;
}

}  // namespace mapp
