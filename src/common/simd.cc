#include "common/simd.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/log.h"
#include "obs/metrics.h"

namespace mapp::simd {

namespace {

/** Publish the resolved table to the metrics registry: the active
 *  tier, and which tier's walk kernel the table actually carries
 *  (0 = scalar walk — either the scalar/sse2 tier or a calibrated
 *  auto table that measured the vector walk slower). */
void
publishGauges(const Kernels* table)
{
    obs::defaultRegistry()
        .gauge("simd.active_tier")
        .set(static_cast<double>(static_cast<int>(table->tier)));
    const bool scalarWalk =
        table->walk == detail::scalarKernels()->walk;
    obs::defaultRegistry()
        .gauge("simd.walk_tier")
        .set(scalarWalk
                 ? 0.0
                 : static_cast<double>(
                       static_cast<int>(table->tier)));
}

/** The table for @p tier, or nullptr when this build/CPU lacks it. */
const Kernels*
tableFor(Tier tier)
{
    switch (tier) {
      case Tier::Scalar:
        return detail::scalarKernels();
      case Tier::Sse2:
        return detail::sse2Kernels();
      case Tier::Avx2:
        return detail::avx2Kernels();
    }
    return nullptr;
}

/**
 * Clamp @p tier to the widest supported tier at or below it. The
 * scalar table always exists, so this never returns nullptr.
 */
const Kernels*
clampedTableFor(Tier tier)
{
    for (int t = static_cast<int>(tier); t > 0; --t) {
        if (const Kernels* k = tableFor(static_cast<Tier>(t)))
            return k;
    }
    return detail::scalarKernels();
}

/**
 * Time @p walk over a synthetic perfect tree (depth 9, 1023 nodes,
 * 16 features, 96 rows — three full 32-row blocks), minimum of a few
 * repetitions. Deterministic inputs from a fixed LCG; the result only
 * steers a performance choice (every walk is bit-identical), so
 * timing noise can never change predictions.
 */
double
timeWalk(void (*walk)(const TreeNodes&, std::int32_t, int,
                      const double*, std::size_t, std::size_t, double*,
                      bool),
         const TreeNodes& nodes, const std::vector<double>& rows,
         std::size_t n_features, std::size_t n_rows, int steps)
{
    std::vector<double> out(n_rows);
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int rep = 0; rep < 6; ++rep) {
        const auto t0 = clock::now();
        walk(nodes, 0, steps, rows.data(), n_features, n_rows,
             out.data(), rep % 2 == 1);
        const auto t1 = clock::now();
        const double s =
            std::chrono::duration<double>(t1 - t0).count();
        if (rep > 0 && s < best)  // rep 0 is cache warmup
            best = s;
    }
    return best;
}

/**
 * Decide the walk kernel for an `auto` resolution: if @p base carries
 * a vector walk, race it against the scalar walk on a synthetic tree
 * and return a copy of the table with the scalar walk swapped in
 * unless the vector walk is measurably (>5%) faster. Runs once per
 * process (~100us); see the calibration note in simd.h for why ISA
 * width alone cannot settle this (gather-based walks lose on
 * microarchitectures whose gathers decode into per-lane load uops).
 */
const Kernels*
calibrateWalk(const Kernels* base)
{
    const Kernels* scalar = detail::scalarKernels();
    if (base->walk == scalar->walk)
        return base;
    static const bool vectorWins = [base, scalar] {
        constexpr int kDepth = 9;
        constexpr std::size_t kNodes = (1u << (kDepth + 1)) - 1;
        constexpr std::size_t kFeatures = 16;
        constexpr std::size_t kRows = 96;
        std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
        const auto urand = [&lcg] {
            lcg = lcg * 6364136223846793005ull +
                  1442695040888963407ull;
            return static_cast<double>(lcg >> 11) /
                   9007199254740992.0;
        };
        std::vector<std::int32_t> feature(kNodes);
        std::vector<double> threshold(kNodes);
        std::vector<std::int32_t> kids(2 * kNodes);
        std::vector<PackedNode> packed;
        packed.reserve(kNodes);
        const std::size_t firstLeaf = (1u << kDepth) - 1;
        for (std::size_t n = 0; n < kNodes; ++n) {
            const bool leaf = n >= firstLeaf;
            const auto self = static_cast<std::int32_t>(n);
            feature[n] = static_cast<std::int32_t>(
                static_cast<std::size_t>(urand() * kFeatures) %
                kFeatures);
            threshold[n] = urand();
            kids[2 * n] = leaf ? self : 2 * self + 1;
            kids[2 * n + 1] = leaf ? self : 2 * self + 2;
            packed.push_back(PackedNode::pack(
                threshold[n],
                static_cast<std::uint32_t>(feature[n]),
                static_cast<std::uint32_t>(kids[2 * n]),
                static_cast<std::uint32_t>(kids[2 * n + 1])));
        }
        std::vector<double> rows(kRows * kFeatures);
        for (double& v : rows)
            v = urand();
        const TreeNodes nodes{feature.data(), threshold.data(),
                              kids.data(), packed.data()};
        const double tv = timeWalk(base->walk, nodes, rows,
                                   kFeatures, kRows, kDepth + 1);
        const double ts = timeWalk(scalar->walk, nodes, rows,
                                   kFeatures, kRows, kDepth + 1);
        return tv < ts * 0.95;
    }();
    if (vectorWins)
        return base;
    static const Kernels hybrid = [base, scalar] {
        Kernels h = *base;
        h.walk = scalar->walk;
        return h;
    }();
    return &hybrid;
}

/**
 * Initial tier choice: MAPP_SIMD when set (unknown values warn and
 * fall back to auto; unsupported tiers warn and clamp — honoring them
 * would SIGILL), otherwise the cpuid probe. Auto resolutions (unset,
 * "auto", or unknown values) also calibrate the walk kernel; an
 * explicit tier gets exactly that tier's table.
 */
const Kernels*
resolveInitial()
{
    Tier want = detectBestTier();
    bool isAuto = true;
    const char* env = std::getenv("MAPP_SIMD");
    if (env != nullptr && env[0] != '\0') {
        const std::string name(env);
        if (name == "scalar") {
            want = Tier::Scalar;
            isAuto = false;
        } else if (name == "sse2") {
            want = Tier::Sse2;
            isAuto = false;
        } else if (name == "avx2") {
            want = Tier::Avx2;
            isAuto = false;
        } else if (name != "auto") {
            warn("MAPP_SIMD: unknown tier '" + name +
                 "' (expected auto, avx2, sse2 or scalar); using "
                 "auto");
        }
    }
    const Kernels* table = clampedTableFor(want);
    if (table->tier != want)
        warn(std::string("MAPP_SIMD: tier '") + tierName(want) +
             "' is not supported on this CPU; using '" +
             std::string(table->name) + "'");
    return isAuto ? calibrateWalk(table) : table;
}

/** The published table. Null until the first kernels() call. */
std::atomic<const Kernels*> gActive{nullptr};
std::once_flag gResolveOnce;

}  // namespace

const char*
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Scalar:
        return "scalar";
      case Tier::Sse2:
        return "sse2";
      case Tier::Avx2:
        return "avx2";
    }
    return "unknown";
}

Tier
detectBestTier()
{
#if defined(__x86_64__) || defined(__i386__)
    // __builtin_cpu_supports probes cpuid once and caches; AVX2 implies
    // the OS saved YMM state (the builtin checks OSXSAVE too on GCC 12).
    static const Tier best = [] {
        if (__builtin_cpu_supports("avx2") &&
            detail::avx2Kernels() != nullptr)
            return Tier::Avx2;
        if (__builtin_cpu_supports("sse2") &&
            detail::sse2Kernels() != nullptr)
            return Tier::Sse2;
        return Tier::Scalar;
    }();
    return best;
#else
    return Tier::Scalar;
#endif
}

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers{Tier::Scalar};
    for (Tier t : {Tier::Sse2, Tier::Avx2}) {
        if (t <= detectBestTier() && tableFor(t) != nullptr)
            tiers.push_back(t);
    }
    return tiers;
}

const Kernels&
kernels()
{
    const Kernels* table = gActive.load(std::memory_order_acquire);
    if (table == nullptr) {
        std::call_once(gResolveOnce, [] {
            const Kernels* resolved = resolveInitial();
            publishGauges(resolved);
            gActive.store(resolved, std::memory_order_release);
        });
        table = gActive.load(std::memory_order_acquire);
    }
    return *table;
}

Tier
activeTier()
{
    return kernels().tier;
}

void
setTier(Tier tier)
{
    kernels();  // make sure first-use resolution cannot overwrite us
    const Kernels* table = clampedTableFor(tier);
    if (table->tier != tier)
        warn(std::string("simd: tier '") + tierName(tier) +
             "' is not supported on this CPU; using '" +
             std::string(table->name) + "'");
    publishGauges(table);
    gActive.store(table, std::memory_order_release);
}

bool
setTierFromName(const std::string& name)
{
    if (name == "auto") {
        // Auto means "fastest bit-identical kernels on this machine",
        // which includes the calibrated walk choice — not merely the
        // widest tier's raw table.
        kernels();  // first-use resolution must not overwrite us
        const Kernels* table =
            calibrateWalk(clampedTableFor(detectBestTier()));
        publishGauges(table);
        gActive.store(table, std::memory_order_release);
        return true;
    }
    if (name == "scalar") {
        setTier(Tier::Scalar);
        return true;
    }
    if (name == "sse2") {
        setTier(Tier::Sse2);
        return true;
    }
    if (name == "avx2") {
        setTier(Tier::Avx2);
        return true;
    }
    return false;
}

const Kernels*
kernelsFor(Tier tier)
{
    if (tier > detectBestTier())
        return nullptr;
    return tableFor(tier);
}

}  // namespace mapp::simd
