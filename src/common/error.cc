#include "common/error.h"

namespace mapp {

const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Io:
        return "io";
      case ErrorCode::Parse:
        return "parse";
      case ErrorCode::Range:
        return "range";
      case ErrorCode::Schema:
        return "schema";
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
    }
    return "unknown";
}

std::string
SourceContext::describe() const
{
    std::string out;
    if (!file.empty())
        out += file;
    if (row != 0) {
        if (!out.empty())
            out += ", ";
        out += "row " + std::to_string(row);
    }
    if (!column.empty()) {
        if (!out.empty())
            out += ", ";
        out += "column '" + column + "'";
    }
    return out;
}

Error&
Error::addContext(const SourceContext& context)
{
    if (context_.file.empty())
        context_.file = context.file;
    if (context_.row == 0)
        context_.row = context.row;
    if (context_.column.empty())
        context_.column = context.column;
    return *this;
}

std::string
Error::toString() const
{
    std::string out = errorCodeName(code_);
    out += " error";
    if (!context_.empty())
        out += " at " + context_.describe();
    out += ": ";
    out += message_;
    return out;
}

void
raise(Error error)
{
    throw InputError(std::move(error));
}

}  // namespace mapp
