/**
 * @file
 * Structured errors for the input boundaries: every loader (CSV, trace,
 * dataset) and the CLI report failures as a mapp::Error carrying an
 * error code, a human message, and the source location (file, row,
 * column) where the bad input was found. Helpers return Result<T> so
 * callers can branch without exceptions; throwing boundaries convert a
 * Result into an InputError (a FatalError subclass) so existing
 * handlers and tests keep working unchanged.
 */

#ifndef MAPP_COMMON_ERROR_H
#define MAPP_COMMON_ERROR_H

#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "common/log.h"

namespace mapp {

/** Machine-readable category of a boundary failure. */
enum class ErrorCode {
    Io,               ///< file missing, unreadable, or short write
    Parse,            ///< text does not encode a value of the type
    Range,            ///< parsed fine but outside the permitted interval
    Schema,           ///< structural mismatch: wrong header, short row
    InvalidArgument,  ///< bad CLI flag or API argument
};

/** Stable lower-case name of a code ("io", "parse", "range", ...). */
const char* errorCodeName(ErrorCode code);

/**
 * Where in an input an error was detected. @c row is 1-based over data
 * rows (0 = not applicable) and @c column is a header name, not an
 * index, so the message points at something the user can grep for.
 */
struct SourceContext
{
    std::string file;     ///< path or input label; empty = unknown
    std::size_t row = 0;  ///< 1-based data row; 0 = not applicable
    std::string column;   ///< column name; empty = not applicable

    bool empty() const
    {
        return file.empty() && row == 0 && column.empty();
    }

    /** "bags.csv, row 3, column 'batch'" — only the known parts. */
    std::string describe() const;
};

/** A structured boundary error: code + message + source location. */
class Error
{
  public:
    Error(ErrorCode code, std::string message, SourceContext context = {})
        : code_(code), message_(std::move(message)),
          context_(std::move(context))
    {
    }

    ErrorCode code() const { return code_; }
    const std::string& message() const { return message_; }
    const SourceContext& context() const { return context_; }

    /** Fill in location fields that are still unknown; keeps known ones. */
    Error& addContext(const SourceContext& context);

    /** "parse error at bags.csv, row 3, column 'x': bad number '1x'" */
    std::string toString() const;

  private:
    ErrorCode code_;
    std::string message_;
    SourceContext context_;
};

/**
 * Exception form of Error, thrown by the throwing loader boundaries.
 * Derives from FatalError so every existing `catch (const FatalError&)`
 * and EXPECT_THROW(..., FatalError) observes it; what() is the full
 * located toString().
 */
class InputError : public FatalError
{
  public:
    explicit InputError(Error error)
        : FatalError(error.toString()), error_(std::move(error))
    {
    }

    const Error& error() const { return error_; }

  private:
    Error error_;
};

/** Throw @p error as an InputError. */
[[noreturn]] void raise(Error error);

/**
 * Value-or-Error return used by the strict parsing helpers. Exactly one
 * of value()/error() is populated; accessing the absent side is a
 * panic (an internal bug, not an input error).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    const T& value() const&
    {
        requireOk();
        return *value_;
    }
    T&& value() &&
    {
        requireOk();
        return std::move(*value_);
    }

    const Error& error() const
    {
        if (ok())
            panic("Result::error() called on a success value");
        return *error_;
    }

    /** The value, or @p fallback when this holds an error. */
    T valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

    /** The value, or throw the error as an InputError. */
    T orThrow() const
    {
        if (!ok())
            raise(*error_);
        return *value_;
    }

    /** Like orThrow(), locating the error at @p context first. */
    T orThrow(const SourceContext& context) const
    {
        if (!ok()) {
            Error e = *error_;
            e.addContext(context);
            raise(std::move(e));
        }
        return *value_;
    }

    /** Same result with @p context merged into the error (if any). */
    Result<T> withContext(const SourceContext& context) &&
    {
        if (!ok())
            error_->addContext(context);
        return std::move(*this);
    }

  private:
    void requireOk() const
    {
        if (!ok())
            panic("Result::value() called on an error: " +
                  error_->toString());
    }

    std::optional<T> value_;
    std::optional<Error> error_;
};

}  // namespace mapp

#endif  // MAPP_COMMON_ERROR_H
