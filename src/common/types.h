/**
 * @file
 * Fundamental scalar type aliases shared across the MAPP libraries.
 *
 * All simulated quantities carry explicit units in their alias names so
 * that call sites read unambiguously (e.g. a Seconds value is wall-clock
 * simulated time, a Cycles value is clock ticks of whichever clock domain
 * produced it).
 */

#ifndef MAPP_COMMON_TYPES_H
#define MAPP_COMMON_TYPES_H

#include <cstdint>

namespace mapp {

/** Simulated wall-clock time in seconds. */
using Seconds = double;

/** Clock ticks of a core/SM clock domain. */
using Cycles = double;

/** A byte count (footprints, traffic volumes). */
using Bytes = std::uint64_t;

/** A dynamic-instruction count. */
using InstCount = std::uint64_t;

/** Clock frequency in Hz. */
using Hertz = double;

/** Memory bandwidth in bytes per second. */
using BytesPerSecond = double;

/** Kibi/mebi/gibi helpers for readable configuration literals. */
constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

/** Frequency helpers. */
constexpr Hertz operator""_MHz(long double v)
{
    return static_cast<Hertz>(v) * 1e6;
}
constexpr Hertz operator""_GHz(long double v)
{
    return static_cast<Hertz>(v) * 1e9;
}

}  // namespace mapp

#endif  // MAPP_COMMON_TYPES_H
