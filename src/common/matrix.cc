#include "common/matrix.h"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace mapp {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_)
            throw std::invalid_argument("Matrix: ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double&
Matrix::operator()(std::size_t r, std::size_t c)
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Matrix::row(std::size_t r) const
{
    assert(r < rows_);
    return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double>
Matrix::col(std::size_t c) const
{
    assert(c < cols_);
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t(c, r) = (*this)(r, c);
    return t;
}

Matrix
Matrix::operator*(const Matrix& rhs) const
{
    if (cols_ != rhs.rows_)
        throw std::invalid_argument("Matrix multiply: dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0)
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += aik * rhs(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix& rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix add: dimension mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix& rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix subtract: dimension mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out = *this;
    for (auto& v : out.data_)
        v *= scalar;
    return out;
}

std::vector<double>
Matrix::operator*(const std::vector<double>& v) const
{
    if (v.size() != cols_)
        throw std::invalid_argument("Matrix-vector: dimension mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[r] += (*this)(r, c) * v[c];
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[ ";
        for (std::size_t c = 0; c < cols_; ++c)
            os << (*this)(r, c) << ' ';
        os << "]\n";
    }
    return os.str();
}

namespace linalg {

std::vector<double>
solve(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("solve: need square system");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(a(r, col)) > std::abs(a(pivot, col)))
                pivot = r;
        if (std::abs(a(pivot, col)) < 1e-12)
            throw std::runtime_error("solve: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a(r, col) / a(col, col);
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= a(i, c) * x[c];
        x[i] = acc / a(i, i);
    }
    return x;
}

Matrix
cholesky(const Matrix& a)
{
    const std::size_t n = a.rows();
    if (a.cols() != n)
        throw std::invalid_argument("cholesky: need square matrix");
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                acc -= l(i, k) * l(j, k);
            if (i == j) {
                if (acc <= 0.0)
                    throw std::runtime_error(
                        "cholesky: matrix not positive definite");
                l(i, j) = std::sqrt(acc);
            } else {
                l(i, j) = acc / l(j, j);
            }
        }
    }
    return l;
}

std::vector<double>
solveSpd(const Matrix& a, const std::vector<double>& b)
{
    const Matrix l = cholesky(a);
    const std::size_t n = a.rows();
    // Forward substitution: L y = b.
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    // Back substitution: L^T x = y.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            acc -= l(k, i) * x[k];
        x[i] = acc / l(i, i);
    }
    return x;
}

double
dot(const std::vector<double>& a, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

double
norm(const std::vector<double>& a)
{
    return std::sqrt(dot(a, a));
}

}  // namespace linalg

}  // namespace mapp
