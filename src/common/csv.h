/**
 * @file
 * Minimal CSV reading and writing used to persist collected datasets and
 * experiment outputs. Values containing commas, quotes or newlines are
 * quoted per RFC 4180.
 */

#ifndef MAPP_COMMON_CSV_H
#define MAPP_COMMON_CSV_H

#include <iosfwd>
#include <string>
#include <vector>

namespace mapp {

/** In-memory CSV table: a header row plus data rows of strings. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /**
     * Where the table came from (file path or caller-chosen label);
     * readCsvFile() fills it in so parse errors can point at the file.
     * Empty when parsed from an anonymous string.
     */
    std::string source;

    /** Index of a header column, or -1 if absent. */
    int columnIndex(const std::string& name) const;

    /**
     * A whole column strictly parsed as finite doubles.
     * @throws InputError locating the bad cell (source, row, column)
     *         on a missing column, short row, or malformed number —
     *         trailing garbage ("1.5abc") and NaN/Inf are rejected.
     */
    std::vector<double> numericColumn(const std::string& name) const;
};

/** Incremental CSV writer. */
class CsvWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream& os) : os_(os) {}

    /** Emit the header row. */
    void writeHeader(const std::vector<std::string>& names);

    /** Emit one row of string cells. */
    void writeRow(const std::vector<std::string>& cells);

    /** Emit one row of numeric cells with full precision. */
    void writeNumericRow(const std::vector<double>& cells);

  private:
    std::ostream& os_;
};

/**
 * Parse CSV text (first row is the header). @p source labels the text
 * in later error messages (e.g. the path it was read from).
 */
CsvTable parseCsv(const std::string& text, std::string source = "");

/** Read and parse a CSV file. @throws InputError on I/O error. */
CsvTable readCsvFile(const std::string& path);

/** Serialize a table back to CSV text. */
std::string toCsv(const CsvTable& table);

/** Quote a single cell if needed. */
std::string csvEscape(const std::string& cell);

}  // namespace mapp

#endif  // MAPP_COMMON_CSV_H
