/**
 * @file
 * Strict numeric parsing for untrusted text (CSV cells, CLI flags).
 * Unlike std::stod/std::stoi these helpers consume the whole token:
 * trailing garbage ("1.5abc"), empty cells, NaN/Inf, and out-of-range
 * values are all rejected with a structured Error instead of being
 * silently truncated or thrown as a context-free std::exception.
 * Surrounding ASCII spaces/tabs are tolerated; nothing else is.
 */

#ifndef MAPP_COMMON_PARSE_H
#define MAPP_COMMON_PARSE_H

#include <cstdint>
#include <limits>
#include <string_view>

#include "common/error.h"

namespace mapp {

/** A finite double from the whole of @p text. */
Result<double> parseDouble(std::string_view text);

/** A signed integer from the whole of @p text, within [min, max]. */
Result<long long> parseInt(
    std::string_view text,
    long long min = std::numeric_limits<long long>::min(),
    long long max = std::numeric_limits<long long>::max());

/** An unsigned integer from the whole of @p text, at most @p max. */
Result<std::uint64_t> parseUnsigned(
    std::string_view text,
    std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

/** parseInt() narrowed to int — the convenient form for CLI flags. */
Result<int> parseBoundedInt(std::string_view text, int min, int max);

}  // namespace mapp

#endif  // MAPP_COMMON_PARSE_H
