/**
 * @file
 * Generic shared-resource arbitration helpers used by both performance
 * simulators: max-min fair division of a channel among demands, and the
 * classic utilization-to-latency queueing curve.
 */

#ifndef MAPP_COMMON_SHARING_H
#define MAPP_COMMON_SHARING_H

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "common/types.h"

namespace mapp {

/**
 * Max-min fair division of a channel of capacity @p total among
 * @p demands: demands below their fair share are fully granted and the
 * surplus is split among the rest.
 *
 * @return granted rates per demand, summing to <= total
 */
std::vector<double> maxMinShare(const std::vector<double>& demands,
                                double total);

/**
 * Allocation-free form of maxMinShare() for hot loops: writes the
 * granted rates into @p granted (same size as @p demands) and uses
 * @p hungry_scratch as working storage (cleared and refilled; keep it
 * alive across calls to reuse its capacity). Bit-identical to
 * maxMinShare() — both run the same waterfill in the same order.
 * Inline — the co-run engine negotiates bandwidth once per event.
 */
inline void
maxMinShareInto(std::span<const double> demands, double total,
                std::span<double> granted,
                std::vector<std::size_t>& hungry_scratch)
{
    std::fill(granted.begin(), granted.end(), 0.0);
    if (demands.empty() || total <= 0.0)
        return;

    // The still-unsatisfied demands, as an in-place compacted index
    // array (ascending order preserved — the waterfill visits demands
    // in the same order as the original erase-based loop, so the
    // floating-point sequence is unchanged).
    auto& hungry = hungry_scratch;
    hungry.resize(demands.size());
    std::iota(hungry.begin(), hungry.end(), std::size_t{0});
    std::size_t* idx = hungry.data();
    std::size_t count = hungry.size();
    double remaining = total;

    while (count > 0) {
        const double fair = remaining / static_cast<double>(count);
        bool anySatisfied = false;
        std::size_t write = 0;
        for (std::size_t r = 0; r < count; ++r) {
            const std::size_t i = idx[r];
            if (demands[i] <= fair) {
                granted[i] = demands[i];
                remaining -= demands[i];
                anySatisfied = true;
            } else {
                idx[write++] = i;
            }
        }
        count = write;
        if (!anySatisfied) {
            for (std::size_t r = 0; r < count; ++r)
                granted[idx[r]] = fair;
            break;
        }
    }
}

/**
 * Latency multiplier from channel utilization u: 1 / (1 - u), with u
 * clamped to 0.95 for stability.
 */
inline double
queueingDelayFactor(double utilization)
{
    const double u = std::clamp(utilization, 0.0, 0.95);
    return 1.0 / (1.0 - u);
}

}  // namespace mapp

#endif  // MAPP_COMMON_SHARING_H
