/**
 * @file
 * Generic shared-resource arbitration helpers used by both performance
 * simulators: max-min fair division of a channel among demands, and the
 * classic utilization-to-latency queueing curve.
 */

#ifndef MAPP_COMMON_SHARING_H
#define MAPP_COMMON_SHARING_H

#include <vector>

#include "common/types.h"

namespace mapp {

/**
 * Max-min fair division of a channel of capacity @p total among
 * @p demands: demands below their fair share are fully granted and the
 * surplus is split among the rest.
 *
 * @return granted rates per demand, summing to <= total
 */
std::vector<double> maxMinShare(const std::vector<double>& demands,
                                double total);

/**
 * Latency multiplier from channel utilization u: 1 / (1 - u), with u
 * clamped to 0.95 for stability.
 */
double queueingDelayFactor(double utilization);

}  // namespace mapp

#endif  // MAPP_COMMON_SHARING_H
