/**
 * @file
 * The SSE2 kernel tier: two-lane __m128d versions of the normalizer,
 * scaling and reduction kernels. The tree walk deliberately reuses the
 * scalar cascade — SSE2 has no gather instructions, so a two-lane walk
 * would spend more on lane insert/extract shuffles than the compares
 * save; the table mixing vector and scalar kernels is intentional and
 * the dispatch layer documents it.
 *
 * This TU is compiled with `-msse2 -ffp-contract=off` (x86 only). The
 * contract-off flag pins bit-identity: a fused multiply-add would merge
 * the sub/mul roundings the scalar tier performs separately.
 *
 * BIT-IDENTITY: every arithmetic element op here (div, sub, mul, abs,
 * max) performs exactly the same single rounding as its scalar
 * counterpart, and reduction lanes fold into the accumulator in element
 * order with scalar adds — so results equal the scalar tier bit for
 * bit (pinned by tests/test_simd.cc).
 */

#include "common/simd.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace mapp::simd {

namespace {

void
normalizeRowsSse2(double* row_major, std::size_t n_rows,
                  const double* divisors, std::size_t n_features)
{
    for (std::size_t r = 0; r < n_rows; ++r) {
        double* row = row_major + r * n_features;
        std::size_t f = 0;
        for (; f + 2 <= n_features; f += 2) {
            const __m128d x = _mm_loadu_pd(row + f);
            const __m128d d = _mm_loadu_pd(divisors + f);
            _mm_storeu_pd(row + f, _mm_div_pd(x, d));
        }
        for (; f < n_features; ++f)
            row[f] /= divisors[f];
    }
}

void
scaleValuesSse2(double* values, std::size_t n, double factor)
{
    const __m128d vf = _mm_set1_pd(factor);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        _mm_storeu_pd(values + i,
                      _mm_mul_pd(_mm_loadu_pd(values + i), vf));
    for (; i < n; ++i)
        values[i] *= factor;
}

double
sumSquaredDiffSse2(const double* a, const double* b, std::size_t n)
{
    double acc = 0.0;
    alignas(16) double lanes[2];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d d =
            _mm_sub_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i));
        _mm_store_pd(lanes, _mm_mul_pd(d, d));
        // In-element-order lane folds keep the scalar summation
        // sequence (the bit-identity contract).
        acc += lanes[0];
        acc += lanes[1];
    }
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
sumSquaredDevSse2(const double* x, std::size_t n, double center)
{
    const __m128d vc = _mm_set1_pd(center);
    double acc = 0.0;
    alignas(16) double lanes[2];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d d = _mm_sub_pd(_mm_loadu_pd(x + i), vc);
        _mm_store_pd(lanes, _mm_mul_pd(d, d));
        acc += lanes[0];
        acc += lanes[1];
    }
    for (; i < n; ++i) {
        const double d = x[i] - center;
        acc += d * d;
    }
    return acc;
}

double
sumAbsRelErrPctSse2(const double* truth, const double* pred,
                    std::size_t n)
{
    const __m128d sign = _mm_set1_pd(-0.0);
    const __m128d eps = _mm_set1_pd(1e-300);
    const __m128d hundred = _mm_set1_pd(100.0);
    double acc = 0.0;
    alignas(16) double lanes[2];
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d t = _mm_loadu_pd(truth + i);
        const __m128d p = _mm_loadu_pd(pred + i);
        const __m128d at = _mm_andnot_pd(sign, t);
        // MAXPD(a, b) = a > b ? a : b — exactly the scalar
        // `|t| > 1e-300 ? |t| : 1e-300` (inputs are finite by
        // contract, so the NaN edge of MAXPD cannot trigger).
        const __m128d denom = _mm_max_pd(at, eps);
        const __m128d ad = _mm_andnot_pd(sign, _mm_sub_pd(t, p));
        _mm_store_pd(lanes,
                     _mm_mul_pd(_mm_div_pd(ad, denom), hundred));
        acc += lanes[0];
        acc += lanes[1];
    }
    for (; i < n; ++i) {
        const double at = truth[i] < 0.0 ? -truth[i] : truth[i];
        const double denom = at > 1e-300 ? at : 1e-300;
        const double d = truth[i] - pred[i];
        acc += (d < 0.0 ? -d : d) / denom * 100.0;
    }
    return acc;
}

const Kernels kSse2Table{
    Tier::Sse2,         "sse2",
    &detail::walkScalar,  // no gathers in SSE2; scalar walk wins
    &normalizeRowsSse2,  &scaleValuesSse2,
    &sumSquaredDiffSse2, &sumSquaredDevSse2,
    &sumAbsRelErrPctSse2,
};

}  // namespace

namespace detail {

const Kernels*
sse2Kernels()
{
    return &kSse2Table;
}

}  // namespace detail

}  // namespace mapp::simd

#else  // !__SSE2__: tier not built for this architecture

namespace mapp::simd::detail {

const Kernels*
sse2Kernels()
{
    return nullptr;
}

}  // namespace mapp::simd::detail

#endif
