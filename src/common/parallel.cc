#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mapp::parallel {

namespace {

/** 0 = no override; set via setMaxThreads(). */
std::atomic<int> gMaxThreadsOverride{0};

/**
 * Flipped when the global pool's static destruction begins, so late
 * parallelFor callers (atexit handlers, other static destructors) run
 * their loops inline instead of calling into a dead pool.
 */
std::atomic<bool> gPoolRetired{false};

struct PoolRetireFlag
{
    ~PoolRetireFlag() { gPoolRetired.store(true, std::memory_order_relaxed); }
};

int
envOrHardwareThreads()
{
    if (const char* env = std::getenv("MAPP_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<int>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

int
maxThreads()
{
    const int override = gMaxThreadsOverride.load(std::memory_order_relaxed);
    if (override > 0)
        return override;
    // Resolved once: the environment cannot change mid-process, and a
    // stable value keeps pool sizing consistent across subsystems.
    static const int resolved = envOrHardwareThreads();
    return resolved;
}

void
setMaxThreads(int threads)
{
    gMaxThreadsOverride.store(threads > 0 ? threads : 0,
                              std::memory_order_relaxed);
}

bool
enabled()
{
#ifdef MAPP_PARALLEL_ENABLED
    return maxThreads() > 1;
#else
    return false;
#endif
}

ThreadPool::ThreadPool(int workers)
{
    const int n = workers > 0 ? workers : 0;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    obs::defaultRegistry()
        .gauge("parallel.pool.workers")
        .set(static_cast<double>(n));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!stopping_ && !workers_.empty()) {
            queue_.push(std::move(task));
            obs::defaultRegistry()
                .gauge("parallel.pool.queue_depth")
                .set(static_cast<double>(queue_.size()));
            cv_.notify_one();
            return;
        }
    }
    // Inline fallback: zero workers or shutdown already began.
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    ++tasksRun_;
}

std::size_t
ThreadPool::tasksRun() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tasksRun_;
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
ThreadPool::workerLoop()
{
    auto& registry = obs::defaultRegistry();
    auto& tasksCounter = registry.counter("parallel.pool.tasks_run");
    auto& depthGauge = registry.gauge("parallel.pool.queue_depth");
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
            depthGauge.set(static_cast<double>(queue_.size()));
        }
        task();
        tasksCounter.add(1);
        std::lock_guard<std::mutex> lock(mutex_);
        ++tasksRun_;
    }
}

ThreadPool&
globalPool()
{
    // Shutdown ordering: pool workers (and the tasks the destructor
    // drains) touch the process-wide obs singletons, so those magic
    // statics must finish construction BEFORE the pool's does — C++
    // destroys function-local statics in reverse completion order, so
    // this guarantees the registry/tracer/prediction-log outlive the
    // joined workers. Without the pin, a singleton first constructed
    // from a worker task (e.g. the prediction log on a serve-mode
    // audit) would be destroyed while the pool still drains.
    obs::defaultRegistry();
    obs::tracer();
    obs::predictionLog();
    // Sized once from the budget at first parallel use. The destructor
    // drains the queue and joins every worker.
    static ThreadPool pool(maxThreads() - 1);
    // Completes construction after `pool`, so it is destroyed first:
    // the retired flag flips before the pool's destructor runs and
    // every later parallelFor stays serial (see parallelFor).
    static const PoolRetireFlag retire;
    (void)retire;
    return pool;
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;

    const auto lanes =
        enabled() ? static_cast<std::size_t>(maxThreads()) : 1;
    if (lanes <= 1 || n == 1 ||
        gPoolRetired.load(std::memory_order_relaxed)) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    struct SharedState
    {
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> done{0};
        std::mutex mutex;
        std::condition_variable cv;
        std::exception_ptr error;
    };
    auto state = std::make_shared<SharedState>();

    auto runLane = [state, n, &body] {
        for (;;) {
            const std::size_t i =
                state->next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
            if (state->done.fetch_add(1, std::memory_order_acq_rel) +
                    1 ==
                n) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->cv.notify_all();
            }
        }
    };

    // One helper task per extra lane (bounded by n); the calling thread
    // is the final lane and then blocks until every iteration retired.
    // Helper tasks hold the shared state alive even if they start after
    // the caller returned from its own lane.
    const std::size_t helpers = std::min(lanes - 1, n - 1);
    ThreadPool& pool = globalPool();
    for (std::size_t h = 0; h < helpers; ++h)
        pool.submit(runLane);
    runLane();

    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
        return state->done.load(std::memory_order_acquire) == n;
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

}  // namespace mapp::parallel
