#include "common/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/parse.h"

namespace mapp {

int
CsvTable::columnIndex(const std::string& name) const
{
    for (std::size_t i = 0; i < header.size(); ++i)
        if (header[i] == name)
            return static_cast<int>(i);
    return -1;
}

std::vector<double>
CsvTable::numericColumn(const std::string& name) const
{
    const int idx = columnIndex(name);
    if (idx < 0)
        raise({ErrorCode::Schema, "no column named '" + name + "'",
               {source, 0, ""}});
    const auto col = static_cast<std::size_t>(idx);
    std::vector<double> out;
    out.reserve(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const SourceContext ctx{source, r + 1, name};
        const auto& row = rows[r];
        if (col >= row.size())
            raise({ErrorCode::Schema,
                   "row has " + std::to_string(row.size()) +
                       " cells but '" + name + "' is column " +
                       std::to_string(col + 1),
                   ctx});
        out.push_back(parseDouble(row[col]).orThrow(ctx));
    }
    return out;
}

std::string
csvEscape(const std::string& cell)
{
    const bool needsQuote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needsQuote)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeHeader(const std::vector<std::string>& names)
{
    writeRow(names);
}

void
CsvWriter::writeRow(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            os_ << ',';
        os_ << csvEscape(cells[i]);
    }
    os_ << '\n';
}

void
CsvWriter::writeNumericRow(const std::vector<double>& cells)
{
    std::vector<std::string> strs;
    strs.reserve(cells.size());
    for (double v : cells) {
        std::ostringstream ss;
        ss.precision(17);
        ss << v;
        strs.push_back(ss.str());
    }
    writeRow(strs);
}

namespace {

/** Split one logical CSV record stream into cells, honoring quotes. */
std::vector<std::vector<std::string>>
parseRecords(const std::string& text)
{
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> current;
    std::string cell;
    bool inQuotes = false;
    bool cellStarted = false;

    auto endCell = [&] {
        current.push_back(cell);
        cell.clear();
        cellStarted = false;
    };
    auto endRecord = [&] {
        if (cellStarted || !cell.empty() || !current.empty()) {
            endCell();
            records.push_back(current);
            current.clear();
        }
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (inQuotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    cell += '"';
                    ++i;
                } else {
                    inQuotes = false;
                }
            } else {
                cell += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            inQuotes = true;
            cellStarted = true;
            break;
          case ',':
            cellStarted = true;
            endCell();
            cellStarted = true;
            break;
          case '\r':
            break;
          case '\n':
            endRecord();
            break;
          default:
            cellStarted = true;
            cell += c;
        }
    }
    endRecord();
    return records;
}

}  // namespace

CsvTable
parseCsv(const std::string& text, std::string source)
{
    CsvTable table;
    table.source = std::move(source);
    auto records = parseRecords(text);
    if (records.empty())
        return table;
    table.header = std::move(records.front());
    table.rows.assign(std::make_move_iterator(records.begin() + 1),
                      std::make_move_iterator(records.end()));
    return table;
}

CsvTable
readCsvFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        raise({ErrorCode::Io, "cannot open file", {path, 0, ""}});
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        raise({ErrorCode::Io, "read failed", {path, 0, ""}});
    return parseCsv(ss.str(), path);
}

std::string
toCsv(const CsvTable& table)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.writeHeader(table.header);
    for (const auto& row : table.rows)
        w.writeRow(row);
    return os.str();
}

}  // namespace mapp
