/**
 * @file
 * Crash-safe file output shared by every sidecar/artifact writer.
 *
 * A plain `std::ofstream out(path)` truncates the target immediately,
 * so an interrupt (Ctrl-C), a crash or `kill -9` mid-write leaves a
 * torn, unparseable file behind — fatal for JSON/JSONL sidecars that
 * downstream tooling (`mapp_cli report`, dashboards) parses strictly.
 * writeFileAtomic() instead writes a uniquely named temp file next to
 * the target and rename()s it into place: readers (and the next run)
 * only ever observe either the previous complete file or the new
 * complete file, never a prefix. The artifact cache pioneered this
 * discipline; every `--*-out` sidecar now shares it.
 */

#ifndef MAPP_COMMON_FILE_IO_H
#define MAPP_COMMON_FILE_IO_H

#include <string>
#include <string_view>

namespace mapp {

/**
 * Atomically replace @p path with @p contents: write a unique sibling
 * temp file (`<path>.tmp.<seq>.<pid>`), fsync-free close, then
 * rename() over the target. On any failure the temp file is removed
 * and the previous target (if any) is left untouched.
 *
 * Concurrent writers of the same path are safe: each uses its own temp
 * name and rename() is atomic, so the target always holds exactly one
 * writer's complete contents (last rename wins).
 *
 * @return true when the target now holds @p contents.
 */
bool writeFileAtomic(const std::string& path, std::string_view contents);

}  // namespace mapp

#endif  // MAPP_COMMON_FILE_IO_H
