/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in MAPP (synthetic image generation, workload
 * perturbation, ML train/test splits, simulator jitter) draws from an
 * explicitly seeded Rng so that experiments are bit-reproducible across
 * runs and platforms. The generator is xoshiro256++, which is small, fast
 * and has no observable statistical defects for our use cases.
 */

#ifndef MAPP_COMMON_RNG_H
#define MAPP_COMMON_RNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace mapp {

/**
 * A deterministic xoshiro256++ pseudo-random generator.
 *
 * Unlike std::mt19937 + std::uniform_*_distribution, every method here is
 * fully specified by this implementation, so results do not vary across
 * standard-library vendors.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, deterministic). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal deviate parameterized by the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Exponential deviate with the given rate (lambda). */
    double exponential(double rate);

    /** Fisher-Yates shuffle of a vector, deterministic given the state. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

}  // namespace mapp

#endif  // MAPP_COMMON_RNG_H
