/**
 * @file
 * A small dense linear-algebra kit: the Matrix class plus the solvers the
 * ML library needs (Gaussian elimination with partial pivoting, Cholesky
 * for ridge-regularized normal equations). This is intentionally simple
 * and allocation-friendly rather than tuned; matrices in this project are
 * tiny (tens of rows/columns).
 */

#ifndef MAPP_COMMON_MATRIX_H
#define MAPP_COMMON_MATRIX_H

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace mapp {

/** A dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A rows x cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /** Build from nested initializer lists; all rows must be equal size. */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** The n x n identity. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Element access (unchecked in release builds). */
    double& operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /** One row as a vector copy. */
    std::vector<double> row(std::size_t r) const;

    /** One column as a vector copy. */
    std::vector<double> col(std::size_t c) const;

    Matrix transpose() const;
    Matrix operator*(const Matrix& rhs) const;
    Matrix operator+(const Matrix& rhs) const;
    Matrix operator-(const Matrix& rhs) const;
    Matrix operator*(double scalar) const;

    /** Matrix-vector product. */
    std::vector<double> operator*(const std::vector<double>& v) const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Human-readable rendering for debugging. */
    std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

namespace linalg {

/**
 * Solve A x = b by Gaussian elimination with partial pivoting.
 *
 * @throws std::runtime_error if A is singular (pivot below 1e-12).
 */
std::vector<double> solve(Matrix a, std::vector<double> b);

/**
 * Cholesky factorization of a symmetric positive-definite matrix;
 * returns the lower-triangular factor L with A = L L^T.
 *
 * @throws std::runtime_error if A is not positive definite.
 */
Matrix cholesky(const Matrix& a);

/** Solve A x = b given A SPD, via Cholesky. */
std::vector<double> solveSpd(const Matrix& a, const std::vector<double>& b);

/** Dot product of equal-length vectors. */
double dot(const std::vector<double>& a, const std::vector<double>& b);

/** Euclidean norm. */
double norm(const std::vector<double>& a);

}  // namespace linalg

}  // namespace mapp

#endif  // MAPP_COMMON_MATRIX_H
