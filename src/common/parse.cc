#include "common/parse.h"

#include <charconv>
#include <cmath>
#include <string>

namespace mapp {

namespace {

std::string_view
trim(std::string_view text)
{
    while (!text.empty() && (text.front() == ' ' || text.front() == '\t'))
        text.remove_prefix(1);
    while (!text.empty() && (text.back() == ' ' || text.back() == '\t'))
        text.remove_suffix(1);
    return text;
}

std::string
quoted(std::string_view text)
{
    // Cap the echoed input so a pathological cell can't bloat the log.
    constexpr std::size_t kMaxEcho = 64;
    std::string out = "'";
    out.append(text.substr(0, kMaxEcho));
    if (text.size() > kMaxEcho)
        out += "...";
    out += "'";
    return out;
}

Error
emptyError()
{
    return {ErrorCode::Parse, "empty value where a number was expected"};
}

/** Shared integral tail: from_chars + full-consumption + bounds check. */
template <typename T>
Result<T>
parseIntegral(std::string_view text, T min, T max, const char* kind)
{
    const std::string_view token = trim(text);
    if (token.empty())
        return emptyError();
    T value{};
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::invalid_argument)
        return Error{ErrorCode::Parse, quoted(token) + std::string(" is not ") +
                                           kind};
    if (ptr != token.data() + token.size())
        return Error{ErrorCode::Parse,
                     "trailing characters after number in " + quoted(token)};
    if (ec == std::errc::result_out_of_range || value < min || value > max)
        return Error{ErrorCode::Range,
                     quoted(token) + " is out of range [" +
                         std::to_string(min) + ", " + std::to_string(max) +
                         "]"};
    return value;
}

}  // namespace

Result<double>
parseDouble(std::string_view text)
{
    const std::string_view token = trim(text);
    if (token.empty())
        return emptyError();
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc::invalid_argument)
        return Error{ErrorCode::Parse, quoted(token) + " is not a number"};
    if (ptr != token.data() + token.size())
        return Error{ErrorCode::Parse,
                     "trailing characters after number in " + quoted(token)};
    if (ec == std::errc::result_out_of_range)
        return Error{ErrorCode::Range,
                     quoted(token) + " overflows a double"};
    // from_chars accepts textual "nan"/"inf"; a dataset cell holding
    // either would poison every model statistic downstream, so the
    // strict boundary rejects non-finite values outright.
    if (!std::isfinite(value))
        return Error{ErrorCode::Range,
                     "non-finite value " + quoted(token) + " is not allowed"};
    return value;
}

Result<long long>
parseInt(std::string_view text, long long min, long long max)
{
    return parseIntegral<long long>(text, min, max, "an integer");
}

Result<std::uint64_t>
parseUnsigned(std::string_view text, std::uint64_t max)
{
    const std::string_view token = trim(text);
    if (!token.empty() && token.front() == '-')
        return Error{ErrorCode::Range,
                     "negative value " + quoted(token) +
                         " where an unsigned integer was expected"};
    return parseIntegral<std::uint64_t>(token, std::uint64_t{0}, max,
                                        "an unsigned integer");
}

Result<int>
parseBoundedInt(std::string_view text, int min, int max)
{
    auto wide = parseInt(text, min, max);
    if (!wide)
        return wide.error();
    return static_cast<int>(wide.value());
}

}  // namespace mapp
