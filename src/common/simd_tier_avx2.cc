/**
 * @file
 * The AVX2 kernel tier. The centerpiece is the gathered tree walk:
 * four rows advance per __m256d vector — each row's packed 16-byte
 * node record (threshold + feature/children word) and its feature
 * value fetched with i64 gathers, the split decided by a vector
 * compare + byte blend over the word — and four such groups
 * interleave into a 16-row strip so the gather latencies of
 * independent rows overlap, the same ILP trick the scalar cascade
 * plays with dependent scalar loads. The probe-step early exit and
 * the leaf self-loop sentinel carry over unchanged.
 *
 * The walk reads the PACKED node records of the TreeNodes view (the
 * scalar walk reads the SoA arrays instead — each kernel gets the
 * layout it is fastest on, see the PackedNode note in common/simd.h).
 * Whether this walk beats the scalar one is decided per machine, not
 * per ISA: on microarchitectures whose gathers decode into per-lane
 * load uops (Skylake-class servers), three gathers per level lose to
 * the scalar walk's four plain loads, so `auto` dispatch keeps the
 * scalar walk there (see the calibration note in common/simd.h). The
 * vector walk stays reachable via an explicit tier request and stays
 * bit-identical either way.
 *
 * This TU is compiled with `-mavx2 -ffp-contract=off` (x86 only).
 * `-mavx2` does NOT enable FMA, and contract-off makes that explicit:
 * a fused multiply-add would merge roundings the scalar tier performs
 * separately and break the bit-identity contract.
 *
 * BIT-IDENTITY: the walk performs no arithmetic — only the exact
 * compare `x <= t`, taken as `_CMP_NLE_UQ` so a NaN feature routes
 * right exactly like the scalar `!(x <= t)`. Elementwise kernels
 * round once per element like scalar, and reductions fold lanes into
 * the accumulator in element order (pinned by tests/test_simd.cc).
 */

#include "common/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace mapp::simd {

namespace {

/** Rows one gathered walk strip keeps in flight (4 groups of 4). */
constexpr std::size_t kStripRows = 16;

/**
 * One lock-step level for four rows: gather each row's packed node
 * record (threshold + feature/children word — two gathers over the
 * same 16-byte slots), gather the feature values, vector-compare, and
 * blend between the word and the word shifted down 25 bits so the
 * masked result is the taken child. The child select costs NO extra
 * gather — both children and the feature id travel inside the one
 * gathered word, which is why this walk reads the packed records:
 * three gathers per level instead of the four the SoA arrays would
 * need.
 */
__attribute__((always_inline)) inline __m256i
advance4(const PackedNode* nodes, const double* rows, __m256i base,
         __m256i c)
{
    // Node records are 16 bytes; with gather scale capped at 8 the
    // index is 2*c (threshold at slot offset 0, word at offset 8).
    const __m256i idx2 = _mm256_slli_epi64(c, 1);
    const __m256d t = _mm256_i64gather_pd(
        reinterpret_cast<const double*>(nodes), idx2, 8);
    const __m256i w = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(nodes) + 1, idx2, 8);
    const __m256i fidx = _mm256_add_epi64(
        base, _mm256_srli_epi64(w, PackedNode::kFeatureShift));
    const __m256d x = _mm256_i64gather_pd(rows, fidx, 8);
    // NLE_UQ: true when !(x <= t), and true for NaN (unordered) —
    // identical routing to the scalar `!(x <= t)` shift count.
    const __m256d go = _mm256_cmp_pd(x, t, _CMP_NLE_UQ);
    // The compare mask is all-ones/all-zeros per 64-bit lane, so the
    // per-byte blend selects whole 64-bit words.
    const __m256i cand = _mm256_blendv_epi8(
        w, _mm256_srli_epi64(w, PackedNode::kChildBits),
        _mm256_castpd_si256(go));
    return _mm256_and_si256(
        cand,
        _mm256_set1_epi64x(
            static_cast<long long>(PackedNode::kChildMask)));
}

/** Row-base element offsets (row*n_features) for rows g..g+3. */
__attribute__((always_inline)) inline __m256i
rowBases(std::size_t g, std::size_t n_features)
{
    const auto nf = static_cast<long long>(n_features);
    const auto g0 = static_cast<long long>(g);
    return _mm256_set_epi64x((g0 + 3) * nf, (g0 + 2) * nf,
                             (g0 + 1) * nf, g0 * nf);
}

/** Gather the 4 leaf values and write/accumulate them to @p out. */
__attribute__((always_inline)) inline void
emit4(const PackedNode* nodes, __m256i c, double* out,
      bool accumulate)
{
    __m256d v =
        _mm256_i64gather_pd(reinterpret_cast<const double*>(nodes),
                            _mm256_slli_epi64(c, 1), 8);
    if (accumulate)
        v = _mm256_add_pd(v, _mm256_loadu_pd(out));
    _mm256_storeu_pd(out, v);
}

/**
 * Walk exactly kStripRows rows. Four independent 4-row groups advance
 * per level so each group's gather chain hides the others' latency;
 * the probe step folds "did any row move?" into the level itself via
 * a 64-bit lane equality across all four groups.
 */
void
walkStrip16(const PackedNode* nodes, std::int32_t root, int steps,
            const double* rows, std::size_t n_features, double* out,
            bool accumulate)
{
    const __m256i b0 = rowBases(0, n_features);
    const __m256i b1 = rowBases(4, n_features);
    const __m256i b2 = rowBases(8, n_features);
    const __m256i b3 = rowBases(12, n_features);
    __m256i c0 = _mm256_set1_epi64x(root);
    __m256i c1 = c0;
    __m256i c2 = c0;
    __m256i c3 = c0;
    for (int s = 0; s < steps;) {
        const int stop =
            steps < s + kWalkStepsPerProbe - 1
                ? steps
                : s + kWalkStepsPerProbe - 1;
        for (; s < stop; ++s) {
            c0 = advance4(nodes, rows, b0, c0);
            c1 = advance4(nodes, rows, b1, c1);
            c2 = advance4(nodes, rows, b2, c2);
            c3 = advance4(nodes, rows, b3, c3);
        }
        if (s >= steps)
            break;
        const __m256i n0 = advance4(nodes, rows, b0, c0);
        const __m256i n1 = advance4(nodes, rows, b1, c1);
        const __m256i n2 = advance4(nodes, rows, b2, c2);
        const __m256i n3 = advance4(nodes, rows, b3, c3);
        const __m256i same = _mm256_and_si256(
            _mm256_and_si256(_mm256_cmpeq_epi64(n0, c0),
                             _mm256_cmpeq_epi64(n1, c1)),
            _mm256_and_si256(_mm256_cmpeq_epi64(n2, c2),
                             _mm256_cmpeq_epi64(n3, c3)));
        c0 = n0;
        c1 = n1;
        c2 = n2;
        c3 = n3;
        ++s;
        if (_mm256_movemask_epi8(same) == -1)
            break;  // every row self-loops on a leaf; rest are no-ops
    }
    emit4(nodes, c0, out + 0, accumulate);
    emit4(nodes, c1, out + 4, accumulate);
    emit4(nodes, c2, out + 8, accumulate);
    emit4(nodes, c3, out + 12, accumulate);
}

void
walkAvx2(const TreeNodes& nodes, std::int32_t root, int steps,
         const double* rows, std::size_t n_features,
         std::size_t row_count, double* out, bool accumulate)
{
    const PackedNode* packed = nodes.packed;
    std::size_t done = 0;
    while (row_count - done >= kStripRows) {
        walkStrip16(packed, root, steps, rows + done * n_features,
                    n_features, out + done, accumulate);
        done += kStripRows;
    }
    // Sub-strip remainder: the scalar cascade already has tuned 8/4
    // blocks and a rolled tail; a masked-gather path for <16 rows is
    // not worth its complexity.
    if (row_count > done)
        detail::walkScalar(nodes, root, steps,
                           rows + done * n_features, n_features,
                           row_count - done, out + done, accumulate);
}

void
normalizeRowsAvx2(double* row_major, std::size_t n_rows,
                  const double* divisors, std::size_t n_features)
{
    for (std::size_t r = 0; r < n_rows; ++r) {
        double* row = row_major + r * n_features;
        std::size_t f = 0;
        for (; f + 4 <= n_features; f += 4) {
            const __m256d x = _mm256_loadu_pd(row + f);
            const __m256d d = _mm256_loadu_pd(divisors + f);
            _mm256_storeu_pd(row + f, _mm256_div_pd(x, d));
        }
        for (; f < n_features; ++f)
            row[f] /= divisors[f];
    }
}

void
scaleValuesAvx2(double* values, std::size_t n, double factor)
{
    const __m256d vf = _mm256_set1_pd(factor);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(values + i,
                         _mm256_mul_pd(_mm256_loadu_pd(values + i),
                                       vf));
    for (; i < n; ++i)
        values[i] *= factor;
}

double
sumSquaredDiffAvx2(const double* a, const double* b, std::size_t n)
{
    double acc = 0.0;
    alignas(32) double lanes[4];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                        _mm256_loadu_pd(b + i));
        _mm256_store_pd(lanes, _mm256_mul_pd(d, d));
        // In-element-order lane folds keep the scalar summation
        // sequence (the bit-identity contract).
        acc += lanes[0];
        acc += lanes[1];
        acc += lanes[2];
        acc += lanes[3];
    }
    for (; i < n; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

double
sumSquaredDevAvx2(const double* x, std::size_t n, double center)
{
    const __m256d vc = _mm256_set1_pd(center);
    double acc = 0.0;
    alignas(32) double lanes[4];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d d =
            _mm256_sub_pd(_mm256_loadu_pd(x + i), vc);
        _mm256_store_pd(lanes, _mm256_mul_pd(d, d));
        acc += lanes[0];
        acc += lanes[1];
        acc += lanes[2];
        acc += lanes[3];
    }
    for (; i < n; ++i) {
        const double d = x[i] - center;
        acc += d * d;
    }
    return acc;
}

double
sumAbsRelErrPctAvx2(const double* truth, const double* pred,
                    std::size_t n)
{
    const __m256d sign = _mm256_set1_pd(-0.0);
    const __m256d eps = _mm256_set1_pd(1e-300);
    const __m256d hundred = _mm256_set1_pd(100.0);
    double acc = 0.0;
    alignas(32) double lanes[4];
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d t = _mm256_loadu_pd(truth + i);
        const __m256d p = _mm256_loadu_pd(pred + i);
        const __m256d at = _mm256_andnot_pd(sign, t);
        // VMAXPD(a, b) = a > b ? a : b — exactly the scalar
        // `|t| > 1e-300 ? |t| : 1e-300` (finite inputs by contract).
        const __m256d denom = _mm256_max_pd(at, eps);
        const __m256d ad =
            _mm256_andnot_pd(sign, _mm256_sub_pd(t, p));
        _mm256_store_pd(
            lanes,
            _mm256_mul_pd(_mm256_div_pd(ad, denom), hundred));
        acc += lanes[0];
        acc += lanes[1];
        acc += lanes[2];
        acc += lanes[3];
    }
    for (; i < n; ++i) {
        const double at = truth[i] < 0.0 ? -truth[i] : truth[i];
        const double denom = at > 1e-300 ? at : 1e-300;
        const double d = truth[i] - pred[i];
        acc += (d < 0.0 ? -d : d) / denom * 100.0;
    }
    return acc;
}

const Kernels kAvx2Table{
    Tier::Avx2,          "avx2",
    &walkAvx2,           &normalizeRowsAvx2,
    &scaleValuesAvx2,    &sumSquaredDiffAvx2,
    &sumSquaredDevAvx2,  &sumAbsRelErrPctAvx2,
};

}  // namespace

namespace detail {

const Kernels*
avx2Kernels()
{
    return &kAvx2Table;
}

}  // namespace detail

}  // namespace mapp::simd

#else  // !__AVX2__: tier not built for this architecture

namespace mapp::simd::detail {

const Kernels*
avx2Kernels()
{
    return nullptr;
}

}  // namespace mapp::simd::detail

#endif
