/**
 * @file
 * Descriptive statistics helpers used throughout the predictor pipeline:
 * summarizing simulated runs, computing feature/target correlations
 * (Section VI-A of the paper) and aggregating cross-validation errors.
 */

#ifndef MAPP_COMMON_STATS_H
#define MAPP_COMMON_STATS_H

#include <cstddef>
#include <span>
#include <vector>

namespace mapp::stats {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Population variance; 0 for spans shorter than 2. */
double variance(std::span<const double> xs);

/** Population standard deviation. */
double stddev(std::span<const double> xs);

/** Geometric mean of strictly-positive values; 0 if any value <= 0. */
double geomean(std::span<const double> xs);

/** Minimum; +inf for an empty span. */
double minimum(std::span<const double> xs);

/** Maximum; -inf for an empty span. */
double maximum(std::span<const double> xs);

/** Sum of the values. */
double sum(std::span<const double> xs);

/** Median (average of the two middle values for even sizes). */
double median(std::span<const double> xs);

/**
 * Linear-interpolated percentile.
 *
 * @param xs values (copied and sorted internally)
 * @param p percentile, clamped to [0, 100] (NaN is treated as 0)
 */
double percentile(std::span<const double> xs, double p);

/** Pearson correlation coefficient; 0 if either side has zero variance. */
double pearson(std::span<const double> xs, std::span<const double> ys);

/** Spearman rank correlation (ties broken by average rank). */
double spearman(std::span<const double> xs, std::span<const double> ys);

/** Ranks with average-rank tie handling (1-based ranks). */
std::vector<double> ranks(std::span<const double> xs);

/**
 * Streaming accumulator for mean/variance/min/max without storing samples
 * (Welford's algorithm).
 */
class Accumulator
{
  public:
    /** Fold one sample into the running moments. */
    void add(double x);

    /** Number of samples folded so far. */
    std::size_t count() const { return n_; }

    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double minimum() const { return min_; }
    double maximum() const { return max_; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

}  // namespace mapp::stats

#endif  // MAPP_COMMON_STATS_H
